// The acceptance property of the size-class byte arena: a second identical
// pipeline run on a warm Executor performs ZERO heap allocations — the whole
// hot path (cached edge sort, contraction hierarchy, expansion, output
// vectors) runs out of recycled storage.  Verified with a replaced global
// operator new, not just the workspace's own lease statistics.

#include "alloc_counter.hpp"  // must precede everything that allocates

#include <gtest/gtest.h>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/exec/failpoint.hpp"
#include "pandora/pipeline.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::AllocationCounterScope;
using pandora::testing::Topology;
using pandora::testing::make_tree;

class ArenaBothSpaces : public ::testing::TestWithParam<std::shared_ptr<const exec::Backend>> {};

INSTANTIATE_TEST_SUITE_P(Backends, ArenaBothSpaces,
                         ::testing::ValuesIn(exec::registered_backends()),
                         [](const auto& info) { return std::string(info.param->name()); });

TEST_P(ArenaBothSpaces, SecondIdenticalPipelineRunAllocatesNothing) {
  const index_t nv = 30000;
  const graph::EdgeList tree = make_tree(Topology::preferential, nv, 3, 0);
  // A 4-thread budget forces the parallel code path even on small machines
  // (the serial backend grants 1 regardless; the pinned pool clamps).
  const exec::Executor executor(GetParam(), 4);
  const auto pipeline = Pipeline::on(executor);

  dendrogram::Dendrogram out;
  pipeline.build_dendrogram_into(tree, nv, out);  // warm-up: sizes the arena
  pipeline.build_dendrogram_into(tree, nv, out);  // settles OpenMP team state
  const dendrogram::Dendrogram reference = out;   // copy for the equality check

  executor.workspace().reset_stats();
  const AllocationCounterScope scope;
  pipeline.build_dendrogram_into(tree, nv, out);
  EXPECT_EQ(scope.count(), 0u)
      << "the steady-state pipeline must not touch the heap at all";
  EXPECT_EQ(executor.workspace().stats().misses, 0u);
  EXPECT_GT(executor.workspace().stats().takes, 0u);

  EXPECT_EQ(out.parent, reference.parent);
  EXPECT_EQ(out.weight, reference.weight);
  EXPECT_EQ(out.edge_order, reference.edge_order);
}

TEST(Arena, LargerQueryAfterSmallerGrowsAndStaysCorrect) {
  // Size-class growth: a bigger query after a smaller one allocates the
  // larger classes once, produces correct output, and subsequent repeats of
  // the bigger query are allocation-free again.
  const graph::EdgeList small_tree = make_tree(Topology::random_attach, 4000, 5, 0);
  const graph::EdgeList big_tree = make_tree(Topology::random_attach, 50000, 6, 0);
  const exec::Executor executor(exec::default_backend(), 4);
  const auto pipeline = Pipeline::on(executor);

  dendrogram::Dendrogram out;
  pipeline.build_dendrogram_into(small_tree, 4000, out);
  pipeline.build_dendrogram_into(big_tree, 50000, out);  // growth happens here

  // Correctness against a cold executor.
  const exec::Executor fresh(exec::default_backend(), 4);
  const auto expected = dendrogram::pandora_dendrogram(fresh, big_tree, 50000);
  EXPECT_EQ(out.parent, expected.parent);
  EXPECT_EQ(out.edge_order, expected.edge_order);

  pipeline.build_dendrogram_into(big_tree, 50000, out);  // settle
  const AllocationCounterScope scope;
  pipeline.build_dendrogram_into(big_tree, 50000, out);
  EXPECT_EQ(scope.count(), 0u);

  // And shrinking back reuses the big blocks rather than allocating small
  // ones (the size-class search serves smaller requests from larger classes).
  executor.workspace().reset_stats();
  pipeline.build_dendrogram_into(small_tree, 4000, out);
  EXPECT_EQ(executor.workspace().stats().misses, 0u);
  const auto expected_small = dendrogram::pandora_dendrogram(fresh, small_tree, 4000);
  EXPECT_EQ(out.parent, expected_small.parent);
}

TEST(Arena, InjectedFaultMidPipelineReleasesEveryLease) {
  // Exception safety of the lease discipline: a kernel aborted mid-flight
  // (fault injected at a run_chunks launch, while scratch leases are live)
  // must return every block to the arena on unwind.  Proof: the rerun on the
  // same warm executor is still steady-state — zero heap allocations, zero
  // arena misses — and bit-identical.  The ASan CI entries additionally
  // leak-check the unwind itself.
  const index_t nv = 30000;
  const graph::EdgeList tree = make_tree(Topology::random_attach, nv, 9, 0);
  const exec::Executor executor(exec::default_backend(), 4);
  const auto pipeline = Pipeline::on(executor);

  dendrogram::Dendrogram out;
  pipeline.build_dendrogram_into(tree, nv, out);  // warm-up: sizes the arena
  pipeline.build_dendrogram_into(tree, nv, out);
  const dendrogram::Dendrogram reference = out;

  exec::failpoint::arm("exec.run_chunks", {exec::failpoint::Kind::error, 2, 1});
  EXPECT_THROW(pipeline.build_dendrogram_into(tree, nv, out),
               exec::failpoint::InjectedFault);
  exec::failpoint::disarm("exec.run_chunks");

  executor.workspace().reset_stats();
  const AllocationCounterScope scope;
  pipeline.build_dendrogram_into(tree, nv, out);
  EXPECT_EQ(scope.count(), 0u)
      << "an aborted run leaked leases: the rerun had to allocate";
  EXPECT_EQ(executor.workspace().stats().misses, 0u);
  EXPECT_EQ(out.parent, reference.parent);
  EXPECT_EQ(out.weight, reference.weight);
}

TEST(Arena, CancelledQueryReleasesEveryLease) {
  // Same discipline under cooperative cancellation: a deadline'd query that
  // unwinds with Cancelled leaves the arena whole and reusable.
  const spatial::PointSet points = data::gaussian_blobs(4000, 2, 4, 0.05, 0.05, 13);
  const exec::Executor executor(exec::default_backend(), 4);
  const auto pipeline = Pipeline::on(executor).with_min_pts(3);
  const auto reference = pipeline.run_hdbscan(points);  // warm-up

  EXPECT_THROW(
      (void)Pipeline::on(executor).with_min_pts(3).with_deadline(std::chrono::nanoseconds(1))
          .run_hdbscan(points),
      Cancelled);

  executor.workspace().reset_stats();
  const auto rerun = pipeline.run_hdbscan(points);
  EXPECT_EQ(executor.workspace().stats().misses, 0u);
  EXPECT_EQ(rerun.labels, reference.labels);
}

TEST(Arena, RepeatedHdbscanReusesScratch) {
  // End-to-end sanity at the workspace-stats level: repeated full HDBSCAN*
  // queries on one executor lease everything from the arena.
  const spatial::PointSet points = data::gaussian_blobs(4000, 2, 4, 0.05, 0.05, 11);
  const exec::Executor executor(exec::default_backend(), 4);
  const auto pipeline = Pipeline::on(executor).with_min_pts(3).with_min_cluster_size(20);
  const auto first = pipeline.run_hdbscan(points);
  executor.workspace().reset_stats();
  const auto second = pipeline.run_hdbscan(points);
  EXPECT_EQ(executor.workspace().stats().misses, 0u)
      << "repeated identical hdbscan queries must reuse every leased buffer";
  EXPECT_EQ(first.labels, second.labels);
}

}  // namespace
