// Tests for the mixed top-down/bottom-up baseline (Section 2.3.3) and the
// LCA / cophenetic-distance oracle built on Theorem 1.

#include <gtest/gtest.h>

#include <set>

#include "pandora/dendrogram/lca.hpp"
#include "pandora/dendrogram/mixed.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/graph/tree.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::Dendrogram;
using pandora::testing::Topology;
using pandora::testing::all_topologies;
using pandora::testing::make_tree;
using pandora::testing::topology_name;

class MixedSweep
    : public ::testing::TestWithParam<std::tuple<Topology, index_t, double>> {};

INSTANTIATE_TEST_SUITE_P(Sweep, MixedSweep,
                         ::testing::Combine(::testing::ValuesIn(all_topologies()),
                                            ::testing::Values<index_t>(2, 33, 500, 4096),
                                            ::testing::Values(0.05, 0.1, 0.5, 1.0)));

TEST_P(MixedSweep, MatchesUnionFindExactly) {
  const auto& [topo, n, fraction] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const graph::EdgeList tree = make_tree(topo, n, seed, seed == 2 ? 3 : 0);
    const Dendrogram reference = dendrogram::union_find_dendrogram(exec::default_executor(), tree, n);
    for (const auto& space : exec::registered_backends()) {
      const Dendrogram mixed =
          dendrogram::mixed_dendrogram(exec::default_executor(space), tree, n, fraction);
      ASSERT_EQ(mixed.parent, reference.parent)
          << topology_name(topo) << " n=" << n << " fraction=" << fraction
          << " space=" << space->name() << " seed=" << seed;
    }
  }
}

TEST(Mixed, PhaseTimesSplitSubtreesStitch) {
  const graph::EdgeList tree = make_tree(Topology::random_attach, 50000, 1);
  const exec::Executor executor(exec::default_backend());
  exec::PhaseTimesProfiler profiler;
  executor.set_profiler(&profiler);
  (void)dendrogram::mixed_dendrogram(executor, tree, 50000, 0.1);
  executor.set_profiler(nullptr);
  const PhaseTimes& times = profiler.times();
  EXPECT_GT(times.get("sort"), 0.0);
  EXPECT_GT(times.get("split"), 0.0);
  EXPECT_GT(times.get("subtrees"), 0.0);
  EXPECT_GT(times.get("stitch"), 0.0);
}

TEST(Mixed, RejectsBadFraction) {
  const graph::EdgeList tree = make_tree(Topology::path, 10, 1);
  const exec::Executor executor(exec::serial_backend());
  EXPECT_THROW((void)dendrogram::mixed_dendrogram(executor, tree, 10, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)dendrogram::mixed_dendrogram(executor, tree, 10, 1.5),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------

/// Brute-force LCDA via ancestor sets.
index_t brute_lca(const Dendrogram& d, index_t a, index_t b) {
  std::set<index_t> ancestors;
  for (index_t cur = a; cur != kNone; cur = d.parent[static_cast<std::size_t>(cur)])
    ancestors.insert(cur);
  for (index_t cur = b; cur != kNone; cur = d.parent[static_cast<std::size_t>(cur)])
    if (ancestors.contains(cur)) return cur;
  return kNone;
}

class LcaSweep : public ::testing::TestWithParam<Topology> {};
INSTANTIATE_TEST_SUITE_P(Sweep, LcaSweep, ::testing::ValuesIn(all_topologies()),
                         [](const auto& info) { return std::string(topology_name(info.param)); });

TEST_P(LcaSweep, MatchesBruteForceOnAllPairs) {
  const index_t nv = 150;
  const graph::EdgeList tree = make_tree(GetParam(), nv, 5);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, nv);
  const dendrogram::DendrogramLca lca(d);
  for (index_t a = 0; a < d.num_edges; a += 3)
    for (index_t b = 0; b < d.num_edges; b += 5)
      ASSERT_EQ(lca.lca_edges(a, b), brute_lca(d, a, b)) << "a=" << a << " b=" << b;
}

TEST_P(LcaSweep, CopheneticDistanceIsMaxEdgeOnTreePath) {
  // Theorem 1 via points: the single-linkage merge height of u and v equals
  // the heaviest edge weight on the MST path between them.
  const index_t nv = 120;
  const graph::EdgeList tree = make_tree(GetParam(), nv, 11);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, nv);
  const dendrogram::DendrogramLca lca(d);
  const graph::Adjacency adj = graph::build_adjacency(tree, nv);

  // BFS from each source tracking the max edge weight en route.
  for (index_t src = 0; src < nv; src += 7) {
    std::vector<double> max_weight(static_cast<std::size_t>(nv), -1.0);
    std::vector<index_t> queue{src};
    max_weight[static_cast<std::size_t>(src)] = 0.0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const index_t x = queue[head];
      for (const auto& half : adj.incident(x)) {
        if (max_weight[static_cast<std::size_t>(half.neighbor)] >= 0.0) continue;
        max_weight[static_cast<std::size_t>(half.neighbor)] =
            std::max(max_weight[static_cast<std::size_t>(x)],
                     tree[static_cast<std::size_t>(half.edge)].weight);
        queue.push_back(half.neighbor);
      }
    }
    for (index_t dst = 0; dst < nv; dst += 3) {
      if (dst == src) continue;
      ASSERT_DOUBLE_EQ(lca.cophenetic_distance(src, dst),
                       max_weight[static_cast<std::size_t>(dst)])
          << "src=" << src << " dst=" << dst;
    }
  }
}

TEST(Lca, SelfDistanceIsZeroAndSymmetry) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 200, 2);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 200);
  const dendrogram::DendrogramLca lca(d);
  EXPECT_EQ(lca.cophenetic_distance(5, 5), 0.0);
  for (index_t a = 0; a < 200; a += 17)
    for (index_t b = a + 1; b < 200; b += 13)
      EXPECT_DOUBLE_EQ(lca.cophenetic_distance(a, b), lca.cophenetic_distance(b, a));
}

TEST(Lca, DepthsMatchAnalysis) {
  const graph::EdgeList tree = make_tree(Topology::broom, 300, 4);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 300);
  const dendrogram::DendrogramLca lca(d);
  for (index_t e = 1; e < d.num_edges; ++e)
    EXPECT_EQ(lca.depth(e),
              lca.depth(d.parent[static_cast<std::size_t>(e)]) + 1);
}

}  // namespace
