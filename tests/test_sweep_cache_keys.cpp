// Cache-key correctness under parameter sweeps: two different
// min_cluster_size / mpts / leaf_size values over the same inputs must never
// alias a fingerprint, and mutated inputs must miss.  Also checks the sweep
// front doors against independent ground-truth runs.

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/exec/fingerprint.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::Topology;
using pandora::testing::make_tree;

TEST(Fingerprint, CombineSeparatesParametersAndOrder) {
  const std::uint64_t base = 0x1234'5678'9abc'def0ULL;
  std::set<std::uint64_t> keys;
  for (std::uint64_t param = 0; param < 64; ++param)
    keys.insert(exec::combine_fingerprint(base, param));
  EXPECT_EQ(keys.size(), 64u) << "every parameter value derives a distinct key";
  EXPECT_NE(exec::combine_fingerprint(1, 2), exec::combine_fingerprint(2, 1))
      << "parameter order is part of the key";
  EXPECT_NE(exec::tagged_fingerprint(exec::ArtifactTag::kdtree, base),
            exec::tagged_fingerprint(exec::ArtifactTag::core_distance, base))
      << "artifact kinds never share keys even for identical inputs";
}

TEST(PointSetFingerprint, SensitiveToEveryCoordinateAndShape) {
  const exec::Executor executor(exec::serial_backend());
  const spatial::PointSet points = data::uniform_points(500, 3, 11);
  const std::uint64_t base = spatial::point_set_fingerprint(executor, points);
  EXPECT_EQ(base, spatial::point_set_fingerprint(executor, points)) << "deterministic";

  spatial::PointSet mutated = points;
  mutated.at(250, 1) += 1e-12;
  EXPECT_NE(base, spatial::point_set_fingerprint(executor, mutated));

  spatial::PointSet swapped = points;
  std::swap(swapped.at(0, 0), swapped.at(1, 0));
  EXPECT_NE(base, spatial::point_set_fingerprint(executor, swapped))
      << "point order is part of the key";

  // Serial and parallel executors agree (deterministic left-to-right sum).
  const exec::Executor parallel(exec::default_backend(), 4);
  EXPECT_EQ(base, spatial::point_set_fingerprint(parallel, points));
}

TEST(KdTreeCache, HitsSameObjectMissesMutatedAndOtherLeafSizes) {
  const exec::Executor executor(exec::serial_backend());
  spatial::PointSet points = data::uniform_points(800, 2, 3);

  const auto first = spatial::kdtree_cached(executor, points);
  const auto second = spatial::kdtree_cached(executor, points);
  EXPECT_EQ(first.get(), second.get()) << "a hit replays the cached tree";

  const auto other_leaf = spatial::kdtree_cached(executor, points, /*leaf_size=*/8);
  EXPECT_NE(first.get(), other_leaf.get()) << "leaf_size is part of the key";
  EXPECT_EQ(other_leaf->leaf_size(), 8);

  points.at(100, 0) += 0.5;  // mutate: the old tree is stale
  const auto rebuilt = spatial::kdtree_cached(executor, points);
  EXPECT_NE(first.get(), rebuilt.get()) << "mutated inputs must miss";

  // A content-identical but distinct PointSet object must not be served a
  // tree that references someone else's storage.
  const spatial::PointSet copy = points;
  const auto for_copy = spatial::kdtree_cached(executor, copy);
  EXPECT_NE(rebuilt.get(), for_copy.get());
  EXPECT_EQ(&for_copy->points(), &copy);
}

TEST(CoreDistanceCache, MptsValuesNeverAlias) {
  const exec::Executor executor(exec::serial_backend());
  const spatial::PointSet points = data::gaussian_blobs(600, 2, 4, 0.05, 0.2, 21);
  const auto tree = spatial::kdtree_cached(executor, points);

  const auto at4 = hdbscan::core_distances_cached(executor, points, *tree, 4);
  const auto at8 = hdbscan::core_distances_cached(executor, points, *tree, 8);
  EXPECT_NE(at4.get(), at8.get()) << "mpts is part of the key";
  EXPECT_EQ(*at4, hdbscan::core_distances(executor, points, *tree, 4));
  EXPECT_EQ(*at8, hdbscan::core_distances(executor, points, *tree, 8));

  const auto at4_again = hdbscan::core_distances_cached(executor, points, *tree, 4);
  EXPECT_EQ(at4.get(), at4_again.get()) << "same mpts replays";

  spatial::PointSet mutated = points;
  mutated.at(0, 0) += 1.0;
  const auto mutated_tree = spatial::kdtree_cached(executor, mutated);
  const auto mutated_core = hdbscan::core_distances_cached(executor, mutated, *mutated_tree, 4);
  EXPECT_NE(at4.get(), mutated_core.get()) << "mutated inputs must miss";
}

TEST(EmstCache, MptsValuesNeverAliasAndSweepsSkipBoruvka) {
  const exec::Executor executor(exec::serial_backend());
  const spatial::PointSet points = data::gaussian_blobs(600, 2, 4, 0.05, 0.2, 22);
  const auto tree = spatial::kdtree_cached(executor, points);
  const auto core4 = hdbscan::core_distances_cached(executor, points, *tree, 4);
  const auto core8 = hdbscan::core_distances_cached(executor, points, *tree, 8);

  const auto at4 = spatial::mutual_reachability_mst_cached(executor, points, *tree, *core4, 4);
  const auto at8 = spatial::mutual_reachability_mst_cached(executor, points, *tree, *core8, 8);
  EXPECT_NE(at4.get(), at8.get()) << "mpts is part of the key";
  EXPECT_EQ(*at4, spatial::mutual_reachability_mst(executor, points, *tree, *core4));
  EXPECT_EQ(*at8, spatial::mutual_reachability_mst(executor, points, *tree, *core8));

  const auto at4_again =
      spatial::mutual_reachability_mst_cached(executor, points, *tree, *core4, 4);
  EXPECT_EQ(at4.get(), at4_again.get()) << "same mpts replays without Borůvka";

  spatial::PointSet mutated = points;
  mutated.at(0, 0) += 1.0;
  const auto mutated_tree = spatial::kdtree_cached(executor, mutated);
  const auto mutated_core = hdbscan::core_distances_cached(executor, mutated, *mutated_tree, 4);
  const auto mutated_mst = spatial::mutual_reachability_mst_cached(executor, mutated,
                                                                   *mutated_tree, *mutated_core, 4);
  EXPECT_NE(at4.get(), mutated_mst.get()) << "mutated inputs must miss";

  // The mcs-sweep front door replays the whole prefix — including the EMST —
  // on a second identical call (the ROADMAP follow-up this cache exists for).
  const std::array<index_t, 2> sizes = {5, 25};
  (void)hdbscan::hdbscan_sweep_min_cluster_size(executor, points, sizes, {.min_pts = 4});
  const auto before = executor.artifact_cache().stats();
  const auto sweep = hdbscan::hdbscan_sweep_min_cluster_size(executor, points, sizes,
                                                             {.min_pts = 4});
  const auto after = executor.artifact_cache().stats();
  EXPECT_GE(after.hits - before.hits, 4u)
      << "kd-tree, core distances, EMST and dendrogram all replay";
  EXPECT_EQ(after.misses, before.misses) << "a warm sweep recomputes nothing";
  EXPECT_EQ(sweep.mst, *at4);
}

TEST(DendrogramCache, KeyedOnMstAndExpansionPolicy) {
  const exec::Executor executor(exec::serial_backend());
  const graph::EdgeList tree = make_tree(Topology::random_attach, 4000, 5, 0);

  const auto multilevel = dendrogram::pandora_dendrogram_cached(executor, tree, 4000);
  const auto again = dendrogram::pandora_dendrogram_cached(executor, tree, 4000);
  EXPECT_EQ(multilevel.get(), again.get()) << "identical queries replay";
  EXPECT_EQ(multilevel->parent, dendrogram::pandora_dendrogram(executor, tree, 4000).parent);

  dendrogram::PandoraOptions single;
  single.expansion = dendrogram::ExpansionPolicy::single_level;
  const auto single_level = dendrogram::pandora_dendrogram_cached(executor, tree, 4000, single);
  EXPECT_NE(multilevel.get(), single_level.get()) << "expansion policy is part of the key";
  EXPECT_EQ(single_level->parent, multilevel->parent)
      << "both policies build the same dendrogram (different keys, same result)";

  graph::EdgeList mutated = tree;
  mutated[2000].weight *= 1.5;
  const auto rebuilt = dendrogram::pandora_dendrogram_cached(executor, mutated, 4000);
  EXPECT_NE(multilevel.get(), rebuilt.get()) << "mutated MSTs must miss";
}

TEST(Sweeps, MinClusterSizeSweepMatchesIndependentRuns) {
  const spatial::PointSet points = data::gaussian_blobs(700, 2, 4, 0.04, 0.25, 33);
  const exec::Executor executor(exec::default_backend(), 4);
  const std::array<index_t, 3> sizes = {3, 10, 40};

  const hdbscan::MinClusterSizeSweep sweep =
      Pipeline::on(executor).with_min_pts(4).sweep_min_cluster_size(points, sizes);
  ASSERT_EQ(sweep.entries.size(), sizes.size());

  // Ground truth from an executor with caching disabled: nothing can alias.
  const exec::Executor reference(exec::default_backend(), 4);
  reference.set_artifact_caching(false);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    hdbscan::HdbscanOptions options;
    options.min_pts = 4;
    options.min_cluster_size = sizes[i];
    const hdbscan::HdbscanResult expected = hdbscan::hdbscan(reference, points, options);
    EXPECT_EQ(sweep.entries[i].min_cluster_size, sizes[i]);
    EXPECT_EQ(sweep.entries[i].labels, expected.labels) << "mcs=" << sizes[i];
    EXPECT_EQ(sweep.entries[i].num_clusters, expected.num_clusters) << "mcs=" << sizes[i];
    EXPECT_EQ(sweep.entries[i].condensed_tree.num_clusters(),
              expected.condensed_tree.num_clusters())
        << "mcs=" << sizes[i];
  }
  // Different min_cluster_size values must genuinely differ somewhere for
  // this dataset, or the aliasing test above would be vacuous.
  EXPECT_NE(sweep.entries.front().condensed_tree.num_clusters(),
            sweep.entries.back().condensed_tree.num_clusters());
}

TEST(Sweeps, MinPtsSweepMatchesIndependentRuns) {
  const spatial::PointSet points = data::gaussian_blobs(600, 3, 3, 0.05, 0.3, 44);
  const exec::Executor executor(exec::default_backend(), 4);
  const std::array<int, 3> mpts = {2, 4, 8};

  const std::vector<hdbscan::HdbscanResult> sweep =
      Pipeline::on(executor).with_min_cluster_size(10).sweep_min_pts(points, mpts);
  ASSERT_EQ(sweep.size(), mpts.size());

  const exec::Executor reference(exec::default_backend(), 4);
  reference.set_artifact_caching(false);
  for (std::size_t i = 0; i < mpts.size(); ++i) {
    hdbscan::HdbscanOptions options;
    options.min_pts = mpts[i];
    options.min_cluster_size = 10;
    const hdbscan::HdbscanResult expected = hdbscan::hdbscan(reference, points, options);
    EXPECT_EQ(sweep[i].labels, expected.labels) << "mpts=" << mpts[i];
    EXPECT_EQ(sweep[i].core_distances, expected.core_distances) << "mpts=" << mpts[i];
    EXPECT_EQ(sweep[i].mst, expected.mst) << "mpts=" << mpts[i];
  }
  // The sweep's own core distances must differ across mpts (no aliasing).
  EXPECT_NE(sweep[0].core_distances, sweep[2].core_distances);
}

}  // namespace
