#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pandora/common/rng.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/graph/union_find.hpp"

namespace {

using namespace pandora;
using graph::ConcurrentUnionFind;
using graph::UnionFind;

TEST(UnionFind, SingletonsAreTheirOwnRepresentatives) {
  UnionFind uf(10);
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(uf.find(i), i);
  EXPECT_EQ(uf.num_components(), 10);
}

TEST(UnionFind, UniteReturnsWhetherComponentsWereDistinct) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_FALSE(uf.unite(2, 1));
  EXPECT_EQ(uf.num_components(), 1);
}

TEST(UnionFind, RepresentativeIsComponentMinimum) {
  UnionFind uf(100);
  Rng rng(1);
  for (int i = 0; i < 300; ++i)
    uf.unite(static_cast<index_t>(rng.next_below(100)), static_cast<index_t>(rng.next_below(100)));
  // Recompute components by brute force over the find() closure and check
  // every representative is its component's minimum element.
  std::map<index_t, index_t> min_of_rep;
  for (index_t v = 0; v < 100; ++v) {
    const index_t r = uf.find(v);
    auto [it, inserted] = min_of_rep.try_emplace(r, v);
    if (!inserted) it->second = std::min(it->second, v);
  }
  for (const auto& [rep, minimum] : min_of_rep) EXPECT_EQ(rep, minimum);
}

TEST(ConcurrentUnionFindTest, MatchesSequentialOnRandomOperations) {
  const index_t n = 2000;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    std::vector<std::pair<index_t, index_t>> ops;
    for (int i = 0; i < 4000; ++i)
      ops.emplace_back(static_cast<index_t>(rng.next_below(n)),
                       static_cast<index_t>(rng.next_below(n)));

    UnionFind sequential(n);
    for (auto [a, b] : ops) sequential.unite(a, b);

    ConcurrentUnionFind concurrent(n);
    exec::parallel_for(exec::default_executor(), static_cast<size_type>(ops.size()),
                       [&](size_type i) {
                         concurrent.unite(ops[static_cast<std::size_t>(i)].first,
                                          ops[static_cast<std::size_t>(i)].second);
                       });
    for (index_t v = 0; v < n; ++v)
      ASSERT_EQ(concurrent.find(v), sequential.find(v)) << "vertex " << v << " seed " << seed;
  }
}

TEST(ConcurrentUnionFindTest, ParallelChainAndStarUnions) {
  const index_t n = 100000;
  ConcurrentUnionFind uf(n);
  exec::parallel_for(exec::default_executor(), n - 1,
                     [&](size_type i) { uf.unite(static_cast<index_t>(i), static_cast<index_t>(i + 1)); });
  for (index_t v : {index_t{0}, index_t{1}, n / 2, n - 1}) EXPECT_EQ(uf.find(v), 0);

  ConcurrentUnionFind star(n);
  exec::parallel_for(exec::default_executor(), n - 1,
                     [&](size_type i) { star.unite(n - 1, static_cast<index_t>(i)); });
  for (index_t v : {index_t{0}, n / 3, n - 1}) EXPECT_EQ(star.find(v), 0);
}

TEST(ConcurrentUnionFindTest, ResetRestoresSingletons) {
  ConcurrentUnionFind uf(10);
  uf.unite(1, 2);
  uf.unite(3, 4);
  uf.reset(6);
  EXPECT_EQ(uf.size(), 6);
  for (index_t v = 0; v < 6; ++v) EXPECT_EQ(uf.find(v), v);
}

}  // namespace
