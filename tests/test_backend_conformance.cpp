// Backend conformance: every registered execution backend — and a pinned
// pool forced to multiple workers, which a 1-core CI host would otherwise
// degrade to inline execution — must produce BIT-IDENTICAL results for the
// primitive set the subsystems consume (radix sort, scan, deterministic
// left-to-right reduce, parallel_for) and for the full dendrogram / HDBSCAN*
// pipelines, and must uphold the warm-executor zero-steady-state-allocation
// guarantee.  This is the contract that makes "add a device backend" an
// implementation of one interface instead of a rewrite.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

#include "alloc_counter.hpp"
#include "pandora/common/rng.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/pinned_pool.hpp"
#include "pandora/exec/scan.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/pipeline.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::AllocationCounterScope;
using pandora::testing::Topology;
using pandora::testing::make_tree;

/// Every backend under conformance test: the registered singletons plus a
/// dedicated 4-worker pinned pool (so the pool's cross-thread machinery is
/// exercised even on a 1-core host, where the shared singleton owns no
/// workers) — pinned to cores, so the affinity path runs too.
std::vector<std::shared_ptr<const exec::Backend>> conformance_backends() {
  auto backends = exec::registered_backends();
  backends.push_back(exec::make_pinned_pool_backend(
      {.num_threads = 4, .pin_threads = true, .spin_iterations = 1024}));
  return backends;
}

/// A 4-thread executor on `backend`: all parallel backends chunk identically
/// (the serial backend grants 1 and runs the sequential reference).
exec::Executor executor_on(const std::shared_ptr<const exec::Backend>& backend) {
  return exec::Executor(backend, 4);
}

TEST(BackendConformance, RegisteredBackendsAreDistinctAndNamed) {
  const auto backends = exec::registered_backends();
  ASSERT_EQ(backends.size(), 3u);
  EXPECT_STREQ(backends[0]->name(), "serial");
  EXPECT_STREQ(backends[1]->name(), "openmp");
  EXPECT_STREQ(backends[2]->name(), "pinned");
  EXPECT_EQ(backends[0]->concurrency(), 1);
  for (const auto& backend : backends) EXPECT_GE(backend->concurrency(), 1);
}

TEST(BackendConformance, ParallelForCoversEveryIndexExactlyOnce) {
  const size_type n = 100000;
  for (const auto& backend : conformance_backends()) {
    const exec::Executor executor = executor_on(backend);
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    exec::parallel_for(executor, n,
                       [&](size_type i) { hits[static_cast<std::size_t>(i)]++; });
    EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), n) << backend->name();
  }
}

TEST(BackendConformance, RadixSortBitIdentityIncludingByteRanges) {
  Rng rng(7);
  std::vector<std::uint64_t> input(100000);
  for (auto& k : input) k = rng.next_u64();
  // Some equal keys so stability matters.
  for (std::size_t i = 0; i < input.size(); i += 37) input[i] = input[0];

  for (const auto [first_byte, last_byte] :
       {std::array<int, 2>{0, 8}, std::array<int, 2>{4, 8}, std::array<int, 2>{2, 5}}) {
    const std::uint64_t hi = last_byte >= 8 ? ~std::uint64_t{0}
                                            : (std::uint64_t{1} << (8 * last_byte)) - 1;
    const std::uint64_t mask = hi & (~std::uint64_t{0} << (8 * first_byte));
    std::vector<std::uint64_t> reference = input;
    std::stable_sort(reference.begin(), reference.end(),
                     [mask](std::uint64_t a, std::uint64_t b) { return (a & mask) < (b & mask); });

    for (const auto& backend : conformance_backends()) {
      const exec::Executor executor = executor_on(backend);
      std::vector<std::uint64_t> keys = input;
      exec::radix_sort_u64(executor, keys, first_byte, last_byte);
      EXPECT_EQ(keys, reference)
          << backend->name() << " bytes [" << first_byte << ", " << last_byte << ")";
    }
  }
}

TEST(BackendConformance, ExclusiveAndInclusiveScanMatchSerialReference) {
  const size_type n = 50000;
  Rng rng(11);
  std::vector<index_t> in(static_cast<std::size_t>(n));
  for (auto& v : in) v = static_cast<index_t>(rng.next_u64() % 5);

  std::vector<index_t> reference(in.size());
  index_t running = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    reference[i] = running;
    running += in[i];
  }

  for (const auto& backend : conformance_backends()) {
    const exec::Executor executor = executor_on(backend);
    std::vector<index_t> out(in.size());
    const index_t total = exec::exclusive_scan<index_t>(executor, in, out);
    EXPECT_EQ(total, running) << backend->name();
    EXPECT_EQ(out, reference) << backend->name();

    std::vector<index_t> inc(in.size());
    exec::inclusive_scan<index_t>(executor, in, inc);
    for (std::size_t i = 0; i < in.size(); ++i)
      ASSERT_EQ(inc[i], reference[i] + in[i]) << backend->name() << " @" << i;
  }
}

/// 2x2 integer matrices under multiplication: associative, NOT commutative.
/// The left-to-right combine contract means every backend must reproduce the
/// serial fold exactly, and repeated runs must agree bit-for-bit no matter
/// which pool worker ran which chunk.
struct Mat2 {
  std::int64_t a, b, c, d;
  friend bool operator==(const Mat2&, const Mat2&) = default;
};

Mat2 mat_mul(const Mat2& x, const Mat2& y) {
  // Entries stay bounded: inputs are small rotations/shears mod a prime.
  constexpr std::int64_t kMod = 1000003;
  return {(x.a * y.a + x.b * y.c) % kMod, (x.a * y.b + x.b * y.d) % kMod,
          (x.c * y.a + x.d * y.c) % kMod, (x.c * y.b + x.d * y.d) % kMod};
}

Mat2 element(size_type i) {
  const auto v = static_cast<std::int64_t>(i);
  return {1 + v % 3, v % 5, v % 7, 1 + v % 2};
}

TEST(BackendConformance, NonCommutativeReduceIsLeftToRightOnEveryBackend) {
  const size_type n = 200000;
  Mat2 reference{1, 0, 0, 1};
  for (size_type i = 0; i < n; ++i) reference = mat_mul(reference, element(i));

  for (const auto& backend : conformance_backends()) {
    const exec::Executor executor = executor_on(backend);
    const Mat2 identity{1, 0, 0, 1};
    const Mat2 result = exec::parallel_reduce(executor, n, identity, element, mat_mul);
    EXPECT_EQ(result, reference) << backend->name();

    // Determinism under scheduling jitter: the pinned pool hands chunks to
    // whichever worker claims them first, which must never show in the
    // result.
    for (int repeat = 0; repeat < 10; ++repeat) {
      ASSERT_EQ(exec::parallel_reduce(executor, n, identity, element, mat_mul), reference)
          << backend->name() << " repeat " << repeat;
    }
  }
}

TEST(BackendConformance, NestedLaunchesRunInlineOnEveryBackend) {
  // A chunk body that launches again on the same backend must complete (the
  // nested launch runs inline on whichever worker executes the chunk — pool
  // worker or caller — never deadlocking on the in-flight outer launch).
  for (const auto& backend : conformance_backends()) {
    std::array<std::atomic<int>, 4 * 8> hits{};
    auto outer = [&](int c) {
      auto inner = [&](int i) { hits[static_cast<std::size_t>(c * 8 + i)]++; };
      backend->run_chunks(8, 4, inner);
    };
    backend->run_chunks(4, 4, outer);
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1) << backend->name();
  }
}

TEST(BackendConformance, FullDendrogramBitIdenticalAcrossBackends) {
  for (const auto topology : {Topology::caterpillar, Topology::preferential}) {
    const index_t nv = 20000;
    const graph::EdgeList tree = make_tree(topology, nv, 13, 4);
    const exec::Executor serial(exec::serial_backend());
    const dendrogram::Dendrogram reference = dendrogram::pandora_dendrogram(serial, tree, nv);

    for (const auto& backend : conformance_backends()) {
      const exec::Executor executor = executor_on(backend);
      const dendrogram::Dendrogram d = dendrogram::pandora_dendrogram(executor, tree, nv);
      EXPECT_EQ(d.parent, reference.parent) << backend->name();
      EXPECT_EQ(d.weight, reference.weight) << backend->name();
      EXPECT_EQ(d.edge_order, reference.edge_order) << backend->name();
    }
  }
}

TEST(BackendConformance, HdbscanBitIdenticalAcrossBackends) {
  const spatial::PointSet points = data::gaussian_blobs(3000, 2, 4, 0.04, 0.06, 5);
  hdbscan::HdbscanOptions options;
  options.min_pts = 4;
  options.min_cluster_size = 20;

  const exec::Executor serial(exec::serial_backend());
  const auto reference = hdbscan::hdbscan(serial, points, options);

  for (const auto& backend : conformance_backends()) {
    const exec::Executor executor = executor_on(backend);
    const auto result = hdbscan::hdbscan(executor, points, options);
    EXPECT_EQ(result.labels, reference.labels) << backend->name();
    EXPECT_EQ(result.num_clusters, reference.num_clusters) << backend->name();
    EXPECT_EQ(result.dendrogram.parent, reference.dendrogram.parent) << backend->name();
    EXPECT_EQ(result.core_distances, reference.core_distances) << backend->name();
    ASSERT_EQ(result.mst.size(), reference.mst.size()) << backend->name();
    for (std::size_t i = 0; i < result.mst.size(); ++i)
      ASSERT_EQ(result.mst[i], reference.mst[i]) << backend->name() << " edge " << i;
  }
}

TEST(BackendConformance, WarmExecutorSteadyStateAllocatesNothingOnEveryBackend) {
  const index_t nv = 30000;
  const graph::EdgeList tree = make_tree(Topology::preferential, nv, 3, 0);
  for (const auto& backend : conformance_backends()) {
    const exec::Executor executor = executor_on(backend);
    const auto pipeline = Pipeline::on(executor);
    dendrogram::Dendrogram out;
    pipeline.build_dendrogram_into(tree, nv, out);  // warm-up: sizes the arena
    pipeline.build_dendrogram_into(tree, nv, out);  // settles runtime/pool state
    const dendrogram::Dendrogram reference = out;

    executor.workspace().reset_stats();
    const AllocationCounterScope scope;
    pipeline.build_dendrogram_into(tree, nv, out);
    EXPECT_EQ(scope.count(), 0u)
        << backend->name() << ": the steady-state pipeline must not touch the heap";
    EXPECT_EQ(executor.workspace().stats().misses, 0u) << backend->name();
    EXPECT_EQ(out.parent, reference.parent) << backend->name();
  }
}

/// The Workspace arena allocates through the backend's MemoryResource hook —
/// the seam a device backend substitutes device buffers through.  A counting
/// resource must observe every arena miss and every arena release.
class CountingResource final : public exec::MemoryResource {
 public:
  void* allocate(std::size_t bytes, std::size_t alignment) override {
    ++allocations;
    return exec::host_memory_resource().allocate(bytes, alignment);
  }
  void deallocate(void* block, std::size_t bytes, std::size_t alignment) noexcept override {
    ++deallocations;
    exec::host_memory_resource().deallocate(block, bytes, alignment);
  }
  int allocations = 0;
  int deallocations = 0;
};

TEST(BackendConformance, WorkspaceAllocatesThroughTheMemoryResourceHook) {
  CountingResource resource;
  {
    exec::Workspace workspace(&resource);
    {
      auto lease = workspace.take_uninit<std::uint64_t>(1000);
      EXPECT_EQ(resource.allocations, 1);
      lease[0] = 42;  // the block is writable host memory
    }
    {
      // Recycled: same size class, no new allocation through the resource.
      auto lease = workspace.take_uninit<std::uint64_t>(900);
      EXPECT_EQ(resource.allocations, 1);
      (void)lease;
    }
  }
  EXPECT_EQ(resource.deallocations, resource.allocations);
}

}  // namespace
