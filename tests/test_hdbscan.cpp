#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/analysis.hpp"
#include "pandora/hdbscan/hdbscan.hpp"

namespace {

using namespace pandora;
using hdbscan::CondensedTree;
using hdbscan::DendrogramAlgorithm;
using hdbscan::HdbscanOptions;
using hdbscan::HdbscanResult;
using spatial::PointSet;

/// Three well-separated 2-D blobs with known membership.
PointSet three_blobs(index_t per_cluster, std::vector<index_t>& truth) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  PointSet points(2, per_cluster * 3);
  Rng rng(123);
  truth.resize(static_cast<std::size_t>(per_cluster) * 3);
  for (index_t c = 0; c < 3; ++c)
    for (index_t i = 0; i < per_cluster; ++i) {
      const index_t id = c * per_cluster + i;
      points.at(id, 0) = centers[c][0] + 0.1 * rng.normal();
      points.at(id, 1) = centers[c][1] + 0.1 * rng.normal();
      truth[static_cast<std::size_t>(id)] = c;
    }
  return points;
}

bool labels_refine_truth(const std::vector<index_t>& labels, const std::vector<index_t>& truth) {
  // Every non-noise label must map to exactly one ground-truth cluster.
  std::map<index_t, index_t> label_to_truth;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == kNone) continue;
    auto [it, fresh] = label_to_truth.try_emplace(labels[i], truth[i]);
    if (it->second != truth[i]) return false;
  }
  return true;
}

TEST(Hdbscan, RecoversThreeWellSeparatedBlobs) {
  std::vector<index_t> truth;
  const PointSet points = three_blobs(120, truth);
  HdbscanOptions options;
  options.min_pts = 4;
  options.min_cluster_size = 10;
  const HdbscanResult result = hdbscan::hdbscan(exec::default_executor(), points, options);
  EXPECT_EQ(result.num_clusters, 3);
  EXPECT_TRUE(labels_refine_truth(result.labels, truth));
  // Blobs are tight: the vast majority of points must be clustered.
  const auto noise = static_cast<index_t>(
      std::count(result.labels.begin(), result.labels.end(), kNone));
  EXPECT_LT(noise, 36);  // < 10%
}

TEST(Hdbscan, PandoraAndUnionFindPipelinesAgreeExactly) {
  const PointSet points = data::gaussian_blobs(1500, 3, 8, 0.03, 0.05, 31);
  for (const int min_pts : {2, 4, 8}) {
    HdbscanOptions a;
    a.min_pts = min_pts;
    a.dendrogram_algorithm = DendrogramAlgorithm::pandora;
    HdbscanOptions b = a;
    b.dendrogram_algorithm = DendrogramAlgorithm::union_find;
    const HdbscanResult ra = hdbscan::hdbscan(exec::default_executor(), points, a);
    const HdbscanResult rb = hdbscan::hdbscan(exec::default_executor(), points, b);
    ASSERT_EQ(ra.dendrogram.parent, rb.dendrogram.parent) << "min_pts=" << min_pts;
    ASSERT_EQ(ra.labels, rb.labels) << "min_pts=" << min_pts;
    ASSERT_EQ(ra.num_clusters, rb.num_clusters);
  }
}

TEST(Hdbscan, SerialAndParallelSpacesAgreeExactly) {
  const PointSet points = data::power_law_blobs(1200, 2, 15, 1.3, 77);
  HdbscanOptions serial_options;

  HdbscanOptions parallel_options;

  const HdbscanResult a =
      hdbscan::hdbscan(exec::default_executor(exec::serial_backend()), points, serial_options);
  const HdbscanResult b =
      hdbscan::hdbscan(exec::default_executor(), points, parallel_options);
  EXPECT_EQ(a.dendrogram.parent, b.dendrogram.parent);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Hdbscan, NoiseGetsRejectedOnUniformBackground) {
  // Two dense blobs plus 30% uniform background: background points should be
  // mostly noise.
  PointSet points(2, 1000);
  Rng rng(5);
  for (index_t i = 0; i < 1000; ++i) {
    if (i < 350) {
      points.at(i, 0) = 0.2 + 0.005 * rng.normal();
      points.at(i, 1) = 0.2 + 0.005 * rng.normal();
    } else if (i < 700) {
      points.at(i, 0) = 0.8 + 0.005 * rng.normal();
      points.at(i, 1) = 0.8 + 0.005 * rng.normal();
    } else {
      points.at(i, 0) = rng.next_double();
      points.at(i, 1) = rng.next_double();
    }
  }
  HdbscanOptions options;
  options.min_pts = 8;
  options.min_cluster_size = 25;
  const HdbscanResult result = hdbscan::hdbscan(exec::default_executor(), points, options);
  EXPECT_GE(result.num_clusters, 2);
  index_t background_noise = 0;
  for (index_t i = 700; i < 1000; ++i)
    if (result.labels[static_cast<std::size_t>(i)] == kNone) ++background_noise;
  EXPECT_GT(background_noise, 100) << "most of the uniform background should be noise";
  // And the dense blobs themselves must be almost fully clustered.
  index_t blob_noise = 0;
  for (index_t i = 0; i < 700; ++i)
    if (result.labels[static_cast<std::size_t>(i)] == kNone) ++blob_noise;
  EXPECT_LT(blob_noise, 70);
}

TEST(CondensedTreeTest, SizesAndStabilitiesAreConsistent) {
  const PointSet points = data::gaussian_blobs(600, 2, 5, 0.04, 0.1, 13);
  const HdbscanResult result = hdbscan::hdbscan(exec::default_executor(), points, {});
  const CondensedTree& tree = result.condensed_tree;
  ASSERT_GE(tree.num_clusters(), 1);
  EXPECT_EQ(tree.clusters[0].size, points.size());
  for (index_t c = 0; c < tree.num_clusters(); ++c) {
    const auto& cluster = tree.clusters[static_cast<std::size_t>(c)];
    EXPECT_GE(cluster.stability, 0.0) << c;
    EXPECT_GE(cluster.death_lambda, cluster.birth_lambda) << c;
    if (cluster.child_a != kNone) {
      const auto& ca = tree.clusters[static_cast<std::size_t>(cluster.child_a)];
      const auto& cb = tree.clusters[static_cast<std::size_t>(cluster.child_b)];
      EXPECT_EQ(ca.parent, c);
      EXPECT_EQ(cb.parent, c);
      EXPECT_LE(ca.size + cb.size, cluster.size);
      EXPECT_GE(ca.birth_lambda, cluster.birth_lambda);
    }
  }
  // Every point belongs to a valid cluster and has a sane exit density.
  for (index_t p = 0; p < points.size(); ++p) {
    const index_t c = tree.point_cluster[static_cast<std::size_t>(p)];
    ASSERT_GE(c, 0);
    ASSERT_LT(c, tree.num_clusters());
    EXPECT_GE(tree.point_lambda[static_cast<std::size_t>(p)],
              tree.clusters[static_cast<std::size_t>(c)].birth_lambda);
  }
}

TEST(CondensedTreeTest, MinClusterSizeOneMirrorsDendrogram) {
  const PointSet points = data::uniform_points(64, 2, 2);
  HdbscanOptions options;
  options.min_cluster_size = 1;
  const HdbscanResult result = hdbscan::hdbscan(exec::default_executor(), points, options);
  // With mcs = 1 every dendrogram split is a true split: one cluster per
  // edge node plus the root.
  EXPECT_EQ(result.condensed_tree.num_clusters(),
            2 * result.dendrogram.num_edges + 1);
}

TEST(CondensedTreeTest, LargeMinClusterSizeYieldsSingleRootNoExtraction) {
  const PointSet points = data::uniform_points(200, 2, 4);
  HdbscanOptions options;
  options.min_cluster_size = 200;  // nothing can split
  const HdbscanResult result = hdbscan::hdbscan(exec::default_executor(), points, options);
  EXPECT_EQ(result.condensed_tree.num_clusters(), 1);
  EXPECT_EQ(result.num_clusters, 0);  // root not selectable by default
  EXPECT_TRUE(std::all_of(result.labels.begin(), result.labels.end(),
                          [](index_t l) { return l == kNone; }));
}

TEST(CondensedTreeTest, AllowSingleClusterLabelsEverythingInOneBlob) {
  const PointSet points = data::gaussian_blobs(300, 2, 1, 0.02, 0.0, 6);
  HdbscanOptions options;
  options.min_cluster_size = 50;
  options.allow_single_cluster = true;
  const HdbscanResult result = hdbscan::hdbscan(exec::default_executor(), points, options);
  EXPECT_GE(result.num_clusters, 1);
  const auto clustered = static_cast<index_t>(std::count_if(
      result.labels.begin(), result.labels.end(), [](index_t l) { return l != kNone; }));
  EXPECT_GT(clustered, 250);
}

TEST(Hdbscan, MinPtsMonotonicallyLoosensDendrogram) {
  // Larger minPts -> larger mutual reachability distances -> heavier MST.
  const PointSet points = data::gaussian_blobs(400, 2, 4, 0.05, 0.1, 41);
  double previous = 0;
  for (const int min_pts : {2, 4, 8, 16}) {
    HdbscanOptions options;
    options.min_pts = min_pts;
    const HdbscanResult result = hdbscan::hdbscan(exec::default_executor(), points, options);
    const double w = graph::total_weight(result.mst);
    EXPECT_GE(w, previous - 1e-12);
    previous = w;
  }
}

TEST(Hdbscan, PhaseTimesCoverThePipeline) {
  const PointSet points = data::uniform_points(5000, 3, 15);
  const HdbscanResult result = hdbscan::hdbscan(exec::default_executor(), points, {});
  for (const char* phase : {"core_distance", "mst", "condense", "extract"})
    EXPECT_GT(result.times.get(phase), 0.0) << phase;
  // Pandora's dendrogram phases.
  EXPECT_GT(result.times.get("sort") + result.times.get("contraction") +
                result.times.get("expansion"),
            0.0);
}

}  // namespace
