#include <gtest/gtest.h>

#include <algorithm>

#include "pandora/common/rng.hpp"
#include "pandora/graph/mst.hpp"
#include "pandora/graph/tree.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using graph::EdgeList;
using graph::WeightedEdge;

/// Connected random graph: a random spanning tree plus extra random edges.
EdgeList random_connected_graph(index_t n, index_t extra_edges, Rng& rng, int distinct = 0) {
  EdgeList edges = data::random_attachment_tree(n, rng);
  for (index_t i = 0; i < extra_edges; ++i) {
    const auto u = static_cast<index_t>(rng.next_below(n));
    auto v = static_cast<index_t>(rng.next_below(n));
    if (u == v) v = (v + 1) % n;
    edges.push_back({u, v, 0.0});
  }
  data::assign_random_weights(edges, rng, distinct);
  return edges;
}

EdgeList sorted_copy(EdgeList edges) {
  for (auto& e : edges)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(edges.begin(), edges.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return std::tie(a.weight, a.u, a.v) < std::tie(b.weight, b.u, b.v);
  });
  return edges;
}

class MstRandomGraphs : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

INSTANTIATE_TEST_SUITE_P(Sweep, MstRandomGraphs,
                         ::testing::Combine(::testing::Values<index_t>(2, 10, 100, 1000),
                                            ::testing::Values<index_t>(0, 50, 500),
                                            ::testing::Values(0, 5)));

TEST_P(MstRandomGraphs, BoruvkaMatchesKruskalWeightAndSpansTree) {
  const auto& [n, extra, distinct] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed * 977 + n);
    const EdgeList graph = random_connected_graph(n, extra, rng, distinct);
    const EdgeList kruskal = graph::kruskal_mst(graph, n);
    ASSERT_TRUE(graph::is_spanning_tree(kruskal, n));
    for (const auto& space : exec::registered_backends()) {
      const EdgeList boruvka = graph::boruvka_mst(exec::default_executor(space), graph, n);
      ASSERT_TRUE(graph::is_spanning_tree(boruvka, n));
      // MST weight is unique even under ties.
      ASSERT_NEAR(graph::total_weight(boruvka), graph::total_weight(kruskal), 1e-9)
          << "n=" << n << " extra=" << extra << " seed=" << seed;
      if (distinct == 0) {
        // Distinct weights: the MST itself is unique as an edge set.
        ASSERT_EQ(sorted_copy(boruvka), sorted_copy(kruskal));
      }
    }
  }
}

TEST(Mst, KruskalRejectsDisconnectedGraphs) {
  const EdgeList two_components{{0, 1, 1.0}, {2, 3, 2.0}};
  EXPECT_THROW((void)graph::kruskal_mst(two_components, 4), std::invalid_argument);
  EXPECT_THROW((void)graph::boruvka_mst(exec::default_executor(exec::serial_backend()), two_components, 4),
               std::invalid_argument);
}

TEST(Mst, SingleVertexGraph) {
  const EdgeList empty;
  EXPECT_TRUE(graph::kruskal_mst(empty, 1).empty());
  EXPECT_TRUE(graph::boruvka_mst(exec::default_executor(), empty, 1).empty());
}

TEST(Mst, ParallelEdgesAndDuplicateWeights) {
  // Two vertices, three parallel edges: the cheapest must win.
  const EdgeList graph{{0, 1, 3.0}, {0, 1, 1.0}, {1, 0, 2.0}};
  const EdgeList mst = graph::boruvka_mst(exec::default_executor(), graph, 2);
  ASSERT_EQ(mst.size(), 1u);
  EXPECT_EQ(mst[0].weight, 1.0);
}

TEST(TreeValidation, AcceptsTreesRejectsDefects) {
  Rng rng(3);
  graph::EdgeList tree = data::random_attachment_tree(50, rng);
  data::assign_random_weights(tree, rng);
  EXPECT_NO_THROW(graph::validate_tree(tree, 50));
  EXPECT_TRUE(graph::is_spanning_tree(tree, 50));

  auto with_cycle = tree;
  with_cycle.push_back({0, 1, 1.0});
  EXPECT_FALSE(graph::is_spanning_tree(with_cycle, 50));

  auto self_loop = tree;
  self_loop[0] = {5, 5, 1.0};
  EXPECT_THROW(graph::validate_tree(self_loop, 50), std::invalid_argument);

  auto out_of_range = tree;
  out_of_range[0].v = 50;
  EXPECT_THROW(graph::validate_tree(out_of_range, 50), std::invalid_argument);
}

TEST(Adjacency, IncidenceListsAreComplete) {
  Rng rng(4);
  graph::EdgeList tree = data::caterpillar_tree(101);
  data::assign_random_weights(tree, rng);
  const graph::Adjacency adj = graph::build_adjacency(tree, 101);
  EXPECT_EQ(adj.num_vertices(), 101);
  // Every edge appears exactly twice across incidence lists.
  std::vector<int> seen(tree.size(), 0);
  for (index_t v = 0; v < 101; ++v)
    for (const auto& half : adj.incident(v)) {
      ++seen[static_cast<std::size_t>(half.edge)];
      const auto& e = tree[static_cast<std::size_t>(half.edge)];
      EXPECT_TRUE((e.u == v && e.v == half.neighbor) || (e.v == v && e.u == half.neighbor));
    }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](int c) { return c == 2; }));
}

}  // namespace
