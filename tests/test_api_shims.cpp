// The deprecated bare-`Space` API must keep compiling and produce results
// bit-identical to the Executor-based API it forwards to.  This is the one
// translation unit that intentionally exercises the old signatures, so the
// deprecation attributes are disabled here.

#define PANDORA_NO_DEPRECATION_WARNINGS

#include <gtest/gtest.h>

#include <algorithm>

#include "pandora/common/rng.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/mixed.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/scan.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/euler_tour.hpp"
#include "pandora/graph/mst.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::Topology;
using pandora::testing::make_tree;

// Note: the former bare-`Space` shims for `sort_edges`, `contract_one_level`
// (removed in PR 2) and `pandora_dendrogram` / `mixed_dendrogram` (removed
// this deprecation cycle) are gone — the Executor overloads are the only
// entry points for those now.  The `PhaseTimes*` plumbing they carried is
// covered through the scoped-profiler bridge below; this file covers the
// shims that remain (exec primitives, graph entry points, union-find
// dendrogram, hdbscan).

TEST(ApiShims, ScopedPhaseTimesBridgesTheRetiredPhaseTimesPlumbing) {
  // Old-style callers of the retired pandora_dendrogram(mst, n, options,
  // &times) shim migrate to an Executor plus ScopedPhaseTimes; the phases
  // must arrive exactly as the shim delivered them.
  const graph::EdgeList tree = make_tree(Topology::random_attach, 8000, 7, 0);
  const exec::Executor executor(exec::Space::parallel);
  PhaseTimes times;
  dendrogram::Dendrogram via_executor;
  {
    exec::ScopedPhaseTimes scope(executor, &times);
    via_executor = dendrogram::pandora_dendrogram(executor, tree, 8000);
  }
  EXPECT_GT(times.get("sort"), 0.0);
  EXPECT_GT(times.get("contraction"), 0.0);
  EXPECT_GT(times.get("expansion"), 0.0);
  EXPECT_EQ(via_executor.num_edges, 7999);
}

TEST(ApiShims, UnionFindMatchesExecutorOverload) {
  const graph::EdgeList tree = make_tree(Topology::caterpillar, 3000, 5, 3);
  const exec::Executor executor(exec::Space::parallel);
  const auto uf_shim = dendrogram::union_find_dendrogram(tree, 3000, exec::Space::parallel);
  const auto uf_executor = dendrogram::union_find_dendrogram(executor, tree, 3000);
  EXPECT_EQ(uf_shim.parent, uf_executor.parent);
}

TEST(ApiShims, ExecPrimitivesMatchExecutorOverloads) {
  const size_type n = 100000;
  const exec::Executor executor(exec::Space::parallel);

  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  exec::parallel_for(exec::Space::parallel, n,
                     [&](size_type i) { hits[static_cast<std::size_t>(i)]++; });
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), n);

  const auto shim_sum = exec::parallel_sum(exec::Space::parallel, n, std::int64_t{0},
                                           [](size_type i) { return std::int64_t{i}; });
  const auto executor_sum = exec::parallel_sum(executor, n, std::int64_t{0},
                                               [](size_type i) { return std::int64_t{i}; });
  EXPECT_EQ(shim_sum, executor_sum);

  std::vector<index_t> in(static_cast<std::size_t>(n), 2);
  std::vector<index_t> out_shim(in.size()), out_executor(in.size());
  EXPECT_EQ(exec::exclusive_scan<index_t>(exec::Space::parallel, in, out_shim),
            exec::exclusive_scan<index_t>(executor, in, out_executor));
  EXPECT_EQ(out_shim, out_executor);

  Rng rng(21);
  std::vector<std::uint64_t> keys_shim(static_cast<std::size_t>(n));
  for (auto& k : keys_shim) k = rng.next_u64();
  std::vector<std::uint64_t> keys_executor = keys_shim;
  exec::radix_sort_u64(exec::Space::parallel, keys_shim);
  exec::radix_sort_u64(executor, keys_executor);
  EXPECT_EQ(keys_shim, keys_executor);
}

TEST(ApiShims, GraphShimsMatchExecutorOverloads) {
  graph::EdgeList tree = make_tree(Topology::balanced, 2000, 9, 0);
  const exec::Executor executor(exec::Space::parallel);
  const auto tour_shim = graph::build_euler_tour(exec::Space::parallel, tree, 2000, 0);
  const auto tour_executor = graph::build_euler_tour(executor, tree, 2000, 0);
  EXPECT_EQ(tour_shim.rank, tour_executor.rank);
  EXPECT_EQ(tour_shim.parent_vertex, tour_executor.parent_vertex);

  // A small connected graph: the tree plus some extra edges.
  graph::EdgeList graph_edges = tree;
  graph_edges.push_back({0, 1999, 100.0});
  graph_edges.push_back({1, 1000, 50.0});
  const auto mst_shim = graph::boruvka_mst(exec::Space::parallel, graph_edges, 2000);
  const auto mst_executor = graph::boruvka_mst(executor, graph_edges, 2000);
  ASSERT_EQ(mst_shim.size(), mst_executor.size());
  for (std::size_t i = 0; i < mst_shim.size(); ++i) EXPECT_EQ(mst_shim[i], mst_executor[i]);
}

TEST(ApiShims, HdbscanShimMatchesExecutorOverload) {
  const spatial::PointSet points = data::gaussian_blobs(1500, 2, 5, 0.03, 0.05, 3);
  hdbscan::HdbscanOptions options;
  options.min_pts = 3;
  options.min_cluster_size = 15;
  options.space = exec::Space::parallel;
  const exec::Executor executor(exec::Space::parallel);
  const auto via_shim = hdbscan::hdbscan(points, options);
  const auto via_executor = hdbscan::hdbscan(executor, points, options);
  EXPECT_EQ(via_shim.labels, via_executor.labels);
  EXPECT_EQ(via_shim.dendrogram.parent, via_executor.dendrogram.parent);
  EXPECT_EQ(via_shim.num_clusters, via_executor.num_clusters);
}

}  // namespace
