// Migration contract for the retired bare-`Space` API.
//
// Every deprecation cycle is complete: the `Space` enum itself, the exec
// primitive shims (`parallel_for` / `parallel_reduce` / `exclusive_scan` /
// `radix_sort_u64` over a bare `Space`), the graph entry points
// (`boruvka_mst`, `build_euler_tour`, `list_rank`), the spatial/hdbscan entry
// points (`euclidean_mst`, `mutual_reachability_mst`,
// `kth_neighbor_distances`, `core_distances`, `hdbscan(points, options)`),
// the union-find dendrogram shims and the `HdbscanOptions::space` /
// `PandoraOptions::space` fields are gone.  Callers pass a
// `const exec::Executor&` (constructed on a Backend — see exec/backend.hpp)
// and, for the old `PhaseTimes*` plumbing, attach a profiler.
//
// What this file still asserts is the surviving bridge: `ScopedPhaseTimes`
// delivers the phases exactly as the retired `PhaseTimes*` out-params did.

#include <gtest/gtest.h>

#include "pandora/dendrogram/pandora.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::Topology;
using pandora::testing::make_tree;

TEST(ApiShims, ScopedPhaseTimesBridgesTheRetiredPhaseTimesPlumbing) {
  // Old-style callers of the retired pandora_dendrogram(mst, n, options,
  // &times) shim migrate to an Executor plus ScopedPhaseTimes; the phases
  // must arrive exactly as the shim delivered them.
  const graph::EdgeList tree = make_tree(Topology::random_attach, 8000, 7, 0);
  const exec::Executor executor;
  PhaseTimes times;
  dendrogram::Dendrogram via_executor;
  {
    exec::ScopedPhaseTimes scope(executor, &times);
    via_executor = dendrogram::pandora_dendrogram(executor, tree, 8000);
  }
  EXPECT_GT(times.get("sort"), 0.0);
  EXPECT_GT(times.get("contraction"), 0.0);
  EXPECT_GT(times.get("expansion"), 0.0);
  EXPECT_EQ(via_executor.num_edges, 7999);
}

}  // namespace
