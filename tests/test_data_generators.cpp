#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pandora/data/point_generators.hpp"
#include "pandora/data/tree_generators.hpp"
#include "pandora/graph/tree.hpp"

namespace {

using namespace pandora;
using spatial::PointSet;

TEST(TreeGenerators, AllTopologiesAreSpanningTrees) {
  Rng rng(1);
  for (const index_t n : {2, 3, 10, 257, 1000}) {
    EXPECT_TRUE(graph::is_spanning_tree(data::star_tree(n), n));
    EXPECT_TRUE(graph::is_spanning_tree(data::path_tree(n), n));
    EXPECT_TRUE(graph::is_spanning_tree(data::caterpillar_tree(n), n));
    EXPECT_TRUE(graph::is_spanning_tree(data::broom_tree(n), n));
    EXPECT_TRUE(graph::is_spanning_tree(data::balanced_tree(n), n));
    EXPECT_TRUE(graph::is_spanning_tree(data::random_attachment_tree(n, rng), n));
    EXPECT_TRUE(graph::is_spanning_tree(data::preferential_attachment_tree(n, rng), n));
  }
}

TEST(TreeGenerators, WeightAssignments) {
  graph::EdgeList edges = data::path_tree(100);
  Rng rng(2);
  data::assign_random_weights(edges, rng);
  for (const auto& e : edges) {
    EXPECT_GE(e.weight, 0.0);
    EXPECT_LT(e.weight, 1.0);
  }
  data::assign_random_weights(edges, rng, 3);
  for (const auto& e : edges) EXPECT_TRUE(e.weight == 0 || e.weight == 1 || e.weight == 2);
  data::assign_increasing_weights(edges);
  for (std::size_t i = 1; i < edges.size(); ++i) EXPECT_LT(edges[i - 1].weight, edges[i].weight);
}

TEST(PointGenerators, DeterministicForEqualSeeds) {
  for (const auto& spec : data::table2_datasets()) {
    const PointSet a = data::make_dataset(spec.name, 2000, 42);
    const PointSet b = data::make_dataset(spec.name, 2000, 42);
    ASSERT_EQ(a.coords(), b.coords()) << spec.name;
    const PointSet c = data::make_dataset(spec.name, 2000, 43);
    ASSERT_NE(a.coords(), c.coords()) << spec.name << " must vary with the seed";
  }
}

TEST(PointGenerators, ShapesMatchSpecs) {
  for (const auto& spec : data::table2_datasets()) {
    const PointSet points = data::make_dataset(spec.name, 500, 7);
    EXPECT_EQ(points.dim(), spec.dim) << spec.name;
    EXPECT_EQ(points.size(), 500) << spec.name;
    for (const double c : points.coords()) ASSERT_TRUE(std::isfinite(c)) << spec.name;
  }
}

TEST(PointGenerators, DefaultSizesUsedWhenZeroRequested) {
  const auto& specs = data::table2_datasets();
  const PointSet points = data::make_dataset(specs[1].name, 0, 1);
  EXPECT_EQ(points.size(), specs[1].default_n);
}

TEST(PointGenerators, UnknownNameIsRejected) {
  EXPECT_THROW((void)data::make_dataset("NoSuchDataset", 100, 1), std::invalid_argument);
}

TEST(PointGenerators, UniformStaysInUnitCube) {
  const PointSet points = data::uniform_points(5000, 4, 3);
  for (const double c : points.coords()) {
    ASSERT_GE(c, 0.0);
    ASSERT_LT(c, 1.0);
  }
}

TEST(PointGenerators, NormalHasRoughlyZeroMeanUnitVariance) {
  const PointSet points = data::normal_points(20000, 2, 11);
  double sum = 0, sum2 = 0;
  for (const double c : points.coords()) {
    sum += c;
    sum2 += c * c;
  }
  const double mean = sum / static_cast<double>(points.coords().size());
  const double var = sum2 / static_cast<double>(points.coords().size()) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(PointGenerators, SoneiraPeeblesIsHierarchicallyClustered) {
  // Fractal clustering concentrates points: the fraction of pairwise-close
  // pairs must vastly exceed a uniform cloud's.
  const index_t n = 2000;
  const PointSet clustered = data::soneira_peebles(n, 3, 4, 1.6, 12, 5);
  const PointSet uniform = data::uniform_points(n, 3, 5);
  auto close_pairs = [&](const PointSet& points, double radius) {
    index_t count = 0;
    for (index_t i = 0; i < 500; ++i)
      for (index_t j = i + 1; j < 500; ++j)
        if (points.squared_distance(i, j) < radius * radius) ++count;
    return count;
  };
  EXPECT_GT(close_pairs(clustered, 0.01), 4 * close_pairs(uniform, 0.01));
}

TEST(PointGenerators, BlobsClusterAroundTheirCenters) {
  const PointSet points = data::gaussian_blobs(3000, 2, 5, 0.01, 0.0, 9);
  // With tiny spread and no noise, the nearest-neighbour distance is tiny
  // for almost every point (tight blobs), unlike uniform data.
  index_t close = 0;
  for (index_t i = 1; i < 300; ++i)
    if (points.squared_distance(i - 1, i) < 0.3 * 0.3) ++close;  // same-blob pairs mostly
  EXPECT_GT(close, 50);
}

}  // namespace
