#include <gtest/gtest.h>

#include <algorithm>

#include "pandora/common/rng.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/graph/tree.hpp"
#include "pandora/graph/union_find.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/spatial/brute_force.hpp"
#include "pandora/spatial/emst.hpp"

namespace {

using namespace pandora;
using graph::EdgeList;
using spatial::KdTree;
using spatial::PointSet;

double weight_of(const EdgeList& edges) { return graph::total_weight(edges); }

class EmstSweep : public ::testing::TestWithParam<std::tuple<int, index_t>> {};  // (dim, n)

INSTANTIATE_TEST_SUITE_P(Sweep, EmstSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values<index_t>(2, 10, 100, 400)));

TEST_P(EmstSweep, EuclideanMstMatchesBruteForceWeight) {
  const auto& [dim, n] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const PointSet points = data::uniform_points(n, dim, seed * 31 + 5);
    const EdgeList expected = spatial::brute_force_emst(points);
    for (const auto& space : exec::registered_backends()) {
      KdTree tree(points);
      const EdgeList got = spatial::euclidean_mst(exec::default_executor(space), points, tree);
      ASSERT_TRUE(graph::is_spanning_tree(got, n));
      ASSERT_NEAR(weight_of(got), weight_of(expected), 1e-9 * std::max(1.0, weight_of(expected)))
          << "dim=" << dim << " n=" << n << " seed=" << seed;
    }
  }
}

TEST_P(EmstSweep, MutualReachabilityMstMatchesBruteForce) {
  const auto& [dim, n] = GetParam();
  if (n < 10) GTEST_SKIP() << "core distances need a few points";
  const PointSet points = data::gaussian_blobs(n, dim, 4, 0.08, 0.1, 77);
  KdTree tree(points);
  const auto core = hdbscan::core_distances(exec::default_executor(), points, tree, 4);
  const EdgeList expected = spatial::brute_force_mreach_mst(points, core);
  const EdgeList got = spatial::mutual_reachability_mst(exec::default_executor(), points, tree, core);
  ASSERT_TRUE(graph::is_spanning_tree(got, n));
  EXPECT_NEAR(weight_of(got), weight_of(expected), 1e-9 * std::max(1.0, weight_of(expected)));
}

TEST(Emst, DeterministicAcrossSpacesAndRepeats) {
  const PointSet points = data::power_law_blobs(3000, 2, 20, 1.2, 3);
  KdTree tree_a(points);
  const EdgeList first = spatial::euclidean_mst(exec::default_executor(), points, tree_a);
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (const auto& space : exec::registered_backends()) {
      KdTree tree(points);
      const EdgeList again = spatial::euclidean_mst(exec::default_executor(space), points, tree);
      ASSERT_EQ(again.size(), first.size());
      for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(again[i].u, first[i].u) << i;
        ASSERT_EQ(again[i].v, first[i].v) << i;
        ASSERT_DOUBLE_EQ(again[i].weight, first[i].weight) << i;
      }
    }
  }
}

TEST(Emst, ClusteredDataWithTiedDistances) {
  // A perfect grid has massive distance ties; the MST must still be a
  // spanning tree of exactly the right weight (n-1 unit edges).
  const int side = 20;
  PointSet points(2, side * side);
  for (int x = 0; x < side; ++x)
    for (int y = 0; y < side; ++y) {
      points.at(x * side + y, 0) = x;
      points.at(x * side + y, 1) = y;
    }
  KdTree tree(points);
  const EdgeList mst = spatial::euclidean_mst(exec::default_executor(), points, tree);
  ASSERT_TRUE(graph::is_spanning_tree(mst, side * side));
  EXPECT_NEAR(weight_of(mst), side * side - 1, 1e-9);
}

TEST(Emst, JoinComponentsRestoresTheFullEmst) {
  // Split the true EMST into components by dropping random edges; the
  // component-restricted Borůvka entry must re-join them with exactly the
  // dropped weight (the survivors are a sub-forest of the EMST, so survivors
  // plus the joining edges must BE an EMST).
  const PointSet points = data::power_law_blobs(800, 2, 8, 1.3, 9);
  KdTree tree(points);
  const exec::Executor executor(exec::default_backend());
  const EdgeList full = spatial::euclidean_mst(executor, points, tree);

  Rng rng(5);
  for (const std::size_t drops : {std::size_t{1}, std::size_t{25}, full.size()}) {
    std::vector<char> dropped(full.size(), 0);
    for (std::size_t k = 0; k < drops; ++k) dropped[rng.next_below(full.size())] = 1;

    graph::ConcurrentUnionFind uf(points.size());
    EdgeList survivors;
    for (std::size_t i = 0; i < full.size(); ++i) {
      if (dropped[i]) continue;
      survivors.push_back(full[i]);
      uf.unite(full[i].u, full[i].v);
    }
    const EdgeList joined = spatial::join_components_emst(executor, points, tree, uf);
    EdgeList rejoined = survivors;
    rejoined.insert(rejoined.end(), joined.begin(), joined.end());
    ASSERT_TRUE(graph::is_spanning_tree(rejoined, points.size()));
    EXPECT_NEAR(weight_of(rejoined), weight_of(full), 1e-9 * std::max(1.0, weight_of(full)))
        << drops << " dropped edges";
  }

  // Degenerate seed: already one component — nothing to join.
  graph::ConcurrentUnionFind united(points.size());
  for (const auto& e : full) united.unite(e.u, e.v);
  EXPECT_TRUE(spatial::join_components_emst(executor, points, tree, united).empty());
}

TEST(Emst, MinPtsOneReducesMreachToEuclidean) {
  const PointSet points = data::uniform_points(300, 3, 8);
  KdTree tree(points);
  const auto core = hdbscan::core_distances(exec::default_executor(exec::serial_backend()), points, tree, 1);
  EXPECT_TRUE(std::all_of(core.begin(), core.end(), [](double c) { return c == 0.0; }));
  KdTree tree2(points);
  const EdgeList euclid = spatial::euclidean_mst(exec::default_executor(exec::serial_backend()), points, tree2);
  KdTree tree3(points);
  const EdgeList mreach = spatial::mutual_reachability_mst(exec::default_executor(exec::serial_backend()), points, tree3, core);
  EXPECT_NEAR(weight_of(euclid), weight_of(mreach), 1e-9);
}

TEST(Emst, LargerMinPtsGivesHeavierMst) {
  // Mutual reachability distances dominate Euclidean ones and grow with
  // minPts, so the MST weight must be monotone in minPts.
  const PointSet points = data::gaussian_blobs(500, 2, 6, 0.04, 0.05, 21);
  double previous = 0.0;
  for (const int min_pts : {1, 2, 4, 8, 16}) {
    KdTree tree(points);
    const auto core = hdbscan::core_distances(exec::default_executor(), points, tree, min_pts);
    const EdgeList mst = spatial::mutual_reachability_mst(exec::default_executor(), points, tree, core);
    const double w = weight_of(mst);
    EXPECT_GE(w, previous - 1e-12) << "minPts=" << min_pts;
    previous = w;
  }
}

}  // namespace
