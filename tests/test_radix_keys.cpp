// The order-preserving key transforms behind the key-packed radix edge sort
// (Section 3.1.1), and the bit-identity of the radix path against the
// comparison-based merge reference on adversarial weight patterns: negative
// weights, ±0.0, infinities, denormals, duplicates with id tie-breaks, and
// weights colliding in the packed 32-bit key prefix (the run fix-up path).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "pandora/common/rng.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/exec/sort.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::SortedEdges;
using pandora::testing::Topology;
using pandora::testing::all_topologies;
using pandora::testing::make_tree;
using pandora::testing::topology_name;

std::vector<double> adversarial_doubles() {
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double tiny = std::numeric_limits<double>::min();
  const double huge = std::numeric_limits<double>::max();
  return {-inf,   -huge,  -1.5,       -1.0,       -tiny, -denorm, -0.0, 0.0,
          denorm, 2 * denorm, tiny,   1.0,        1.0 + 1e-15, 1.5, huge, inf,
          0.1,    0.2,    0.1 + 0.2,  0.30000000000000004, 1e-300, -1e-300};
}

std::vector<float> adversarial_floats() {
  const float inf = std::numeric_limits<float>::infinity();
  const float denorm = std::numeric_limits<float>::denorm_min();
  return {-inf, -3.5f, -0.0f, 0.0f, denorm, 2 * denorm, 1.0f, 1.0000001f, 3.5f, inf};
}

TEST(OrderPreservingKeys, Key64MatchesDoubleOrderOnAdversarialValues) {
  const std::vector<double> values = adversarial_doubles();
  for (const double a : values)
    for (const double b : values) {
      EXPECT_EQ(a < b, exec::order_preserving_key64(a) < exec::order_preserving_key64(b))
          << a << " vs " << b;
      EXPECT_EQ(a == b, exec::order_preserving_key64(a) == exec::order_preserving_key64(b))
          << a << " vs " << b << " (±0.0 must map to one key)";
      // The descending key reverses the order exactly.
      EXPECT_EQ(a > b, exec::descending_weight_key(a) < exec::descending_weight_key(b));
    }
}

TEST(OrderPreservingKeys, Key32MatchesFloatOrderOnAdversarialValues) {
  const std::vector<float> values = adversarial_floats();
  for (const float a : values)
    for (const float b : values) {
      EXPECT_EQ(a < b, exec::order_preserving_key32(a) < exec::order_preserving_key32(b))
          << a << " vs " << b;
      EXPECT_EQ(a == b, exec::order_preserving_key32(a) == exec::order_preserving_key32(b));
    }
}

TEST(OrderPreservingKeys, Key64MatchesDoubleOrderOnRandomValues) {
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double a = (rng.next_double() - 0.5) *
                     std::pow(10.0, static_cast<double>(rng.next_below(600)) - 300.0);
    const double b = (rng.next_double() - 0.5) *
                     std::pow(10.0, static_cast<double>(rng.next_below(600)) - 300.0);
    ASSERT_EQ(a < b, exec::order_preserving_key64(a) < exec::order_preserving_key64(b))
        << a << " vs " << b;
  }
}

TEST(OrderPreservingKeys, PackKeepsKeyPrefixAndId) {
  const std::uint64_t key = exec::descending_weight_key(2.75);
  const std::uint64_t packed = exec::pack_key_and_id(key, 12345);
  EXPECT_EQ(packed >> 32, key >> 32);
  EXPECT_EQ(packed & 0xffffffffu, 12345u);
}

/// Reference sort: the explicit comparator the library's canonical order is
/// defined by.
std::vector<index_t> reference_order(const graph::EdgeList& edges) {
  std::vector<index_t> order(edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<index_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return edges[static_cast<std::size_t>(a)].weight > edges[static_cast<std::size_t>(b)].weight;
  });
  return order;
}

void expect_radix_matches_merge(const graph::EdgeList& tree, index_t nv, const char* what) {
  for (const auto& space : exec::registered_backends()) {
    const exec::Executor executor(space, 4);
    executor.set_artifact_caching(false);

    executor.set_edge_sort_algorithm(exec::EdgeSortAlgorithm::radix);
    const SortedEdges via_radix = dendrogram::sort_edges(executor, tree, nv);
    executor.set_edge_sort_algorithm(exec::EdgeSortAlgorithm::merge);
    const SortedEdges via_merge = dendrogram::sort_edges(executor, tree, nv);

    ASSERT_EQ(via_radix.order, via_merge.order) << what << " " << executor.name();
    ASSERT_EQ(via_radix.u, via_merge.u) << what;
    ASSERT_EQ(via_radix.v, via_merge.v) << what;
    ASSERT_EQ(via_radix.weight, via_merge.weight) << what;
    ASSERT_EQ(via_radix.order, reference_order(tree)) << what;

    // And the dendrograms built on top are bit-identical.
    executor.set_edge_sort_algorithm(exec::EdgeSortAlgorithm::radix);
    const auto d_radix = dendrogram::pandora_dendrogram(executor, via_radix);
    const auto d_merge = dendrogram::pandora_dendrogram(executor, via_merge);
    ASSERT_EQ(d_radix.parent, d_merge.parent) << what;
    ASSERT_EQ(d_radix.edge_order, d_merge.edge_order) << what;
  }
}

TEST(RadixEdgeSort, MatchesMergeOnRandomTrees) {
  for (const Topology topo : all_topologies()) {
    const graph::EdgeList tree = make_tree(topo, 4000, 23, /*distinct=*/0);
    expect_radix_matches_merge(tree, 4000, topology_name(topo));
  }
}

TEST(RadixEdgeSort, MatchesMergeOnHeavyTies) {
  for (const int distinct : {1, 2, 5}) {
    const graph::EdgeList tree = make_tree(Topology::caterpillar, 6000, 3, distinct);
    expect_radix_matches_merge(tree, 6000, "ties");
  }
}

TEST(RadixEdgeSort, MatchesMergeOnAdversarialWeights) {
  // Negative weights, ±0.0, denormals and infinities cycled over a random
  // tree.  (The library's validated inputs are finite and non-negative, but
  // the canonical sort order must hold for any NaN-free weights.)
  graph::EdgeList tree = make_tree(Topology::random_attach, 3000, 7, 0);
  const std::vector<double> specials = adversarial_doubles();
  for (std::size_t i = 0; i < tree.size(); ++i)
    tree[i].weight = specials[i % specials.size()];
  expect_radix_matches_merge(tree, 3000, "specials");
}

TEST(RadixEdgeSort, MatchesMergeWhenKeyPrefixesCollide) {
  // Weights that agree in the high 32 bits of the packed key but differ
  // below: 1.0 + k * 2^-45 all share the prefix.  With EVERY weight
  // colliding the radix path detects the degenerate repair and falls back to
  // the comparison sort — output must be identical either way.
  graph::EdgeList tree = make_tree(Topology::path, 5000, 9, 0);
  Rng rng(41);
  for (auto& e : tree) {
    const double offset =
        static_cast<double>(rng.next_below(1 << 20)) * std::pow(2.0, -45);
    e.weight = 1.0 + offset;
  }
  expect_radix_matches_merge(tree, 5000, "all prefixes collide (fallback)");

  // A few exact duplicates inside the colliding range exercise the stable
  // id tie-break too.
  for (std::size_t i = 0; i + 10 < tree.size(); i += 10) tree[i + 5].weight = tree[i].weight;
  expect_radix_matches_merge(tree, 5000, "collisions + duplicates");
}

TEST(RadixEdgeSort, MatchesMergeWithSparsePrefixCollisions) {
  // ~10% of edges form sub-prefix collision runs among otherwise well-spread
  // weights: the repair pass itself (not the fallback) fixes these runs.
  graph::EdgeList tree = make_tree(Topology::random_attach, 8000, 21, 0);
  Rng rng(43);
  for (std::size_t i = 0; i < tree.size(); i += 10) {
    // A cluster of three distinct weights sharing the 32-bit key prefix
    // (2^-30 steps: above ulp at these magnitudes, below the ~2^-20-relative
    // prefix resolution).
    const double base = 1.0 + static_cast<double>(i);
    tree[i].weight = base + 3 * std::pow(2.0, -30);
    if (i + 1 < tree.size()) tree[i + 1].weight = base + 1 * std::pow(2.0, -30);
    if (i + 2 < tree.size()) tree[i + 2].weight = base + 2 * std::pow(2.0, -30);
  }
  expect_radix_matches_merge(tree, 8000, "sparse prefix collisions");
}

TEST(RadixEdgeSort, MixedZerosKeepIdTieBreak) {
  // +0.0 and -0.0 compare equal, so every zero-weight edge belongs to one
  // tie run ordered by original id — regardless of zero sign.
  graph::EdgeList tree = make_tree(Topology::broom, 2000, 13, 0);
  for (std::size_t i = 0; i < tree.size(); ++i)
    tree[i].weight = (i % 3 == 0) ? -0.0 : 0.0;
  expect_radix_matches_merge(tree, 2000, "signed zeros");

  const exec::Executor executor(exec::serial_backend());
  const SortedEdges sorted = dendrogram::sort_edges(executor, tree, 2000);
  for (index_t i = 1; i < sorted.num_edges(); ++i)
    ASSERT_LT(sorted.order[static_cast<std::size_t>(i - 1)],
              sorted.order[static_cast<std::size_t>(i)]);
}

}  // namespace
