// The dyn:: incremental subsystem: after ANY fuzzed sequence of insert /
// erase batches the maintained EMST and the replayed dendrogram must be
// equivalent to a cold from-scratch rebuild over the same live points —
// including duplicate-distance inputs (grids, repeated points) and
// erase-to-tiny-n edge cases.  Equivalence is checked structurally: MSTs of
// a point set are unique as a *weight multiset*, and the single-linkage
// hierarchy is unique as the sequence of threshold partitions, so both are
// compared exactly even where distance ties make the edge set ambiguous.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "pandora/common/rng.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/dyn/dynamic_clustering.hpp"
#include "pandora/graph/tree.hpp"
#include "pandora/graph/union_find.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

namespace {

using namespace pandora;

/// Sorted (descending) weight array of an edge list — the unique signature
/// of every MST of a point set (all MSTs share one weight multiset, and
/// weights from both code paths come through the identical arithmetic, so
/// the comparison is exact).
std::vector<double> weight_signature(const graph::EdgeList& edges) {
  std::vector<double> weights;
  weights.reserve(edges.size());
  for (const auto& e : edges) weights.push_back(e.weight);
  std::sort(weights.begin(), weights.end(), std::greater<>());
  return weights;
}

/// Canonical labels (minimum member id per cluster) of the partition formed
/// by all edges with weight <= threshold.
std::vector<index_t> partition_at(const graph::EdgeList& edges, index_t n, double threshold) {
  graph::UnionFind uf(n);
  for (const auto& e : edges)
    if (e.weight <= threshold) uf.unite(e.u, e.v);
  std::vector<index_t> label(static_cast<std::size_t>(n));
  for (index_t x = 0; x < n; ++x) label[static_cast<std::size_t>(x)] = uf.find(x);
  return label;
}

/// Asserts the maintained state equals a from-scratch rebuild on the same
/// live points: exact weight multiset, spanning-tree validity, dendrogram
/// weight run, and identical threshold partitions at every distinct merge
/// height ("heights and merge structure" under tie-ambiguity).
void expect_equivalent_to_rebuild(const dyn::DynamicClustering& stream) {
  const index_t n = stream.size();
  const spatial::PointSet& points = stream.points();
  const exec::Executor reference(exec::default_backend());

  if (n <= 1) {
    EXPECT_TRUE(stream.emst().empty());
    EXPECT_EQ(stream.dendrogram().num_vertices, n);
    EXPECT_EQ(stream.dendrogram().num_edges, 0);
    return;
  }

  spatial::KdTree tree(points);
  const graph::EdgeList rebuilt = spatial::euclidean_mst(reference, points, tree);

  ASSERT_TRUE(graph::is_spanning_tree(stream.emst(), n));
  const std::vector<double> maintained_weights = weight_signature(stream.emst());
  const std::vector<double> rebuilt_weights = weight_signature(rebuilt);
  ASSERT_EQ(maintained_weights, rebuilt_weights)
      << "maintained EMST weight multiset diverged from the from-scratch EMST";

  // The replayed dendrogram's weights are the maintained MST's sorted run.
  const dendrogram::Dendrogram& replayed = stream.dendrogram();
  ASSERT_EQ(replayed.num_vertices, n);
  ASSERT_EQ(replayed.num_edges, n - 1);
  EXPECT_EQ(replayed.weight, maintained_weights);

  // Merge structure: the hierarchy's partition at every distinct height.
  std::vector<double> thresholds = rebuilt_weights;
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()), thresholds.end());
  for (const double t : thresholds) {
    EXPECT_EQ(partition_at(stream.emst(), n, t), partition_at(rebuilt, n, t))
        << "partitions diverge at threshold " << t;
  }

  // And the replayed dendrogram really is PANDORA over the maintained tree.
  const dendrogram::Dendrogram direct =
      dendrogram::pandora_dendrogram(reference, stream.emst(), n);
  EXPECT_EQ(replayed.parent, direct.parent);
  EXPECT_EQ(replayed.weight, direct.weight);
}

spatial::PointSet slice_points(const spatial::PointSet& source, index_t begin, index_t count) {
  spatial::PointSet out(source.dim(), count);
  for (index_t i = 0; i < count; ++i)
    for (int d = 0; d < source.dim(); ++d) out.at(i, d) = source.at(begin + i, d);
  return out;
}

TEST(DynamicClustering, SingleInsertsMatchRebuildAtEveryStep) {
  const exec::Executor executor(exec::default_backend());
  dyn::DynamicClustering stream(executor);
  const spatial::PointSet all = data::gaussian_blobs(120, 2, 3, 0.05, 0.1, 11);

  stream.insert(slice_points(all, 0, 40));
  expect_equivalent_to_rebuild(stream);
  for (index_t i = 40; i < all.size(); ++i) {
    const auto row = all.point(i);
    stream.insert(std::span<const double>(row.data(), row.size()));
    expect_equivalent_to_rebuild(stream);
  }
  EXPECT_EQ(stream.size(), all.size());
  EXPECT_EQ(stream.epoch(), 1u + (all.size() - 40));
}

TEST(DynamicClustering, ErasesMatchRebuildDownToTinyN) {
  const exec::Executor executor(exec::default_backend());
  dyn::DynamicClustering stream(executor);
  const std::vector<index_t> ids = stream.insert(data::uniform_points(60, 3, 5));
  expect_equivalent_to_rebuild(stream);

  Rng rng(99);
  std::vector<index_t> remaining = ids;
  while (remaining.size() > 1) {
    // Erase a random clump (sometimes a big one) and re-verify.
    const std::size_t count =
        std::min<std::size_t>(remaining.size() - 1, 1 + rng.next_u64() % 7);
    std::vector<index_t> victims;
    for (std::size_t c = 0; c < count; ++c) {
      const std::size_t pick = rng.next_u64() % remaining.size();
      victims.push_back(remaining[pick]);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    stream.erase(victims);
    expect_equivalent_to_rebuild(stream);
  }
  EXPECT_EQ(stream.size(), 1);
  EXPECT_EQ(stream.dendrogram().num_edges, 0);

  // ... and to zero: the stream must come back up from empty.
  stream.erase(remaining);
  EXPECT_EQ(stream.size(), 0);
  EXPECT_EQ(stream.dendrogram().num_nodes(), 0);
  stream.insert(data::uniform_points(20, 3, 6));
  expect_equivalent_to_rebuild(stream);
}

TEST(DynamicClustering, RandomizedInsertEraseFuzz) {
  // The acceptance fuzz: random mixed batches, equivalence after EVERY
  // batch.  Three seeds x ~12 batches keeps the suite fast while covering
  // batch inserts, single inserts, erases and interleavings.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const exec::Executor executor(exec::default_backend());
    dyn::DynamicClustering stream(executor);
    Rng rng(seed);
    std::vector<index_t> live;

    const spatial::PointSet pool = data::power_law_blobs(900, 2, 12, 1.2, seed);
    index_t cursor = 0;

    for (const index_t id : stream.insert(slice_points(pool, cursor, 150))) live.push_back(id);
    cursor += 150;
    expect_equivalent_to_rebuild(stream);

    for (int batch = 0; batch < 12; ++batch) {
      const bool do_erase = !live.empty() && rng.next_u64() % 3 == 0;
      if (do_erase) {
        const std::size_t count =
            std::min<std::size_t>(live.size(), 1 + rng.next_u64() % 40);
        std::vector<index_t> victims;
        for (std::size_t c = 0; c < count; ++c) {
          const std::size_t pick = rng.next_u64() % live.size();
          victims.push_back(live[pick]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        stream.erase(victims);
      } else {
        const index_t count =
            std::min<index_t>(pool.size() - cursor, 1 + static_cast<index_t>(rng.next_u64() % 60));
        if (count == 0) continue;
        for (const index_t id : stream.insert(slice_points(pool, cursor, count)))
          live.push_back(id);
        cursor += count;
      }
      expect_equivalent_to_rebuild(stream);
      ASSERT_EQ(static_cast<std::size_t>(stream.size()), live.size());
    }
  }
}

TEST(DynamicClustering, DuplicateDistancesAndDuplicatePoints) {
  // A perfect grid (massive distance ties), then duplicates of existing
  // points, then erases that leave co-located points behind.
  const exec::Executor executor(exec::default_backend());
  dyn::DynamicClustering stream(executor);

  const int side = 7;
  spatial::PointSet grid(2, side * side);
  for (int x = 0; x < side; ++x)
    for (int y = 0; y < side; ++y) {
      grid.at(x * side + y, 0) = x;
      grid.at(x * side + y, 1) = y;
    }
  const std::vector<index_t> grid_ids = stream.insert(grid);
  expect_equivalent_to_rebuild(stream);

  // Insert exact duplicates (zero-weight EMST edges must appear).
  for (const std::array<double, 2> dup : {std::array<double, 2>{3.0, 3.0},
                                          std::array<double, 2>{0.0, 0.0},
                                          std::array<double, 2>{3.0, 3.0}}) {
    stream.insert(std::span<const double>(dup.data(), dup.size()));
    expect_equivalent_to_rebuild(stream);
  }

  // Erase a stripe of the grid; survivors include the duplicates.
  std::vector<index_t> victims(grid_ids.begin(), grid_ids.begin() + side);
  stream.erase(victims);
  expect_equivalent_to_rebuild(stream);
}

TEST(DynamicClustering, DeterministicAcrossRepeats) {
  const spatial::PointSet pool = data::uniform_points(300, 2, 42);
  const auto run_once = [&] {
    const exec::Executor executor(exec::default_backend());
    dyn::DynamicClustering stream(executor);
    stream.insert(slice_points(pool, 0, 200));
    for (index_t i = 200; i < 260; ++i) {
      const auto row = pool.point(i);
      stream.insert(std::span<const double>(row.data(), row.size()));
    }
    std::vector<index_t> victims(30);
    std::iota(victims.begin(), victims.end(), index_t{50});
    stream.erase(victims);
    return std::pair{stream.emst(), stream.dendrogram().parent};
  };
  const auto [edges_a, parent_a] = run_once();
  const auto [edges_b, parent_b] = run_once();
  ASSERT_EQ(edges_a.size(), edges_b.size());
  for (std::size_t i = 0; i < edges_a.size(); ++i) EXPECT_EQ(edges_a[i], edges_b[i]) << i;
  EXPECT_EQ(parent_a, parent_b);
}

TEST(DynamicClustering, SortedRunMatchesFullSortBitForBit) {
  // The delta merge must reproduce sort_edges over the maintained edge list
  // exactly — order array included (the tie-break renumbering argument).
  const exec::Executor executor(exec::default_backend());
  dyn::DynamicClustering stream(executor);
  stream.insert(data::gaussian_blobs(400, 2, 4, 0.04, 0.1, 7));
  for (int round = 0; round < 3; ++round) {
    std::vector<index_t> victims;
    for (index_t s = 0; s < 20; ++s)
      victims.push_back(stream.id_at(static_cast<index_t>((s * 7 + round) %
                                                          stream.size())));
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    stream.erase(victims);
    stream.insert(data::uniform_points(25, 2, 1000 + round));

    const dendrogram::SortedEdges resorted =
        dendrogram::sort_edges(executor, stream.emst(), stream.size());
    EXPECT_EQ(stream.sorted_edges().u, resorted.u);
    EXPECT_EQ(stream.sorted_edges().v, resorted.v);
    EXPECT_EQ(stream.sorted_edges().weight, resorted.weight);
    EXPECT_EQ(stream.sorted_edges().order, resorted.order);
  }
}

TEST(DynamicClustering, IdsSurviveCompactionAndRejectDoubleErase) {
  const exec::Executor executor(exec::default_backend());
  dyn::DynamicClustering stream(executor);
  const std::vector<index_t> ids = stream.insert(data::uniform_points(50, 2, 3));
  const index_t victim = ids[10];
  // Record victim+1's coordinates through its id, erase victim, re-check.
  const index_t tracked = ids[11];
  const double x_before = stream.points().at(stream.slot_of(tracked), 0);
  stream.erase(std::array{victim});
  EXPECT_EQ(stream.slot_of(victim), kNone);
  EXPECT_EQ(stream.points().at(stream.slot_of(tracked), 0), x_before);
  EXPECT_EQ(stream.id_at(stream.slot_of(tracked)), tracked);
  EXPECT_THROW(stream.erase(std::array{victim}), std::invalid_argument);
  // Duplicate ids within one batch are rejected before any mutation.
  EXPECT_THROW(stream.erase(std::array{ids[12], ids[12]}), std::invalid_argument);
  EXPECT_NE(stream.slot_of(ids[12]), kNone);
}

TEST(DynamicClustering, EpochFingerprintsRekeyHdbscanArtifacts) {
  const exec::Executor executor(exec::default_backend());
  dyn::DynamicClustering stream = Pipeline::on(executor).dynamic();
  stream.insert(data::gaussian_blobs(500, 2, 4, 0.04, 0.1, 13));

  hdbscan::HdbscanOptions options;
  options.min_pts = 4;
  options.min_cluster_size = 10;

  const std::uint64_t fp_before = stream.points_fingerprint();
  const auto first = stream.hdbscan(options);
  const auto cache_after_first = executor.artifact_cache().stats();
  const auto second = stream.hdbscan(options);
  const auto cache_after_second = executor.artifact_cache().stats();
  // Within one epoch the kd-tree, core distances and EMST replay.
  EXPECT_GE(cache_after_second.hits - cache_after_first.hits, 3u);
  EXPECT_EQ(first.labels, second.labels);

  stream.insert(std::array{0.5, 0.5});
  EXPECT_NE(stream.points_fingerprint(), fp_before);
  const auto third = stream.hdbscan(options);  // new epoch: recompute, no stale artifacts
  EXPECT_EQ(third.labels.size(), static_cast<std::size_t>(stream.size()));

  // The rebuilt reference must agree with the epoch-keyed pipeline.
  const exec::Executor reference(exec::default_backend());
  const auto expected = hdbscan::hdbscan(reference, stream.points(), options);
  EXPECT_EQ(third.labels, expected.labels);
  EXPECT_EQ(third.num_clusters, expected.num_clusters);
}

TEST(DynamicClustering, ServingWavesInterleaveQueriesAndUpdates) {
  // The serve:: integration: waves of concurrent read-only queries against
  // the stream's current dendrogram, with updates applied exclusively
  // between waves (race-checked by the CI TSan entry).
  const exec::Executor parent(exec::default_backend(), 4);
  dyn::DynamicClustering stream = Pipeline::on(parent).dynamic();
  stream.insert(data::gaussian_blobs(300, 2, 3, 0.05, 0.1, 21));

  serve::BatchExecutor batch = Pipeline::on(parent).batch({.num_slots = 4});

  constexpr int kWaves = 4;
  constexpr int kQueriesPerWave = 8;
  std::vector<std::vector<double>> roots(kWaves);
  for (auto& r : roots) r.assign(kQueriesPerWave, -1.0);

  std::vector<serve::BatchExecutor::Wave> waves(kWaves);
  for (int w = 0; w < kWaves; ++w) {
    for (int q = 0; q < kQueriesPerWave; ++q) {
      waves[static_cast<std::size_t>(w)].queries.push_back(serve::BatchExecutor::Job{
          [&stream, &slot = roots[static_cast<std::size_t>(w)][static_cast<std::size_t>(q)]](
              const exec::Executor&) {
            // Read-only view of the wave's dendrogram snapshot.
            slot = stream.dendrogram().weight.empty() ? 0.0 : stream.dendrogram().weight[0];
          },
          /*size_hint=*/16});
    }
    waves[static_cast<std::size_t>(w)].update = [&stream, w](const exec::Executor&) {
      stream.insert(data::uniform_points(40, 2, 100 + static_cast<std::uint64_t>(w)));
    };
  }
  batch.run_waves(waves);

  EXPECT_EQ(stream.size(), 300 + kWaves * 40);
  for (int w = 0; w < kWaves; ++w) {
    // Every query of a wave saw the same (settled) dendrogram root weight.
    for (int q = 1; q < kQueriesPerWave; ++q)
      EXPECT_EQ(roots[static_cast<std::size_t>(w)][static_cast<std::size_t>(q)],
                roots[static_cast<std::size_t>(w)][0]);
    EXPECT_GE(roots[static_cast<std::size_t>(w)][0], 0.0);
  }
  expect_equivalent_to_rebuild(stream);
}

TEST(DynamicClustering, UpdateStatsTrackTheIncrementalPath) {
  const exec::Executor executor(exec::default_backend());
  dyn::DynamicClustering stream(executor);
  stream.insert(data::uniform_points(400, 2, 17));
  const dyn::UpdateStats& stats = stream.stats();
  EXPECT_EQ(stats.points_inserted, 400u);
  EXPECT_EQ(stats.index_rebuilds, 1u);  // bulk load builds once

  stream.insert(std::array{0.25, 0.75});
  EXPECT_EQ(stats.points_inserted, 401u);
  EXPECT_GT(stats.boruvka_rounds, 0u) << "single insert must take the repair path";
  EXPECT_GT(stats.edges_added, 0u);
  EXPECT_EQ(stats.index_rebuilds, 1u) << "a one-point tail must not rebuild the index";

  stream.erase(std::array{stream.id_at(0)});
  EXPECT_EQ(stats.points_erased, 1u);
  EXPECT_EQ(stats.index_rebuilds, 2u);  // erase compaction rebuilds
}

}  // namespace
