// Flat-cluster extraction variants: excess-of-mass vs leaf selection and the
// cluster-selection-epsilon filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pandora/data/point_generators.hpp"
#include "pandora/hdbscan/hdbscan.hpp"

namespace {

using namespace pandora;
using hdbscan::ClusterSelectionMethod;
using hdbscan::HdbscanOptions;
using spatial::PointSet;

/// Blobs-of-blobs: four coarse groups, each made of three fine subclusters —
/// a two-scale structure where leaf/EOM/epsilon genuinely differ.
PointSet two_scale_data(index_t n) {
  PointSet points(2, n);
  Rng rng(37);
  const double coarse[4][2] = {{0, 0}, {8, 0}, {0, 8}, {8, 8}};
  for (index_t i = 0; i < n; ++i) {
    const auto g = static_cast<std::size_t>(rng.next_below(4));
    const auto s = static_cast<double>(rng.next_below(3));
    points.at(i, 0) = coarse[g][0] + 0.6 * s + 0.02 * rng.normal();
    points.at(i, 1) = coarse[g][1] + 0.02 * rng.normal();
  }
  return points;
}

TEST(Extraction, LeafSelectsAtLeastAsManyClustersAsEom) {
  const PointSet points = two_scale_data(2400);
  HdbscanOptions eom;
  eom.min_pts = 4;
  eom.min_cluster_size = 30;
  HdbscanOptions leaf = eom;
  leaf.cluster_selection_method = ClusterSelectionMethod::leaf;
  const auto r_eom = hdbscan::hdbscan(exec::default_executor(), points, eom);
  const auto r_leaf = hdbscan::hdbscan(exec::default_executor(), points, leaf);
  EXPECT_GE(r_leaf.num_clusters, r_eom.num_clusters);
  // The fine scale has 12 subclusters; leaf selection should find them.
  EXPECT_GE(r_leaf.num_clusters, 10);
}

TEST(Extraction, LeafLabelsRefineEomLabels) {
  // Every leaf cluster sits below some EOM cluster, so any two points sharing
  // a leaf label must share an EOM label (when both are clustered).
  const PointSet points = two_scale_data(1800);
  HdbscanOptions eom;
  eom.min_pts = 4;
  eom.min_cluster_size = 25;
  HdbscanOptions leaf = eom;
  leaf.cluster_selection_method = ClusterSelectionMethod::leaf;
  const auto r_eom = hdbscan::hdbscan(exec::default_executor(), points, eom);
  const auto r_leaf = hdbscan::hdbscan(exec::default_executor(), points, leaf);
  std::map<index_t, index_t> leaf_to_eom;
  for (index_t p = 0; p < points.size(); ++p) {
    const index_t l = r_leaf.labels[static_cast<std::size_t>(p)];
    const index_t e = r_eom.labels[static_cast<std::size_t>(p)];
    if (l == kNone || e == kNone) continue;
    auto [it, fresh] = leaf_to_eom.try_emplace(l, e);
    EXPECT_EQ(it->second, e) << "leaf cluster " << l << " straddles EOM clusters";
  }
}

TEST(Extraction, EpsilonMergesFineClusters) {
  const PointSet points = two_scale_data(2400);
  HdbscanOptions fine;
  fine.min_pts = 4;
  fine.min_cluster_size = 30;
  fine.cluster_selection_method = ClusterSelectionMethod::leaf;
  HdbscanOptions merged = fine;
  merged.cluster_selection_epsilon = 2.0;  // above the fine gap (~0.6), below the coarse (~8)
  const auto r_fine = hdbscan::hdbscan(exec::default_executor(), points, fine);
  const auto r_merged = hdbscan::hdbscan(exec::default_executor(), points, merged);
  EXPECT_GT(r_fine.num_clusters, r_merged.num_clusters);
  EXPECT_GE(r_merged.num_clusters, 2);
  EXPECT_LE(r_merged.num_clusters, 6);  // the four coarse groups (some slack)
}

TEST(Extraction, EpsilonZeroIsIdentity) {
  const PointSet points = two_scale_data(1200);
  HdbscanOptions base;
  base.min_pts = 4;
  base.min_cluster_size = 20;
  HdbscanOptions with_zero = base;
  with_zero.cluster_selection_epsilon = 0.0;
  const auto a = hdbscan::hdbscan(exec::default_executor(), points, base);
  const auto b = hdbscan::hdbscan(exec::default_executor(), points, with_zero);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Extraction, SelectedClustersAreAnAntichain) {
  // No selected cluster may have a selected ancestor, whatever the options.
  const PointSet points = two_scale_data(1500);
  for (const auto method :
       {ClusterSelectionMethod::excess_of_mass, ClusterSelectionMethod::leaf}) {
    for (const double eps : {0.0, 1.0, 3.0}) {
      HdbscanOptions options;
      options.min_pts = 4;
      options.min_cluster_size = 20;
      options.cluster_selection_method = method;
      options.cluster_selection_epsilon = eps;
      const auto result = hdbscan::hdbscan(exec::default_executor(), points, options);
      // Recompute the selected set through the public API.
      hdbscan::ExtractOptions extract;
      extract.method = method;
      extract.selection_epsilon = eps;
      const auto flat = hdbscan::extract_clusters(result.condensed_tree, extract);
      std::set<index_t> sel(flat.selected_clusters.begin(), flat.selected_clusters.end());
      for (const index_t c : sel) {
        index_t cur = result.condensed_tree.clusters[static_cast<std::size_t>(c)].parent;
        while (cur != kNone) {
          EXPECT_FALSE(sel.contains(cur)) << "cluster " << c << " under selected " << cur;
          cur = result.condensed_tree.clusters[static_cast<std::size_t>(cur)].parent;
        }
      }
    }
  }
}

}  // namespace
