#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "pandora/dendrogram/analysis.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/graph/union_find.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::Dendrogram;
using pandora::testing::Topology;
using pandora::testing::all_topologies;
using pandora::testing::make_tree;
using pandora::testing::topology_name;

TEST(Analysis, HeightAndSkewnessOfExtremeShapes) {
  // Star with ascending weights: a single chain, height n, skewness n/log2 n.
  {
    graph::EdgeList tree = data::star_tree(257);
    data::assign_increasing_weights(tree);
    const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 257);
    EXPECT_EQ(dendrogram::height(d), 256);
    EXPECT_NEAR(dendrogram::skewness(d), 256.0 / std::log2(256.0), 1e-9);
  }
  // Balanced binary tree with depth-ordered weights (shallow edges heavier):
  // the top-down recursion halves components, so height stays O(log n).
  {
    graph::EdgeList tree = data::balanced_tree(256);
    for (std::size_t i = 0; i < tree.size(); ++i)
      tree[i].weight = static_cast<double>(tree.size() - i);
    const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 256);
    EXPECT_LE(dendrogram::height(d), 2 * 8 + 2);
    EXPECT_LE(dendrogram::skewness(d), 2.5);
  }
}

TEST(Analysis, EdgeDepthsAreParentDepthsPlusOne) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 800, 3);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 800);
  const auto depth = dendrogram::edge_depths(d);
  EXPECT_EQ(depth[0], 1);
  for (index_t e = 1; e < d.num_edges; ++e)
    EXPECT_EQ(depth[static_cast<std::size_t>(e)],
              depth[static_cast<std::size_t>(d.parent[static_cast<std::size_t>(e)])] + 1);
}

TEST(Analysis, ClassificationCountsSumToEdges) {
  for (const Topology topo : all_topologies()) {
    const graph::EdgeList tree = make_tree(topo, 1000, 4);
    const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 1000);
    const auto counts = dendrogram::classify_edges(d);
    EXPECT_EQ(counts.leaf_edges + counts.chain_edges + counts.alpha_edges, d.num_edges)
        << topology_name(topo);
    EXPECT_EQ(counts.alpha_edges, counts.leaf_edges - 1) << topology_name(topo);
    EXPECT_LE(2 * counts.alpha_edges, d.num_edges - 1) << topology_name(topo);
  }
}

TEST(Analysis, EdgeChildrenAreConsistentWithParents) {
  const graph::EdgeList tree = make_tree(Topology::random_attach, 500, 9);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 500);
  const auto children = dendrogram::edge_children(d);
  index_t total = 0;
  for (index_t e = 0; e < d.num_edges; ++e) {
    for (const index_t child : children[static_cast<std::size_t>(e)]) {
      ASSERT_NE(child, kNone) << "binary dendrogram: exactly two children";
      EXPECT_EQ(d.parent[static_cast<std::size_t>(child)], e);
      ++total;
    }
  }
  EXPECT_EQ(total, d.num_nodes() - 1);  // everything except the root has a parent
}

/// Reference flat clustering: union-find over edges with weight <= t.
std::vector<index_t> reference_cut(const graph::EdgeList& tree, index_t nv, double t) {
  graph::UnionFind uf(nv);
  for (const auto& e : tree)
    if (e.weight <= t) uf.unite(e.u, e.v);
  std::map<index_t, index_t> dense;
  std::vector<index_t> labels(static_cast<std::size_t>(nv));
  for (index_t v = 0; v < nv; ++v) {
    const index_t r = uf.find(v);
    auto [it, fresh] = dense.try_emplace(r, static_cast<index_t>(dense.size()));
    labels[static_cast<std::size_t>(v)] = it->second;
  }
  return labels;
}

/// Two labelings describe the same partition iff they induce the same
/// equivalence classes.
bool same_partition(const std::vector<index_t>& a, const std::vector<index_t>& b) {
  if (a.size() != b.size()) return false;
  std::map<index_t, index_t> fwd, bwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [it1, f1] = fwd.try_emplace(a[i], b[i]);
    if (it1->second != b[i]) return false;
    auto [it2, f2] = bwd.try_emplace(b[i], a[i]);
    if (it2->second != a[i]) return false;
  }
  return true;
}

class CutThresholds : public ::testing::TestWithParam<double> {};
INSTANTIATE_TEST_SUITE_P(Sweep, CutThresholds,
                         ::testing::Values(-1.0, 0.0, 0.1, 0.25, 0.5, 0.75, 0.99, 2.0));

TEST_P(CutThresholds, CutLabelsMatchUnionFindComponents) {
  const double t = GetParam();
  for (const Topology topo : {Topology::random_attach, Topology::star, Topology::balanced}) {
    const graph::EdgeList tree = make_tree(topo, 300, 5);
    const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 300);
    EXPECT_TRUE(same_partition(dendrogram::cut_labels(d, t), reference_cut(tree, 300, t)))
        << topology_name(topo) << " t=" << t;
  }
}

TEST(Analysis, CutAtExtremesIsAllSingletonsOrOneCluster) {
  const graph::EdgeList tree = make_tree(Topology::caterpillar, 100, 2);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 100);
  const auto singletons = dendrogram::cut_labels(d, -0.5);
  std::vector<index_t> sorted_labels = singletons;
  std::sort(sorted_labels.begin(), sorted_labels.end());
  for (index_t v = 0; v < 100; ++v) EXPECT_EQ(sorted_labels[static_cast<std::size_t>(v)], v);
  const auto one = dendrogram::cut_labels(d, 1e9);
  EXPECT_TRUE(std::all_of(one.begin(), one.end(), [](index_t l) { return l == 0; }));
}

TEST(Analysis, SubtreePointCountsSumCorrectly) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 400, 6);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 400);
  const auto counts = dendrogram::subtree_point_counts(d);
  EXPECT_EQ(counts[0], 400);  // the root holds every point
  const auto children = dendrogram::edge_children(d);
  for (index_t e = 0; e < d.num_edges; ++e) {
    index_t from_children = 0;
    for (const index_t child : children[static_cast<std::size_t>(e)])
      from_children += d.is_vertex_node(child) ? 1 : counts[static_cast<std::size_t>(child)];
    EXPECT_EQ(counts[static_cast<std::size_t>(e)], from_children) << e;
  }
}

TEST(Analysis, LinkageMatrixIsScipyShaped) {
  const graph::EdgeList tree = make_tree(Topology::random_attach, 300, 4);
  const index_t nv = 300;
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, nv);
  const auto rows = dendrogram::linkage_matrix(d);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(nv - 1));

  // Distances non-decreasing, sizes additive, ids refer only to existing
  // clusters, every cluster consumed at most once.
  std::vector<index_t> size_of(static_cast<std::size_t>(2 * nv - 1), 1);
  std::vector<bool> consumed(static_cast<std::size_t>(2 * nv - 1), false);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (r > 0) {
      ASSERT_GE(row.distance, rows[r - 1].distance);
    }
    ASSERT_LT(row.cluster_a, row.cluster_b);
    ASSERT_LT(row.cluster_b, static_cast<index_t>(nv + r));
    ASSERT_FALSE(consumed[static_cast<std::size_t>(row.cluster_a)]);
    ASSERT_FALSE(consumed[static_cast<std::size_t>(row.cluster_b)]);
    consumed[static_cast<std::size_t>(row.cluster_a)] = true;
    consumed[static_cast<std::size_t>(row.cluster_b)] = true;
    ASSERT_EQ(row.size, size_of[static_cast<std::size_t>(row.cluster_a)] +
                            size_of[static_cast<std::size_t>(row.cluster_b)]);
    size_of[static_cast<std::size_t>(nv + r)] = row.size;
  }
  EXPECT_EQ(rows.back().size, nv);  // the final merge holds everything
}

TEST(Analysis, LinkageMatrixSingleEdge) {
  const graph::EdgeList tree{{0, 1, 4.2}};
  const auto rows = dendrogram::linkage_matrix(dendrogram::pandora_dendrogram(exec::default_executor(), tree, 2));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].cluster_a, 0);
  EXPECT_EQ(rows[0].cluster_b, 1);
  EXPECT_DOUBLE_EQ(rows[0].distance, 4.2);
  EXPECT_EQ(rows[0].size, 2);
}

TEST(Analysis, ValidateRejectsCorruptedDendrograms) {
  const graph::EdgeList tree = make_tree(Topology::path, 50, 1);
  Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 50);
  EXPECT_NO_THROW(dendrogram::validate_dendrogram(d));

  auto broken = d;
  broken.parent[5] = 10;  // parent lighter than child
  EXPECT_THROW(dendrogram::validate_dendrogram(broken), std::invalid_argument);

  broken = d;
  broken.parent[3] = kNone;  // second root
  EXPECT_THROW(dendrogram::validate_dendrogram(broken), std::invalid_argument);

  broken = d;
  broken.parent[static_cast<std::size_t>(d.vertex_node(7))] = d.num_edges + 3;  // out of range
  EXPECT_THROW(dendrogram::validate_dendrogram(broken), std::invalid_argument);

  broken = d;
  std::swap(broken.weight[0], broken.weight.back());  // weights not descending
  EXPECT_THROW(dendrogram::validate_dendrogram(broken), std::invalid_argument);
}

}  // namespace
