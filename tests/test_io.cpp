#include <gtest/gtest.h>

#include <sstream>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/io/io.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::Topology;
using pandora::testing::make_tree;

TEST(Io, DendrogramBinaryRoundTrip) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 500, 3);
  const auto original = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 500);
  std::stringstream stream;
  io::save_dendrogram(stream, original);
  const auto loaded = io::load_dendrogram(stream);
  EXPECT_EQ(loaded.num_edges, original.num_edges);
  EXPECT_EQ(loaded.num_vertices, original.num_vertices);
  EXPECT_EQ(loaded.parent, original.parent);
  EXPECT_EQ(loaded.weight, original.weight);
  EXPECT_EQ(loaded.edge_order, original.edge_order);
}

TEST(Io, DendrogramRejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a dendrogram");
  EXPECT_THROW((void)io::load_dendrogram(garbage), std::invalid_argument);

  const graph::EdgeList tree = make_tree(Topology::path, 50, 1);
  const auto original = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 50);
  std::stringstream stream;
  io::save_dendrogram(stream, original);
  const std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)io::load_dendrogram(truncated), std::invalid_argument);
}

TEST(Io, EdgeListRoundTrip) {
  const graph::EdgeList tree = make_tree(Topology::caterpillar, 300, 5);
  std::stringstream stream;
  io::save_edges(stream, tree, 300);
  const auto [loaded, nv] = io::load_edges(stream);
  EXPECT_EQ(nv, 300);
  ASSERT_EQ(loaded.size(), tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) EXPECT_EQ(loaded[i], tree[i]);
}

TEST(Io, LinkageCsvHasHeaderAndAllRows) {
  const graph::EdgeList tree = make_tree(Topology::balanced, 64, 2);
  const auto d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 64);
  std::stringstream stream;
  io::write_linkage_csv(stream, d);
  std::string line;
  index_t lines = 0;
  while (std::getline(stream, line))
    if (!line.empty()) ++lines;
  EXPECT_EQ(lines, 64);  // header + 63 merges
}

TEST(Io, PointsCsvRoundTrip) {
  const spatial::PointSet original = data::uniform_points(200, 3, 9);
  std::stringstream stream;
  io::write_points_csv(stream, original);
  const spatial::PointSet loaded = io::read_points_csv(stream);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (index_t i = 0; i < original.size(); ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(loaded.at(i, d), original.at(i, d), 1e-5);  // text precision
}

TEST(Io, PointsCsvRejectsRaggedRows) {
  std::stringstream ragged("1,2,3\n4,5\n");
  EXPECT_THROW((void)io::read_points_csv(ragged), std::invalid_argument);
}

TEST(Io, FileRoundTrip) {
  const graph::EdgeList tree = make_tree(Topology::broom, 100, 7);
  const auto original = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 100);
  const std::string path = ::testing::TempDir() + "/pandora_io_test.bin";
  io::save_dendrogram_file(path, original);
  const auto loaded = io::load_dendrogram_file(path);
  EXPECT_EQ(loaded.parent, original.parent);
  EXPECT_THROW((void)io::load_dendrogram_file("/nonexistent/nope.bin"), std::invalid_argument);
}

}  // namespace
