// The cross-call SortedEdges cache: MST fingerprinting, hit/replay semantics
// through the Executor's ArtifactCache, validation interplay, LRU eviction,
// and bit-identity of everything built on top.

#include <gtest/gtest.h>

#include <stdexcept>

#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::SortedEdges;
using pandora::testing::Topology;
using pandora::testing::make_tree;

TEST(MstFingerprint, SensitiveToEveryInput) {
  const exec::Executor executor(exec::serial_backend());
  graph::EdgeList tree = make_tree(Topology::random_attach, 1000, 3, 0);
  const std::uint64_t base = dendrogram::mst_fingerprint(executor, tree, 1000);
  EXPECT_EQ(base, dendrogram::mst_fingerprint(executor, tree, 1000)) << "deterministic";

  graph::EdgeList weight_changed = tree;
  weight_changed[500].weight += 1e-12;
  EXPECT_NE(base, dendrogram::mst_fingerprint(executor, weight_changed, 1000));

  graph::EdgeList endpoint_changed = tree;
  std::swap(endpoint_changed[500].u, endpoint_changed[500].v);
  EXPECT_NE(base, dendrogram::mst_fingerprint(executor, endpoint_changed, 1000));

  graph::EdgeList reordered = tree;
  std::swap(reordered[1], reordered[2]);
  EXPECT_NE(base, dendrogram::mst_fingerprint(executor, reordered, 1000))
      << "the fingerprint is order-sensitive (edge ids are the tie-break)";

  EXPECT_NE(base, dendrogram::mst_fingerprint(executor, tree, 1001));

  // Serial and parallel executors agree (deterministic left-to-right sum).
  const exec::Executor parallel(exec::default_backend(), 4);
  EXPECT_EQ(base, dendrogram::mst_fingerprint(parallel, tree, 1000));
}

TEST(SortedEdgesCache, RepeatedCallsReplayTheSameArtifact) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 8000, 7, 2);
  const exec::Executor executor(exec::default_backend(), 4);
  ASSERT_TRUE(executor.artifact_caching());

  const auto first = dendrogram::sorted_edges_cached(executor, tree, 8000);
  const auto second = dendrogram::sorted_edges_cached(executor, tree, 8000);
  EXPECT_EQ(first.get(), second.get()) << "a hit returns the cached object itself";
  EXPECT_GE(executor.artifact_cache().stats().hits, 1u);

  // The replay is bit-identical to a fresh sort.
  const SortedEdges fresh = dendrogram::sort_edges(executor, tree, 8000);
  EXPECT_EQ(first->order, fresh.order);
  EXPECT_EQ(first->u, fresh.u);
  EXPECT_EQ(first->v, fresh.v);
  EXPECT_EQ(first->weight, fresh.weight);
}

TEST(SortedEdgesCache, DifferentMstsDoNotCollide) {
  const exec::Executor executor(exec::serial_backend());
  const graph::EdgeList a = make_tree(Topology::path, 2000, 1, 0);
  graph::EdgeList b = a;
  b[1000].weight *= 2.0;
  const auto sorted_a = dendrogram::sorted_edges_cached(executor, a, 2000);
  const auto sorted_b = dendrogram::sorted_edges_cached(executor, b, 2000);
  EXPECT_NE(sorted_a.get(), sorted_b.get());
  EXPECT_EQ(sorted_b->order, dendrogram::sort_edges(executor, b, 2000).order);
  // Both stay resident (the cache holds several slots).
  const auto again_a = dendrogram::sorted_edges_cached(executor, a, 2000);
  EXPECT_EQ(sorted_a.get(), again_a.get());
}

TEST(SortedEdgesCache, DisabledCachingSortsAfresh) {
  const graph::EdgeList tree = make_tree(Topology::broom, 3000, 9, 0);
  const exec::Executor executor(exec::serial_backend());
  executor.set_artifact_caching(false);
  const auto first = dendrogram::sorted_edges_cached(executor, tree, 3000);
  const auto second = dendrogram::sorted_edges_cached(executor, tree, 3000);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(first->order, second->order);
}

TEST(SortedEdgesCache, ValidationAppliesOnHitsToo) {
  // A cycle is not a tree: caching the unvalidated sort must not launder a
  // later validation request.
  const graph::EdgeList cycle{{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 3.0}};
  const exec::Executor executor(exec::serial_backend());
  const auto unvalidated = dendrogram::sorted_edges_cached(executor, cycle, 3, false);
  EXPECT_EQ(unvalidated->num_edges(), 3);
  EXPECT_THROW((void)dendrogram::sorted_edges_cached(executor, cycle, 3, true),
               std::invalid_argument);
}

TEST(SortedEdgesCache, EvictionKeepsCorrectness) {
  const exec::Executor executor(exec::serial_backend());
  executor.artifact_cache().clear();
  std::vector<graph::EdgeList> trees;
  for (std::uint64_t seed = 0; seed < 6; ++seed)
    trees.push_back(make_tree(Topology::random_attach, 500, seed, 0));
  for (const auto& tree : trees) (void)dendrogram::sorted_edges_cached(executor, tree, 500);
  // The earliest trees were evicted; re-querying must still be correct.
  for (const auto& tree : trees) {
    const auto sorted = dendrogram::sorted_edges_cached(executor, tree, 500);
    EXPECT_EQ(sorted->order, dendrogram::sort_edges(executor, tree, 500).order);
  }
}

TEST(SortedEdgesCache, DendrogramsAgreeWithAndWithoutCache) {
  const graph::EdgeList tree = make_tree(Topology::caterpillar, 12000, 4, 3);
  const exec::Executor cached_executor(exec::default_backend(), 4);
  const exec::Executor uncached_executor(exec::default_backend(), 4);
  uncached_executor.set_artifact_caching(false);

  const auto d1 = dendrogram::pandora_dendrogram(cached_executor, tree, 12000);
  const auto d2 = dendrogram::pandora_dendrogram(cached_executor, tree, 12000);  // replay
  const auto d3 = dendrogram::pandora_dendrogram(uncached_executor, tree, 12000);
  EXPECT_EQ(d1.parent, d2.parent);
  EXPECT_EQ(d1.parent, d3.parent);
  EXPECT_EQ(d1.edge_order, d3.edge_order);

  // The union-find baseline shares the same cached artifact.
  const auto uf = dendrogram::union_find_dendrogram(cached_executor, tree, 12000);
  const auto uf_fresh = dendrogram::union_find_dendrogram(uncached_executor, tree, 12000);
  EXPECT_EQ(uf.parent, uf_fresh.parent);
}

}  // namespace
