// Theorem 1: the Lowest Common Dendrogram Ancestor of two edges is the
// heaviest edge (smallest sorted index) on the tree path between them.
// Verified by brute force against the constructed dendrogram, plus
// Corollary 1.1 (incident edges are ancestor-related) and the lineage-
// preservation property of the alpha contraction (Theorem 3 / Section 3.4.3).

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "pandora/dendrogram/contraction.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/graph/tree.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::Dendrogram;
using dendrogram::SortedEdges;
using pandora::testing::Topology;
using pandora::testing::all_topologies;
using pandora::testing::make_tree;
using pandora::testing::topology_name;

/// Ancestor chain of an edge in the dendrogram (including itself).
std::vector<index_t> ancestors(const Dendrogram& d, index_t e) {
  std::vector<index_t> chain;
  for (index_t cur = e; cur != kNone; cur = d.parent[static_cast<std::size_t>(cur)])
    chain.push_back(cur);
  return chain;
}

index_t lcda_by_parents(const Dendrogram& d, index_t a, index_t b) {
  const std::vector<index_t> ca = ancestors(d, a);
  const std::set<index_t> sb(ca.begin(), ca.end());
  for (index_t cur = b; cur != kNone; cur = d.parent[static_cast<std::size_t>(cur)])
    if (sb.contains(cur)) return cur;
  return kNone;
}

/// Heaviest (minimum sorted index) edge on the tree path between edges a and
/// b, by BFS over the sorted-edge adjacency.
index_t heaviest_on_path(const SortedEdges& sorted, index_t a, index_t b) {
  const index_t n = sorted.num_edges();
  graph::EdgeList edges(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    edges[static_cast<std::size_t>(i)] = {sorted.u[static_cast<std::size_t>(i)],
                                          sorted.v[static_cast<std::size_t>(i)], 0.0};
  const graph::Adjacency adj = graph::build_adjacency(edges, sorted.num_vertices);

  // Path between edge a and edge b: walk from a's endpoints to b's endpoints.
  // BFS from vertex u_a tracking parent edges.
  std::vector<index_t> parent_edge(static_cast<std::size_t>(sorted.num_vertices), kNone);
  std::vector<bool> visited(static_cast<std::size_t>(sorted.num_vertices), false);
  std::vector<index_t> queue{sorted.u[static_cast<std::size_t>(a)]};
  visited[static_cast<std::size_t>(queue[0])] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const index_t x = queue[head];
    for (const auto& half : adj.incident(x)) {
      if (visited[static_cast<std::size_t>(half.neighbor)]) continue;
      visited[static_cast<std::size_t>(half.neighbor)] = true;
      parent_edge[static_cast<std::size_t>(half.neighbor)] = half.edge;
      queue.push_back(half.neighbor);
    }
  }
  // Collect edges from each endpoint of b back to u_a; the path between the
  // two edges is the union of {a}, {b} and the vertex path; the minimum index
  // over the walked edges (plus a and b) is the heaviest on Path(a, b).
  index_t heaviest = std::min(a, b);
  index_t walk = sorted.u[static_cast<std::size_t>(b)];
  while (parent_edge[static_cast<std::size_t>(walk)] != kNone) {
    const index_t e = parent_edge[static_cast<std::size_t>(walk)];
    if (e == a) break;  // reached a; the rest is not on the a-b path
    heaviest = std::min(heaviest, e);
    const index_t eu = sorted.u[static_cast<std::size_t>(e)];
    walk = (eu == walk) ? sorted.v[static_cast<std::size_t>(e)] : eu;
  }
  return heaviest;
}

class LcdaSweep : public ::testing::TestWithParam<Topology> {};
INSTANTIATE_TEST_SUITE_P(Sweep, LcdaSweep, ::testing::ValuesIn(all_topologies()),
                         [](const auto& info) { return std::string(topology_name(info.param)); });

TEST_P(LcdaSweep, LcdaIsHeaviestEdgeOnPath) {
  const index_t nv = 60;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const graph::EdgeList tree = make_tree(GetParam(), nv, seed);
    const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), tree, nv);
    const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), sorted);
    for (index_t a = 0; a < d.num_edges; ++a)
      for (index_t b = a; b < d.num_edges; ++b)
        ASSERT_EQ(lcda_by_parents(d, a, b), heaviest_on_path(sorted, a, b))
            << topology_name(GetParam()) << " seed=" << seed << " a=" << a << " b=" << b;
  }
}

TEST_P(LcdaSweep, IncidentEdgesAreAncestorRelated) {
  // Corollary 1.1: adjacent tree edges are comparable in the dendrogram.
  const index_t nv = 200;
  const graph::EdgeList tree = make_tree(GetParam(), nv, 4);
  const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), tree, nv);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), sorted);
  for (index_t a = 0; a < d.num_edges; ++a)
    for (index_t b = a + 1; b < d.num_edges; ++b) {
      const bool incident = sorted.u[static_cast<std::size_t>(a)] ==
                                sorted.u[static_cast<std::size_t>(b)] ||
                            sorted.u[static_cast<std::size_t>(a)] ==
                                sorted.v[static_cast<std::size_t>(b)] ||
                            sorted.v[static_cast<std::size_t>(a)] ==
                                sorted.u[static_cast<std::size_t>(b)] ||
                            sorted.v[static_cast<std::size_t>(a)] ==
                                sorted.v[static_cast<std::size_t>(b)];
      if (!incident) continue;
      // a < b, so a (heavier) must be an ancestor of b.
      ASSERT_EQ(lcda_by_parents(d, a, b), a);
    }
}

TEST(LineagePreservation, AlphaContractionPreservesAncestry) {
  // Theorem 3 via Section 3.4.3: for alpha edges, ancestry in the contracted
  // tree's dendrogram equals ancestry in the full dendrogram.
  for (const Topology topo : all_topologies()) {
    const index_t nv = 120;
    const graph::EdgeList tree = make_tree(topo, nv, 7);
    const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), tree, nv);
    const Dendrogram full = dendrogram::pandora_dendrogram(exec::default_executor(), sorted);

    // Build the alpha-MST and its dendrogram (over global indices).
    std::vector<index_t> gid(static_cast<std::size_t>(sorted.num_edges()));
    std::iota(gid.begin(), gid.end(), index_t{0});
    const auto base = dendrogram::detail::contract_one_level(exec::default_executor(exec::serial_backend()), sorted.u,
                                                             sorted.v, gid, nv);
    if (base.level.num_alpha == 0) continue;
    graph::EdgeList alpha_tree;
    std::vector<index_t> alpha_gid;
    for (std::size_t i = 0; i < base.next_gid.size(); ++i) {
      alpha_tree.push_back({base.next_u[i], base.next_v[i],
                            sorted.weight[static_cast<std::size_t>(base.next_gid[i])]});
      alpha_gid.push_back(base.next_gid[i]);
    }
    const Dendrogram alpha_dendro =
        dendrogram::pandora_dendrogram(exec::default_executor(), alpha_tree, base.next_num_vertices);

    // Compare ancestor relations pairwise (alpha dendrogram indices map to
    // global ones through alpha_gid; sort order is preserved, so position i
    // in alpha_dendro corresponds to alpha_gid[edge_order[i]]).
    auto global_of = [&](index_t alpha_rank) {
      return alpha_gid[static_cast<std::size_t>(
          alpha_dendro.edge_order[static_cast<std::size_t>(alpha_rank)])];
    };
    const index_t na = alpha_dendro.num_edges;
    for (index_t a = 0; a < na; ++a)
      for (index_t b = 0; b < na; ++b) {
        const index_t lc_alpha = lcda_by_parents(alpha_dendro, a, b);
        const index_t lc_full = lcda_by_parents(full, global_of(a), global_of(b));
        ASSERT_EQ(global_of(lc_alpha), lc_full)
            << topology_name(topo) << " a=" << a << " b=" << b;
      }
  }
}

}  // namespace
