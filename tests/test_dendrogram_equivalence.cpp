// The central property suite of the repository: PANDORA (Algorithm 3) must
// produce node-for-node the same dendrogram as the bottom-up union-find
// construction (Algorithm 2) and the top-down construction (Algorithm 1) on
// every tree topology, size, weight distribution and execution space.

#include <gtest/gtest.h>

#include <tuple>

#include "pandora/dendrogram/analysis.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/top_down.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::Dendrogram;
using dendrogram::ExpansionPolicy;
using dendrogram::PandoraOptions;
using pandora::testing::Topology;
using pandora::testing::all_topologies;
using pandora::testing::make_tree;
using pandora::testing::topology_name;

// (topology, num_vertices, distinct weight values [0 = continuous])
using Case = std::tuple<Topology, index_t, int>;

class EquivalenceTest : public ::testing::TestWithParam<Case> {};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& [topo, n, distinct] = info.param;
  return std::string(topology_name(topo)) + "_n" + std::to_string(n) + "_w" +
         std::to_string(distinct);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(all_topologies()),
                       ::testing::Values<index_t>(2, 3, 7, 64, 257, 1024),
                       ::testing::Values(0, 4)),
    case_name);

TEST_P(EquivalenceTest, PandoraMatchesUnionFindAllSpacesAndPolicies) {
  const auto& [topo, n, distinct] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const graph::EdgeList tree = make_tree(topo, n, seed, distinct);
    const Dendrogram reference = dendrogram::union_find_dendrogram(exec::default_executor(), tree, n);
    dendrogram::validate_dendrogram(reference);

    for (const auto& space : exec::registered_backends()) {
      for (const ExpansionPolicy policy :
           {ExpansionPolicy::multilevel, ExpansionPolicy::single_level}) {
        PandoraOptions options;
        options.expansion = policy;
        const Dendrogram ours =
            dendrogram::pandora_dendrogram(exec::default_executor(space), tree, n, options);
        ASSERT_EQ(ours.parent, reference.parent)
            << topology_name(topo) << " n=" << n << " seed=" << seed
            << " space=" << space->name()
            << " policy=" << (policy == ExpansionPolicy::multilevel ? "multilevel" : "single");
        ASSERT_EQ(ours.edge_order, reference.edge_order);
        ASSERT_EQ(ours.weight, reference.weight);
      }
    }
  }
}

TEST_P(EquivalenceTest, TopDownAgreesOnSmallTrees) {
  const auto& [topo, n, distinct] = GetParam();
  if (n > 300) GTEST_SKIP() << "top-down oracle is O(n h); small sizes only";
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const graph::EdgeList tree = make_tree(topo, n, seed, distinct);
    const Dendrogram reference = dendrogram::union_find_dendrogram(exec::default_executor(), tree, n);
    const Dendrogram top_down = dendrogram::top_down_dendrogram(tree, n);
    ASSERT_EQ(top_down.parent, reference.parent)
        << topology_name(topo) << " n=" << n << " seed=" << seed;
  }
}

TEST(EquivalenceEdgeCases, SingleVertex) {
  const graph::EdgeList empty;
  const Dendrogram d =
      dendrogram::pandora_dendrogram(exec::default_executor(), empty, 1);
  EXPECT_EQ(d.num_edges, 0);
  EXPECT_EQ(d.num_vertices, 1);
  EXPECT_EQ(d.parent, std::vector<index_t>{kNone});
  EXPECT_EQ(d.root(), kNone);
}

TEST(EquivalenceEdgeCases, SingleEdge) {
  const graph::EdgeList tree{{0, 1, 2.5}};
  for (const auto& space : exec::registered_backends()) {
    const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(space), tree, 2);
    EXPECT_EQ(d.parent[0], kNone);             // the lone edge is the root
    EXPECT_EQ(d.parent[d.vertex_node(0)], 0);  // both vertices hang below it
    EXPECT_EQ(d.parent[d.vertex_node(1)], 0);
    dendrogram::validate_dendrogram(d);
  }
}

TEST(EquivalenceEdgeCases, AllWeightsEqual) {
  // Fully tied weights: the canonical order is the original edge order; all
  // three algorithms must still agree exactly.
  for (const Topology topo : all_topologies()) {
    const graph::EdgeList tree = make_tree(topo, 128, /*seed=*/1, /*distinct=*/1);
    const Dendrogram reference = dendrogram::union_find_dendrogram(exec::default_executor(), tree, 128);
    const Dendrogram ours =
        dendrogram::pandora_dendrogram(exec::default_executor(), tree, 128);
    ASSERT_EQ(ours.parent, reference.parent) << topology_name(topo);
  }
}

TEST(EquivalenceEdgeCases, DeterministicAcrossRepeatsAndSpaces) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 3000, 42, 0);
  const Dendrogram first =
      dendrogram::pandora_dendrogram(exec::default_executor(), tree, 3000);
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const auto& space : exec::registered_backends()) {
      const Dendrogram d =
          dendrogram::pandora_dendrogram(exec::default_executor(space), tree, 3000);
      ASSERT_EQ(d.parent, first.parent) << "repeat " << repeat;
    }
  }
}

TEST(EquivalenceLarge, RandomTreesTenThousandVertices) {
  for (const Topology topo : {Topology::preferential, Topology::random_attach,
                              Topology::star, Topology::balanced}) {
    const graph::EdgeList tree = make_tree(topo, 10000, 9, 0);
    const Dendrogram reference = dendrogram::union_find_dendrogram(exec::default_executor(), tree, 10000);
    const Dendrogram ours =
        dendrogram::pandora_dendrogram(exec::default_executor(), tree, 10000);
    ASSERT_EQ(ours.parent, reference.parent) << topology_name(topo);
    dendrogram::validate_dendrogram(ours);
  }
}

}  // namespace
