// The distance-kernel bit-identity contract (spatial/distance.hpp), the SoA
// stores behind it, and the batched kd-tree probes wired onto it:
//
//  * scalar vs dispatched batch kernels agree BIT-FOR-BIT, including on
//    negatives, signed zeros, denormals and infinities (compared through
//    bit_cast so NaN outcomes of inf-inf arithmetic are compared too);
//  * every dimensionality, count and block offset exercises the SIMD main
//    loop, its scalar tail, and unaligned leaf-style block starts;
//  * the bounded pair kernel is exact at-or-under its bound (ties run to
//    completion, preserving index tie-breaking) and only over-reports when
//    already discarded;
//  * SoaStore hands out 64-byte-aligned, zero-padded dimension-major blocks
//    and the PointSet mirror invalidates on mutable access;
//  * KdTree::knn_batch returns bit-identical results to per-query knn, and a
//    warm batched probe performs zero heap allocations.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_counter.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/spatial/distance.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

using namespace pandora;
namespace dist = pandora::spatial::distance;

namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Row-major points -> dimension-major block with the given stride
/// (coordinate d of point j at block[d * stride + j]).
std::vector<double> to_block(const std::vector<double>& row_major, int dim, index_t count,
                             index_t stride) {
  std::vector<double> block(static_cast<std::size_t>(dim) * static_cast<std::size_t>(stride),
                            0.0);
  for (index_t j = 0; j < count; ++j)
    for (int d = 0; d < dim; ++d)
      block[static_cast<std::size_t>(d) * static_cast<std::size_t>(stride) +
            static_cast<std::size_t>(j)] =
          row_major[static_cast<std::size_t>(j) * static_cast<std::size_t>(dim) +
                    static_cast<std::size_t>(d)];
  return block;
}

}  // namespace

TEST(DistanceKernels, WidthConsistentWithCompiledMode) {
  const int width = dist::simd_vector_width();
  if (!dist::simd_compiled()) {
    EXPECT_EQ(width, 1);
  } else {
    EXPECT_TRUE(width == 1 || width >= 4) << width;  // scalar cpu fallback or a vector path
  }
  EXPECT_EQ(dist::simd_enabled(), width > 1);
}

TEST(DistanceKernels, ScalarAndDispatchBitIdenticalOnSpecials) {
  // Signed zeros, denormals, extremes and infinities: inf coordinates drive
  // inf-inf = NaN through the accumulator, which must come out bit-identical
  // from both paths (x86 scalar and vector subtraction produce the same
  // default quiet NaN).
  const std::vector<double> specials = {
      0.0,   -0.0,  5e-324, -5e-324, 2.2250738585072014e-308, -2.2250738585072014e-308,
      1e300, -1e300, std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(), 1.5, -2.25, 3.0};
  const int dim = 3;
  const auto count = static_cast<index_t>(specials.size());
  std::vector<double> row_major(static_cast<std::size_t>(count) * dim);
  for (index_t j = 0; j < count; ++j)
    for (int d = 0; d < dim; ++d)
      row_major[static_cast<std::size_t>(j) * dim + d] =
          specials[static_cast<std::size_t>((j + d * 5) % count)];
  const std::vector<double> block = to_block(row_major, dim, count, count);

  for (const double q0 : specials) {
    const double query[3] = {q0, -q0, 0.5};
    std::vector<double> scalar_out(static_cast<std::size_t>(count));
    std::vector<double> dispatch_out(static_cast<std::size_t>(count));
    dist::batch_squared_distances_scalar(query, block.data(), dim, count, count,
                                         scalar_out.data());
    dist::batch_squared_distances(query, block.data(), dim, count, count, dispatch_out.data());
    for (index_t j = 0; j < count; ++j)
      ASSERT_EQ(bits(scalar_out[static_cast<std::size_t>(j)]),
                bits(dispatch_out[static_cast<std::size_t>(j)]))
          << "q0=" << q0 << " j=" << j;
  }
}

TEST(DistanceKernels, BatchMatchesPairKernelAllDimsAndCounts) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coord(-3.0, 3.0);
  // Dims cover the unrolled 2-7 specialisations plus the generic loop (1, 9);
  // counts cover empty, sub-vector-width, exact multiples and ragged tails.
  for (int dim = 1; dim <= 9; ++dim) {
    for (index_t count = 0; count <= 17; ++count) {
      std::vector<double> row_major(static_cast<std::size_t>(count) * dim);
      for (double& c : row_major) c = coord(rng);
      std::vector<double> query(static_cast<std::size_t>(dim));
      for (double& c : query) c = coord(rng);
      const std::vector<double> block = to_block(row_major, dim, count, count);

      std::vector<double> scalar_out(static_cast<std::size_t>(count));
      std::vector<double> dispatch_out(static_cast<std::size_t>(count));
      dist::batch_squared_distances_scalar(query.data(), block.data(), dim, count, count,
                                           scalar_out.data());
      dist::batch_squared_distances(query.data(), block.data(), dim, count, count,
                                    dispatch_out.data());
      for (index_t j = 0; j < count; ++j) {
        const double pair = dist::squared_distance(
            query.data(), row_major.data() + static_cast<std::size_t>(j) * dim, dim);
        ASSERT_EQ(bits(scalar_out[static_cast<std::size_t>(j)]), bits(pair))
            << "dim=" << dim << " count=" << count << " j=" << j;
        ASSERT_EQ(bits(dispatch_out[static_cast<std::size_t>(j)]), bits(pair))
            << "dim=" << dim << " count=" << count << " j=" << j;
      }
    }
  }
}

TEST(DistanceKernels, UnalignedBlockStartsMatchScalar) {
  // A kd-tree leaf block can start at any point offset; the kernels must
  // handle block pointers at every alignment (the AVX2 type is declared
  // aligned(8), making unaligned vector loads legal) and ragged tail counts.
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> coord(-1.0, 1.0);
  const int dim = 5;
  const index_t count = 23;
  std::vector<double> row_major(static_cast<std::size_t>(count) * dim);
  for (double& c : row_major) c = coord(rng);
  std::vector<double> query(static_cast<std::size_t>(dim));
  for (double& c : query) c = coord(rng);
  const std::vector<double> block = to_block(row_major, dim, count, count);

  for (index_t j0 = 0; j0 < count; ++j0) {
    const index_t sub = count - j0;  // sub-block [j0, count) at the same stride
    std::vector<double> scalar_out(static_cast<std::size_t>(sub));
    std::vector<double> dispatch_out(static_cast<std::size_t>(sub));
    dist::batch_squared_distances_scalar(query.data(), block.data() + j0, dim, sub, count,
                                         scalar_out.data());
    dist::batch_squared_distances(query.data(), block.data() + j0, dim, sub, count,
                                  dispatch_out.data());
    for (index_t j = 0; j < sub; ++j)
      ASSERT_EQ(bits(scalar_out[static_cast<std::size_t>(j)]),
                bits(dispatch_out[static_cast<std::size_t>(j)]))
          << "j0=" << j0 << " j=" << j;
  }
}

TEST(DistanceKernels, BoundedKernelExactUnderBoundTiesRunToCompletion) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> coord(-2.0, 2.0);
  for (int dim = 1; dim <= 8; ++dim) {
    for (int rep = 0; rep < 50; ++rep) {
      std::vector<double> a(static_cast<std::size_t>(dim)), b(static_cast<std::size_t>(dim));
      for (double& c : a) c = coord(rng);
      for (double& c : b) c = coord(rng);
      const double full = dist::squared_distance(a.data(), b.data(), dim);
      // Bound above the sum: exact and bit-identical.
      EXPECT_EQ(bits(dist::squared_distance_bounded(a.data(), b.data(), dim, full * 2 + 1)),
                bits(full));
      // Bound EXACTLY the sum (a tie): must run to completion, not early-exit
      // — that is what preserves index tie-breaking in the probes.
      EXPECT_EQ(bits(dist::squared_distance_bounded(a.data(), b.data(), dim, full)),
                bits(full));
      // Bound below the sum: whatever partial comes back must itself exceed
      // the bound, so a "discard when > bound" caller decides identically.
      if (full > 0) {
        const double partial =
            dist::squared_distance_bounded(a.data(), b.data(), dim, full * 0.25);
        EXPECT_GT(partial, full * 0.25);
      }
    }
  }
}

TEST(SoaStore, AlignmentLayoutAndZeroPadding) {
  const int dim = 3;
  const index_t n = 13;  // 8 + ragged 5: exercises the padded tail block
  spatial::PointSet points(dim, n);
  for (index_t p = 0; p < n; ++p)
    for (int d = 0; d < dim; ++d)
      points.at(p, d) = static_cast<double>(p * 10 + d) + 0.25;

  const std::shared_ptr<const spatial::SoaStore> soa = points.soa();
  ASSERT_EQ(soa->size(), n);
  ASSERT_EQ(soa->dim(), dim);
  ASSERT_EQ(soa->num_blocks(), 2);
  EXPECT_EQ(soa->block_size(0), spatial::SoaStore::kLane);
  EXPECT_EQ(soa->block_size(1), n - spatial::SoaStore::kLane);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(soa->data()) % 64, 0u);
  for (index_t b = 0; b < soa->num_blocks(); ++b)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(soa->block(b)) % 64, 0u);

  const spatial::PointSet& const_points = points;
  for (index_t p = 0; p < n; ++p) {
    const index_t b = p / spatial::SoaStore::kLane;
    const index_t lane = p % spatial::SoaStore::kLane;
    for (int d = 0; d < dim; ++d)
      EXPECT_EQ(soa->block(b)[static_cast<std::size_t>(d) * spatial::SoaStore::kLane +
                              static_cast<std::size_t>(lane)],
                const_points.at(p, d));
  }
  // Tail lanes of the last block are zero so kernels may safely load them.
  for (index_t lane = soa->block_size(1); lane < spatial::SoaStore::kLane; ++lane)
    for (int d = 0; d < dim; ++d)
      EXPECT_EQ(soa->block(1)[static_cast<std::size_t>(d) * spatial::SoaStore::kLane +
                              static_cast<std::size_t>(lane)],
                0.0);
}

TEST(SoaStore, PointSetMirrorInvalidatesOnMutableAccess) {
  spatial::PointSet points(2, 4);
  for (index_t p = 0; p < 4; ++p)
    for (int d = 0; d < 2; ++d) points.at(p, d) = static_cast<double>(p + d);

  const auto first = points.soa();
  EXPECT_EQ(points.soa().get(), first.get());  // cached while untouched
  points.at(2, 1) = 99.5;                      // mutable access invalidates
  const auto rebuilt = points.soa();
  EXPECT_NE(rebuilt.get(), first.get());
  EXPECT_EQ(rebuilt->block(0)[1 * spatial::SoaStore::kLane + 2], 99.5);
  // The original mirror is immutable: old readers still see the old value.
  EXPECT_EQ(first->block(0)[1 * spatial::SoaStore::kLane + 2], 3.0);
}

TEST(KdTreeBatch, KnnBatchBitIdenticalToPerQueryKnn) {
  for (const int dim : {2, 3, 5, 7}) {
    const spatial::PointSet points =
        data::uniform_points(500, dim, 1000 + static_cast<std::uint64_t>(dim));
    const spatial::KdTree tree(points, /*leaf_size=*/8);
    for (const int k : {1, 4, 16}) {
      std::vector<spatial::Neighbor> batch_out;
      tree.knn_batch(tree.tree_order(), k, batch_out);
      const auto k_eff = static_cast<std::size_t>(std::min<index_t>(k, points.size() - 1));
      ASSERT_EQ(batch_out.size(), static_cast<std::size_t>(points.size()) * k_eff);

      std::vector<spatial::Neighbor> single;
      for (std::size_t i = 0; i < tree.tree_order().size(); ++i) {
        const index_t q = tree.tree_order()[i];
        tree.knn(q, k, single);
        ASSERT_EQ(single.size(), k_eff);
        for (std::size_t t = 0; t < k_eff; ++t) {
          ASSERT_EQ(batch_out[i * k_eff + t].index, single[t].index)
              << "dim=" << dim << " k=" << k << " q=" << q << " t=" << t;
          ASSERT_EQ(bits(batch_out[i * k_eff + t].squared_distance),
                    bits(single[t].squared_distance))
              << "dim=" << dim << " k=" << k << " q=" << q << " t=" << t;
        }
      }
    }
  }
}

TEST(KdTreeBatch, CoordinateOverloadMatchesCoordinateKnn) {
  const int dim = 3;
  const spatial::PointSet points = data::uniform_points(300, dim, 77);
  const spatial::KdTree tree(points, /*leaf_size=*/8);
  const spatial::PointSet queries = data::uniform_points(40, dim, 78);
  const int k = 5;

  std::vector<spatial::Neighbor> batch_out;
  tree.knn_batch(queries.coords().data(), queries.size(), k, batch_out);
  ASSERT_EQ(batch_out.size(), static_cast<std::size_t>(queries.size()) * k);

  std::vector<spatial::Neighbor> single;
  for (index_t i = 0; i < queries.size(); ++i) {
    tree.knn(queries.point(i), k, single);
    ASSERT_EQ(single.size(), static_cast<std::size_t>(k));
    for (int t = 0; t < k; ++t) {
      ASSERT_EQ(batch_out[static_cast<std::size_t>(i) * k + t].index,
                single[static_cast<std::size_t>(t)].index);
      ASSERT_EQ(bits(batch_out[static_cast<std::size_t>(i) * k + t].squared_distance),
                bits(single[static_cast<std::size_t>(t)].squared_distance));
    }
  }
}

TEST(KdTreeBatch, WarmBatchedProbeAllocatesNothing) {
  const spatial::PointSet points = data::uniform_points(2000, 3, 99);
  const spatial::KdTree tree(points, /*leaf_size=*/16);
  const std::span<const index_t> order = tree.tree_order();
  const std::span<const index_t> queries = order.subspan(0, 64);

  std::vector<spatial::Neighbor> out;
  tree.knn_batch(queries, 8, out);  // warm: result capacity + thread_local scratch
  tree.knn_batch(queries, 8, out);

  pandora::testing::AllocationCounterScope scope;
  tree.knn_batch(queries, 8, out);
  EXPECT_EQ(scope.count(), 0u) << "warm batched probe must not touch the heap";
}
