// Failpoint-driven chaos hardening: the failpoint registry itself (grammar,
// skip/limit, auto-disarm), fault injection at the allocation / launch /
// mid-repair / publish seams, and the poison-and-recover lifecycle of the
// serving stack.  The load-bearing invariants: readers never observe a torn
// snapshot no matter where the writer fails, recovery is bit-identical to a
// cold rebuild over the recovered points, and burned epoch numbers are never
// reused.  CI runs this suite under ASan (gcc-chaos) so every injected
// unwind is also a leak check.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string_view>
#include <thread>
#include <vector>

#include "pandora/data/point_generators.hpp"
#include "pandora/dyn/dynamic_clustering.hpp"
#include "pandora/exec/failpoint.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/snapshot/published_clustering.hpp"

namespace {

using namespace pandora;
namespace failpoint = exec::failpoint;

/// Arms a site for one test body and guarantees disarm on every exit path
/// (tests must not leak armed sites into each other — and must not call
/// disarm_all, which would wipe the CI env arming of chaos.env.smoke).
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string_view site, failpoint::Config config = {}) : site_(site) {
    failpoint::arm(site_, config);
  }
  ~ScopedFailpoint() { failpoint::disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string_view site_;
};

TEST(FailpointRegistry, DisarmedSiteIsFree) {
  EXPECT_NO_THROW(PANDORA_FAILPOINT("chaos.test.never_armed"));
  EXPECT_EQ(failpoint::hits("chaos.test.never_armed"), 0u);
}

TEST(FailpointRegistry, SkipAndLimitSemantics) {
  // skip=2, limit=1: two passes succeed, the third throws, then auto-disarm.
  const ScopedFailpoint armed("chaos.test.skip", {failpoint::Kind::error, 2, 1});
  EXPECT_NO_THROW(PANDORA_FAILPOINT("chaos.test.skip"));
  EXPECT_NO_THROW(PANDORA_FAILPOINT("chaos.test.skip"));
  EXPECT_THROW(PANDORA_FAILPOINT("chaos.test.skip"), failpoint::InjectedFault);
  EXPECT_NO_THROW(PANDORA_FAILPOINT("chaos.test.skip"));  // auto-disarmed
  EXPECT_EQ(failpoint::hits("chaos.test.skip"), 3u);
  EXPECT_EQ(failpoint::triggered("chaos.test.skip"), 1u);
}

TEST(FailpointRegistry, UnlimitedAndRearm) {
  const ScopedFailpoint armed("chaos.test.unlimited", {failpoint::Kind::error, 0, 0});
  EXPECT_THROW(PANDORA_FAILPOINT("chaos.test.unlimited"), failpoint::InjectedFault);
  EXPECT_THROW(PANDORA_FAILPOINT("chaos.test.unlimited"), failpoint::InjectedFault);
  // Re-arming replaces the config and resets counters.
  failpoint::arm("chaos.test.unlimited", {failpoint::Kind::error, 1, 1});
  EXPECT_EQ(failpoint::triggered("chaos.test.unlimited"), 0u);
  EXPECT_NO_THROW(PANDORA_FAILPOINT("chaos.test.unlimited"));
  EXPECT_THROW(PANDORA_FAILPOINT("chaos.test.unlimited"), failpoint::InjectedFault);
}

TEST(FailpointRegistry, BadAllocKind) {
  const ScopedFailpoint armed("chaos.test.badalloc", {failpoint::Kind::bad_alloc, 0, 1});
  EXPECT_THROW(PANDORA_FAILPOINT("chaos.test.badalloc"), std::bad_alloc);
}

TEST(FailpointRegistry, SpecGrammar) {
  failpoint::arm_from_spec("chaos.test.a,chaos.test.b@badalloc=2:3");
  EXPECT_THROW(PANDORA_FAILPOINT("chaos.test.a"), failpoint::InjectedFault);
  EXPECT_NO_THROW(PANDORA_FAILPOINT("chaos.test.b"));  // skip=2
  EXPECT_NO_THROW(PANDORA_FAILPOINT("chaos.test.b"));
  EXPECT_THROW(PANDORA_FAILPOINT("chaos.test.b"), std::bad_alloc);
  failpoint::disarm("chaos.test.a");
  failpoint::disarm("chaos.test.b");

  EXPECT_THROW(failpoint::arm_from_spec("site@nonsense"), std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("site=abc"), std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("@error"), std::invalid_argument);
}

TEST(FailpointRegistry, EnvArmedSmoke) {
  // The gcc-chaos CI entry exports PANDORA_FAILPOINTS=chaos.env.smoke; the
  // static-init EnvArmer must have armed it before main().  Without the env
  // var this test has nothing to verify.
  const char* spec = std::getenv("PANDORA_FAILPOINTS");
  if (spec == nullptr ||
      std::string_view(spec).find("chaos.env.smoke") == std::string_view::npos) {
    GTEST_SKIP() << "PANDORA_FAILPOINTS does not arm chaos.env.smoke";
  }
  EXPECT_THROW(PANDORA_FAILPOINT("chaos.env.smoke"), failpoint::InjectedFault);
  EXPECT_GE(failpoint::triggered("chaos.env.smoke"), 1u);
}

TEST(ChaosSeams, AllocationFaultUnwindsCleanlyAndArenaRecovers) {
  const spatial::PointSet points = data::gaussian_blobs(500, 2, 3, 0.05, 0.1, 23);
  // Fresh executor: its first lease must hit HostMemoryResource::allocate.
  const exec::Executor executor;
  {
    const ScopedFailpoint armed("exec.memory.allocate", {failpoint::Kind::bad_alloc, 0, 1});
    EXPECT_THROW((void)Pipeline::on(executor).run_hdbscan(points), std::bad_alloc);
  }
  // The unwind released every lease (ASan would flag a leak); the same
  // executor completes the same query afterwards.
  const auto result = Pipeline::on(executor).run_hdbscan(points);
  EXPECT_EQ(result.labels.size(), static_cast<std::size_t>(points.size()));
}

TEST(ChaosSeams, LaunchFaultUnwindsCleanly) {
  // Enough points to clear the parallel_for grain, and an explicit 4-thread
  // budget, so the query actually reaches run_chunks even on small machines.
  const spatial::PointSet points = data::gaussian_blobs(5000, 2, 3, 0.05, 0.1, 29);
  const exec::Executor executor(exec::default_backend(), 4);
  (void)Pipeline::on(executor).run_hdbscan(points);  // warm the arena
  {
    const ScopedFailpoint armed("exec.run_chunks", {failpoint::Kind::error, 0, 1});
    EXPECT_THROW((void)Pipeline::on(executor).run_hdbscan(points), failpoint::InjectedFault);
  }
  const auto result = Pipeline::on(executor).run_hdbscan(points);
  EXPECT_EQ(result.labels.size(), static_cast<std::size_t>(points.size()));
}

TEST(ChaosSeams, InsertFaultPoisonsStream) {
  exec::Executor executor;
  dyn::DynamicClustering stream(executor);
  stream.insert(data::gaussian_blobs(200, 2, 3, 0.05, 0.1, 31));
  const std::uint64_t epoch_before = stream.epoch();

  {
    const ScopedFailpoint armed("dyn.insert.repair");
    EXPECT_THROW((void)stream.insert(data::gaussian_blobs(20, 2, 1, 0.05, 0.0, 32)),
                 failpoint::InjectedFault);
  }
  // Poisoned: the derived structures no longer describe points(); every
  // accessor and further update fails fast instead of mis-answering.
  EXPECT_FALSE(stream.healthy());
  EXPECT_GT(stream.epoch(), epoch_before);  // the failed epoch is burned
  EXPECT_THROW((void)stream.dendrogram(), std::invalid_argument);
  EXPECT_THROW((void)stream.emst(), std::invalid_argument);
  EXPECT_THROW((void)stream.hdbscan(), std::invalid_argument);
  EXPECT_THROW((void)stream.capture_artifacts(), std::invalid_argument);
  EXPECT_THROW((void)stream.insert(data::gaussian_blobs(5, 2, 1, 0.05, 0.0, 33)),
               std::invalid_argument);
}

TEST(ChaosSeams, EraseFaultPoisonsStream) {
  exec::Executor executor;
  dyn::DynamicClustering stream(executor);
  const std::vector<index_t> ids = stream.insert(data::gaussian_blobs(200, 2, 3, 0.05, 0.1, 37));
  {
    const ScopedFailpoint armed("dyn.erase.repair");
    const std::vector<index_t> victims{ids[0], ids[1]};
    EXPECT_THROW(stream.erase(victims), failpoint::InjectedFault);
  }
  EXPECT_FALSE(stream.healthy());
  EXPECT_THROW((void)stream.sorted_edges(), std::invalid_argument);
}

/// Bit-identity helper: the recovered stream's maintained structures must
/// equal a cold `dyn::` rebuild over the same points.
void expect_stream_matches_cold_rebuild(const dyn::DynamicClustering& stream) {
  exec::Executor cold_exec;
  dyn::DynamicClustering cold(cold_exec, stream.options());
  cold.insert(stream.points());
  ASSERT_EQ(stream.size(), cold.size());
  EXPECT_EQ(stream.dendrogram().parent, cold.dendrogram().parent);
  EXPECT_EQ(stream.dendrogram().weight, cold.dendrogram().weight);
  ASSERT_EQ(stream.emst().size(), cold.emst().size());
  double maintained = 0.0, rebuilt = 0.0;
  for (const auto& e : stream.emst()) maintained += e.weight;
  for (const auto& e : cold.emst()) rebuilt += e.weight;
  EXPECT_DOUBLE_EQ(maintained, rebuilt);
}

TEST(WriterRecovery, PoisonedWriterRecoversToLastPublishedEpoch) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  const spatial::PointSet first = data::gaussian_blobs(300, 2, 3, 0.05, 0.1, 41);
  published.insert(first);
  const std::uint64_t published_epoch = published.published_epoch();
  const std::uint64_t burned_epoch = published_epoch + 1;

  {
    const ScopedFailpoint armed("dyn.insert.repair");
    EXPECT_THROW(published.insert(data::gaussian_blobs(30, 2, 1, 0.05, 0.0, 42)),
                 failpoint::InjectedFault);
  }
  EXPECT_TRUE(published.poisoned());
  // Readers are untouched: the published snapshot predates the failure.
  {
    const snapshot::SnapshotPtr snap = published.acquire();
    EXPECT_EQ(snap->epoch(), published_epoch);
    EXPECT_EQ(snap->size(), first.size());
  }

  const std::uint64_t restored = published.recover();
  EXPECT_EQ(restored, published_epoch);
  EXPECT_FALSE(published.poisoned());
  EXPECT_EQ(published.stream().size(), first.size());
  // The re-published epoch is fresh: strictly beyond the burned one, so no
  // cache key from the failed update can ever be served.
  EXPECT_GT(published.published_epoch(), burned_epoch);

  // Recovery is bit-identical to a cold rebuild over the recovered points.
  expect_stream_matches_cold_rebuild(published.stream());

  // And the writer resumes: the once-failed batch applies cleanly now.
  published.insert(data::gaussian_blobs(30, 2, 1, 0.05, 0.0, 42));
  EXPECT_EQ(published.stream().size(), first.size() + 30);
  expect_stream_matches_cold_rebuild(published.stream());
}

TEST(WriterRecovery, PublishFaultKeepsReadersOnOldEpochAndRecoverRollsBack) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(200, 2, 3, 0.05, 0.1, 43));
  const std::uint64_t published_epoch = published.published_epoch();
  const index_t published_size = published.stream().size();

  {
    const ScopedFailpoint armed("snapshot.publish");
    EXPECT_THROW(published.insert(data::gaussian_blobs(25, 2, 1, 0.05, 0.0, 44)),
                 failpoint::InjectedFault);
  }
  // The stream itself applied the update (the fault hit after the repair,
  // in publish), so it is NOT poisoned — but the successor snapshot never
  // swapped in, so readers still see the old epoch.
  EXPECT_FALSE(published.poisoned());
  EXPECT_EQ(published.published_epoch(), published_epoch);
  EXPECT_EQ(published.stream().size(), published_size + 25);

  // recover() rolls back to what readers are actually being served: the
  // unpublished mutation is dropped, stream and snapshot agree again.
  EXPECT_EQ(published.recover(), published_epoch);
  EXPECT_EQ(published.stream().size(), published_size);
  EXPECT_GT(published.published_epoch(), published_epoch);
  expect_stream_matches_cold_rebuild(published.stream());
}

TEST(WriterRecovery, MaterialiseFaultLeavesCurrentSnapshotServed) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(150, 2, 2, 0.05, 0.1, 47));
  const std::uint64_t published_epoch = published.published_epoch();
  {
    const ScopedFailpoint armed("snapshot.materialise");
    EXPECT_THROW(published.insert(data::gaussian_blobs(10, 2, 1, 0.05, 0.0, 48)),
                 failpoint::InjectedFault);
  }
  const snapshot::SnapshotPtr snap = published.acquire();
  EXPECT_EQ(snap->epoch(), published_epoch);
  (void)published.recover();
  EXPECT_FALSE(published.poisoned());
}

TEST(WriterRecovery, EpochsStrictlyIncreaseAcrossFailureAndRecovery) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  std::vector<std::uint64_t> observed;
  observed.push_back(published.published_epoch());
  for (int cycle = 0; cycle < 3; ++cycle) {
    published.insert(data::gaussian_blobs(60, 2, 2, 0.05, 0.1, 50 + cycle));
    observed.push_back(published.published_epoch());
    {
      const ScopedFailpoint armed("dyn.insert.repair");
      EXPECT_THROW(published.insert(data::gaussian_blobs(5, 2, 1, 0.05, 0.0, 60 + cycle)),
                   failpoint::InjectedFault);
    }
    (void)published.recover();
    observed.push_back(published.published_epoch());
  }
  for (std::size_t i = 1; i < observed.size(); ++i)
    EXPECT_GT(observed[i], observed[i - 1]) << "epoch reuse at step " << i;
}

TEST(WriterRecovery, ReadersNeverSeeTornStateUnderInjectedChaos) {
  // Concurrent chaos: readers hammer acquire()+query while the writer
  // alternates successful updates, injected mid-repair failures and
  // recoveries.  Every result a reader gets must be self-consistent with
  // the snapshot it pinned (the ASan/TSan CI entries also race/leak-check
  // this).  Failpoints are global state, so the armed site is the writer's
  // alone — readers never pass through dyn.insert.repair.
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(120, 2, 2, 0.05, 0.1, 71));

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      const exec::Executor reader_exec(exec::serial_backend());
      hdbscan::HdbscanOptions options;
      options.min_pts = 3;
      while (!stop.load(std::memory_order_relaxed)) {
        const snapshot::SnapshotPtr snap = published.acquire();
        if (snap->size() == 0) continue;
        const auto result = snap->hdbscan(reader_exec, options);
        // Self-consistency of the pinned epoch: every artifact sized to the
        // same frozen point count (a torn snapshot would mix epochs).
        if (result.labels.size() != static_cast<std::size_t>(snap->size()) ||
            snap->dendrogram().num_vertices != snap->size() ||
            snap->emst().size() + 1 != static_cast<std::size_t>(snap->size()))
          reader_errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int cycle = 0; cycle < 6; ++cycle) {
    published.insert(data::gaussian_blobs(40, 2, 2, 0.05, 0.1, 80 + cycle));
    {
      const ScopedFailpoint armed("dyn.insert.repair");
      EXPECT_THROW(published.insert(data::gaussian_blobs(8, 2, 1, 0.05, 0.0, 90 + cycle)),
                   failpoint::InjectedFault);
    }
    EXPECT_TRUE(published.poisoned());
    (void)published.recover();
    EXPECT_FALSE(published.poisoned());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_errors.load(), 0) << "a reader observed a torn snapshot";
  expect_stream_matches_cold_rebuild(published.stream());
}

}  // namespace
