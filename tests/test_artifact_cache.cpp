// The ArtifactCache under concurrency: the locking contract that lets batch
// slot executors share one cache — plus slot sizing, LRU order and the
// shared-cache installation on Executor.  The stress tests are what the CI
// ThreadSanitizer matrix entry race-checks.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "pandora/exec/executor.hpp"
#include "pandora/exec/fingerprint.hpp"

namespace {

using namespace pandora;
using exec::ArtifactCache;

/// A self-describing artifact: its payload is its own fingerprint, so any
/// cross-keyed read is detectable.
struct Tagged {
  std::uint64_t fingerprint;
};

TEST(ArtifactCache, LruEvictsTheLeastRecentlyTouched) {
  ArtifactCache cache(/*slots=*/2);
  cache.insert<Tagged>(1, std::make_shared<Tagged>(Tagged{1}));
  cache.insert<Tagged>(2, std::make_shared<Tagged>(Tagged{2}));
  ASSERT_NE(cache.find<Tagged>(1), nullptr);  // touch 1: 2 becomes LRU
  cache.insert<Tagged>(3, std::make_shared<Tagged>(Tagged{3}));
  EXPECT_EQ(cache.find<Tagged>(2), nullptr) << "2 was least recently used";
  EXPECT_NE(cache.find<Tagged>(1), nullptr);
  EXPECT_NE(cache.find<Tagged>(3), nullptr);
}

TEST(ArtifactCache, InsertReplacesMatchingEntryInPlace) {
  // A stale value re-inserted under its key must supersede the old entry,
  // not shadow it behind a duplicate (the spatial caches' points-identity
  // check depends on this to heal stale entries).
  ArtifactCache cache(/*slots=*/4);
  cache.insert<Tagged>(9, std::make_shared<Tagged>(Tagged{1}));
  cache.insert<Tagged>(10, std::make_shared<Tagged>(Tagged{10}));
  cache.insert<Tagged>(9, std::make_shared<Tagged>(Tagged{2}));
  const auto hit = cache.find<Tagged>(9);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->fingerprint, 2u) << "the re-insert replaced the old value";
  // Only one slot is occupied by key 9: two more inserts still fit without
  // evicting key 10.
  cache.insert<Tagged>(11, std::make_shared<Tagged>(Tagged{11}));
  cache.insert<Tagged>(12, std::make_shared<Tagged>(Tagged{12}));
  EXPECT_NE(cache.find<Tagged>(10), nullptr);
}

TEST(ArtifactCache, TypeIsPartOfTheKey) {
  struct OtherType {
    int x;
  };
  ArtifactCache cache;
  cache.insert<Tagged>(7, std::make_shared<Tagged>(Tagged{7}));
  EXPECT_EQ(cache.find<OtherType>(7), nullptr)
      << "same fingerprint, different type must miss";
  EXPECT_NE(cache.find<Tagged>(7), nullptr);
}

TEST(ArtifactCache, HitsKeepEvictedValuesAlive) {
  ArtifactCache cache(/*slots=*/1);
  cache.insert<Tagged>(1, std::make_shared<Tagged>(Tagged{1}));
  const std::shared_ptr<Tagged> held = cache.find<Tagged>(1);
  cache.insert<Tagged>(2, std::make_shared<Tagged>(Tagged{2}));  // evicts 1
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->fingerprint, 1u) << "a returned shared_ptr owns the value";
}

TEST(ArtifactCache, ConcurrentFindInsertStress) {
  // Hammer one cache from many threads with overlapping fingerprints.  Under
  // -fsanitize=thread this is the race check for the batch serving layer;
  // without it, it still asserts the contract: a find never returns a value
  // whose payload disagrees with the queried fingerprint.
  ArtifactCache cache(/*slots=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint64_t kKeySpace = 16;  // 4x the slots: constant eviction

  std::vector<std::thread> pool;
  std::vector<int> mismatches(kThreads, 0);
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      std::uint64_t state = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        state = exec::mix_fingerprint(state + 1);
        const std::uint64_t key = state % kKeySpace;
        if (state & 1) {
          cache.insert<Tagged>(key, std::make_shared<Tagged>(Tagged{key}));
        } else if (const std::shared_ptr<Tagged> hit = cache.find<Tagged>(key)) {
          if (hit->fingerprint != key) ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
  const auto stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(ArtifactCache, ConcurrentClearIsSafe) {
  ArtifactCache cache(/*slots=*/4);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (int op = 0; op < 2000; ++op) {
        const auto key = static_cast<std::uint64_t>(op % 8);
        switch ((op + t) % 3) {
          case 0: cache.insert<Tagged>(key, std::make_shared<Tagged>(Tagged{key})); break;
          case 1: (void)cache.find<Tagged>(key); break;
          default: cache.clear(); break;
        }
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
}

TEST(ArtifactCache, StatsCountHitsMissesEvictionsButNotInPlaceReplacement) {
  ArtifactCache cache(/*slots=*/2);
  cache.insert<Tagged>(1, std::make_shared<Tagged>(Tagged{1}));
  EXPECT_NE(cache.find<Tagged>(1), nullptr);  // hit
  EXPECT_EQ(cache.find<Tagged>(2), nullptr);  // miss
  cache.insert<Tagged>(2, std::make_shared<Tagged>(Tagged{2}));  // empty slot
  cache.insert<Tagged>(3, std::make_shared<Tagged>(Tagged{3}));  // displaces 1

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.pinned_slots, 0u);

  // Replacing a (fingerprint, type) match in place supersedes a stale value;
  // nothing was displaced by a *different* key, so it is not an eviction.
  cache.insert<Tagged>(3, std::make_shared<Tagged>(Tagged{3}));
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.reset_stats();
  stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.evictions, 0u);
}

TEST(ArtifactCache, PinnedGroupSurvivesFloodByOverflowAndPurgeReclaims) {
  ArtifactCache cache(/*slots=*/2);
  cache.pin(/*group=*/7);
  cache.insert<Tagged>(10, std::make_shared<Tagged>(Tagged{10}), {.pin_group = 7});
  cache.insert<Tagged>(11, std::make_shared<Tagged>(Tagged{11}), {.pin_group = 7});
  EXPECT_EQ(cache.stats().pinned_slots, 2u);

  // Every nominal slot is pinned: a flood of colder inserts grows overflow
  // slots instead of dropping a pinned artifact mid-read.
  for (std::uint64_t key = 100; key < 110; ++key) {
    cache.insert<Tagged>(key, std::make_shared<Tagged>(Tagged{key}));
  }
  EXPECT_NE(cache.find<Tagged>(10), nullptr) << "pinned entries are never evicted";
  EXPECT_NE(cache.find<Tagged>(11), nullptr);
  EXPECT_GT(cache.num_slots(), 2u) << "the flood went to overflow slots";

  // Retire the group: entries reclaimed, overflow shrinks back toward the
  // nominal capacity, the pinned gauge returns to zero.
  cache.purge_group(7);
  cache.unpin(7);
  EXPECT_EQ(cache.find<Tagged>(10), nullptr);
  EXPECT_EQ(cache.stats().pinned_slots, 0u);
}

TEST(ArtifactCache, UnpinnedGroupEntriesRejoinLruOrder) {
  ArtifactCache cache(/*slots=*/2);
  cache.pin(3);
  cache.insert<Tagged>(30, std::make_shared<Tagged>(Tagged{30}), {.pin_group = 3});
  cache.insert<Tagged>(31, std::make_shared<Tagged>(Tagged{31}), {.pin_group = 3});
  cache.unpin(3);
  EXPECT_EQ(cache.stats().pinned_slots, 0u);
  cache.insert<Tagged>(32, std::make_shared<Tagged>(Tagged{32}));
  EXPECT_EQ(cache.find<Tagged>(30), nullptr)
      << "after the last unpin the group's LRU entry is an ordinary victim";
  EXPECT_EQ(cache.num_slots(), 2u) << "no overflow growth once nothing is pinned";
}

TEST(ArtifactCache, TenantOverQuotaDisplacesOnlyItsOwnEntries) {
  ArtifactCache cache(/*slots=*/8);
  cache.set_tenant_quota(2);

  cache.insert<Tagged>(1, std::make_shared<Tagged>(Tagged{1}), {.tenant = 1});
  cache.insert<Tagged>(2, std::make_shared<Tagged>(Tagged{2}), {.tenant = 1});
  cache.insert<Tagged>(3, std::make_shared<Tagged>(Tagged{3}), {.tenant = 2});
  EXPECT_NE(cache.find<Tagged>(1), nullptr);  // tenant 1's LRU is now key 2

  // Tenant 1 is at its cap: the insert displaces tenant 1's own LRU entry —
  // even though five slots are still empty and tenant 2's entry is colder.
  cache.insert<Tagged>(4, std::make_shared<Tagged>(Tagged{4}), {.tenant = 1});
  EXPECT_EQ(cache.find<Tagged>(2), nullptr) << "the tenant pays with its own LRU entry";
  EXPECT_NE(cache.find<Tagged>(1), nullptr);
  EXPECT_NE(cache.find<Tagged>(4), nullptr);
  EXPECT_NE(cache.find<Tagged>(3), nullptr) << "another tenant's entry is untouchable";

  // Untagged inserts (tenant 0) are never capped.
  for (std::uint64_t key = 100; key < 104; ++key) {
    cache.insert<Tagged>(key, std::make_shared<Tagged>(Tagged{key}));
  }
  EXPECT_NE(cache.find<Tagged>(3), nullptr);
}

TEST(Executor, ScopedCacheOwnerInstallsAndRestores) {
  const exec::Executor exec(exec::serial_backend());
  EXPECT_EQ(exec.cache_owner().pin_group, 0u);
  EXPECT_EQ(exec.cache_owner().tenant, 0u);
  {
    const exec::ScopedCacheOwner outer(exec, {.pin_group = 9, .tenant = 4});
    EXPECT_EQ(exec.cache_owner().pin_group, 9u);
    EXPECT_EQ(exec.cache_owner().tenant, 4u);
    {
      const exec::ScopedCacheOwner inner(exec, {.pin_group = 0, .tenant = 4});
      EXPECT_EQ(exec.cache_owner().pin_group, 0u);
    }
    EXPECT_EQ(exec.cache_owner().pin_group, 9u) << "nested scopes restore outward";
  }
  EXPECT_EQ(exec.cache_owner().tenant, 0u);
}

TEST(Executor, SharedArtifactCacheInstallAndRestore) {
  const exec::Executor parent(exec::serial_backend());
  const exec::Executor worker(exec::serial_backend());
  ASSERT_NE(&parent.artifact_cache(), &worker.artifact_cache());

  worker.use_shared_artifact_cache(&parent.artifact_cache());
  EXPECT_EQ(&worker.artifact_cache(), &parent.artifact_cache());
  worker.artifact_cache().insert<Tagged>(5, std::make_shared<Tagged>(Tagged{5}));
  EXPECT_NE(parent.artifact_cache().find<Tagged>(5), nullptr)
      << "the worker's inserts land in the parent's cache";

  worker.use_shared_artifact_cache(nullptr);
  EXPECT_NE(&worker.artifact_cache(), &parent.artifact_cache());
  EXPECT_EQ(worker.artifact_cache().find<Tagged>(5), nullptr)
      << "the own cache was never written";
}

}  // namespace
