// The ArtifactCache under concurrency: the locking contract that lets batch
// slot executors share one cache — plus slot sizing, LRU order and the
// shared-cache installation on Executor.  The stress tests are what the CI
// ThreadSanitizer matrix entry race-checks.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "pandora/exec/executor.hpp"
#include "pandora/exec/fingerprint.hpp"

namespace {

using namespace pandora;
using exec::ArtifactCache;

/// A self-describing artifact: its payload is its own fingerprint, so any
/// cross-keyed read is detectable.
struct Tagged {
  std::uint64_t fingerprint;
};

TEST(ArtifactCache, LruEvictsTheLeastRecentlyTouched) {
  ArtifactCache cache(/*slots=*/2);
  cache.insert<Tagged>(1, std::make_shared<Tagged>(Tagged{1}));
  cache.insert<Tagged>(2, std::make_shared<Tagged>(Tagged{2}));
  ASSERT_NE(cache.find<Tagged>(1), nullptr);  // touch 1: 2 becomes LRU
  cache.insert<Tagged>(3, std::make_shared<Tagged>(Tagged{3}));
  EXPECT_EQ(cache.find<Tagged>(2), nullptr) << "2 was least recently used";
  EXPECT_NE(cache.find<Tagged>(1), nullptr);
  EXPECT_NE(cache.find<Tagged>(3), nullptr);
}

TEST(ArtifactCache, InsertReplacesMatchingEntryInPlace) {
  // A stale value re-inserted under its key must supersede the old entry,
  // not shadow it behind a duplicate (the spatial caches' points-identity
  // check depends on this to heal stale entries).
  ArtifactCache cache(/*slots=*/4);
  cache.insert<Tagged>(9, std::make_shared<Tagged>(Tagged{1}));
  cache.insert<Tagged>(10, std::make_shared<Tagged>(Tagged{10}));
  cache.insert<Tagged>(9, std::make_shared<Tagged>(Tagged{2}));
  const auto hit = cache.find<Tagged>(9);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->fingerprint, 2u) << "the re-insert replaced the old value";
  // Only one slot is occupied by key 9: two more inserts still fit without
  // evicting key 10.
  cache.insert<Tagged>(11, std::make_shared<Tagged>(Tagged{11}));
  cache.insert<Tagged>(12, std::make_shared<Tagged>(Tagged{12}));
  EXPECT_NE(cache.find<Tagged>(10), nullptr);
}

TEST(ArtifactCache, TypeIsPartOfTheKey) {
  struct OtherType {
    int x;
  };
  ArtifactCache cache;
  cache.insert<Tagged>(7, std::make_shared<Tagged>(Tagged{7}));
  EXPECT_EQ(cache.find<OtherType>(7), nullptr)
      << "same fingerprint, different type must miss";
  EXPECT_NE(cache.find<Tagged>(7), nullptr);
}

TEST(ArtifactCache, HitsKeepEvictedValuesAlive) {
  ArtifactCache cache(/*slots=*/1);
  cache.insert<Tagged>(1, std::make_shared<Tagged>(Tagged{1}));
  const std::shared_ptr<Tagged> held = cache.find<Tagged>(1);
  cache.insert<Tagged>(2, std::make_shared<Tagged>(Tagged{2}));  // evicts 1
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->fingerprint, 1u) << "a returned shared_ptr owns the value";
}

TEST(ArtifactCache, ConcurrentFindInsertStress) {
  // Hammer one cache from many threads with overlapping fingerprints.  Under
  // -fsanitize=thread this is the race check for the batch serving layer;
  // without it, it still asserts the contract: a find never returns a value
  // whose payload disagrees with the queried fingerprint.
  ArtifactCache cache(/*slots=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint64_t kKeySpace = 16;  // 4x the slots: constant eviction

  std::vector<std::thread> pool;
  std::vector<int> mismatches(kThreads, 0);
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      std::uint64_t state = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        state = exec::mix_fingerprint(state + 1);
        const std::uint64_t key = state % kKeySpace;
        if (state & 1) {
          cache.insert<Tagged>(key, std::make_shared<Tagged>(Tagged{key}));
        } else if (const std::shared_ptr<Tagged> hit = cache.find<Tagged>(key)) {
          if (hit->fingerprint != key) ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
  const auto stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(ArtifactCache, ConcurrentClearIsSafe) {
  ArtifactCache cache(/*slots=*/4);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (int op = 0; op < 2000; ++op) {
        const auto key = static_cast<std::uint64_t>(op % 8);
        switch ((op + t) % 3) {
          case 0: cache.insert<Tagged>(key, std::make_shared<Tagged>(Tagged{key})); break;
          case 1: (void)cache.find<Tagged>(key); break;
          default: cache.clear(); break;
        }
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
}

TEST(Executor, SharedArtifactCacheInstallAndRestore) {
  const exec::Executor parent(exec::serial_backend());
  const exec::Executor worker(exec::serial_backend());
  ASSERT_NE(&parent.artifact_cache(), &worker.artifact_cache());

  worker.use_shared_artifact_cache(&parent.artifact_cache());
  EXPECT_EQ(&worker.artifact_cache(), &parent.artifact_cache());
  worker.artifact_cache().insert<Tagged>(5, std::make_shared<Tagged>(Tagged{5}));
  EXPECT_NE(parent.artifact_cache().find<Tagged>(5), nullptr)
      << "the worker's inserts land in the parent's cache";

  worker.use_shared_artifact_cache(nullptr);
  EXPECT_NE(&worker.artifact_cache(), &parent.artifact_cache());
  EXPECT_EQ(worker.artifact_cache().find<Tagged>(5), nullptr)
      << "the own cache was never written";
}

}  // namespace
