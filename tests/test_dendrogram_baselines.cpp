// Direct behavioural tests of the two baseline constructions (Algorithms 1
// and 2) on hand-checkable trees; the large-scale agreement with PANDORA is
// covered by test_dendrogram_equivalence.

#include <gtest/gtest.h>

#include "pandora/dendrogram/analysis.hpp"
#include "pandora/dendrogram/top_down.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::Dendrogram;

// Star with ascending weights: edge i (0-based, weight i+1) connects the hub.
// Sorted descending, edge rank r corresponds to original edge n-1-r.  The
// dendrogram must be a single chain: rank 0 root, each rank's parent the one
// above — the Theorem 4 sorting construction.
TEST(UnionFindDendrogram, StarWithAscendingWeightsIsASortedChain) {
  const index_t nv = 64;
  graph::EdgeList tree = data::star_tree(nv);
  data::assign_increasing_weights(tree);
  const Dendrogram d = dendrogram::union_find_dendrogram(exec::default_executor(), tree, nv);
  dendrogram::validate_dendrogram(d);
  EXPECT_EQ(d.parent[0], kNone);
  for (index_t e = 1; e < d.num_edges; ++e)
    EXPECT_EQ(d.parent[static_cast<std::size_t>(e)], e - 1) << "chain broken at " << e;
  EXPECT_EQ(dendrogram::height(d), d.num_edges);
  // The hub vertex falls out at the lightest edge (the deepest chain node);
  // every leaf vertex hangs off its own edge.
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(0))], d.num_edges - 1);
}

TEST(UnionFindDendrogram, PathWithAscendingWeightsIsAComb) {
  // Path 0-1-2-...-n with weight i+1 on edge (i, i+1): removing the heaviest
  // edge always splits off a single vertex; each edge's parent is the next
  // heavier edge.
  const index_t nv = 32;
  graph::EdgeList tree = data::path_tree(nv);
  data::assign_increasing_weights(tree);
  const Dendrogram d = dendrogram::union_find_dendrogram(exec::default_executor(), tree, nv);
  dendrogram::validate_dendrogram(d);
  for (index_t e = 1; e < d.num_edges; ++e)
    EXPECT_EQ(d.parent[static_cast<std::size_t>(e)], e - 1);
  const auto counts = dendrogram::classify_edges(d);
  EXPECT_EQ(counts.alpha_edges, 0);
  EXPECT_EQ(counts.leaf_edges, 1);
  EXPECT_EQ(counts.chain_edges, d.num_edges - 1);
}

TEST(UnionFindDendrogram, BalancedFourPointExample) {
  // Two tight pairs joined by a long bridge:
  //   0 -1.0- 1   (edge 0)
  //   2 -1.5- 3   (edge 1)
  //   1 -9.0- 2   (edge 2, the bridge)
  const graph::EdgeList tree{{0, 1, 1.0}, {2, 3, 1.5}, {1, 2, 9.0}};
  const Dendrogram d = dendrogram::union_find_dendrogram(exec::default_executor(), tree, 4);
  // Sorted descending: rank0 = bridge(9.0), rank1 = 1.5, rank2 = 1.0.
  EXPECT_EQ(d.edge_order, (std::vector<index_t>{2, 1, 0}));
  EXPECT_EQ(d.parent[0], kNone);
  EXPECT_EQ(d.parent[1], 0);  // both pair-edges are children of the bridge
  EXPECT_EQ(d.parent[2], 0);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(0))], 2);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(1))], 2);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(2))], 1);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(3))], 1);
  const auto counts = dendrogram::classify_edges(d);
  EXPECT_EQ(counts.alpha_edges, 1);
  EXPECT_EQ(counts.leaf_edges, 2);
}

TEST(TopDownDendrogram, MatchesUnionFindOnPaperStyleExample) {
  // A 12-vertex tree with mixed chain/branch structure.
  pandora::Rng rng(21);
  graph::EdgeList tree = data::preferential_attachment_tree(12, rng);
  data::assign_random_weights(tree, rng);
  const Dendrogram a = dendrogram::union_find_dendrogram(exec::default_executor(), tree, 12);
  const Dendrogram b = dendrogram::top_down_dendrogram(tree, 12);
  EXPECT_EQ(a.parent, b.parent);
}

TEST(TopDownDendrogram, HandlesSingleEdgeAndTwoEdges) {
  {
    const graph::EdgeList tree{{0, 1, 1.0}};
    const Dendrogram d = dendrogram::top_down_dendrogram(tree, 2);
    EXPECT_EQ(d.parent[0], kNone);
  }
  {
    const graph::EdgeList tree{{0, 1, 2.0}, {1, 2, 1.0}};
    const Dendrogram d = dendrogram::top_down_dendrogram(tree, 3);
    EXPECT_EQ(d.parent[0], kNone);
    EXPECT_EQ(d.parent[1], 0);
    // Vertex 0 detaches at the heavy edge; 1 and 2 at the light one.
    EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(0))], 0);
    EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(1))], 1);
    EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(2))], 1);
  }
}

TEST(UnionFindDendrogram, PhaseTimesAreRecorded) {
  pandora::Rng rng(5);
  graph::EdgeList tree = data::random_attachment_tree(5000, rng);
  data::assign_random_weights(tree, rng);
  // The Profiler hook subsumes the old PhaseTimes* out-params.
  const exec::Executor executor(exec::default_backend());
  exec::PhaseTimesProfiler profiler;
  executor.set_profiler(&profiler);
  (void)dendrogram::union_find_dendrogram(executor, tree, 5000);
  executor.set_profiler(nullptr);
  EXPECT_GT(profiler.times().get("sort"), 0.0);
  EXPECT_GT(profiler.times().get("dendrogram"), 0.0);
}

}  // namespace
