// The Executor execution context: workspace arena semantics (lease recycling,
// allocation stats, determinism of reuse), thread budget resolution, and the
// Profiler hook that subsumes the old PhaseTimes* out-params.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pandora/data/tree_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/parallel.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::Topology;
using pandora::testing::make_tree;

TEST(Workspace, TakeFillsAndSizes) {
  exec::Workspace workspace;
  auto lease = workspace.take<index_t>(100, kNone);
  EXPECT_EQ(lease.size(), 100u);
  for (const index_t v : lease) EXPECT_EQ(v, kNone);
  auto uninit = workspace.take_uninit<double>(7);
  EXPECT_EQ(uninit.size(), 7u);
  auto empty = workspace.take_uninit<index_t>(0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
}

TEST(Workspace, ReleasedBlocksAreRecycled) {
  exec::Workspace workspace;
  const index_t* first_data = nullptr;
  {
    auto lease = workspace.take<index_t>(5000, 0);
    first_data = lease.data();
  }  // lease returns the block to its size class
  EXPECT_EQ(workspace.stats().takes, 1u);
  EXPECT_EQ(workspace.stats().misses, 1u);
  {
    auto lease = workspace.take<index_t>(5000, 0);
    // Same-size re-acquisition reuses the identical block (LIFO free list).
    EXPECT_EQ(lease.data(), first_data);
  }
  EXPECT_EQ(workspace.stats().takes, 2u);
  EXPECT_EQ(workspace.stats().hits, 1u);
  EXPECT_EQ(workspace.stats().misses, 1u);
}

TEST(Workspace, BlocksAreSharedAcrossElementTypes) {
  // The arena hands out raw byte blocks: scratch taken as index_t on one call
  // serves a double request of the same byte footprint on the next — the
  // size-class design that keeps retained memory low on mixed workloads.
  exec::Workspace workspace;
  const void* block = nullptr;
  {
    auto lease = workspace.take<index_t>(1024, 0);  // 4 KiB class
    block = lease.data();
  }
  {
    auto lease = workspace.take_uninit<double>(512);  // 4 KiB class too
    EXPECT_EQ(static_cast<const void*>(lease.data()), block);
  }
  EXPECT_EQ(workspace.stats().hits, 1u);
  EXPECT_EQ(workspace.stats().misses, 1u);
}

TEST(Workspace, SmallerRequestReusesALargerFreeBlock) {
  exec::Workspace workspace;
  { auto lease = workspace.take<index_t>(1000, 0); }  // 4 KiB class
  workspace.reset_stats();
  { auto lease = workspace.take<index_t>(500, 0); }  // 2 KiB class: larger block serves
  EXPECT_EQ(workspace.stats().hits, 1u);
  { auto lease = workspace.take<index_t>(2000, 0); }  // 8 KiB class: must allocate
  EXPECT_EQ(workspace.stats().misses, 1u);
}

TEST(Workspace, ConcurrentLeasesGetDistinctBuffers) {
  exec::Workspace workspace;
  auto a = workspace.take<index_t>(64, 1);
  auto b = workspace.take<index_t>(64, 2);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 2);
}

TEST(Workspace, ClearDropsCachedBuffers) {
  exec::Workspace workspace;
  { auto lease = workspace.take<index_t>(4096, 0); }
  EXPECT_GT(workspace.retained_bytes(), 0u);
  workspace.clear();
  EXPECT_EQ(workspace.retained_bytes(), 0u);
  workspace.reset_stats();
  { auto lease = workspace.take<index_t>(4096, 0); }
  EXPECT_EQ(workspace.stats().misses, 1u);
}

TEST(Workspace, ClearWithOutstandingLeaseIsSafe) {
  // clear() drops only the *free* blocks; a live lease keeps its block and
  // simply returns it afterwards.
  exec::Workspace workspace;
  auto lease = workspace.take<index_t>(256, 7);
  workspace.clear();
  EXPECT_EQ(lease[0], 7);                     // the leased block is untouched
  lease = exec::Workspace::Lease<index_t>{};  // release into the cleared arena
  workspace.reset_stats();
  { auto again = workspace.take<index_t>(256, 0); }
  EXPECT_EQ(workspace.stats().hits, 1u) << "the returned block is reusable";
}

TEST(Workspace, IdenticalCallSequencesAcquireIdenticalBlocks) {
  // LIFO free lists make reuse deterministic: the same take/release sequence
  // sees the same addresses, run after run.
  exec::Workspace workspace;
  std::vector<const void*> first, second;
  for (int round = 0; round < 2; ++round) {
    auto& log = round == 0 ? first : second;
    auto a = workspace.take_uninit<std::uint64_t>(1000);
    auto b = workspace.take_uninit<index_t>(3000);
    log.push_back(a.data());
    log.push_back(b.data());
    auto c = workspace.take_uninit<double>(500);
    log.push_back(c.data());
  }
  EXPECT_EQ(first, second);
}

TEST(Executor, ThreadBudgetResolution) {
  // The budget is answered by the backend, never by global runtime state:
  // the serial backend grants 1 regardless of the request, OpenMP grants
  // explicit requests verbatim (its runtime oversubscribes), and the pinned
  // pool clamps to its fixed capacity.
  EXPECT_EQ(exec::Executor(exec::serial_backend()).num_threads(), 1);
  EXPECT_EQ(exec::Executor(exec::serial_backend(), 8).num_threads(), 1);
  EXPECT_EQ(exec::Executor(exec::openmp_backend(), 3).num_threads(), 3);
  EXPECT_GE(exec::Executor(exec::openmp_backend()).num_threads(), 1);
  const auto& pinned = exec::pinned_pool_backend();
  EXPECT_EQ(exec::Executor(pinned, pinned->concurrency() + 7).num_threads(),
            pinned->concurrency());
  EXPECT_GE(exec::Executor(exec::default_backend()).num_threads(), 1);
  EXPECT_STREQ(exec::Executor(exec::serial_backend()).name(), "serial");
  EXPECT_STREQ(exec::Executor(exec::openmp_backend()).name(), "openmp");
  EXPECT_STREQ(exec::Executor(pinned).name(), "pinned");
}

TEST(Executor, NestedExecutorsReportTruthfulBudgets) {
  // A batch serving slot is an executor on the serial backend: whatever the
  // global machine state, it must answer 1 — its kernels never fork.
  const exec::Executor parent(exec::openmp_backend(), 4);
  const exec::Executor slot(exec::serial_backend());
  EXPECT_EQ(parent.num_threads(), 4);
  EXPECT_EQ(parent.requested_threads(), 4);
  EXPECT_EQ(slot.num_threads(), 1);
  EXPECT_FALSE(slot.parallelize(1 << 20));
}

TEST(Executor, ParallelizeRespectsGrainBackendAndBudget) {
  const exec::Executor serial(exec::serial_backend());
  EXPECT_FALSE(serial.parallelize(1 << 20));
  const exec::Executor budget_one(exec::openmp_backend(), 1);
  EXPECT_FALSE(budget_one.parallelize(1 << 20));
  const exec::Executor parallel(exec::openmp_backend(), 4);
  EXPECT_FALSE(parallel.parallelize(exec::kParallelForGrain - 1));
  EXPECT_TRUE(parallel.parallelize(exec::kParallelForGrain));
}

TEST(Executor, RecordPhaseWithoutProfilerIsANoop) {
  const exec::Executor executor(exec::serial_backend());
  EXPECT_EQ(executor.profiler(), nullptr);
  executor.record_phase("anything", 1.0);  // must not crash
}

TEST(Executor, ProfilerReceivesPhases) {
  const exec::Executor executor(exec::serial_backend());
  exec::PhaseTimesProfiler profiler;
  executor.set_profiler(&profiler);
  executor.record_phase("alpha", 0.25);
  executor.record_phase("alpha", 0.25);
  executor.phase("beta", [] {});
  executor.set_profiler(nullptr);
  EXPECT_DOUBLE_EQ(profiler.times().get("alpha"), 0.5);
  EXPECT_GE(profiler.times().get("beta"), 0.0);
  EXPECT_EQ(profiler.times().all().count("beta"), 1u);
}

TEST(Executor, ScopedPhaseTimesChainsAndRestores) {
  const exec::Executor executor(exec::serial_backend());
  exec::PhaseTimesProfiler outer;
  executor.set_profiler(&outer);
  PhaseTimes inner;
  {
    exec::ScopedPhaseTimes scope(executor, &inner);
    executor.record_phase("x", 1.0);
  }
  executor.set_profiler(nullptr);
  // Both the scoped sink and the previously attached profiler observed "x".
  EXPECT_DOUBLE_EQ(inner.get("x"), 1.0);
  EXPECT_DOUBLE_EQ(outer.times().get("x"), 1.0);
}

TEST(Executor, ScopedPhaseTimesWithNullSinkIsTransparent) {
  const exec::Executor executor(exec::serial_backend());
  exec::PhaseTimesProfiler outer;
  executor.set_profiler(&outer);
  {
    exec::ScopedPhaseTimes scope(executor, nullptr);
    executor.record_phase("y", 2.0);
  }
  executor.set_profiler(nullptr);
  EXPECT_DOUBLE_EQ(outer.times().get("y"), 2.0);
}

TEST(Executor, RepeatedDendrogramsAllocateNothingAfterWarmup) {
  // The acceptance property of the workspace arena: on same-sized inputs,
  // the second and later pipeline runs are served entirely from recycled
  // buffers.
  const graph::EdgeList tree = make_tree(Topology::preferential, 20000, 3, 0);
  const exec::Executor executor(exec::default_backend());
  (void)dendrogram::pandora_dendrogram(executor, tree, 20000);  // warm-up
  executor.workspace().reset_stats();
  (void)dendrogram::pandora_dendrogram(executor, tree, 20000);
  EXPECT_GT(executor.workspace().stats().takes, 0u);
  EXPECT_EQ(executor.workspace().stats().misses, 0u)
      << "steady-state dendrogram construction must reuse every scratch buffer";
}

TEST(Executor, DefaultExecutorsAreDistinctPerBackend) {
  const exec::Executor& serial = exec::default_executor(exec::serial_backend());
  const exec::Executor& openmp = exec::default_executor(exec::openmp_backend());
  EXPECT_NE(&serial, &openmp);
  EXPECT_EQ(&serial.backend(), exec::serial_backend().get());
  EXPECT_EQ(&openmp.backend(), exec::openmp_backend().get());
  // The no-argument form resolves to whatever backend PANDORA_BACKEND chose.
  EXPECT_EQ(&exec::default_executor().backend(), exec::default_backend().get());
  // Stable addresses: repeated lookups return the same context (that is what
  // lets executor-less callers amortise allocations too).
  EXPECT_EQ(&serial, &exec::default_executor(exec::serial_backend()));
  EXPECT_EQ(&exec::default_executor(), &exec::default_executor());
}

}  // namespace
