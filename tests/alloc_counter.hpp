#pragma once

// Global allocation counting for the zero-allocation steady-state tests.
//
// Including this header DEFINES the replaceable global `operator new` /
// `operator delete` functions (counting every heap allocation of the
// process), so it must be included in exactly ONE translation unit of a
// binary.  The counters are atomics: OpenMP worker threads allocating inside
// a measured region are counted too — which is the point.

#include <atomic>
#include <cstdlib>
#include <new>

namespace pandora::testing {

inline std::atomic<std::size_t> g_allocation_count{0};

/// Counts allocations between construction and `count()`.
struct AllocationCounterScope {
  std::size_t start = g_allocation_count.load(std::memory_order_relaxed);
  [[nodiscard]] std::size_t count() const {
    return g_allocation_count.load(std::memory_order_relaxed) - start;
  }
};

}  // namespace pandora::testing

void* operator new(std::size_t size) {
  pandora::testing::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  while (true) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc{};
    }
  }
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  pandora::testing::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  const auto align = static_cast<std::size_t>(alignment);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  while (true) {
    if (void* p = std::aligned_alloc(align, rounded)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc{};
    }
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
