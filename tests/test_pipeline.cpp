// The fluent Pipeline builder: every terminal operation must match the free
// function it fronts, and the builder must compose with the Executor's
// workspace and profiler.

#include <gtest/gtest.h>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/spatial/emst.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::Topology;
using pandora::testing::make_tree;

TEST(Pipeline, BuildDendrogramMatchesPandoraFreeFunction) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 6000, 13, 0);
  const exec::Executor executor(exec::default_backend());
  const auto via_pipeline = Pipeline::on(executor).build_dendrogram(tree, 6000);
  const auto via_free = dendrogram::pandora_dendrogram(executor, tree, 6000);
  EXPECT_EQ(via_pipeline.parent, via_free.parent);
  EXPECT_EQ(via_pipeline.edge_order, via_free.edge_order);
}

TEST(Pipeline, UnionFindAlgorithmSelection) {
  const graph::EdgeList tree = make_tree(Topology::random_attach, 4000, 5, 3);
  const exec::Executor executor(exec::default_backend());
  const auto via_pipeline =
      Pipeline::on(executor)
          .with_dendrogram_algorithm(hdbscan::DendrogramAlgorithm::union_find)
          .build_dendrogram(tree, 4000);
  const auto via_free = dendrogram::union_find_dendrogram(executor, tree, 4000);
  EXPECT_EQ(via_pipeline.parent, via_free.parent);
  // And both agree with PANDORA (the paper's equivalence claim).
  const auto pandora_d = Pipeline::on(executor).build_dendrogram(tree, 4000);
  EXPECT_EQ(via_pipeline.parent, pandora_d.parent);
}

TEST(Pipeline, SortedEdgesPathSharesOneSort) {
  const graph::EdgeList tree = make_tree(Topology::broom, 3000, 2, 0);
  const exec::Executor executor(exec::default_backend());
  const auto pipeline = Pipeline::on(executor);
  const auto sorted = pipeline.sort_edges(tree, 3000);
  const auto from_sorted = pipeline.build_dendrogram(sorted);
  const auto from_edges = pipeline.build_dendrogram(tree, 3000);
  EXPECT_EQ(from_sorted.parent, from_edges.parent);
}

TEST(Pipeline, ExpansionPolicySelection) {
  const graph::EdgeList tree = make_tree(Topology::caterpillar, 5000, 4, 0);
  const exec::Executor executor(exec::default_backend());
  const auto multilevel = Pipeline::on(executor).build_dendrogram(tree, 5000);
  const auto single = Pipeline::on(executor)
                          .with_expansion(dendrogram::ExpansionPolicy::single_level)
                          .build_dendrogram(tree, 5000);
  EXPECT_EQ(multilevel.parent, single.parent);
}

TEST(Pipeline, ValidationRejectsNonTrees) {
  const graph::EdgeList cycle{{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 3.0}};
  const exec::Executor executor(exec::serial_backend());
  EXPECT_THROW((void)Pipeline::on(executor).with_validation().build_dendrogram(cycle, 3),
               std::invalid_argument);
  EXPECT_THROW((void)Pipeline::on(executor)
                   .with_validation()
                   .with_dendrogram_algorithm(hdbscan::DendrogramAlgorithm::union_find)
                   .build_dendrogram(cycle, 3),
               std::invalid_argument);
}

TEST(Pipeline, BuildMstSelectsMetricByMinPts) {
  const spatial::PointSet points = data::gaussian_blobs(900, 2, 3, 0.05, 0.05, 9);
  const exec::Executor executor(exec::default_backend());

  spatial::KdTree tree_a(points);
  const auto euclid = Pipeline::on(executor).with_min_pts(1).build_mst(points, tree_a);
  spatial::KdTree tree_b(points);
  const auto euclid_free = spatial::euclidean_mst(executor, points, tree_b);
  ASSERT_EQ(euclid.size(), euclid_free.size());
  for (std::size_t i = 0; i < euclid.size(); ++i) EXPECT_EQ(euclid[i], euclid_free[i]);

  spatial::KdTree tree_c(points);
  const auto mreach = Pipeline::on(executor).with_min_pts(4).build_mst(points, tree_c);
  spatial::KdTree tree_d(points);
  const auto core = hdbscan::core_distances(executor, points, tree_d, 4);
  const auto mreach_free = spatial::mutual_reachability_mst(executor, points, tree_d, core);
  ASSERT_EQ(mreach.size(), mreach_free.size());
  for (std::size_t i = 0; i < mreach.size(); ++i) EXPECT_EQ(mreach[i], mreach_free[i]);
}

TEST(Pipeline, RunHdbscanMatchesFreeFunction) {
  const spatial::PointSet points = data::power_law_blobs(1000, 2, 10, 1.3, 5);
  const exec::Executor executor(exec::default_backend());
  const auto via_pipeline = Pipeline::on(executor)
                                .with_min_pts(4)
                                .with_min_cluster_size(20)
                                .allow_single_cluster(false)
                                .run_hdbscan(points);
  hdbscan::HdbscanOptions options;
  options.min_pts = 4;
  options.min_cluster_size = 20;
  const auto via_free = hdbscan::hdbscan(executor, points, options);
  EXPECT_EQ(via_pipeline.labels, via_free.labels);
  EXPECT_EQ(via_pipeline.num_clusters, via_free.num_clusters);
}

TEST(Pipeline, SelectionOptionsReachExtraction) {
  const spatial::PointSet points = data::power_law_blobs(1000, 2, 10, 1.3, 6);
  const exec::Executor executor(exec::default_backend());
  const auto base = Pipeline::on(executor).with_min_pts(3).with_min_cluster_size(10);
  auto leaf_pipeline = base;  // builders are cheap copyable values
  const auto eom = base.run_hdbscan(points);
  const auto leaf =
      leaf_pipeline.with_cluster_selection(hdbscan::ClusterSelectionMethod::leaf)
          .run_hdbscan(points);
  // Leaf selection is at least as fine-grained as excess-of-mass.
  EXPECT_GE(leaf.num_clusters, eom.num_clusters);
}

TEST(Pipeline, ProfilerObservesPipelinePhases) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 5000, 8, 0);
  const exec::Executor executor(exec::default_backend());
  exec::PhaseTimesProfiler profiler;
  executor.set_profiler(&profiler);
  (void)Pipeline::on(executor).build_dendrogram(tree, 5000);
  executor.set_profiler(nullptr);
  EXPECT_GT(profiler.times().get("sort"), 0.0);
  EXPECT_GT(profiler.times().get("contraction"), 0.0);
  EXPECT_GT(profiler.times().get("expansion"), 0.0);
}

}  // namespace
