// Cross-cutting determinism matrix: every pipeline output must be
// bit-identical across execution spaces, repeats, AND OpenMP thread counts.
// Determinism is a design invariant (canonical union-find representatives,
// stable sorts, index tie-breaks) that the performance work must never break.

#include <gtest/gtest.h>
#include <omp.h>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::Topology;
using pandora::testing::make_tree;

/// Scoped OpenMP thread-count override.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(threads);
  }
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

class ThreadSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 3, 8, 16),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST_P(ThreadSweep, PandoraDendrogramIsThreadCountInvariant) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 30000, 11, /*distinct=*/4);
  const auto reference = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 30000);
  ThreadCountGuard guard(GetParam());
  const auto under_test = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 30000);
  ASSERT_EQ(under_test.parent, reference.parent);
  ASSERT_EQ(under_test.edge_order, reference.edge_order);
}

TEST_P(ThreadSweep, EmstIsThreadCountInvariant) {
  const spatial::PointSet points = data::power_law_blobs(5000, 3, 12, 1.2, 5);
  spatial::KdTree reference_tree(points);
  const auto reference =
      spatial::euclidean_mst(exec::default_executor(), points, reference_tree);
  ThreadCountGuard guard(GetParam());
  spatial::KdTree tree(points);
  const auto under_test = spatial::euclidean_mst(exec::default_executor(), points, tree);
  ASSERT_EQ(under_test.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(under_test[i], reference[i]) << "edge " << i;
}

TEST_P(ThreadSweep, HdbscanLabelsAreThreadCountInvariant) {
  const spatial::PointSet points = data::gaussian_blobs(4000, 2, 6, 0.03, 0.1, 17);
  hdbscan::HdbscanOptions options;
  options.min_pts = 4;
  options.min_cluster_size = 20;
  const auto reference = hdbscan::hdbscan(exec::default_executor(), points, options);
  ThreadCountGuard guard(GetParam());
  const auto under_test = hdbscan::hdbscan(exec::default_executor(), points, options);
  ASSERT_EQ(under_test.labels, reference.labels);
  ASSERT_EQ(under_test.dendrogram.parent, reference.dendrogram.parent);
}

TEST(Determinism, WorkspaceReuseIsBitIdenticalAcrossRepeatedCalls) {
  // The Executor's workspace hands repeated calls recycled buffers with stale
  // contents; results must nevertheless be bit-identical call after call,
  // and identical to a fresh-executor run (the arena is invisible).
  const graph::EdgeList tree = make_tree(Topology::preferential, 25000, 19, /*distinct=*/4);
  const exec::Executor fresh(exec::default_backend());
  const auto reference = dendrogram::pandora_dendrogram(fresh, tree, 25000);

  const exec::Executor reused(exec::default_backend());
  for (int repeat = 0; repeat < 4; ++repeat) {
    const auto d = dendrogram::pandora_dendrogram(reused, tree, 25000);
    ASSERT_EQ(d.parent, reference.parent) << "repeat " << repeat;
    ASSERT_EQ(d.edge_order, reference.edge_order) << "repeat " << repeat;
    ASSERT_EQ(d.weight, reference.weight) << "repeat " << repeat;
  }
  // And the steady state really is allocation-free, so the identical results
  // above genuinely exercised recycled buffers.
  reused.workspace().reset_stats();
  (void)dendrogram::pandora_dendrogram(reused, tree, 25000);
  EXPECT_EQ(reused.workspace().stats().misses, 0u);
}

TEST(Determinism, WorkspaceReuseAcrossDifferentInputSizes) {
  // Shrinking and regrowing inputs on one executor must not leak state
  // between calls.
  const exec::Executor executor(exec::default_backend());
  for (const index_t n : {20000, 500, 20000, 7777, 20000}) {
    const graph::EdgeList tree = make_tree(Topology::random_attach, n, 23, 0);
    const exec::Executor isolated(exec::default_backend());
    const auto expected = dendrogram::pandora_dendrogram(isolated, tree, n);
    const auto got = dendrogram::pandora_dendrogram(executor, tree, n);
    ASSERT_EQ(got.parent, expected.parent) << "n=" << n;
  }
}

TEST(Determinism, HdbscanOnReusedExecutorIsBitIdentical) {
  const spatial::PointSet points = data::gaussian_blobs(3000, 2, 5, 0.03, 0.1, 29);
  hdbscan::HdbscanOptions options;
  options.min_pts = 4;
  options.min_cluster_size = 15;
  const exec::Executor executor(exec::default_backend());
  const auto first = hdbscan::hdbscan(executor, points, options);
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto again = hdbscan::hdbscan(executor, points, options);
    ASSERT_EQ(again.labels, first.labels);
    ASSERT_EQ(again.dendrogram.parent, first.dendrogram.parent);
  }
}

TEST(Determinism, RngStreamsAreStablePerSeed) {
  Rng a(12345), b(12345), c(54321);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next_u64();
    ASSERT_EQ(va, b.next_u64());
    diverged |= va != c.next_u64();
  }
  EXPECT_TRUE(diverged);
}

TEST(Determinism, GeneratorsAreThreadCountInvariant) {
  // Generators are sequential by design; a thread-count change around them
  // must not matter.  (Guards against someone parallelising them without
  // per-point seeding.)
  const auto reference = data::make_dataset("HaccProxy", 20000, 3);
  ThreadCountGuard guard(2);
  const auto under_test = data::make_dataset("HaccProxy", 20000, 3);
  EXPECT_EQ(under_test.coords(), reference.coords());
}

}  // namespace
