#include <gtest/gtest.h>

#include <cmath>

#include "pandora/data/point_generators.hpp"
#include "pandora/spatial/brute_force.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/knn.hpp"

namespace {

using namespace pandora;
using spatial::KdTree;
using spatial::Neighbor;
using spatial::PointSet;

class KnnSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (dim, k)

INSTANTIATE_TEST_SUITE_P(Sweep, KnnSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 7),
                                            ::testing::Values(1, 2, 8, 16)));

TEST_P(KnnSweep, MatchesBruteForce) {
  const auto& [dim, k] = GetParam();
  const PointSet points = data::uniform_points(400, dim, 17 + static_cast<unsigned>(dim));
  const KdTree tree(points);
  std::vector<Neighbor> got;
  for (index_t q = 0; q < points.size(); q += 7) {
    tree.knn(q, k, got);
    const std::vector<Neighbor> expected = spatial::brute_force_knn(points, q, k);
    ASSERT_EQ(got.size(), expected.size()) << "q=" << q;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i].squared_distance, expected[i].squared_distance)
          << "q=" << q << " i=" << i;
      ASSERT_EQ(got[i].index, expected[i].index) << "q=" << q << " i=" << i;
    }
  }
}

TEST(KdTree, KnnWithDuplicatePointsIsDeterministic) {
  // Ten copies of each of 40 locations: distance ties everywhere; ties must
  // resolve by index.
  PointSet points(2, 400);
  Rng rng(3);
  for (index_t i = 0; i < 40; ++i) {
    const double x = rng.next_double(), y = rng.next_double();
    for (index_t c = 0; c < 10; ++c) {
      points.at(i * 10 + c, 0) = x;
      points.at(i * 10 + c, 1) = y;
    }
  }
  const KdTree tree(points);
  std::vector<Neighbor> got;
  for (index_t q = 0; q < points.size(); q += 13) {
    tree.knn(q, 5, got);
    const auto expected = spatial::brute_force_knn(points, q, 5);
    for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i].index, expected[i].index);
    // The nine colocated copies dominate the neighbour list.
    EXPECT_DOUBLE_EQ(got[0].squared_distance, 0.0);
  }
}

TEST(KdTree, KnnRequestLargerThanDataset) {
  const PointSet points = data::uniform_points(5, 3, 1);
  const KdTree tree(points);
  std::vector<Neighbor> got;
  tree.knn(0, 100, got);
  EXPECT_EQ(got.size(), 4u);  // everything except the query itself
}

TEST(KdTree, NearestOtherComponentHonorsFilterAndAnnotation) {
  const PointSet points = data::uniform_points(500, 2, 5);
  const KdTree tree(points);
  // Components: left half-plane (0), right half-plane (1).
  std::vector<index_t> component(500);
  for (index_t i = 0; i < 500; ++i) component[static_cast<std::size_t>(i)] =
      points.at(i, 0) < 0.5 ? 0 : 1;
  spatial::KdTreeAnnotations notes;
  tree.annotate_components(exec::default_executor(exec::serial_backend()), component, notes);

  for (index_t q = 0; q < 500; q += 11) {
    const index_t mine = component[static_cast<std::size_t>(q)];
    const Neighbor got = tree.nearest_other_component(q, mine, component, notes);
    // Brute force reference.
    Neighbor expected;
    for (index_t p = 0; p < 500; ++p) {
      if (component[static_cast<std::size_t>(p)] == mine) continue;
      const Neighbor cand{points.squared_distance(q, p), p};
      if (cand < expected) expected = cand;
    }
    ASSERT_EQ(got.index, expected.index) << "q=" << q;
    ASSERT_DOUBLE_EQ(got.squared_distance, expected.squared_distance);
  }
}

TEST(KdTree, NearestOtherComponentMreachMatchesBruteForce) {
  const PointSet points = data::gaussian_blobs(300, 3, 5, 0.05, 0.1, 9);
  const KdTree tree(points);
  // Core distances (minPts = 4 -> 3rd neighbour).
  std::vector<Neighbor> scratch;
  std::vector<double> core_sq(300);
  for (index_t q = 0; q < 300; ++q) {
    tree.knn(q, 3, scratch);
    core_sq[static_cast<std::size_t>(q)] = scratch.back().squared_distance;
  }
  std::vector<index_t> component(300);
  for (index_t i = 0; i < 300; ++i) component[static_cast<std::size_t>(i)] = i % 7;
  spatial::KdTreeAnnotations notes;
  tree.annotate_components(exec::default_executor(), component, notes);
  tree.annotate_min_core(exec::default_executor(), core_sq, notes);

  for (index_t q = 0; q < 300; q += 5) {
    const index_t mine = component[static_cast<std::size_t>(q)];
    const Neighbor got =
        tree.nearest_other_component_mreach(q, mine, component, core_sq, notes);
    Neighbor expected;
    for (index_t p = 0; p < 300; ++p) {
      if (component[static_cast<std::size_t>(p)] == mine) continue;
      const double score = std::max({points.squared_distance(q, p),
                                     core_sq[static_cast<std::size_t>(q)],
                                     core_sq[static_cast<std::size_t>(p)]});
      const Neighbor cand{score, p};
      if (cand < expected) expected = cand;
    }
    ASSERT_EQ(got.index, expected.index) << "q=" << q;
    ASSERT_DOUBLE_EQ(got.squared_distance, expected.squared_distance);
  }
}

TEST(KdTree, KthNeighborDistancesSerialEqualsParallel) {
  const PointSet points = data::normal_points(2000, 3, 12);
  const KdTree tree(points);
  const auto serial = spatial::kth_neighbor_distances(exec::default_executor(exec::serial_backend()), points, tree, 4);
  const auto parallel = spatial::kth_neighbor_distances(exec::default_executor(), points, tree, 4);
  EXPECT_EQ(serial, parallel);
  // And each equals brute force.
  for (index_t q = 0; q < 2000; q += 97) {
    const auto expected = spatial::brute_force_knn(points, q, 4);
    EXPECT_DOUBLE_EQ(serial[static_cast<std::size_t>(q)],
                     std::sqrt(expected.back().squared_distance));
  }
}

}  // namespace
