// The obs:: telemetry contracts: exact log2 histogram buckets, quantiles
// quoted as bucket upper bounds, lossless concurrent recording (the gcc-tsan
// CI lane runs this suite as the telemetry race stress), per-thread trace
// rings with counted drops — and the load-bearing one, verified with a
// replaced global operator new: recording metrics and emitting spans on a
// warm serving path allocates NOTHING, so instrumentation never invalidates
// the zero-heap steady-state gates.

#include "alloc_counter.hpp"  // must precede everything that allocates

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "pandora/dendrogram/pandora.hpp"
#include "pandora/obs/metrics.hpp"
#include "pandora/obs/trace.hpp"
#include "pandora/pipeline.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::AllocationCounterScope;
using pandora::testing::Topology;
using pandora::testing::make_tree;

// --- histogram bucketing ----------------------------------------------------

TEST(Histogram, BucketBoundariesAreExactPowersOfTwo) {
  // bucket 0 <- the value 0; bucket b (b >= 1) <- bit_width b, [2^(b-1), 2^b).
  static_assert(obs::Histogram::bucket_index(0) == 0);
  static_assert(obs::Histogram::bucket_index(1) == 1);
  static_assert(obs::Histogram::bucket_index(2) == 2);
  static_assert(obs::Histogram::bucket_index(3) == 2);
  static_assert(obs::Histogram::bucket_index(4) == 3);
  static_assert(obs::Histogram::bucket_index(7) == 3);
  static_assert(obs::Histogram::bucket_index(8) == 4);

  for (int b = 1; b < obs::Histogram::kNumBuckets - 1; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(obs::Histogram::bucket_index(lo), b) << "lower edge of bucket " << b;
    EXPECT_EQ(obs::Histogram::bucket_index(hi), b) << "upper edge of bucket " << b;
    EXPECT_EQ(obs::Histogram::bucket_upper_ns(b), hi);
  }
  // The last bucket absorbs everything beyond 2^62 and quotes 2^63.
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}), obs::Histogram::kNumBuckets - 1);
  EXPECT_EQ(obs::Histogram::bucket_upper_ns(obs::Histogram::kNumBuckets - 1),
            std::uint64_t{1} << 63);
}

TEST(Histogram, BucketCountsAreExact) {
  obs::Histogram h;
  h.observe_ns(0);                          // bucket 0
  h.observe_ns(1);                          // bucket 1
  for (int i = 0; i < 5; ++i) h.observe_ns(100);  // bit_width(100) = 7
  h.observe_ns(127);                        // still bucket 7
  h.observe_ns(128);                        // bucket 8

  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(7), 6u);
  EXPECT_EQ(h.bucket_count(8), 1u);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 1e-9 * (0 + 1 + 5 * 100 + 127 + 128));

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(7), 0u);
}

TEST(Histogram, QuantilesQuoteContainingBucketUpperBound) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty

  // 99 fast samples (bucket 7, upper bound 127ns) and one 1ms straggler
  // (bit_width(1'000'000) = 20, upper bound 2^20 - 1 ns).
  for (int i = 0; i < 99; ++i) h.observe_ns(100);
  h.observe_ns(1'000'000);

  EXPECT_DOUBLE_EQ(h.quantile(0.5), 127e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 127e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 127e-9);  // rank 99 is still a fast one
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e-9 * ((std::uint64_t{1} << 20) - 1));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 127e-9);  // rank clamps to the 1st sample
}

TEST(Histogram, ObserveSecondsRoundsToNanoseconds) {
  obs::Histogram h;
  h.observe(-1.0);   // negative durations clamp to the zero bucket
  h.observe(1e-9);   // 1ns -> bucket 1
  h.observe(3e-9);   // 3ns -> bucket 2
  h.observe(1.0);    // 1e9 ns -> bit_width 30
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(30), 1u);
}

// --- concurrent recording (the gcc-tsan lane's telemetry stress) ------------

TEST(Metrics, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  obs::Registry reg;
  obs::Counter& counter = reg.counter("stress_total");
  obs::Gauge& gauge = reg.gauge("stress_level");
  obs::Histogram& hist = reg.histogram("stress_seconds");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.inc();
        gauge.add(t % 2 == 0 ? 1 : -1);
        hist.observe_ns(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  std::uint64_t bucket_sum = 0;
  for (int b = 0; b < obs::Histogram::kNumBuckets; ++b) bucket_sum += hist.bucket_count(b);
  EXPECT_EQ(bucket_sum, hist.count());
}

// --- registry lookups and exposition ----------------------------------------

TEST(Registry, HandlesAreStableAndLookupsReadBack) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("a_total");
  c.inc(3);
  // A later registration must not move the earlier node (std::map storage).
  for (int i = 0; i < 100; ++i) reg.counter("filler_" + std::to_string(i) + "_total");
  EXPECT_EQ(&reg.counter("a_total"), &c);
  EXPECT_EQ(reg.counter_value("a_total"), 3u);
  EXPECT_EQ(reg.counter_value("never_registered_total"), 0u);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);

  reg.gauge("g").set(-7);
  EXPECT_EQ(reg.gauge_value("g"), -7);

  reg.histogram("h_seconds").observe_ns(5);
  ASSERT_NE(reg.find_histogram("h_seconds"), nullptr);
  EXPECT_EQ(reg.find_histogram("h_seconds")->count(), 1u);

  reg.reset();  // counters and histograms zero; gauges keep tracking state
  EXPECT_EQ(reg.counter_value("a_total"), 0u);
  EXPECT_EQ(reg.find_histogram("h_seconds")->count(), 0u);
  EXPECT_EQ(reg.gauge_value("g"), -7);
}

TEST(Registry, PrometheusExpositionCarriesTypesLabelsAndBuckets) {
  obs::Registry reg;
  reg.counter("demo_jobs_total{outcome=\"ok\"}").inc(2);
  reg.counter("demo_jobs_total{outcome=\"shed\"}").inc();
  reg.gauge("demo_level").set(4);
  obs::Histogram& h = reg.histogram("demo_seconds");
  h.observe_ns(100);  // bucket 7, le 127e-9
  h.observe_ns(100);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE demo_jobs_total counter"), std::string::npos) << text;
  // One TYPE line per base name even with two labelled series.
  EXPECT_EQ(text.find("# TYPE demo_jobs_total counter"),
            text.rfind("# TYPE demo_jobs_total counter"));
  EXPECT_NE(text.find("demo_jobs_total{outcome=\"ok\"} 2"), std::string::npos);
  EXPECT_NE(text.find("demo_jobs_total{outcome=\"shed\"} 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_level gauge"), std::string::npos);
  EXPECT_NE(text.find("demo_level 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_sum"), std::string::npos);
}

TEST(Registry, JsonSnapshotHasTheGatedShape) {
  obs::Registry reg;
  reg.counter("c_total").inc(5);
  reg.gauge("g").set(-1);
  obs::Histogram& h = reg.histogram("h_seconds");
  h.observe_ns(100);

  const std::string json = reg.json();
  EXPECT_NE(json.find("\"counters\": {\"c_total\": 5}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\": {\"g\": -1}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": 1.27e-07"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\": {\"7\": 1}"), std::string::npos) << json;
}

// --- trace recorder ----------------------------------------------------------

TEST(TraceRecorder, ThreadsGetTheirOwnRingsAndNothingIsLostBelowCapacity) {
  obs::TraceRecorder recorder({.events_per_thread = 64, .max_threads = 8});
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const std::uint64_t start = recorder.now_ns();
        recorder.record("work", start, recorder.now_ns());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(recorder.events_recorded(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(recorder.events_dropped(), 0u);

  const std::string json = recorder.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos) << json;

  recorder.clear();
  EXPECT_EQ(recorder.events_recorded(), 0u);
}

TEST(TraceRecorder, FullRingWrapsAndCountsDrops) {
  obs::TraceRecorder recorder({.events_per_thread = 8, .max_threads = 2});
  for (int i = 0; i < 20; ++i) recorder.record("span", 0, 1);
  EXPECT_EQ(recorder.events_recorded(), 8u);   // ring capacity retained
  EXPECT_EQ(recorder.events_dropped(), 12u);   // the wrapped-over oldest
}

TEST(TraceRecorder, ThreadsBeyondMaxThreadsDropOutright) {
  obs::TraceRecorder recorder({.events_per_thread = 8, .max_threads = 1});
  recorder.record("owner", 0, 1);  // this thread claims the only ring
  std::thread other([&] {
    for (int i = 0; i < 3; ++i) recorder.record("homeless", 0, 1);
  });
  other.join();
  EXPECT_EQ(recorder.events_recorded(), 1u);
  EXPECT_EQ(recorder.events_dropped(), 3u);
}

TEST(TraceRecorder, LongNamesAreTruncatedNotCorrupted) {
  obs::TraceRecorder recorder({.events_per_thread = 4, .max_threads = 1});
  const std::string long_name(80, 'x');
  recorder.record(long_name, 1000, 2000);
  const std::string json = recorder.chrome_trace_json();
  EXPECT_NE(json.find(std::string(31, 'x')), std::string::npos) << json;
  EXPECT_EQ(json.find(std::string(32, 'x')), std::string::npos) << json;
}

// --- the zero-allocation contract -------------------------------------------

TEST(Observability, WarmMetricRecordingAllocatesNothing) {
  obs::Registry reg;  // registration below allocates; recording must not
  obs::Counter& counter = reg.counter("warm_total");
  obs::Gauge& gauge = reg.gauge("warm_level");
  obs::Histogram& hist = reg.histogram("warm_seconds");

  const AllocationCounterScope scope;
  for (int i = 0; i < 10000; ++i) {
    counter.inc();
    gauge.add(1);
    hist.observe_ns(static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(scope.count(), 0u) << "metric recording must be allocation-free";
}

TEST(Observability, WarmSpanRecordingAllocatesNothing) {
  obs::TraceRecorder recorder;
  recorder.record("warmup", 0, 1);  // claims this thread's ring (allocates)

  const AllocationCounterScope scope;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t start = recorder.now_ns();
    recorder.record("steady", start, recorder.now_ns());
  }
  EXPECT_EQ(scope.count(), 0u) << "span recording must be allocation-free";
}

TEST(Observability, WarmPipelineWithTracingAndMetricsAllocatesNothing) {
  // The composition gate: a steady-state dendrogram build with the metric
  // handles live AND a trace recorder installed (phase spans, run_chunks
  // spans, workspace/cache counters all firing) still never touches the
  // heap.  This is the claim that lets instrumentation stay always-on.
  const index_t nv = 20000;
  const graph::EdgeList tree = make_tree(Topology::random_attach, nv, 11, 0);
  const exec::Executor executor(exec::default_backend(), 4);
  const auto pipeline = Pipeline::on(executor);

  obs::TraceRecorder recorder;
  const exec::ScopedTrace trace(executor, &recorder);

  dendrogram::Dendrogram out;
  pipeline.build_dendrogram_into(tree, nv, out);  // warm: arena + ring claims
  pipeline.build_dendrogram_into(tree, nv, out);  // settles OpenMP team state

  const AllocationCounterScope scope;
  pipeline.build_dendrogram_into(tree, nv, out);
  EXPECT_EQ(scope.count(), 0u)
      << "tracing + metrics must not break the zero-heap steady state";
  EXPECT_GT(recorder.events_recorded(), 0u) << "spans were actually recorded";
}

}  // namespace
