#pragma once

#include <string>
#include <vector>

#include "pandora/common/rng.hpp"
#include "pandora/data/tree_generators.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::testing {

/// The tree topologies the property suites sweep over; they cover the
/// skewness spectrum from a single chain (star) to balanced.
enum class Topology {
  star,
  path,
  caterpillar,
  broom,
  balanced,
  random_attach,
  preferential,
};

inline const char* topology_name(Topology t) {
  switch (t) {
    case Topology::star: return "star";
    case Topology::path: return "path";
    case Topology::caterpillar: return "caterpillar";
    case Topology::broom: return "broom";
    case Topology::balanced: return "balanced";
    case Topology::random_attach: return "random_attach";
    case Topology::preferential: return "preferential";
  }
  return "?";
}

inline std::vector<Topology> all_topologies() {
  return {Topology::star,     Topology::path,          Topology::caterpillar,
          Topology::broom,    Topology::balanced,      Topology::random_attach,
          Topology::preferential};
}

/// Builds a weighted tree: `distinct_weights == 0` draws continuous weights,
/// positive values quantise them to stress tie handling.
inline graph::EdgeList make_tree(Topology topology, index_t num_vertices, std::uint64_t seed,
                                 int distinct_weights = 0) {
  Rng rng(seed);
  graph::EdgeList edges;
  switch (topology) {
    case Topology::star: edges = data::star_tree(num_vertices); break;
    case Topology::path: edges = data::path_tree(num_vertices); break;
    case Topology::caterpillar: edges = data::caterpillar_tree(num_vertices); break;
    case Topology::broom: edges = data::broom_tree(num_vertices); break;
    case Topology::balanced: edges = data::balanced_tree(num_vertices); break;
    case Topology::random_attach: edges = data::random_attachment_tree(num_vertices, rng); break;
    case Topology::preferential:
      edges = data::preferential_attachment_tree(num_vertices, rng);
      break;
  }
  data::assign_random_weights(edges, rng, distinct_weights);
  return edges;
}

}  // namespace pandora::testing
