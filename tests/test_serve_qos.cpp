// Admission control and structured per-job outcomes in serve::BatchExecutor:
// the QosPolicy knobs (batch budget, per-job deadlines, size-based shedding
// under pressure, large-query deprioritisation) and the JobResult contract —
// one slow / oversized / poisoned query never aborts or hides its
// batchmates.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pandora/data/point_generators.hpp"
#include "pandora/exec/cancellation.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/obs/metrics.hpp"
#include "pandora/serve/batch_executor.hpp"

namespace {

using namespace pandora;
using namespace std::chrono_literals;
using serve::BatchExecutor;
using serve::BatchOptions;
using serve::JobOutcome;
using serve::JobResult;

/// A real cancellable workload: HDBSCAN* over a shared point set.
BatchExecutor::Job hdbscan_job(const spatial::PointSet& points, size_type size_hint = 0) {
  return BatchExecutor::Job{
      .run = [&points](const exec::Executor& exec) { (void)hdbscan::hdbscan(exec, points, {}); },
      .size_hint = size_hint != 0 ? size_hint : static_cast<size_type>(points.size()),
  };
}

TEST(ServeQos, DefaultPolicyRunsEverythingOk) {
  const exec::Executor parent;
  BatchExecutor batch(parent, {});
  const spatial::PointSet points = data::gaussian_blobs(400, 2, 3, 0.05, 0.1, 7);
  std::vector<BatchExecutor::Job> jobs(4, hdbscan_job(points));
  const std::vector<JobResult> results = batch.run_jobs(jobs);
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& result : results) {
    EXPECT_EQ(result.outcome, JobOutcome::ok);
    EXPECT_EQ(result.error, nullptr);
    EXPECT_GT(result.seconds, 0.0);
  }
}

TEST(ServeQos, SpentBatchBudgetShedsUnstartedJobs) {
  const exec::Executor parent;
  BatchOptions options;
  options.qos.batch_budget = 1ns;  // spent before the first job is admitted
  BatchExecutor batch(parent, options);
  const spatial::PointSet points = data::gaussian_blobs(400, 2, 3, 0.05, 0.1, 9);
  std::vector<BatchExecutor::Job> jobs(3, hdbscan_job(points));
  const std::vector<JobResult> results = batch.run_jobs(jobs);
  for (const JobResult& result : results) {
    EXPECT_EQ(result.outcome, JobOutcome::shed);
    EXPECT_EQ(result.error, nullptr);
    EXPECT_EQ(result.seconds, 0.0);
  }
}

TEST(ServeQos, PerJobDeadlineCancelsThatJobOnly) {
  const exec::Executor parent;
  BatchOptions options;
  options.num_slots = 1;  // deterministic admission order
  BatchExecutor batch(parent, options);
  const spatial::PointSet points = data::gaussian_blobs(3000, 3, 4, 0.05, 0.1, 11);
  std::vector<BatchExecutor::Job> jobs;
  jobs.push_back(hdbscan_job(points));
  jobs.back().deadline = 1ns;
  jobs.push_back(hdbscan_job(points));
  const std::vector<JobResult> results = batch.run_jobs(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].outcome, JobOutcome::cancelled);
  ASSERT_NE(results[0].error, nullptr);
  EXPECT_THROW(std::rethrow_exception(results[0].error), Cancelled);
  EXPECT_EQ(results[1].outcome, JobOutcome::ok) << "the deadline is per-job, not per-batch";
}

TEST(ServeQos, PolicyDefaultDeadlineAppliesWhenJobHasNone) {
  const exec::Executor parent;
  BatchOptions options;
  options.qos.job_deadline = 1ns;
  BatchExecutor batch(parent, options);
  const spatial::PointSet points = data::gaussian_blobs(3000, 3, 4, 0.05, 0.1, 13);
  std::vector<BatchExecutor::Job> jobs(2, hdbscan_job(points));
  const std::vector<JobResult> results = batch.run_jobs(jobs);
  for (const JobResult& result : results) EXPECT_EQ(result.outcome, JobOutcome::cancelled);
}

TEST(ServeQos, CallerTokenCancelsItsJob) {
  const exec::Executor parent;
  BatchExecutor batch(parent, {});
  const spatial::PointSet points = data::gaussian_blobs(2000, 2, 3, 0.05, 0.1, 17);
  exec::CancellationToken token;
  token.cancel();  // fired before the batch even starts
  std::vector<BatchExecutor::Job> jobs;
  jobs.push_back(hdbscan_job(points));
  jobs.back().cancellation = &token;
  jobs.push_back(hdbscan_job(points));
  const std::vector<JobResult> results = batch.run_jobs(jobs);
  EXPECT_EQ(results[0].outcome, JobOutcome::cancelled);
  EXPECT_EQ(results[1].outcome, JobOutcome::ok);
}

TEST(ServeQos, OversizedJobShedUnderPressureOnly) {
  const exec::Executor parent;
  BatchOptions options;
  options.num_slots = 1;  // one worker drains the small queue in job order
  options.qos.shed_above = 1000;
  options.qos.pressure_threshold = 0;
  BatchExecutor batch(parent, options);
  const spatial::PointSet points = data::gaussian_blobs(300, 2, 3, 0.05, 0.1, 19);

  // Job 0 is oversized and admitted while job 1 is still pending (pressure)
  // -> shed.  Job 1 is then the last one standing (no pressure) -> runs.
  std::vector<BatchExecutor::Job> jobs;
  jobs.push_back(hdbscan_job(points, /*size_hint=*/5000));
  jobs.push_back(hdbscan_job(points, /*size_hint=*/10));
  const std::vector<JobResult> results = batch.run_jobs(jobs);
  EXPECT_EQ(results[0].outcome, JobOutcome::shed);
  EXPECT_EQ(results[1].outcome, JobOutcome::ok);

  // The same oversized job alone (no pressure) is admitted normally.
  std::vector<BatchExecutor::Job> alone;
  alone.push_back(hdbscan_job(points, /*size_hint=*/5000));
  EXPECT_EQ(batch.run_jobs(alone)[0].outcome, JobOutcome::ok);
}

TEST(ServeQos, DeprioritisedLargeJobRunsAfterSmallOnes) {
  const exec::Executor parent;
  BatchOptions options;
  options.small_query_threshold = 100;
  options.overlap_phases = true;  // deprioritisation must override overlap
  options.qos.deprioritise_large_under_pressure = true;
  options.qos.pressure_threshold = 0;
  BatchExecutor batch(parent, options);

  std::atomic<int> sequence{0};
  std::vector<int> started_at(4, -1);
  std::vector<BatchExecutor::Job> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(BatchExecutor::Job{
        .run = [&, i](const exec::Executor&) {
          started_at[static_cast<std::size_t>(i)] =
              sequence.fetch_add(1, std::memory_order_relaxed);
        },
        // Job 0 is large (above the threshold), the rest are small.
        .size_hint = i == 0 ? 1000 : 10,
    });
  }
  const std::vector<JobResult> results = batch.run_jobs(jobs);
  for (const JobResult& result : results) EXPECT_EQ(result.outcome, JobOutcome::ok);
  // Without overlap the small phase drains completely first: the large job
  // holds the highest start sequence.
  for (int i = 1; i < 4; ++i) EXPECT_LT(started_at[static_cast<std::size_t>(i)], started_at[0]);
}

TEST(ServeQos, FailedJobCapturesItsExceptionWithoutAbortingBatchmates) {
  const exec::Executor parent;
  BatchExecutor batch(parent, {});
  const spatial::PointSet points = data::gaussian_blobs(300, 2, 3, 0.05, 0.1, 23);
  std::vector<BatchExecutor::Job> jobs;
  jobs.push_back(BatchExecutor::Job{
      .run = [](const exec::Executor&) { throw std::runtime_error("query bug"); },
      .size_hint = 1,
  });
  jobs.push_back(hdbscan_job(points));
  const std::vector<JobResult> results = batch.run_jobs(jobs);
  EXPECT_EQ(results[0].outcome, JobOutcome::failed);
  ASSERT_NE(results[0].error, nullptr);
  EXPECT_THROW(std::rethrow_exception(results[0].error), std::runtime_error);
  EXPECT_EQ(results[1].outcome, JobOutcome::ok);
}

TEST(ServeQos, LegacyRunSurfacesShedAsCancelled) {
  const exec::Executor parent;
  BatchOptions options;
  options.qos.batch_budget = 1ns;
  BatchExecutor batch(parent, options);
  const spatial::PointSet points = data::gaussian_blobs(300, 2, 3, 0.05, 0.1, 29);
  std::vector<BatchExecutor::Job> jobs(2, hdbscan_job(points));
  EXPECT_THROW(batch.run(jobs), Cancelled);
}

TEST(ServeQos, LegacyRunStillRethrowsFirstFailureInJobOrder) {
  const exec::Executor parent;
  BatchExecutor batch(parent, {});
  std::vector<BatchExecutor::Job> jobs;
  jobs.push_back(BatchExecutor::Job{
      .run = [](const exec::Executor&) { throw std::invalid_argument("first"); },
      .size_hint = 1,
  });
  jobs.push_back(BatchExecutor::Job{
      .run = [](const exec::Executor&) { throw std::runtime_error("second"); },
      .size_hint = 2,
  });
  EXPECT_THROW(batch.run(jobs), std::invalid_argument);
}

TEST(ServeQos, AdaptivePolicyShedsSlowJobFloodThatStaticDefaultsAdmit) {
  // The ROADMAP adaptive-shedding item as a test: a flood of jobs each
  // predicted to run ~100x the observed p99 job latency.  The static knobs
  // at their defaults (shed_above = 0: never shed by size) admit the whole
  // flood; the adaptive policy — thresholds derived online from the latency
  // histogram, nothing tuned — sheds most of it.  Outcomes are cross-checked
  // against the obs:: registry's serve counters, so the test also proves the
  // instrumentation counts what actually happened.
  const exec::Executor parent;
  const auto sleep_job = [](size_type hint) {
    // Run time proportional to size_hint (1us per unit): the honest
    // size-hint-to-seconds relationship the adaptive model learns.
    return BatchExecutor::Job{
        .run =
            [hint](const exec::Executor&) {
              std::this_thread::sleep_for(std::chrono::microseconds(hint));
            },
        .size_hint = hint,
    };
  };
  std::vector<BatchExecutor::Job> flood(12, sleep_job(20000));  // ~20ms each

  {
    BatchExecutor default_knobs(parent, {});  // all QosPolicy knobs at defaults
    for (const JobResult& result : default_knobs.run_jobs(flood))
      EXPECT_EQ(result.outcome, JobOutcome::ok) << "static defaults admit everything";
  }

  BatchOptions options;
  options.num_slots = 2;  // flood pressure: 12 pending jobs >> 2 slots
  options.qos.adaptive = true;
  BatchExecutor batch(parent, options);

  // Teach the model what normal looks like: ~200us jobs, comfortably past
  // adaptive_min_samples.  A cold adaptive executor must admit everything.
  std::vector<BatchExecutor::Job> warm(24, sleep_job(200));
  for (const JobResult& result : batch.run_jobs(warm))
    EXPECT_EQ(result.outcome, JobOutcome::ok) << "the model learns, it must not pre-shed";

  const std::uint64_t registry_shed_before =
      obs::registry().counter_value("pandora_serve_jobs_total{outcome=\"shed\"}");
  const std::vector<JobResult> results = batch.run_jobs(flood);

  std::uint64_t shed = 0;
  for (const JobResult& result : results) {
    if (result.outcome == JobOutcome::shed) {
      ++shed;
      EXPECT_EQ(result.error, nullptr);
      EXPECT_EQ(result.seconds, 0.0) << "shed jobs never ran";
    } else {
      // A job picked up once the queue drained below the slot count is
      // legitimately admitted — shedding must not starve the tail.
      EXPECT_EQ(result.outcome, JobOutcome::ok);
    }
  }
  EXPECT_GE(shed, 6u) << "the adaptive policy barely shed a 100x-slow flood";
  EXPECT_EQ(obs::registry().counter_value("pandora_serve_jobs_total{outcome=\"shed\"}") -
                registry_shed_before,
            shed)
      << "registry shed counter disagrees with the JobResult outcomes";
}

TEST(ServeQos, BatchExecutorReusableAfterShedding) {
  // A batch that shed everything leaves the slots warm and admissible: the
  // next batch (budget off) runs normally on the same executor.
  const exec::Executor parent;
  BatchOptions options;
  options.qos.batch_budget = 1ns;
  BatchExecutor strict(parent, options);
  const spatial::PointSet points = data::gaussian_blobs(300, 2, 3, 0.05, 0.1, 31);
  std::vector<BatchExecutor::Job> jobs(2, hdbscan_job(points));
  for (const JobResult& result : strict.run_jobs(jobs))
    EXPECT_EQ(result.outcome, JobOutcome::shed);

  BatchExecutor relaxed(parent, {});
  for (const JobResult& result : relaxed.run_jobs(jobs))
    EXPECT_EQ(result.outcome, JobOutcome::ok);
}

}  // namespace
