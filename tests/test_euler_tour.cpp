#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pandora/graph/euler_tour.hpp"
#include "pandora/graph/tree.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using graph::EulerTour;
using pandora::testing::Topology;
using pandora::testing::all_topologies;
using pandora::testing::make_tree;
using pandora::testing::topology_name;

TEST(ListRank, DistancesToTail) {
  // A simple chain 0 -> 1 -> 2 -> 3 -> tail.
  const std::vector<index_t> next{1, 2, 3, kNone};
  for (const auto& space : exec::registered_backends()) {
    const auto distance = graph::list_rank(exec::default_executor(space), next);
    EXPECT_EQ(distance, (std::vector<index_t>{3, 2, 1, 0}));
  }
}

TEST(ListRank, LongPermutedList) {
  // A list threaded through a permuted array, length 10k.
  const index_t n = 10000;
  Rng rng(3);
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i)
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1))]);
  std::vector<index_t> next(static_cast<std::size_t>(n), kNone);
  for (index_t k = 0; k + 1 < n; ++k)
    next[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] =
        order[static_cast<std::size_t>(k) + 1];
  const auto distance = graph::list_rank(exec::default_executor(), next);
  for (index_t k = 0; k < n; ++k)
    ASSERT_EQ(distance[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])],
              n - 1 - k);
}

class EulerTourSweep : public ::testing::TestWithParam<Topology> {};
INSTANTIATE_TEST_SUITE_P(Sweep, EulerTourSweep, ::testing::ValuesIn(all_topologies()),
                         [](const auto& info) { return std::string(topology_name(info.param)); });

TEST_P(EulerTourSweep, RanksAreAPermutationOfHalfEdges) {
  const index_t nv = 500;
  const graph::EdgeList tree = make_tree(GetParam(), nv, 1);
  for (const auto& space : exec::registered_backends()) {
    const EulerTour tour = graph::build_euler_tour(exec::default_executor(space), tree, nv, 0);
    std::vector<index_t> sorted = tour.rank;
    std::sort(sorted.begin(), sorted.end());
    for (index_t h = 0; h < 2 * (nv - 1); ++h)
      ASSERT_EQ(sorted[static_cast<std::size_t>(h)], h);
  }
}

TEST_P(EulerTourSweep, ParentsMatchBfsFromRoot) {
  const index_t nv = 400;
  const graph::EdgeList tree = make_tree(GetParam(), nv, 2);
  const EulerTour tour = graph::build_euler_tour(exec::default_executor(), tree, nv, 0);

  const graph::Adjacency adj = graph::build_adjacency(tree, nv);
  std::vector<index_t> parent(static_cast<std::size_t>(nv), kNone);
  std::vector<bool> seen(static_cast<std::size_t>(nv), false);
  std::vector<index_t> queue{0};
  seen[0] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const index_t x = queue[head];
    for (const auto& half : adj.incident(x)) {
      if (seen[static_cast<std::size_t>(half.neighbor)]) continue;
      seen[static_cast<std::size_t>(half.neighbor)] = true;
      parent[static_cast<std::size_t>(half.neighbor)] = x;
      queue.push_back(half.neighbor);
    }
  }
  EXPECT_EQ(tour.parent_vertex[0], kNone);
  for (index_t v = 1; v < nv; ++v)
    ASSERT_EQ(tour.parent_vertex[static_cast<std::size_t>(v)],
              parent[static_cast<std::size_t>(v)])
        << "vertex " << v;
}

TEST_P(EulerTourSweep, SubtreeSizesMatchRecursiveCount) {
  const index_t nv = 300;
  const graph::EdgeList tree = make_tree(GetParam(), nv, 3);
  const EulerTour tour = graph::build_euler_tour(exec::default_executor(), tree, nv, 0);
  // Accumulate sizes bottom-up over the BFS order implied by parent_vertex.
  std::vector<index_t> expected(static_cast<std::size_t>(nv), 1);
  // Children before parents: order vertices by decreasing BFS depth.
  std::vector<index_t> depth(static_cast<std::size_t>(nv), 0);
  std::vector<index_t> order(static_cast<std::size_t>(nv));
  for (index_t v = 0; v < nv; ++v) {
    order[static_cast<std::size_t>(v)] = v;
    index_t cur = v, d = 0;
    while (tour.parent_vertex[static_cast<std::size_t>(cur)] != kNone) {
      cur = tour.parent_vertex[static_cast<std::size_t>(cur)];
      ++d;
    }
    depth[static_cast<std::size_t>(v)] = d;
  }
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
  });
  for (const index_t v : order)
    if (tour.parent_vertex[static_cast<std::size_t>(v)] != kNone)
      expected[static_cast<std::size_t>(tour.parent_vertex[static_cast<std::size_t>(v)])] +=
          expected[static_cast<std::size_t>(v)];
  for (index_t v = 0; v < nv; ++v)
    ASSERT_EQ(tour.subtree_size[static_cast<std::size_t>(v)],
              expected[static_cast<std::size_t>(v)])
        << "vertex " << v;
  EXPECT_EQ(tour.subtree_size[0], nv);
}

TEST(EulerTourEdgeCases, SingleEdgeAndAlternateRoots) {
  const graph::EdgeList one{{0, 1, 1.0}};
  const EulerTour tour = graph::build_euler_tour(exec::default_executor(exec::serial_backend()), one, 2, 1);
  EXPECT_EQ(tour.parent_vertex[0], 1);
  EXPECT_EQ(tour.parent_vertex[1], kNone);
  EXPECT_EQ(tour.subtree_size[1], 2);
  EXPECT_THROW((void)graph::build_euler_tour(exec::default_executor(exec::serial_backend()), one, 2, 5),
               std::invalid_argument);
}

}  // namespace
