// End-to-end integration across modules: generators -> kd-tree -> EMST ->
// dendrogram (all algorithms, all spaces) -> analysis -> clustering, on every
// Table 2 dataset family at test scale.

#include <gtest/gtest.h>

#include <cmath>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/analysis.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/graph/mst.hpp"
#include "pandora/graph/tree.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/spatial/emst.hpp"

namespace {

using namespace pandora;
using dendrogram::Dendrogram;
using spatial::KdTree;
using spatial::PointSet;

class DatasetSweep : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> dataset_names() {
  std::vector<std::string> names;
  for (const auto& spec : data::table2_datasets()) names.push_back(spec.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Table2, DatasetSweep, ::testing::ValuesIn(dataset_names()),
                         [](const auto& info) { return info.param; });

TEST_P(DatasetSweep, FullPipelineAgreesAcrossAlgorithmsAndSpaces) {
  const index_t n = 3000;
  const PointSet points = data::make_dataset(GetParam(), n, 2024);
  KdTree tree(points);
  const auto core = hdbscan::core_distances(exec::default_executor(), points, tree, 2);
  const graph::EdgeList mst =
      spatial::mutual_reachability_mst(exec::default_executor(), points, tree, core);
  ASSERT_TRUE(graph::is_spanning_tree(mst, n));

  const Dendrogram reference = dendrogram::union_find_dendrogram(exec::default_executor(), mst, n);
  dendrogram::validate_dendrogram(reference);

  for (const auto& space : exec::registered_backends()) {
    for (const auto policy : {dendrogram::ExpansionPolicy::multilevel,
                              dendrogram::ExpansionPolicy::single_level}) {
      dendrogram::PandoraOptions options;
      options.expansion = policy;
      const Dendrogram ours =
          dendrogram::pandora_dendrogram(exec::default_executor(space), mst, n, options);
      ASSERT_EQ(ours.parent, reference.parent)
          << GetParam() << " space=" << space->name();
    }
  }
}

TEST_P(DatasetSweep, SkewnessIsSubstantialOnRealisticData) {
  // Table 2's point: real-world dendrograms are far from balanced.  Even at
  // test scale every dataset family should exceed the ideal height by a
  // healthy factor.
  const index_t n = 4000;
  const PointSet points = data::make_dataset(GetParam(), n, 7);
  KdTree tree(points);
  const auto core = hdbscan::core_distances(exec::default_executor(), points, tree, 2);
  const graph::EdgeList mst =
      spatial::mutual_reachability_mst(exec::default_executor(), points, tree, core);
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(), mst, n);
  EXPECT_GE(dendrogram::skewness(d), 1.5) << GetParam();
}

TEST(Integration, SkewnessOrderingMatchesTable2) {
  // The qualitative ordering of Table 2: the equal-density VisualSim family
  // is by far the least imbalanced (Imb 43 in the paper, vs ~1e5 for both
  // the cosmology and the uniform clouds).
  auto skewness_of = [](const std::string& name) {
    const index_t n = 5000;
    const PointSet points = data::make_dataset(name, n, 99);
    KdTree tree(points);
    const auto core = hdbscan::core_distances(exec::default_executor(), points, tree, 2);
    const graph::EdgeList mst =
        spatial::mutual_reachability_mst(exec::default_executor(), points, tree, core);
    return dendrogram::skewness(dendrogram::pandora_dendrogram(exec::default_executor(), mst, n));
  };
  const double sim = skewness_of("VisualSim5D");
  EXPECT_GT(skewness_of("HaccProxy"), 1.2 * sim);
  EXPECT_GT(skewness_of("Uniform3D"), 1.2 * sim);
}

TEST(Integration, EuclideanPipelineMatchesGraphMst) {
  // Single-linkage over an explicit distance graph must equal the spatial
  // pipeline when the graph contains the EMST edges.
  const PointSet points = data::gaussian_blobs(400, 2, 4, 0.05, 0.1, 55);
  KdTree tree(points);
  const graph::EdgeList emst = spatial::euclidean_mst(exec::default_executor(), points, tree);

  // Build a k-NN graph and force EMST containment (k-NN graphs can miss long
  // bridge edges), then extract its MST with Borůvka and compare dendrograms.
  graph::EdgeList knn_graph = emst;
  std::vector<spatial::Neighbor> neighbors;
  for (index_t q = 0; q < points.size(); ++q) {
    tree.knn(q, 12, neighbors);
    for (const auto& nb : neighbors)
      if (q < nb.index) knn_graph.push_back({q, nb.index, std::sqrt(nb.squared_distance)});
  }
  const graph::EdgeList graph_mst =
      graph::boruvka_mst(exec::default_executor(), knn_graph, points.size());
  EXPECT_NEAR(graph::total_weight(graph_mst), graph::total_weight(emst), 1e-9);

  const Dendrogram a = dendrogram::pandora_dendrogram(exec::default_executor(), emst, points.size());
  const Dendrogram b = dendrogram::pandora_dendrogram(exec::default_executor(), graph_mst, points.size());
  // The dendrograms are built from different-but-equal MSTs; cluster
  // structure at every cut must agree.
  for (const double t : {0.01, 0.05, 0.2, 1.0}) {
    const auto la = dendrogram::cut_labels(a, t);
    const auto lb = dendrogram::cut_labels(b, t);
    ASSERT_EQ(la, lb) << "cut at " << t;
  }
}

TEST(Integration, HdbscanEndToEndOnEveryDatasetFamily) {
  for (const auto& spec : data::table2_datasets()) {
    const PointSet points = data::make_dataset(spec.name, 1500, 3);
    hdbscan::HdbscanOptions options;
    options.min_pts = 4;
    options.min_cluster_size = 15;
    const auto result = hdbscan::hdbscan(exec::default_executor(), points, options);
    EXPECT_EQ(result.labels.size(), static_cast<std::size_t>(points.size())) << spec.name;
    dendrogram::validate_dendrogram(result.dendrogram);
    // Labels are dense in [0, num_clusters).
    for (const index_t l : result.labels)
      EXPECT_TRUE(l == kNone || (l >= 0 && l < result.num_clusters)) << spec.name;
  }
}

}  // namespace
