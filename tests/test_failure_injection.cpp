// Failure injection: every public entry point must reject malformed input
// with std::invalid_argument (never crash, hang or silently mis-answer).

#include <gtest/gtest.h>

#include <limits>

#include "pandora/dendrogram/analysis.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/graph/mst.hpp"
#include "pandora/graph/tree.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/pipeline.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::PandoraOptions;

PandoraOptions validating() {
  PandoraOptions options;
  options.validate_input = true;
  return options;
}

TEST(FailureInjection, CycleRejected) {
  const graph::EdgeList cycle{{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 3.0}};
  EXPECT_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), cycle, 3, validating()),
               std::invalid_argument);
}

TEST(FailureInjection, ForestRejected) {
  const graph::EdgeList forest{{0, 1, 1.0}, {2, 3, 2.0}};
  EXPECT_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), forest, 4, validating()),
               std::invalid_argument);
}

TEST(FailureInjection, SelfLoopRejected) {
  const graph::EdgeList self_loop{{0, 0, 1.0}, {0, 1, 2.0}};
  EXPECT_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), self_loop, 2, validating()),
               std::invalid_argument);
}

TEST(FailureInjection, UnvalidatedMultigraphFailsFastInsteadOfCorrupting) {
  // With validation off (the default), the contraction's fixed leased buffers
  // assume tree bounds; a multigraph that violates them must still be
  // rejected (by the internal bound check) rather than scatter out of range.
  graph::EdgeList multi;
  for (int k = 0; k < 9; ++k)
    multi.push_back({0, 1, 1.0 + k});
  EXPECT_THROW((void)dendrogram::pandora_dendrogram(
                   exec::default_executor(), multi, 2),
               std::invalid_argument);
}

TEST(FailureInjection, OutOfRangeEndpointRejected) {
  const graph::EdgeList bad{{0, 5, 1.0}};
  EXPECT_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), bad, 2, validating()),
               std::invalid_argument);
}

TEST(FailureInjection, NanAndNegativeWeightsRejected) {
  const graph::EdgeList nan_edge{{0, 1, std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), nan_edge, 2, validating()),
               std::invalid_argument);
  const graph::EdgeList inf_edge{{0, 1, std::numeric_limits<double>::infinity()}};
  EXPECT_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), inf_edge, 2, validating()),
               std::invalid_argument);
  const graph::EdgeList negative{{0, 1, -1.0}};
  EXPECT_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), negative, 2, validating()),
               std::invalid_argument);
}

TEST(FailureInjection, UnionFindBaselineValidatesToo) {
  const graph::EdgeList cycle{{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 3.0}};
  EXPECT_THROW((void)dendrogram::union_find_dendrogram(exec::default_executor(exec::serial_backend()), cycle, 3,
                                                       /*validate_input=*/true),
               std::invalid_argument);
}

TEST(FailureInjection, ValidationOffMeansCallerContract) {
  // Without validation the library trusts the caller (hot paths); a valid
  // tree passes through both entry points unchanged.
  const graph::EdgeList tree = pandora::testing::make_tree(
      pandora::testing::Topology::random_attach, 128, 3);
  EXPECT_NO_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), tree, 128));
  EXPECT_NO_THROW((void)dendrogram::pandora_dendrogram(exec::default_executor(), tree, 128, validating()));
}

TEST(FailureInjection, HdbscanRejectsEmptyInput) {
  const spatial::PointSet empty(2, 0);
  EXPECT_THROW((void)hdbscan::hdbscan(exec::default_executor(), empty, {}), std::invalid_argument);
}

TEST(FailureInjection, HdbscanRejectsBadMinPts) {
  spatial::PointSet points(2, 10);
  hdbscan::HdbscanOptions options;
  options.min_pts = 0;
  EXPECT_THROW((void)hdbscan::hdbscan(exec::default_executor(), points, options), std::invalid_argument);
}

TEST(FailureInjection, HdbscanRejectsBadMinClusterSize) {
  spatial::PointSet points(2, 10);
  hdbscan::HdbscanOptions options;
  options.min_cluster_size = 0;
  EXPECT_THROW((void)hdbscan::hdbscan(exec::default_executor(), points, options), std::invalid_argument);
}

TEST(FailureInjection, MstRequiresConnectivity) {
  const graph::EdgeList forest{{0, 1, 1.0}, {2, 3, 2.0}};
  EXPECT_THROW((void)graph::kruskal_mst(forest, 4), std::invalid_argument);
  EXPECT_THROW((void)graph::boruvka_mst(exec::default_executor(), forest, 4),
               std::invalid_argument);
}

TEST(FailureInjection, NonFinitePointCoordinatesRejected) {
  spatial::PointSet points(2, 4);
  points.at(2, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(spatial::validate_points(points), std::invalid_argument);
  points.at(2, 1) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(spatial::validate_points(points), std::invalid_argument);
  points.at(2, 1) = 0.0;
  EXPECT_NO_THROW(spatial::validate_points(points));
}

TEST(FailureInjection, PipelineValidationRejectsNonFinitePoints) {
  spatial::PointSet points(2, 8);
  for (index_t i = 0; i < 8; ++i) points.at(i, 0) = static_cast<double>(i);
  points.at(5, 1) = std::numeric_limits<double>::quiet_NaN();
  const auto pipeline = Pipeline::on(exec::default_executor()).with_validation();
  EXPECT_THROW((void)pipeline.run_hdbscan(points), std::invalid_argument);
  const std::vector<index_t> sizes{2, 3};
  EXPECT_THROW((void)pipeline.sweep_min_cluster_size(points, sizes), std::invalid_argument);
  // Validation is opt-in: without it the NaN still surfaces as an error, but
  // from an internal progress check deep in EMST construction instead of a
  // message naming the offending point and dimension.
  try {
    (void)pipeline.run_hdbscan(points);
    FAIL() << "validated path must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite coordinate"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)Pipeline::on(exec::default_executor()).run_hdbscan(points),
               std::invalid_argument);
}

TEST(FailureInjection, DynInsertRejectsNonFinitePointsWithoutMutating) {
  exec::Executor executor;
  dyn::DynamicClustering stream(executor);
  spatial::PointSet good(2, 4);
  for (index_t i = 0; i < 4; ++i) good.at(i, 0) = static_cast<double>(i);
  stream.insert(good);
  const std::uint64_t epoch_before = stream.epoch();

  spatial::PointSet bad(2, 2);
  bad.at(1, 0) = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)stream.insert(bad), std::invalid_argument);
  // A rejected batch is a no-op: same epoch, still healthy, still usable.
  EXPECT_EQ(stream.epoch(), epoch_before);
  EXPECT_TRUE(stream.healthy());
  EXPECT_EQ(stream.size(), 4);
  EXPECT_NO_THROW((void)stream.dendrogram());
}

TEST(FailureInjection, DynInsertRejectsDimensionMismatch) {
  exec::Executor executor;
  dyn::DynamicClustering stream(executor);
  spatial::PointSet first(3, 2);
  stream.insert(first);
  spatial::PointSet wrong_dim(2, 2);
  EXPECT_THROW((void)stream.insert(wrong_dim), std::invalid_argument);
  EXPECT_TRUE(stream.healthy());
}

TEST(FailureInjection, SinglePointHdbscanDegeneratesGracefully) {
  spatial::PointSet one(3, 1);
  one.at(0, 0) = 1.0;
  const auto result = hdbscan::hdbscan(exec::default_executor(), one, {});
  EXPECT_EQ(result.labels.size(), 1u);
  EXPECT_EQ(result.num_clusters, 0);
}

}  // namespace
