// Direct behavioural tests of the expansion stage (Section 3.3) on trees
// whose dendrograms are known by hand, including the paper's inverted-Y
// chain example (Figure 5), plus cross-validation of the two expansion
// policies under adversarial tie patterns.

#include <gtest/gtest.h>

#include <numeric>

#include "pandora/dendrogram/analysis.hpp"
#include "pandora/dendrogram/contraction.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::Dendrogram;
using dendrogram::ExpansionPolicy;
using dendrogram::PandoraOptions;
using pandora::testing::Topology;
using pandora::testing::make_tree;

// The inverted-Y dendrogram of Figure 5: a heavy bridge joins two weight-
// decreasing paths.  Every quantity below is computed by hand.
//
//   path A: 0 -3.0- 1 -10- 2 -30- 3          bridge: 3 -100- 7
//   path B: 4 -2.0- 5 -8.0- 6 -20- 7
//
// Descending ranks: r0=bridge, r1=(2,3,30), r2=(6,7,20), r3=(1,2,10),
// r4=(5,6,8), r5=(0,1,3), r6=(4,5,2).
class InvertedY
    : public ::testing::TestWithParam<
          std::tuple<std::shared_ptr<const exec::Backend>, ExpansionPolicy>> {};

INSTANTIATE_TEST_SUITE_P(
    AllModes, InvertedY,
    ::testing::Combine(::testing::ValuesIn(exec::registered_backends()),
                       ::testing::Values(ExpansionPolicy::multilevel,
                                         ExpansionPolicy::single_level)));

graph::EdgeList inverted_y_tree() {
  return {{0, 1, 3.0}, {1, 2, 10.0}, {2, 3, 30.0}, {3, 7, 100.0},
          {4, 5, 2.0}, {5, 6, 8.0},  {6, 7, 20.0}};
}

TEST_P(InvertedY, HandComputedParents) {
  const auto& [space, policy] = GetParam();
  PandoraOptions options;
  options.expansion = policy;
  const Dendrogram d = dendrogram::pandora_dendrogram(exec::default_executor(space),
                                                      inverted_y_tree(), 8, options);

  // Edge parents: the root chain is {0}; chains {1,3,5} and {2,4,6} hang off
  // its two sides.
  const std::vector<index_t> expected_edges{kNone, 0, 0, 1, 2, 3, 4};
  for (index_t e = 0; e < 7; ++e)
    EXPECT_EQ(d.parent[static_cast<std::size_t>(e)], expected_edges[static_cast<std::size_t>(e)])
        << "edge rank " << e;

  // Vertex parents by Eq. (1): each vertex hangs off its lightest incident
  // edge.
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(0))], 5);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(1))], 5);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(2))], 3);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(3))], 1);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(4))], 6);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(5))], 6);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(6))], 4);
  EXPECT_EQ(d.parent[static_cast<std::size_t>(d.vertex_node(7))], 2);

  // Structure: exactly one alpha edge (the bridge), two leaf chains.
  const auto counts = dendrogram::classify_edges(d);
  EXPECT_EQ(counts.alpha_edges, 1);
  EXPECT_EQ(counts.leaf_edges, 2);
  EXPECT_EQ(counts.chain_edges, 4);
}

TEST(InvertedYContraction, OneAlphaEdgeTwoLevels) {
  const auto sorted = dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), inverted_y_tree(), 8);
  std::vector<index_t> gid(7);
  std::iota(gid.begin(), gid.end(), index_t{0});
  const auto h = dendrogram::build_hierarchy(exec::default_executor(exec::serial_backend()), sorted.u, sorted.v,
                                             std::move(gid), 8, 7);
  ASSERT_EQ(h.num_levels(), 2);
  EXPECT_EQ(h.levels[0].num_alpha, 1);
  EXPECT_EQ(h.levels[1].num_edges, 1);
  EXPECT_EQ(h.levels[1].num_alpha, 0);
  EXPECT_EQ(h.levels[1].num_vertices, 2);
  // The bridge (rank 0) survives to the final level; all others contract at
  // level 0 into one of the two supervertices.
  EXPECT_EQ(h.contraction_level[0], 1);
  EXPECT_EQ(h.supervertex[0], kNone);
  for (index_t e = 1; e < 7; ++e) {
    EXPECT_EQ(h.contraction_level[static_cast<std::size_t>(e)], 0) << e;
    ASSERT_NE(h.supervertex[static_cast<std::size_t>(e)], kNone) << e;
  }
  // Path A's edges (ranks 1,3,5) share a supervertex; so do B's (2,4,6).
  EXPECT_EQ(h.supervertex[1], h.supervertex[3]);
  EXPECT_EQ(h.supervertex[3], h.supervertex[5]);
  EXPECT_EQ(h.supervertex[2], h.supervertex[4]);
  EXPECT_EQ(h.supervertex[4], h.supervertex[6]);
  EXPECT_NE(h.supervertex[1], h.supervertex[2]);
}

TEST(Expansion, StarIsASingleRootChain) {
  // No alpha edges at all: every edge lands in the root chain, sorted by
  // rank — the Theorem 4 "dendrogram construction is sorting" instance.
  graph::EdgeList tree = data::star_tree(1000);
  pandora::Rng rng(3);
  data::assign_random_weights(tree, rng);
  for (const auto policy : {ExpansionPolicy::multilevel, ExpansionPolicy::single_level}) {
    PandoraOptions options;
    options.expansion = policy;
    const Dendrogram d = dendrogram::pandora_dendrogram(
        exec::default_executor(), tree, 1000, options);
    EXPECT_EQ(d.parent[0], kNone);
    for (index_t e = 1; e < d.num_edges; ++e)
      ASSERT_EQ(d.parent[static_cast<std::size_t>(e)], e - 1);
  }
}

TEST(Expansion, PoliciesAgreeUnderHeavyTies) {
  // Two distinct weight values force long tie runs through every sort and
  // every chain; the policies must still agree bit-for-bit.
  for (const Topology topo :
       {Topology::preferential, Topology::caterpillar, Topology::broom}) {
    const graph::EdgeList tree = make_tree(topo, 20000, 5, /*distinct=*/2);
    PandoraOptions multi;
    PandoraOptions single;
    single.expansion = ExpansionPolicy::single_level;
    const exec::Executor executor(exec::default_backend());
    const Dendrogram a = dendrogram::pandora_dendrogram(executor, tree, 20000, multi);
    const Dendrogram b = dendrogram::pandora_dendrogram(executor, tree, 20000, single);
    ASSERT_EQ(a.parent, b.parent);
    dendrogram::validate_dendrogram(a);
  }
}

TEST(Expansion, DeepChainOfBridgesExercisesManyLevels) {
  // A "binary caterpillar": balanced topology whose weights alternate so
  // that contraction needs several levels; checks the per-level scan path.
  graph::EdgeList tree = data::balanced_tree(4096);
  pandora::Rng rng(9);
  data::assign_random_weights(tree, rng);
  const auto sorted = dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), tree, 4096);
  std::vector<index_t> gid(sorted.u.size());
  std::iota(gid.begin(), gid.end(), index_t{0});
  const auto h = dendrogram::build_hierarchy(exec::default_executor(exec::serial_backend()), sorted.u, sorted.v,
                                             std::move(gid), 4096, 4095);
  EXPECT_GE(h.num_levels(), 3) << "random balanced trees need multiple contraction levels";

  const exec::Executor executor(exec::default_backend());
  const Dendrogram reference =
      dendrogram::pandora_dendrogram(executor, tree, 4096, PandoraOptions{});
  PandoraOptions single;
  single.expansion = ExpansionPolicy::single_level;
  const Dendrogram b = dendrogram::pandora_dendrogram(executor, tree, 4096, single);
  EXPECT_EQ(reference.parent, b.parent);
}

}  // namespace
