#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>

#include "pandora/common/rng.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/scan.hpp"
#include "pandora/exec/sort.hpp"

namespace {

using namespace pandora;
using BackendPtr = std::shared_ptr<const exec::Backend>;

class ExecBothSpaces : public ::testing::TestWithParam<BackendPtr> {};

INSTANTIATE_TEST_SUITE_P(Backends, ExecBothSpaces,
                         ::testing::ValuesIn(exec::registered_backends()),
                         [](const auto& info) { return std::string(info.param->name()); });

TEST_P(ExecBothSpaces, ParallelForCoversEveryIndex) {
  const size_type n = 100000;
  std::vector<int> hits(n, 0);
  exec::parallel_for(exec::default_executor(GetParam()), n, [&](size_type i) { hits[static_cast<std::size_t>(i)]++; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST_P(ExecBothSpaces, ParallelForEmptyAndTiny) {
  int count = 0;
  exec::parallel_for(exec::default_executor(GetParam()), 0, [&](size_type) { ++count; });
  EXPECT_EQ(count, 0);
  exec::parallel_for(exec::default_executor(GetParam()), 3, [&](size_type) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST_P(ExecBothSpaces, ReduceSumMatchesSerial) {
  const size_type n = 250007;
  const auto sum = exec::parallel_sum(exec::default_executor(GetParam()), n, std::int64_t{0},
                                      [](size_type i) { return static_cast<std::int64_t>(i); });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST_P(ExecBothSpaces, ReduceMaxMatchesSerial) {
  const size_type n = 99991;
  Rng rng(7);
  std::vector<std::int64_t> values(n);
  for (auto& v : values) v = static_cast<std::int64_t>(rng.next_below(1u << 30));
  const auto maxval = exec::parallel_reduce(
      exec::default_executor(GetParam()), n, std::int64_t{-1},
      [&](size_type i) { return values[static_cast<std::size_t>(i)]; },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  EXPECT_EQ(maxval, *std::max_element(values.begin(), values.end()));
}

TEST_P(ExecBothSpaces, ExclusiveScanMatchesReference) {
  for (size_type n : {0, 1, 5, 4097, 250000}) {
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<index_t> in(static_cast<std::size_t>(n));
    for (auto& v : in) v = static_cast<index_t>(rng.next_below(100));
    std::vector<index_t> expected(in.size());
    index_t running = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      expected[i] = running;
      running += in[i];
    }
    std::vector<index_t> out(in.size());
    const index_t total = exec::exclusive_scan<index_t>(exec::default_executor(GetParam()), in, out);
    EXPECT_EQ(total, running) << "n=" << n;
    EXPECT_EQ(out, expected) << "n=" << n;
  }
}

TEST_P(ExecBothSpaces, ExclusiveScanAliasesInPlace) {
  std::vector<index_t> data(100000, 1);
  const index_t total = exec::exclusive_scan<index_t>(exec::default_executor(GetParam()), data, data);
  EXPECT_EQ(total, 100000);
  EXPECT_EQ(data[0], 0);
  EXPECT_EQ(data[99999], 99999);
}

TEST_P(ExecBothSpaces, InclusiveScanMatchesReference) {
  const size_type n = 123457;
  std::vector<std::int64_t> in(static_cast<std::size_t>(n), 2);
  std::vector<std::int64_t> out(in.size());
  exec::inclusive_scan<std::int64_t>(exec::default_executor(GetParam()), in, out);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out.back(), 2 * n);
}

TEST_P(ExecBothSpaces, MergeSortSortsAndIsStable) {
  const size_type n = 200001;
  Rng rng(11);
  struct Item {
    int key;
    int tag;
  };
  std::vector<Item> items(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < items.size(); ++i)
    items[i] = {static_cast<int>(rng.next_below(1000)), static_cast<int>(i)};
  exec::merge_sort(exec::default_executor(GetParam()), items, [](const Item& a, const Item& b) { return a.key < b.key; });
  for (std::size_t i = 1; i < items.size(); ++i) {
    ASSERT_LE(items[i - 1].key, items[i].key);
    if (items[i - 1].key == items[i].key) {
      ASSERT_LT(items[i - 1].tag, items[i].tag);  // stability
    }
  }
}

TEST_P(ExecBothSpaces, RadixSortMatchesStdSort) {
  for (size_type n : {0, 1, 2, 4095, 4096, 250001}) {
    Rng rng(static_cast<std::uint64_t>(n) + 3);
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (auto& k : keys) k = rng.next_u64();
    std::vector<std::uint64_t> expected = keys;
    std::sort(expected.begin(), expected.end());
    exec::radix_sort_u64(exec::default_executor(GetParam()), keys);
    EXPECT_EQ(keys, expected) << "n=" << n;
  }
}

TEST_P(ExecBothSpaces, RadixSortSkipsConstantBytesCorrectly) {
  // Keys confined to the low 20 bits: most passes are skipped.
  std::vector<std::uint64_t> keys;
  Rng rng(5);
  for (int i = 0; i < 300000; ++i) keys.push_back(rng.next_below(1u << 20));
  std::vector<std::uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  exec::radix_sort_u64(exec::default_executor(GetParam()), keys);
  EXPECT_EQ(keys, expected);
}

// parallel_reduce folds each thread's contiguous chunk locally and then
// combines the per-thread partials sequentially in thread-id order, i.e. the
// overall combine order is left-to-right over [0, n).  `combine` therefore
// only needs associativity, NOT commutativity; this test pins that contract
// with 2x2 matrix products (associative, famously non-commutative).  The old
// implementation merged partials inside an OpenMP critical section in thread
// *arrival* order, which breaks exactly this case.
TEST(ExecReduce, NonCommutativeCombineMatchesSequentialOrder) {
  struct Mat2 {
    std::int64_t a = 1, b = 0, c = 0, d = 1;  // identity
  };
  constexpr std::int64_t kMod = 1000000007;
  const auto multiply = [](const Mat2& x, const Mat2& y) {
    Mat2 r;
    r.a = (x.a * y.a + x.b * y.c) % kMod;
    r.b = (x.a * y.b + x.b * y.d) % kMod;
    r.c = (x.c * y.a + x.d * y.c) % kMod;
    r.d = (x.c * y.b + x.d * y.d) % kMod;
    return r;
  };
  const auto element = [](size_type i) {
    // A mix of upper- and lower-triangular factors: products of these are
    // order-sensitive.
    Mat2 m;
    if (i % 2 == 0) {
      m.b = (i % 97) + 1;
    } else {
      m.c = (i % 89) + 1;
    }
    return m;
  };

  const size_type n = 50000;
  Mat2 expected;
  for (size_type i = 0; i < n; ++i) expected = multiply(expected, element(i));

  // A 4-thread budget forces the parallel path even on small machines (the
  // OpenMP runtime oversubscribes happily).
  const exec::Executor executor(exec::openmp_backend(), 4);
  ASSERT_TRUE(executor.parallelize(n));
  const Mat2 got = exec::parallel_reduce(executor, n, Mat2{}, element, multiply);
  EXPECT_EQ(got.a, expected.a);
  EXPECT_EQ(got.b, expected.b);
  EXPECT_EQ(got.c, expected.c);
  EXPECT_EQ(got.d, expected.d);
}

TEST(ExecReduce, NonCommutativeCombineIsStableAcrossThreadBudgets) {
  const size_type n = 30000;
  const auto concat_digit = [](std::string acc, std::string next) { return acc + next; };
  const auto digit = [](size_type i) { return std::string(1, '0' + static_cast<char>(i % 10)); };
  std::string expected;
  for (size_type i = 0; i < n; ++i) expected += digit(i);
  for (const int threads : {1, 2, 3, 8}) {
    const exec::Executor executor(exec::openmp_backend(), threads);
    const auto got =
        exec::parallel_reduce(executor, n, std::string{}, digit, concat_digit);
    ASSERT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ExecAtomics, FetchMaxMinAdd) {
  index_t slot = 5;
  exec::atomic_fetch_max(slot, index_t{3});
  EXPECT_EQ(slot, 5);
  exec::atomic_fetch_max(slot, index_t{9});
  EXPECT_EQ(slot, 9);
  exec::atomic_fetch_min(slot, index_t{11});
  EXPECT_EQ(slot, 9);
  exec::atomic_fetch_min(slot, index_t{2});
  EXPECT_EQ(slot, 2);
  EXPECT_EQ(exec::atomic_fetch_add(slot, index_t{7}), 2);
  EXPECT_EQ(slot, 9);
}

TEST(ExecAtomics, ConcurrentMaxFindsGlobalMax) {
  index_t slot = -1;
  const size_type n = 1 << 20;
  exec::parallel_for(exec::default_executor(), n, [&](size_type i) {
    exec::atomic_fetch_max(slot, static_cast<index_t>((i * 2654435761u) % 1000003));
  });
  EXPECT_EQ(slot, 1000002);  // the residue range is fully covered for n > 10^6
}

TEST(ExecOrderBits, PreservesOrderForNonNegativeDoubles) {
  Rng rng(3);
  double prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.next_double() * 1e9;
    const double b = rng.next_double() * 1e9;
    EXPECT_EQ(a < b, exec::order_preserving_bits(a) < exec::order_preserving_bits(b));
    prev = a;
  }
  (void)prev;
  EXPECT_LT(exec::order_preserving_bits(0.0), exec::order_preserving_bits(1e-300));
}

}  // namespace
