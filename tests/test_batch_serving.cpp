// The batched serving layer: result parity with sequential execution, the
// small/large work-division policy, per-slot steady-state arena behaviour,
// shared-ArtifactCache replay across slots, and exception isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/serve/batch_executor.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using pandora::testing::Topology;
using pandora::testing::make_tree;

std::vector<graph::EdgeList> make_batch_trees(index_t num_vertices, std::size_t count) {
  std::vector<graph::EdgeList> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    trees.push_back(make_tree(Topology::random_attach, num_vertices, 100 + i, 0));
  return trees;
}

TEST(BatchExecutor, BatchedDendrogramsMatchSequential) {
  const exec::Executor parent(exec::default_backend(), 4);
  serve::BatchExecutor batch(parent, {.num_slots = 4});

  // Mixed sizes straddling the small/large threshold, so both phases of the
  // scheduler run.
  std::vector<graph::EdgeList> trees;
  std::vector<index_t> sizes = {500, 40000, 1200, 800, 40000, 2000};
  for (std::size_t i = 0; i < sizes.size(); ++i)
    trees.push_back(make_tree(Topology::preferential, sizes[i], 7 * i + 1, i % 2 ? 5 : 0));
  ASSERT_GT(static_cast<size_type>(trees[1].size()), batch.options().small_query_threshold);
  ASSERT_LT(static_cast<size_type>(trees[0].size()), batch.options().small_query_threshold);

  std::vector<serve::DendrogramQuery> queries;
  for (std::size_t i = 0; i < trees.size(); ++i)
    queries.push_back({&trees[i], sizes[i], {}});

  const std::vector<dendrogram::Dendrogram> batched = batch.build_dendrograms(queries);

  // Sequential reference on an independent executor.
  const exec::Executor reference(exec::default_backend(), 4);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const dendrogram::Dendrogram expected =
        dendrogram::pandora_dendrogram(reference, trees[i], sizes[i]);
    EXPECT_EQ(batched[i].parent, expected.parent) << "query " << i;
    EXPECT_EQ(batched[i].weight, expected.weight) << "query " << i;
    EXPECT_EQ(batched[i].edge_order, expected.edge_order) << "query " << i;
  }
}

TEST(BatchExecutor, BatchedHdbscanMatchesSequential) {
  const exec::Executor parent(exec::default_backend(), 4);
  serve::BatchExecutor batch(parent);

  std::vector<spatial::PointSet> point_sets;
  for (unsigned seed = 0; seed < 4; ++seed)
    point_sets.push_back(data::gaussian_blobs(400, 2, 3, 0.03, 0.2, seed));

  std::vector<serve::HdbscanQuery> queries;
  for (auto& points : point_sets) {
    hdbscan::HdbscanOptions options;
    options.min_pts = 4;
    options.min_cluster_size = 10;
    queries.push_back({&points, options});
  }
  const std::vector<hdbscan::HdbscanResult> batched = batch.run_hdbscan(queries);

  const exec::Executor reference(exec::default_backend(), 4);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const hdbscan::HdbscanResult expected =
        hdbscan::hdbscan(reference, point_sets[i], queries[i].options);
    EXPECT_EQ(batched[i].labels, expected.labels) << "query " << i;
    EXPECT_EQ(batched[i].num_clusters, expected.num_clusters) << "query " << i;
    EXPECT_EQ(batched[i].dendrogram.parent, expected.dendrogram.parent) << "query " << i;
  }
}

TEST(BatchExecutor, SlotArenasReachSteadyState) {
  const exec::Executor parent(exec::default_backend(), 4);
  serve::BatchExecutor batch(parent, {.num_slots = 4});
  // Caching off so every batch re-sorts through the slot arenas (with it on,
  // the second batch would hit the SortedEdges cache and lease nothing).
  parent.set_artifact_caching(false);

  // Same-shaped queries: once a slot has processed one, its arena holds
  // blocks of every size class the shape needs.  The dynamic queue means a
  // slot may sit out early batches (and so still miss later), so the
  // guarantee is *convergence*: within a few batches, a whole batch leases
  // everything from recycled per-slot blocks.
  const std::vector<graph::EdgeList> trees = make_batch_trees(4000, 8);
  std::vector<serve::DendrogramQuery> queries;
  for (const auto& tree : trees) queries.push_back({&tree, 4000, {}});

  const auto total_misses = [&] {
    std::size_t misses = 0;
    for (int s = 0; s < batch.num_slots(); ++s)
      misses += batch.slot(s).workspace().stats().misses;
    return misses;
  };

  std::vector<dendrogram::Dendrogram> out;
  batch.build_dendrograms_into(queries, out);  // cold batch
  std::size_t previous = total_misses();
  bool steady = false;
  for (int round = 0; round < 20 && !steady; ++round) {
    batch.build_dendrograms_into(queries, out);
    const std::size_t now = total_misses();
    steady = now == previous;
    previous = now;
  }
  EXPECT_TRUE(steady)
      << "warm batches of same-shaped queries must stop allocating: every "
         "slot leases its scratch from recycled arena blocks";
}

TEST(BatchExecutor, SlotsShareTheParentArtifactCache) {
  const exec::Executor parent(exec::default_backend(), 4);
  serve::BatchExecutor batch(parent, {.num_slots = 4});

  const graph::EdgeList tree = make_tree(Topology::random_attach, 3000, 42, 0);
  // Warm the parent cache, then batch N identical queries: every slot must
  // replay the parent's artifact instead of re-sorting.
  (void)dendrogram::sorted_edges_cached(parent, tree, 3000);
  const auto warm_stats = parent.artifact_cache().stats();

  std::vector<serve::DendrogramQuery> queries(8, serve::DendrogramQuery{&tree, 3000, {}});
  const std::vector<dendrogram::Dendrogram> results = batch.build_dendrograms(queries);
  const auto stats = parent.artifact_cache().stats();
  EXPECT_GE(stats.hits - warm_stats.hits, queries.size())
      << "all slots look up the shared cache and hit the pre-warmed artifact";
  for (const auto& d : results) EXPECT_EQ(d.parent, results[0].parent);
}

TEST(BatchExecutor, OverlappedAndSequentialPhasesAgree) {
  // Same mixed batch with the large-drain overlap on (default) and off:
  // identical results, and with overlap the large jobs must be able to run
  // while small jobs are still in flight (observed via a latch the small
  // jobs only release after a large job ran).
  const exec::Executor parent(exec::default_backend(), 4);
  std::vector<graph::EdgeList> trees;
  std::vector<index_t> sizes = {600, 30000, 900, 700, 30000, 1100};
  for (std::size_t i = 0; i < sizes.size(); ++i)
    trees.push_back(make_tree(Topology::random_attach, sizes[i], 11 * i + 3, 0));
  std::vector<serve::DendrogramQuery> queries;
  for (std::size_t i = 0; i < trees.size(); ++i) queries.push_back({&trees[i], sizes[i], {}});

  serve::BatchOptions overlapped_options;
  overlapped_options.num_slots = 2;
  overlapped_options.small_query_threshold = 2000;
  serve::BatchOptions sequential_options = overlapped_options;
  sequential_options.overlap_phases = false;

  serve::BatchExecutor overlapped(parent, overlapped_options);
  serve::BatchExecutor sequential(parent, sequential_options);
  const auto via_overlap = overlapped.build_dendrograms(queries);
  const auto via_sequence = sequential.build_dendrograms(queries);
  ASSERT_EQ(via_overlap.size(), via_sequence.size());
  for (std::size_t i = 0; i < via_overlap.size(); ++i) {
    EXPECT_EQ(via_overlap[i].parent, via_sequence[i].parent) << "query " << i;
    EXPECT_EQ(via_overlap[i].weight, via_sequence[i].weight) << "query " << i;
  }

  // Concurrency witness: a small job blocks until the large phase has
  // started — only the overlapped scheduler can finish this batch.
  std::atomic<bool> large_started{false};
  std::vector<serve::BatchExecutor::Job> jobs;
  jobs.push_back({[&](const exec::Executor&) {
                    while (!large_started.load()) std::this_thread::yield();
                  },
                  /*size_hint=*/16});
  jobs.push_back({[&](const exec::Executor&) { large_started.store(true); },
                  /*size_hint=*/100000});
  serve::BatchExecutor witness(parent, overlapped_options);
  witness.run(jobs);  // would deadlock without phase overlap
  EXPECT_TRUE(large_started.load());
}

TEST(BatchExecutor, ExceptionsAreIsolatedAndRethrown) {
  const exec::Executor parent(exec::default_backend(), 2);
  serve::BatchExecutor batch(parent, {.num_slots = 2});

  std::atomic<int> completed{0};
  std::vector<serve::BatchExecutor::Job> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({[i, &completed](const exec::Executor&) {
                      if (i == 2) throw std::runtime_error("poisoned query");
                      completed.fetch_add(1);
                    },
                    /*size_hint=*/16});
  }
  EXPECT_THROW(batch.run(jobs), std::runtime_error);
  EXPECT_EQ(completed.load(), 5) << "one poisoned query must not abort its batchmates";
}

TEST(BatchExecutor, WaveQueryExceptionsAreIsolatedButUpdatesStillApply) {
  const exec::Executor parent(exec::default_backend(), 2);
  serve::BatchExecutor batch(parent, {.num_slots = 2});

  std::atomic<int> updates_applied{0};
  std::atomic<int> queries_completed{0};
  std::vector<serve::BatchExecutor::Wave> waves(3);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    for (int q = 0; q < 3; ++q) {
      waves[w].queries.push_back(serve::BatchExecutor::Job{
          [w, q, &queries_completed](const exec::Executor&) {
            if (w == 0 && q == 1) throw std::runtime_error("poisoned wave query");
            queries_completed.fetch_add(1);
          },
          /*size_hint=*/16});
    }
    waves[w].update = [&updates_applied](const exec::Executor&) {
      updates_applied.fetch_add(1);
    };
  }
  // The poisoned wave-0 query must not stop wave 0's update nor the later
  // waves; its exception surfaces after the final wave.
  EXPECT_THROW(batch.run_waves(waves), std::runtime_error);
  EXPECT_EQ(updates_applied.load(), 3);
  EXPECT_EQ(queries_completed.load(), 8);
}

TEST(BatchExecutor, TenantQuotaConfinesEvictionToTheOffendingTenant) {
  const exec::Executor parent(exec::default_backend(), 2);
  serve::BatchExecutor batch(parent, {.num_slots = 2, .max_cache_slots_per_tenant = 2});
  ASSERT_EQ(parent.artifact_cache().tenant_quota(), 2u);

  // Artifacts land in the shared cache under the owner tag the scheduler
  // installed for the job (Job::tenant -> Executor::cache_owner).
  struct Artifact {
    std::uint64_t key;
  };
  auto insert_artifact = [](const exec::Executor& exec, std::uint64_t key) {
    exec.artifact_cache().insert(key, std::make_shared<Artifact>(Artifact{key}),
                                 exec.cache_owner());
  };

  std::vector<serve::BatchExecutor::Job> jobs;
  // Tenant 1 sweeps past its quota (three inserts, cap two) in one job, so
  // the insert order — and with it which entry is the tenant's LRU — is
  // deterministic regardless of job scheduling.
  jobs.push_back({[&](const exec::Executor& exec) {
                    EXPECT_EQ(exec.cache_owner().tenant, 1u);
                    insert_artifact(exec, 1);
                    insert_artifact(exec, 2);
                    insert_artifact(exec, 3);
                  },
                  /*size_hint=*/16, /*tenant=*/1});
  jobs.push_back({[&](const exec::Executor& exec) { insert_artifact(exec, 10); },
                  /*size_hint=*/16, /*tenant=*/2});
  batch.run(jobs);

  // The quota-exceeding tenant displaced its own LRU entry; the sibling
  // tenant's artifact — and the cache's plentiful empty slots — are intact.
  exec::ArtifactCache& cache = parent.artifact_cache();
  EXPECT_EQ(cache.find<Artifact>(1), nullptr) << "tenant 1 paid with its own LRU entry";
  EXPECT_NE(cache.find<Artifact>(2), nullptr);
  EXPECT_NE(cache.find<Artifact>(3), nullptr);
  EXPECT_NE(cache.find<Artifact>(10), nullptr) << "tenant 2 is unaffected";
}

// The regression test for the old run_waves semantics gap: a query batch
// submitted from another thread while waves are in flight must never observe
// a half-applied update.  The update writes a pair that is equal exactly at
// the epoch boundaries; the epoch gate makes the torn state unobservable by
// construction (and the pair is gate-protected plain data, so the CI
// ThreadSanitizer entry also proves the gate's synchronisation, not just its
// outcome).
TEST(BatchExecutor, ConcurrentBatchesNeverObserveHalfAppliedWaveUpdates) {
  const exec::Executor parent(exec::default_backend(), 2);
  serve::BatchExecutor batch(parent, {.num_slots = 2});

  std::uint64_t epoch_a = 0;  // gate-protected: shared section reads,
  std::uint64_t epoch_b = 0;  // exclusive wave updates write
  std::atomic<bool> done{false};
  std::atomic<bool> torn{false};

  std::thread prober([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<serve::BatchExecutor::Job> jobs;
      for (int q = 0; q < 4; ++q) {
        jobs.push_back({[&](const exec::Executor&) {
                          const std::uint64_t a = epoch_a;
                          std::this_thread::yield();  // widen any torn window
                          const std::uint64_t b = epoch_b;
                          if (a != b) torn.store(true, std::memory_order_relaxed);
                        },
                        /*size_hint=*/16});
      }
      batch.run(jobs);
    }
  });

  std::vector<serve::BatchExecutor::Wave> waves(50);
  for (auto& wave : waves) {
    wave.update = [&](const exec::Executor&) {
      ++epoch_a;
      std::this_thread::yield();  // a batch admitted here would see a != b
      ++epoch_b;
    };
  }
  batch.run_waves(waves);
  done.store(true, std::memory_order_release);
  prober.join();

  EXPECT_FALSE(torn.load()) << "a query batch observed a half-applied epoch";
  EXPECT_EQ(epoch_a, 50u);
  EXPECT_EQ(epoch_b, 50u);
}

TEST(BatchExecutor, PipelineBatchFrontDoor) {
  const exec::Executor executor(exec::default_backend(), 2);
  const std::vector<graph::EdgeList> trees = make_batch_trees(1500, 3);
  std::vector<serve::DendrogramQuery> queries;
  for (const auto& tree : trees) queries.push_back({&tree, 1500, {}});

  serve::BatchExecutor batch = Pipeline::on(executor).batch();
  const auto dendrograms = batch.build_dendrograms(queries);
  ASSERT_EQ(dendrograms.size(), 3u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto expected = dendrogram::pandora_dendrogram(executor, trees[i], 1500);
    EXPECT_EQ(dendrograms[i].parent, expected.parent);
  }
}

}  // namespace
