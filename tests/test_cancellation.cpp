// Cooperative cancellation and deadlines: token semantics, the run_chunks
// chunk-boundary contract on every backend, the serial-fallback polling of
// parallel_for, and the Pipeline deadline/cancellation front doors.  The
// load-bearing invariant: cancellation unwinds with pandora::Cancelled on
// the *calling* thread (chunk bodies never throw — Backend contract) and a
// cancelled executor is immediately reusable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "pandora/data/point_generators.hpp"
#include "pandora/exec/cancellation.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/pipeline.hpp"

namespace {

using namespace pandora;
using namespace std::chrono_literals;

TEST(CancellationToken, ExplicitCancelFires) {
  exec::CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(token.deadline_exceeded());
}

TEST(CancellationToken, DeadlineFires) {
  exec::CancellationToken token = exec::CancellationToken::after(0ns);
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.deadline_exceeded());

  exec::CancellationToken distant;
  distant.set_deadline(exec::CancellationToken::clock::now() + 1h);
  EXPECT_FALSE(distant.cancelled());
}

TEST(CancellationToken, ParentCancellationPropagates) {
  exec::CancellationToken parent;
  exec::CancellationToken child;
  child.add_parent(&parent);
  child.add_parent(nullptr);  // no-op
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(child.deadline_exceeded());
}

TEST(CancellationToken, ParentDeadlineReportsAsDeadline) {
  exec::CancellationToken parent = exec::CancellationToken::after(0ns);
  exec::CancellationToken child;
  child.add_parent(&parent);
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(child.deadline_exceeded());
}

TEST(Cancellation, PreCancelledTokenStopsLaunchBeforeAnyChunk) {
  const exec::Executor executor;
  exec::CancellationToken token;
  token.cancel();
  const exec::ScopedCancellation scope(executor, &token);
  std::atomic<int> executed{0};
  auto body = [&](int) { executed.fetch_add(1, std::memory_order_relaxed); };
  EXPECT_THROW(executor.run_chunks(64, 0, body), Cancelled);
  EXPECT_EQ(executed.load(), 0);
}

TEST(Cancellation, MidLaunchCancelSkipsRemainingChunks) {
  const exec::Executor executor;
  exec::CancellationToken token;
  const exec::ScopedCancellation scope(executor, &token);
  // Every chunk body cancels the token: only bodies already past the guard
  // when the first one fires can still run, so far fewer than the 1000
  // scheduled chunks execute — regardless of chunk execution order.
  std::atomic<int> executed{0};
  auto body = [&](int) {
    token.cancel();
    executed.fetch_add(1, std::memory_order_relaxed);
  };
  EXPECT_THROW(executor.run_chunks(1000, 0, body), Cancelled);
  EXPECT_GT(executed.load(), 0);
  EXPECT_LT(executed.load(), 1000);
}

TEST(Cancellation, SerialFallbackPollsAtGrain) {
  // A serial-backend executor takes the serial fallback of parallel_for; a
  // deadline that expires immediately must still cancel it (polled every
  // kParallelForGrain iterations), not run the loop to completion.
  const exec::Executor executor(exec::serial_backend());
  const exec::CancellationToken token = exec::CancellationToken::after(0ns);
  const exec::ScopedCancellation scope(executor, &token);
  std::atomic<long> visited{0};
  EXPECT_THROW(exec::parallel_for(executor, 1'000'000,
                                  [&](size_type) { visited.fetch_add(1, std::memory_order_relaxed); }),
               Cancelled);
  EXPECT_LT(visited.load(), 1'000'000);
}

TEST(Cancellation, ExecutorReusableAfterCancel) {
  const exec::Executor executor;
  {
    exec::CancellationToken token;
    token.cancel();
    const exec::ScopedCancellation scope(executor, &token);
    auto noop = [](int) {};
    EXPECT_THROW(executor.run_chunks(8, 0, noop), Cancelled);
  }
  // Scope restored the (null) token: the next launch runs all chunks.
  std::atomic<int> executed{0};
  auto body = [&](int) { executed.fetch_add(1, std::memory_order_relaxed); };
  executor.run_chunks(8, 0, body);
  EXPECT_EQ(executed.load(), 8);
}

TEST(Cancellation, ScopedCancellationNestsAndRestores) {
  const exec::Executor executor;
  exec::CancellationToken outer;
  {
    const exec::ScopedCancellation outer_scope(executor, &outer);
    EXPECT_EQ(executor.cancellation_token(), &outer);
    {
      exec::CancellationToken inner;
      const exec::ScopedCancellation inner_scope(executor, &inner);
      EXPECT_EQ(executor.cancellation_token(), &inner);
    }
    EXPECT_EQ(executor.cancellation_token(), &outer);
    // A null token is a no-op scope: the outer token stays installed.
    const exec::ScopedCancellation noop(executor, nullptr);
    EXPECT_EQ(executor.cancellation_token(), &outer);
  }
  EXPECT_EQ(executor.cancellation_token(), nullptr);
}

TEST(Cancellation, PipelineDeadlineCancelsHdbscan) {
  const exec::Executor executor;
  const spatial::PointSet points = data::gaussian_blobs(4000, 3, 4, 0.05, 0.1, 11);
  try {
    (void)Pipeline::on(executor).with_min_pts(4).with_deadline(1ns).run_hdbscan(points);
    FAIL() << "expected pandora::Cancelled";
  } catch (const Cancelled& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos) << e.what();
  }
  // The executor (and its arena) survive the unwind: the same query without
  // a deadline completes.
  EXPECT_NO_THROW((void)Pipeline::on(executor).with_min_pts(4).run_hdbscan(points));
}

TEST(Cancellation, PipelineExternalTokenCancelsFromAnotherThread) {
  const exec::Executor executor;
  const spatial::PointSet points = data::gaussian_blobs(4000, 3, 4, 0.05, 0.1, 13);
  exec::CancellationToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(1ms);
    token.cancel();
  });
  // Either the cancel lands mid-computation (Cancelled) or the query was
  // faster — both are legal; what must not happen is a hang or a crash.
  try {
    (void)Pipeline::on(executor).with_min_pts(4).with_cancellation(&token).run_hdbscan(points);
  } catch (const Cancelled&) {
  }
  canceller.join();
  SUCCEED();
}

TEST(Cancellation, PipelineSnapshotTerminalHonoursDeadline) {
  const exec::Executor writer(exec::serial_backend());
  snapshot::PublishedClustering published(writer);
  published.insert(data::gaussian_blobs(2000, 2, 3, 0.05, 0.1, 17));
  const snapshot::SnapshotPtr snap = published.acquire();

  const exec::Executor reader;
  EXPECT_THROW((void)Pipeline::on_snapshot(reader, *snap).with_deadline(1ns).run_hdbscan(),
               Cancelled);
  EXPECT_NO_THROW((void)Pipeline::on_snapshot(reader, *snap).run_hdbscan());
}

TEST(Cancellation, ZeroDeadlineMeansUnlimited) {
  const exec::Executor executor;
  const spatial::PointSet points = data::gaussian_blobs(300, 2, 3, 0.05, 0.1, 19);
  EXPECT_NO_THROW((void)Pipeline::on(executor).with_deadline(0ns).run_hdbscan(points));
}

}  // namespace
