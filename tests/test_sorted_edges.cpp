#include <gtest/gtest.h>

#include "pandora/dendrogram/sorted_edges.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::SortedEdges;
using pandora::testing::Topology;
using pandora::testing::make_tree;

TEST(SortedEdges, DescendingWeightsWithStableTieBreak) {
  const graph::EdgeList tree = make_tree(Topology::random_attach, 500, 7, /*distinct=*/3);
  for (const auto& space : exec::registered_backends()) {
    const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(space), tree, 500);
    ASSERT_EQ(sorted.num_edges(), 499);
    for (index_t i = 1; i < sorted.num_edges(); ++i) {
      const double prev = sorted.weight[static_cast<std::size_t>(i - 1)];
      const double cur = sorted.weight[static_cast<std::size_t>(i)];
      ASSERT_GE(prev, cur);
      if (prev == cur) {
        ASSERT_LT(sorted.order[static_cast<std::size_t>(i - 1)],
                  sorted.order[static_cast<std::size_t>(i)])
            << "ties must keep original edge order";
      }
    }
  }
}

TEST(SortedEdges, OrderIsAPermutationCarryingEndpoints) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 300, 3, 0);
  const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(), tree, 300);
  std::vector<bool> seen(tree.size(), false);
  for (index_t i = 0; i < sorted.num_edges(); ++i) {
    const index_t original = sorted.order[static_cast<std::size_t>(i)];
    ASSERT_GE(original, 0);
    ASSERT_LT(original, static_cast<index_t>(tree.size()));
    ASSERT_FALSE(seen[static_cast<std::size_t>(original)]);
    seen[static_cast<std::size_t>(original)] = true;
    const auto& e = tree[static_cast<std::size_t>(original)];
    EXPECT_EQ(sorted.u[static_cast<std::size_t>(i)], e.u);
    EXPECT_EQ(sorted.v[static_cast<std::size_t>(i)], e.v);
    EXPECT_EQ(sorted.weight[static_cast<std::size_t>(i)], e.weight);
  }
}

TEST(SortedEdges, SerialAndParallelAgreeExactly) {
  const graph::EdgeList tree = make_tree(Topology::caterpillar, 20000, 11, /*distinct=*/2);
  const SortedEdges a = dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), tree, 20000);
  const SortedEdges b = dendrogram::sort_edges(exec::default_executor(), tree, 20000);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
}

TEST(SortedEdges, DeltaMergeIsBitIdenticalToAFullSort) {
  // Drop a pseudo-random subset of a sorted run, append new edges (with
  // deliberate exact weight ties against survivors), optionally remap
  // vertices — the linear delta merge must equal sort_edges over the
  // materialised updated list, order array included.
  const exec::Executor& executor = exec::default_executor();
  const graph::EdgeList tree = make_tree(Topology::random_attach, 2000, 13, /*distinct=*/4);
  const SortedEdges base = dendrogram::sort_edges(executor, tree, 2000);

  std::vector<char> keep(tree.size(), 1);
  for (std::size_t i = 0; i < tree.size(); i += 7) keep[i] = 0;

  graph::EdgeList added;
  for (index_t j = 0; j < 40; ++j) {
    // Half the additions duplicate surviving weights exactly (tie stress).
    const auto src = static_cast<std::size_t>(j * 11 + 1);
    const double weight = j % 2 == 0 ? tree[src].weight : 0.123 + j;
    added.push_back({j, 1999 - j, weight});
  }

  // Identity remap exercised as both an empty span and an explicit one.
  std::vector<index_t> identity(2000);
  for (index_t v = 0; v < 2000; ++v) identity[static_cast<std::size_t>(v)] = v;

  graph::EdgeList updated;
  for (std::size_t i = 0; i < tree.size(); ++i)
    if (keep[i] != 0) updated.push_back(tree[i]);
  updated.insert(updated.end(), added.begin(), added.end());
  const SortedEdges expected = dendrogram::sort_edges(executor, updated, 2000);

  for (const bool explicit_remap : {false, true}) {
    SortedEdges merged;
    dendrogram::merge_sorted_edges_delta(
        executor, base, keep, added,
        explicit_remap ? std::span<const index_t>(identity) : std::span<const index_t>{},
        2000, merged);
    EXPECT_EQ(merged.u, expected.u);
    EXPECT_EQ(merged.v, expected.v);
    EXPECT_EQ(merged.weight, expected.weight);
    EXPECT_EQ(merged.order, expected.order);
    EXPECT_EQ(merged.num_vertices, expected.num_vertices);
  }

  // Degenerate deltas: drop everything / add nothing.
  SortedEdges all_dropped;
  const std::vector<char> none(tree.size(), 0);
  dendrogram::merge_sorted_edges_delta(executor, base, none, added, {}, 2000, all_dropped);
  const SortedEdges only_added = dendrogram::sort_edges(executor, added, 2000);
  EXPECT_EQ(all_dropped.weight, only_added.weight);
  EXPECT_EQ(all_dropped.order, only_added.order);

  SortedEdges unchanged;
  dendrogram::merge_sorted_edges_delta(executor, base, std::vector<char>(tree.size(), 1), {},
                                       {}, 2000, unchanged);
  EXPECT_EQ(unchanged.u, base.u);
  EXPECT_EQ(unchanged.order, base.order);
}

TEST(SortedEdges, ValidationRejectsNonTrees) {
  graph::EdgeList cycle{{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
  EXPECT_THROW((void)dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), cycle, 3, true),
               std::invalid_argument);
  graph::EdgeList nan_weight{{0, 1, std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_THROW((void)dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), nan_weight, 2, true),
               std::invalid_argument);
}

}  // namespace
