#include <gtest/gtest.h>

#include "pandora/dendrogram/sorted_edges.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::SortedEdges;
using pandora::testing::Topology;
using pandora::testing::make_tree;

TEST(SortedEdges, DescendingWeightsWithStableTieBreak) {
  const graph::EdgeList tree = make_tree(Topology::random_attach, 500, 7, /*distinct=*/3);
  for (const exec::Space space : {exec::Space::serial, exec::Space::parallel}) {
    const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(space), tree, 500);
    ASSERT_EQ(sorted.num_edges(), 499);
    for (index_t i = 1; i < sorted.num_edges(); ++i) {
      const double prev = sorted.weight[static_cast<std::size_t>(i - 1)];
      const double cur = sorted.weight[static_cast<std::size_t>(i)];
      ASSERT_GE(prev, cur);
      if (prev == cur) {
        ASSERT_LT(sorted.order[static_cast<std::size_t>(i - 1)],
                  sorted.order[static_cast<std::size_t>(i)])
            << "ties must keep original edge order";
      }
    }
  }
}

TEST(SortedEdges, OrderIsAPermutationCarryingEndpoints) {
  const graph::EdgeList tree = make_tree(Topology::preferential, 300, 3, 0);
  const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(exec::Space::parallel), tree, 300);
  std::vector<bool> seen(tree.size(), false);
  for (index_t i = 0; i < sorted.num_edges(); ++i) {
    const index_t original = sorted.order[static_cast<std::size_t>(i)];
    ASSERT_GE(original, 0);
    ASSERT_LT(original, static_cast<index_t>(tree.size()));
    ASSERT_FALSE(seen[static_cast<std::size_t>(original)]);
    seen[static_cast<std::size_t>(original)] = true;
    const auto& e = tree[static_cast<std::size_t>(original)];
    EXPECT_EQ(sorted.u[static_cast<std::size_t>(i)], e.u);
    EXPECT_EQ(sorted.v[static_cast<std::size_t>(i)], e.v);
    EXPECT_EQ(sorted.weight[static_cast<std::size_t>(i)], e.weight);
  }
}

TEST(SortedEdges, SerialAndParallelAgreeExactly) {
  const graph::EdgeList tree = make_tree(Topology::caterpillar, 20000, 11, /*distinct=*/2);
  const SortedEdges a = dendrogram::sort_edges(exec::default_executor(exec::Space::serial), tree, 20000);
  const SortedEdges b = dendrogram::sort_edges(exec::default_executor(exec::Space::parallel), tree, 20000);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
}

TEST(SortedEdges, ValidationRejectsNonTrees) {
  graph::EdgeList cycle{{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
  EXPECT_THROW((void)dendrogram::sort_edges(exec::default_executor(exec::Space::serial), cycle, 3, true),
               std::invalid_argument);
  graph::EdgeList nan_weight{{0, 1, std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_THROW((void)dendrogram::sort_edges(exec::default_executor(exec::Space::serial), nan_weight, 2, true),
               std::invalid_argument);
}

}  // namespace
