// Structural properties of the recursive tree contraction (Sections 3.2/4.2):
// alpha-edge counts, level-count bounds, vertex-map consistency.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "pandora/dendrogram/analysis.hpp"
#include "pandora/dendrogram/contraction.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pandora;
using dendrogram::ContractionHierarchy;
using dendrogram::SortedEdges;
using pandora::testing::Topology;
using pandora::testing::all_topologies;
using pandora::testing::make_tree;
using pandora::testing::topology_name;

ContractionHierarchy hierarchy_of(const graph::EdgeList& tree, index_t nv,
                                  const std::shared_ptr<const exec::Backend>& space) {
  const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(space), tree, nv);
  std::vector<index_t> gid(static_cast<std::size_t>(sorted.num_edges()));
  std::iota(gid.begin(), gid.end(), index_t{0});
  return dendrogram::build_hierarchy(exec::default_executor(space), sorted.u, sorted.v, std::move(gid), nv,
                                     sorted.num_edges());
}

class ContractionSweep : public ::testing::TestWithParam<std::tuple<Topology, index_t>> {};

INSTANTIATE_TEST_SUITE_P(Sweep, ContractionSweep,
                         ::testing::Combine(::testing::ValuesIn(all_topologies()),
                                            ::testing::Values<index_t>(2, 17, 128, 1000, 4096)));

TEST_P(ContractionSweep, PaperBoundsHold) {
  const auto& [topo, nv] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const graph::EdgeList tree = make_tree(topo, nv, seed);
    const index_t n = nv - 1;
    const ContractionHierarchy h = hierarchy_of(tree, nv, exec::default_backend());

    // Section 4.2: at most ceil(log2(n+1)) contraction levels.
    const auto level_bound =
        static_cast<index_t>(std::ceil(std::log2(static_cast<double>(n) + 1))) + 1;
    EXPECT_LE(h.num_levels(), std::max<index_t>(level_bound, 1))
        << topology_name(topo) << " n=" << n;

    index_t total_edges = 0;
    for (index_t l = 0; l < h.num_levels(); ++l) {
      const auto& level = h.levels[static_cast<std::size_t>(l)];
      // n_alpha <= (n_level - 1) / 2 (Section 4.2).
      EXPECT_LE(2 * level.num_alpha, std::max<index_t>(level.num_edges - 1, 0))
          << "level " << l;
      // The next level is exactly the alpha edges.
      if (l + 1 < h.num_levels()) {
        EXPECT_EQ(h.levels[static_cast<std::size_t>(l) + 1].num_edges, level.num_alpha);
      }
      total_edges += level.num_edges - level.num_alpha;
    }
    EXPECT_EQ(total_edges, n) << "every edge contracted exactly once (or in the final chain)";

    // Fate arrays: every edge has a level; only final-level edges lack a
    // supervertex.
    for (index_t g = 0; g < n; ++g) {
      const index_t lvl = h.contraction_level[static_cast<std::size_t>(g)];
      ASSERT_NE(lvl, kNone);
      if (h.supervertex[static_cast<std::size_t>(g)] == kNone)
        EXPECT_EQ(lvl, h.num_levels() - 1);
      else
        EXPECT_LT(h.supervertex[static_cast<std::size_t>(g)],
                  h.levels[static_cast<std::size_t>(lvl) + 1].num_vertices);
    }
  }
}

TEST_P(ContractionSweep, VertexMapsComposeToConnectedPartitions) {
  const auto& [topo, nv] = GetParam();
  const graph::EdgeList tree = make_tree(topo, nv, 1);
  const ContractionHierarchy h = hierarchy_of(tree, nv, exec::serial_backend());
  for (index_t l = 0; l + 1 < h.num_levels(); ++l) {
    const auto& level = h.levels[static_cast<std::size_t>(l)];
    ASSERT_EQ(static_cast<index_t>(level.vertex_map.size()), level.num_vertices);
    const index_t next_nv = h.levels[static_cast<std::size_t>(l) + 1].num_vertices;
    std::vector<bool> hit(static_cast<std::size_t>(next_nv), false);
    for (const index_t sv : level.vertex_map) {
      ASSERT_GE(sv, 0);
      ASSERT_LT(sv, next_nv);
      hit[static_cast<std::size_t>(sv)] = true;
    }
    EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool b) { return b; }))
        << "vertex map onto level " << l + 1 << " must be surjective";
  }
}

TEST_P(ContractionSweep, SidedParentsAreIncidentEdges) {
  const auto& [topo, nv] = GetParam();
  const graph::EdgeList tree = make_tree(topo, nv, 2);
  const SortedEdges sorted = dendrogram::sort_edges(exec::default_executor(exec::serial_backend()), tree, nv);
  std::vector<index_t> gid(static_cast<std::size_t>(sorted.num_edges()));
  std::iota(gid.begin(), gid.end(), index_t{0});
  const ContractionHierarchy h = dendrogram::build_hierarchy(exec::default_executor(exec::serial_backend()), sorted.u, sorted.v, std::move(gid), nv, sorted.num_edges());

  // Level 0 sided parents are Eq. (1): the lightest incident edge, with the
  // side bit naming the endpoint.
  const auto& sided = h.levels[0].sided_parent;
  for (index_t v = 0; v < nv; ++v) {
    const auto g = static_cast<index_t>(sided[static_cast<std::size_t>(v)] >> 1);
    const bool side = (sided[static_cast<std::size_t>(v)] & 1) != 0;
    const index_t endpoint = side ? sorted.v[static_cast<std::size_t>(g)]
                                  : sorted.u[static_cast<std::size_t>(g)];
    ASSERT_EQ(endpoint, v) << "side bit must name the vertex's own endpoint";
    // No incident edge may be lighter (larger index).
    for (index_t e = 0; e < sorted.num_edges(); ++e)
      if (sorted.u[static_cast<std::size_t>(e)] == v ||
          sorted.v[static_cast<std::size_t>(e)] == v) {
        ASSERT_LE(e, g);
      }
  }
}

TEST(Contraction, StarTreeContractsInOneLevel) {
  // Every star edge is incident to the hub; only the hub's maxIncident rule
  // applies, so no edge is alpha and the recursion stops immediately.
  graph::EdgeList tree = data::star_tree(500);
  pandora::Rng rng(1);
  data::assign_random_weights(tree, rng);
  const ContractionHierarchy h = hierarchy_of(tree, 500, exec::default_backend());
  EXPECT_EQ(h.num_levels(), 1);
  EXPECT_EQ(h.levels[0].num_alpha, 0);
}

TEST(Contraction, AlphaCountMatchesDendrogramClassification) {
  // The alpha edges found by local incidence (Eq. 2) are exactly the edge
  // nodes with two edge children in the final dendrogram.
  for (const Topology topo : all_topologies()) {
    const graph::EdgeList tree = make_tree(topo, 600, 5);
    const ContractionHierarchy h = hierarchy_of(tree, 600, exec::default_backend());
    const auto d = dendrogram::pandora_dendrogram(exec::default_executor(), tree, 600);
    const auto counts = dendrogram::classify_edges(d);
    EXPECT_EQ(h.levels[0].num_alpha, counts.alpha_edges) << topology_name(topo);
    // And the paper's identity n_alpha = n_leaf - 1.
    EXPECT_EQ(counts.alpha_edges, counts.leaf_edges - 1) << topology_name(topo);
  }
}

}  // namespace
