// The snapshot:: epoch-published serving tier: publish/acquire lifecycle,
// reader-pinned epochs under concurrent writer churn (the CI gcc-tsan matrix
// entry race-checks the stress test), RCU-style reclaim when the last reader
// drains (the gcc-sanitize / ASan entry leak-checks it), the Pipeline
// front door, and the snapshot-backed wave driver where writers never block
// readers.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pandora/data/point_generators.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/serve/batch_executor.hpp"
#include "pandora/snapshot/published_clustering.hpp"
#include "pandora/snapshot/snapshot.hpp"

namespace {

using namespace pandora;

hdbscan::HdbscanOptions stress_options() {
  hdbscan::HdbscanOptions options;
  options.min_pts = 3;
  options.min_cluster_size = 8;
  return options;
}

/// The bit-identity contract: `result` (computed by a reader against a
/// pinned snapshot, possibly replaying cached artifacts) must equal a cold
/// rebuild over the same frozen points.
void expect_bit_identical(const hdbscan::HdbscanResult& result,
                          const hdbscan::HdbscanResult& cold, std::uint64_t epoch) {
  EXPECT_EQ(result.labels, cold.labels) << "epoch " << epoch;
  EXPECT_EQ(result.num_clusters, cold.num_clusters) << "epoch " << epoch;
  EXPECT_EQ(result.core_distances, cold.core_distances) << "epoch " << epoch;
  EXPECT_EQ(result.dendrogram.parent, cold.dendrogram.parent) << "epoch " << epoch;
  EXPECT_EQ(result.dendrogram.weight, cold.dendrogram.weight) << "epoch " << epoch;
}

TEST(SnapshotServing, PublishAcquireLifecycle) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);

  // Before any insert: an empty epoch-0 snapshot is already acquirable.
  const snapshot::SnapshotPtr empty = published.acquire();
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->epoch(), 0u);
  EXPECT_EQ(empty->size(), 0);

  published.insert(data::gaussian_blobs(300, 2, 3, 0.04, 0.1, 7));
  const snapshot::SnapshotPtr first = published.acquire();
  EXPECT_EQ(first->epoch(), 1u);
  EXPECT_EQ(first->size(), 300);
  EXPECT_EQ(published.published_epoch(), 1u);

  // A pinned snapshot is frozen: the writer keeps mutating, the reader's
  // epoch does not move and its artifacts stay bit-identical.
  const dendrogram::Dendrogram before = first->dendrogram();
  published.insert(data::gaussian_blobs(50, 2, 3, 0.04, 0.1, 8));
  EXPECT_EQ(published.published_epoch(), 2u);
  EXPECT_EQ(first->epoch(), 1u);
  EXPECT_EQ(first->size(), 300);
  EXPECT_EQ(first->dendrogram().parent, before.parent);
  EXPECT_EQ(published.acquire()->size(), 350);
}

TEST(SnapshotServing, QueriesOnEmptySnapshotThrow) {
  const exec::Executor writer_exec(exec::serial_backend());
  const snapshot::PublishedClustering published(writer_exec);
  const snapshot::SnapshotPtr empty = published.acquire();
  const exec::Executor reader(exec::serial_backend());
  EXPECT_THROW((void)empty->hdbscan(reader, stress_options()), std::invalid_argument);
  EXPECT_THROW((void)empty->tree(reader), std::invalid_argument);
}

TEST(SnapshotServing, ReaderQueriesMatchColdRebuildAndShareTheServingCache) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(500, 2, 4, 0.03, 0.1, 11));
  const snapshot::SnapshotPtr snap = published.acquire();

  const exec::Executor reader_a(exec::serial_backend());
  const exec::Executor reader_b(exec::serial_backend());
  const hdbscan::HdbscanResult via_a = snap->hdbscan(reader_a, stress_options());
  const auto warm = published.serving_cache().stats();
  const hdbscan::HdbscanResult via_b = snap->hdbscan(reader_b, stress_options());
  const auto after = published.serving_cache().stats();
  EXPECT_GE(after.hits - warm.hits, 3u)
      << "the second reader replays the first reader's kd-tree, core "
         "distances and EMST from the shared serving cache";
  EXPECT_GT(after.pinned_slots, 0u) << "snapshot artifacts are pinned while it lives";

  const exec::Executor cold(exec::serial_backend());
  const hdbscan::HdbscanResult rebuild = hdbscan::hdbscan(cold, snap->points(), stress_options());
  expect_bit_identical(via_a, rebuild, snap->epoch());
  expect_bit_identical(via_b, rebuild, snap->epoch());

  // Reader state restored: the reader executors left the scope with their
  // own caches and untagged owners.
  EXPECT_EQ(reader_a.shared_artifact_cache(), nullptr);
  EXPECT_EQ(reader_a.cache_owner().pin_group, 0u);
}

// The TSan stress test (the gcc-tsan CI entry runs this suite): N reader
// threads run HDBSCAN and min_cluster_size sweeps against pinned snapshots
// while the writer thread churns insert/erase batches, publishing after
// every mutation.  Every reader-observed clustering must be bit-identical
// to a cold rebuild at its pinned epoch.
TEST(SnapshotServing, ConcurrentReadersObserveConsistentPinnedEpochs) {
  const exec::Executor writer_exec;  // default backend: the writer may be parallel
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(300, 2, 3, 0.04, 0.1, 21));

  constexpr int kReaders = 4;
  constexpr int kWriterRounds = 10;
  std::atomic<bool> writer_done{false};

  struct Observation {
    snapshot::SnapshotPtr snap;  // held: the epoch stays resident until we verify
    hdbscan::HdbscanResult result;
  };
  std::vector<std::vector<Observation>> observed(kReaders);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // One executor per reader (the one-kernel-per-executor rule); serial
      // backend so N readers and the writer's pool coexist on any host.
      const exec::Executor reader(exec::serial_backend());
      while (!writer_done.load(std::memory_order_acquire)) {
        const snapshot::SnapshotPtr snap = published.acquire();
        if (snap->size() == 0) continue;
        Observation obs;
        obs.snap = snap;
        if (r % 2 == 0) {
          obs.result = snap->hdbscan(reader, stress_options());
        } else {
          // Sweep readers: keep the largest-min_cluster_size entry as the
          // recorded clustering; the sweep shares the pipeline prefix with
          // the hdbscan readers through the serving cache.
          const std::array<index_t, 2> sizes = {8, 16};
          const auto sweep = snap->sweep_min_cluster_size(reader, sizes, stress_options());
          obs.result.labels = sweep.entries[0].labels;
          obs.result.num_clusters = sweep.entries[0].num_clusters;
          obs.result.core_distances = sweep.core_distances;
          obs.result.dendrogram = *sweep.dendrogram;
        }
        observed[static_cast<std::size_t>(r)].push_back(std::move(obs));
      }
    });
  }

  // Writer churn: insert a fresh batch every round, erase the oldest batch
  // once three are in flight.  Every call publishes a successor snapshot.
  std::deque<std::vector<index_t>> live_batches;
  for (int round = 0; round < kWriterRounds; ++round) {
    live_batches.push_back(
        published.insert(data::gaussian_blobs(20, 2, 3, 0.04, 0.1, 100 + round)));
    if (live_batches.size() > 3) {
      published.erase(live_batches.front());
      live_batches.pop_front();
    }
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Verify off-line: one cold rebuild per distinct observed epoch, compared
  // against every reader observation pinned to it.
  std::map<std::uint64_t, hdbscan::HdbscanResult> cold_by_epoch;
  const exec::Executor cold(exec::serial_backend());
  std::size_t total = 0;
  for (const auto& reader_observations : observed) {
    for (const Observation& obs : reader_observations) {
      auto it = cold_by_epoch.find(obs.snap->epoch());
      if (it == cold_by_epoch.end()) {
        it = cold_by_epoch
                 .emplace(obs.snap->epoch(),
                          hdbscan::hdbscan(cold, obs.snap->points(), stress_options()))
                 .first;
      }
      expect_bit_identical(obs.result, it->second, obs.snap->epoch());
      ++total;
    }
  }
  EXPECT_GT(total, 0u) << "readers must have completed queries during the churn";
}

// The ASan reclaim test (the gcc-sanitize CI entry leak-checks this suite):
// a retired snapshot's artifacts — bundle and pinned serving-cache entries —
// are freed exactly when the last reader drains, with no leak and no
// use-after-free.
TEST(SnapshotServing, RetiredSnapshotReclaimedWhenLastReaderDrains) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(250, 2, 3, 0.05, 0.1, 5));

  snapshot::SnapshotPtr pinned = published.acquire();
  std::weak_ptr<const snapshot::Snapshot> watch = pinned;
  const exec::Executor reader(exec::serial_backend());
  const hdbscan::HdbscanResult result = pinned->hdbscan(reader, stress_options());
  EXPECT_GT(published.serving_cache().stats().pinned_slots, 0u);

  // Publish a successor: the retired snapshot survives — its one reader
  // still holds it — and its pinned artifacts stay resident and readable.
  published.insert(data::gaussian_blobs(30, 2, 3, 0.05, 0.1, 6));
  ASSERT_FALSE(watch.expired());
  EXPECT_GT(published.serving_cache().stats().pinned_slots, 0u);
  const hdbscan::HdbscanResult again = pinned->hdbscan(reader, stress_options());
  EXPECT_EQ(again.labels, result.labels);

  // Last reader drains: the snapshot dies, its cache group is purged.
  pinned.reset();
  EXPECT_TRUE(watch.expired()) << "no hidden reference keeps a retired snapshot alive";
  EXPECT_EQ(published.serving_cache().stats().pinned_slots, 0u)
      << "the retired epoch's pinned entries were purged with it";
}

TEST(SnapshotServing, PipelineOnSnapshotFrontDoor) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published = Pipeline::on(writer_exec).published();
  published.insert(data::gaussian_blobs(400, 2, 3, 0.04, 0.1, 13));
  const snapshot::SnapshotPtr snap = published.acquire();

  const exec::Executor reader(exec::serial_backend());
  const hdbscan::HdbscanResult via_pipeline = Pipeline::on_snapshot(reader, *snap)
                                                  .with_min_pts(3)
                                                  .with_min_cluster_size(8)
                                                  .run_hdbscan();
  const hdbscan::HdbscanResult direct = snap->hdbscan(reader, stress_options());
  EXPECT_EQ(via_pipeline.labels, direct.labels);
  EXPECT_EQ(via_pipeline.num_clusters, direct.num_clusters);

  const std::array<int, 2> mpts = {2, 4};
  const auto sweep = Pipeline::on_snapshot(reader, *snap).sweep_min_pts(mpts);
  ASSERT_EQ(sweep.size(), 2u);
  const exec::Executor cold(exec::serial_backend());
  hdbscan::HdbscanOptions base;
  base.min_pts = 4;
  expect_bit_identical(sweep[1], hdbscan::hdbscan(cold, snap->points(), base), snap->epoch());
}

// Writers never block readers, witnessed structurally: a reader query that
// refuses to finish until the wave's own update has published can only
// complete because the update runs concurrently with the queries (the
// legacy exclusive-wave driver would deadlock here).
TEST(SnapshotServing, SnapshotWaveUpdatesRunConcurrentlyWithQueries) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(200, 2, 3, 0.05, 0.1, 17));
  const std::uint64_t epoch_before = published.published_epoch();

  const exec::Executor parent(exec::default_backend(), 2);
  serve::BatchExecutor batch(parent, {.num_slots = 2});

  std::atomic<int> queries_ran{0};
  std::vector<serve::BatchExecutor::SnapshotWave> waves(1);
  waves[0].queries.push_back(serve::BatchExecutor::SnapshotJob{
      [&](const exec::Executor& exec, const snapshot::Snapshot& snap) {
        // The pinned epoch stays valid and queryable throughout...
        (void)snap.hdbscan(exec, stress_options());
        // ...while we wait for the concurrent update's publish to land.
        while (published.published_epoch() == epoch_before) std::this_thread::yield();
        EXPECT_EQ(snap.epoch(), epoch_before) << "the pinned snapshot never moves";
        queries_ran.fetch_add(1);
      },
      /*size_hint=*/16});
  waves[0].update = [](snapshot::PublishedClustering& stream) {
    stream.insert(data::gaussian_blobs(40, 2, 3, 0.05, 0.1, 18));
  };
  batch.run_waves(published, waves);

  EXPECT_EQ(queries_ran.load(), 1);
  EXPECT_EQ(published.published_epoch(), epoch_before + 1);
  EXPECT_EQ(published.acquire()->size(), 240);
}

TEST(SnapshotServing, SnapshotWaveResultsMatchPinnedEpochRebuilds) {
  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(300, 2, 3, 0.04, 0.1, 23));

  const exec::Executor parent(exec::default_backend(), 2);
  serve::BatchExecutor batch(parent, {.num_slots = 2});

  constexpr int kWaves = 3;
  constexpr int kQueriesPerWave = 4;
  struct Observation {
    std::uint64_t epoch = 0;
    /// Copy of the pinned epoch's frozen points, for the offline rebuild
    /// (the snapshot itself dies when the wave's readers drain).
    std::shared_ptr<const spatial::PointSet> points;
    hdbscan::HdbscanResult result;
  };
  std::vector<Observation> observed(kWaves * kQueriesPerWave);

  std::vector<serve::BatchExecutor::SnapshotWave> waves(kWaves);
  for (int w = 0; w < kWaves; ++w) {
    for (int q = 0; q < kQueriesPerWave; ++q) {
      Observation& slot = observed[static_cast<std::size_t>(w * kQueriesPerWave + q)];
      waves[static_cast<std::size_t>(w)].queries.push_back(serve::BatchExecutor::SnapshotJob{
          [&slot](const exec::Executor& exec, const snapshot::Snapshot& snap) {
            slot.epoch = snap.epoch();
            slot.points = std::make_shared<const spatial::PointSet>(snap.points());
            slot.result = snap.hdbscan(exec, stress_options());
          },
          /*size_hint=*/16});
    }
    waves[static_cast<std::size_t>(w)].update = [w](snapshot::PublishedClustering& stream) {
      stream.insert(data::gaussian_blobs(25, 2, 3, 0.04, 0.1, 200 + w));
    };
  }
  batch.run_waves(published, waves);
  EXPECT_EQ(published.published_epoch(), 1u + kWaves);

  // Queries of one wave may straddle the concurrent publish and so observe
  // different epochs — each must still be bit-identical to a cold rebuild
  // over the points frozen at the epoch it pinned.
  std::map<std::uint64_t, hdbscan::HdbscanResult> cold_by_epoch;
  const exec::Executor cold(exec::serial_backend());
  for (const Observation& obs : observed) {
    ASSERT_NE(obs.points, nullptr);
    auto it = cold_by_epoch.find(obs.epoch);
    if (it == cold_by_epoch.end()) {
      it = cold_by_epoch.emplace(obs.epoch, hdbscan::hdbscan(cold, *obs.points, stress_options()))
               .first;
    }
    expect_bit_identical(obs.result, it->second, obs.epoch);
  }
}

}  // namespace
