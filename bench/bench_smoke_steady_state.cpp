// CI smoke: steady-state allocation check on a small fig11-style workload.
//
// Builds a mutual-reachability MST for ~50k points, warms an Executor with
// two dendrogram constructions, then asserts that the third (identical) run
// performs ZERO heap allocations — the sorted-edges cache replays the sort,
// the contraction/expansion run out of the workspace arena, and the output
// Dendrogram reuses its capacity.  Exits non-zero on any allocation, so the
// Release CI job fails if a regression reintroduces per-call allocations.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

// Replaceable global allocation functions (see tests/alloc_counter.hpp for
// the test-suite twin of this counter).
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  while (true) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc{};
    }
  }
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  const auto align = static_cast<std::size_t>(alignment);
  const std::size_t rounded = (size + align - 1) / align * align;
  while (true) {
    if (void* p = std::aligned_alloc(align, rounded)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc{};
    }
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#include "bench_common.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

int main() {
  const index_t n = bench::scaled(50000);
  bench::print_header("Steady-state allocation smoke (fig11-style workload)",
                      "CI gate: zero heap allocations after warm-up");

  const spatial::PointSet points = data::make_dataset("HaccProxy", n, 2024);
  const exec::Executor executor(exec::default_backend());
  spatial::KdTree tree(points);
  const graph::EdgeList mst =
      Pipeline::on(executor).with_min_pts(2).build_mst(points, tree);
  const auto pipeline = Pipeline::on(executor);

  dendrogram::Dendrogram out;
  pipeline.build_dendrogram_into(mst, n, out);  // warm-up: sizes the arena
  pipeline.build_dendrogram_into(mst, n, out);  // settles OpenMP team state

  executor.workspace().reset_stats();
  const std::size_t before = g_allocation_count.load();
  Timer timer;
  pipeline.build_dendrogram_into(mst, n, out);
  const double seconds = timer.seconds();
  const std::size_t allocations = g_allocation_count.load() - before;
  const std::size_t misses = executor.workspace().stats().misses;

  std::printf("n=%d  steady-state run: %.1f ms, %zu heap allocations, %zu arena misses\n",
              n, 1e3 * seconds, allocations, misses);
  if (out.num_edges != n - 1 || out.parent[0] != kNone) {
    std::printf("FAIL: dendrogram shape is wrong\n");
    return 1;
  }
  if (allocations != 0 || misses != 0) {
    std::printf("FAIL: steady-state dendrogram construction must not allocate\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
