// Figure 12: speed-up of the accelerated space over the serial space for the
// individual phases of HDBSCAN* with PANDORA: EMST construction, total
// dendrogram, and the dendrogram's internal sort / contraction / expansion.
// The paper's observation to reproduce: sorting scales best, multilevel
// contraction scales worst, and the dendrogram total sits in between.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

namespace {

struct PhaseSeconds {
  double mst = 0, dendrogram = 0, sort = 0, contraction = 0, expansion = 0;
};

PhaseSeconds run_pipeline(const std::string& name, index_t n, std::shared_ptr<const exec::Backend> space) {
  PhaseSeconds out;
  const exec::Executor executor(space);
  const bench::PreparedDataset prepared = bench::prepare_dataset(name, n, 2, executor);
  out.mst = prepared.mst_seconds;
  // The profiler hook replaces the old PhaseTimes* out-param plumbing.
  exec::PhaseTimesProfiler profiler;
  executor.set_profiler(&profiler);
  Timer timer;
  (void)Pipeline::on(executor).build_dendrogram(prepared.mst, prepared.n);
  out.dendrogram = timer.seconds();
  executor.set_profiler(nullptr);
  out.sort = profiler.times().get("sort");
  out.contraction = profiler.times().get("contraction");
  out.expansion = profiler.times().get("expansion");
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Per-phase speed-up of the parallel space over the serial space",
      "Figure 12 (speed-up of MI250X over EPYC 7A53 by HDBSCAN* phase)");

  const std::vector<std::string> datasets = {"Normal2D",  "HaccProxy",  "Uniform3D",
                                             "Pamap2Proxy", "FarmProxy", "VisualSim5D"};
  std::printf("%-14s | %8s %10s %8s %12s %10s\n", "dataset", "mst", "dendrogram", "sort",
              "contraction", "expansion");
  for (const auto& name : datasets) {
    const index_t n = bench::scaled(250000);
    const PhaseSeconds serial = run_pipeline(name, n, exec::serial_backend());
    const PhaseSeconds parallel = run_pipeline(name, n, exec::default_backend());
    auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
    std::printf("%-14s | %7.1fx %9.1fx %7.1fx %11.1fx %9.1fx\n", name.c_str(),
                ratio(serial.mst, parallel.mst), ratio(serial.dendrogram, parallel.dendrogram),
                ratio(serial.sort, parallel.sort),
                ratio(serial.contraction, parallel.contraction),
                ratio(serial.expansion, parallel.expansion));
  }
  std::printf(
      "\nExpected shape (paper): sorting is the most scalable phase, multilevel\n"
      "contraction the least (3-5x there vs 10-20x for sort); overall dendrogram\n"
      "speed-up lands between the two.\n");
  return 0;
}
