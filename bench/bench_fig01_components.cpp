// Figure 1: time taken by the HDBSCAN* components (EMST and dendrogram) for
// the cosmology dataset under three configurations:
//   (a) everything sequential                       ["CPU"]
//   (b) parallel MST + sequential union-find        ["CPU + MST(GPU)"]
//   (c) parallel MST + parallel PANDORA dendrogram  ["CPU + MST(GPU) + Dendrogram(GPU)"]
// The paper's point: in (b) the dendrogram is 86% of the runtime; PANDORA
// shrinks it to ~26%.  Serial/parallel spaces stand in for CPU/GPU (see
// DESIGN.md).  Table 1's implementation inventory is reprinted for context.

#include <cstdio>

#include "bench_common.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

namespace {

struct Config {
  const char* label;
  std::shared_ptr<const exec::Backend> mst_space;
  bool pandora;            // else union-find baseline
  std::shared_ptr<const exec::Backend> dendro_space;
};

}  // namespace

int main() {
  bench::print_header("HDBSCAN* component times on the cosmology proxy (HaccProxy)",
                      "Figure 1 (and Table 1 inventory)");

  std::printf(
      "\nTable 1 context — open-source dendrogram implementations:\n"
      "  scikit-learn / hdbscan (Python, R). sequential   -> union_find_dendrogram(serial)\n"
      "  Wang et al. [46] multithreaded (seq. UF core)    -> union_find_dendrogram(parallel sort)\n"
      "  rapidsai [21] GPU MST + sequential dendrogram    -> config (b) below\n"
      "  PANDORA (this paper)                             -> pandora_dendrogram(parallel)\n\n");

  const index_t n = bench::scaled(2000000);
  const Config configs[] = {
      {"(a) CPU serial: MST(serial)    + UnionFind(serial)", exec::serial_backend(), false,
       exec::serial_backend()},
      {"(b) status quo: MST(parallel)  + UnionFind(serial)", exec::default_backend(), false,
       exec::serial_backend()},
      {"(c) this paper: MST(parallel)  + Pandora(parallel)", exec::default_backend(), true,
       exec::default_backend()},
  };

  std::printf("%-55s %10s %12s %8s\n", "configuration", "mst [s]", "dendro [s]",
              "dendro%");
  double baseline_dendro = 0;
  double pandora_dendro = 0;
  for (const Config& config : configs) {
    const exec::Executor mst_executor(config.mst_space);
    const exec::Executor dendro_executor(config.dendro_space);
    const bench::PreparedDataset prepared =
        bench::prepare_dataset("HaccProxy", n, /*min_pts=*/2, mst_executor);
    double dendro_seconds = 0;
    if (config.pandora) {
      const auto pipeline = Pipeline::on(dendro_executor);
      dendro_seconds = bench::best_of(3, [&] {
        (void)pipeline.build_dendrogram(prepared.mst, prepared.n);
      });
      pandora_dendro = dendro_seconds;
    } else {
      const auto pipeline = Pipeline::on(dendro_executor)
                                .with_dendrogram_algorithm(
                                    hdbscan::DendrogramAlgorithm::union_find);
      dendro_seconds = bench::best_of(3, [&] {
        (void)pipeline.build_dendrogram(prepared.mst, prepared.n);
      });
      baseline_dendro = dendro_seconds;  // config (b) is measured last of the two
    }
    const double total = prepared.mst_seconds + dendro_seconds;
    std::printf("%-55s %10.3f %12.3f %7.1f%%\n", config.label, prepared.mst_seconds,
                dendro_seconds, 100.0 * dendro_seconds / total);
  }
  std::printf("\ndendrogram speed-up (b)->(c): %.1fx  (the paper's headline arrow: 17.6x)\n",
              baseline_dendro / pandora_dendro);
  std::printf(
      "\nExpected shape (paper): the dendrogram dominates config (b) (86%% there) and\n"
      "Pandora removes it from the critical path.  Note the substrate substitution:\n"
      "the paper's MST runs on a GPU while ours is a CPU kd-tree Borůvka, so the\n"
      "*absolute* dendrogram share here is smaller; the reproduced shape is the\n"
      "(b)->(c) dendrogram speed-up and the share collapse between (b) and (c).\n");
  return 0;
}
