// Figure 15: end-to-end HDBSCAN* (first two steps: EMST + dendrogram) as a
// function of minPts (mpts = 2, 4, 8, 16), comparing
//   * the baseline pipeline — parallel EMST + sequential union-find
//     dendrogram (the MemoGFK / UnionFind-MT role), against
//   * the PANDORA pipeline — parallel EMST + parallel PANDORA dendrogram
//     (the ArborX + Pandora role).
// Reproduced shapes: the PANDORA pipeline wins overall; the *dendrogram*
// share grows with mpts much faster for the baseline (1.6-2.4x from mpts 2 to
// 16 there) than for PANDORA (1.1-1.5x).

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

namespace {

void run_dataset(const exec::Executor& executor, const std::string& name,
                 bench::JsonReport& json) {
  std::printf("\n--- %s ---\n", name.c_str());
  std::printf("%6s | %13s %14s | %13s %14s | %9s\n", "mpts", "Ttotal(base)",
              "Tdendro(base)", "Ttotal(ours)", "Tdendro(ours)", "speedup");
  const index_t n = bench::scaled(400000);
  double first_uf = 0, last_uf = 0, first_pandora = 0, last_pandora = 0;
  for (const int mpts : {2, 4, 8, 16}) {
    const bench::PreparedDataset prepared = bench::prepare_dataset(name, n, mpts, executor);

    // Cold construction comparison (SortedEdges cache off so repeats sort).
    executor.set_artifact_caching(false);
    const auto baseline = Pipeline::on(executor).with_dendrogram_algorithm(
        hdbscan::DendrogramAlgorithm::union_find);
    const bench::Measurement m_uf = bench::measure(3, [&] {
      (void)baseline.build_dendrogram(prepared.mst, prepared.n);
    });
    const double t_uf = m_uf.best();
    const auto pandora_pipeline = Pipeline::on(executor);
    const bench::Measurement m_pandora = bench::measure(3, [&] {
      (void)pandora_pipeline.build_dendrogram(prepared.mst, prepared.n);
    });
    const double t_pandora = m_pandora.best();

    // Sweep scenario with the cross-call SortedEdges cache on: repeated
    // queries against this mpts's MST replay the sort instead of redoing it.
    executor.set_artifact_caching(true);
    dendrogram::Dendrogram reused;
    pandora_pipeline.build_dendrogram_into(prepared.mst, prepared.n, reused);
    const bench::Measurement m_replay = bench::measure(3, [&] {
      pandora_pipeline.build_dendrogram_into(prepared.mst, prepared.n, reused);
    });
    if (mpts == 2) {
      first_uf = t_uf;
      first_pandora = t_pandora;
    }
    last_uf = t_uf;
    last_pandora = t_pandora;

    const double shared = prepared.core_seconds + prepared.mst_seconds;
    std::printf("%6d | %12.3fs %13.1fms | %12.3fs %13.1fms (replay %.1fms) | %8.2fx\n",
                mpts, shared + t_uf, 1e3 * t_uf, shared + t_pandora, 1e3 * t_pandora,
                1e3 * m_replay.best(), (shared + t_uf) / (shared + t_pandora));

    json.field("dataset", name)
        .field("mpts", static_cast<std::int64_t>(mpts))
        .field("n", prepared.n)
        .field("shared_seconds", shared)
        .timing("union_find", m_uf)
        .timing("pandora", m_pandora)
        .timing("pandora_replay", m_replay);
    json.end_row();
  }
  std::printf("dendrogram growth mpts 2 -> 16: baseline %.2fx, pandora %.2fx\n",
              last_uf / first_uf, last_pandora / first_pandora);
}

}  // namespace

int main() {
  bench::print_header("HDBSCAN* (EMST + dendrogram) vs minPts",
                      "Figure 15 (Hacc37M and Uniform100M3D, mpts sweep)");
  exec::Executor executor(exec::Space::parallel);
  bench::JsonReport json("fig15");
  run_dataset(executor, "HaccProxy", json);
  run_dataset(executor, "Uniform3D", json);
  std::printf(
      "\nExpected shape (paper): times grow with mpts; the baseline's dendrogram time\n"
      "grows 1.6-2.4x across the sweep vs 1.1-1.5x for Pandora, so the end-to-end\n"
      "advantage of the Pandora pipeline widens with mpts.\n");
  return 0;
}
