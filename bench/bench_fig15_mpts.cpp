// Figure 15: end-to-end HDBSCAN* (first two steps: EMST + dendrogram) as a
// function of minPts (mpts = 2, 4, 8, 16), comparing
//   * the baseline pipeline — parallel EMST + sequential union-find
//     dendrogram (the MemoGFK / UnionFind-MT role), against
//   * the PANDORA pipeline — parallel EMST + parallel PANDORA dendrogram
//     (the ArborX + Pandora role).
// Reproduced shapes: the PANDORA pipeline wins overall; the *dendrogram*
// share grows with mpts much faster for the baseline (1.6-2.4x from mpts 2 to
// 16 there) than for PANDORA (1.1-1.5x).
//
// Sweep mode: the mpts sweep is the ArtifactCache's home turf.  The kd-tree
// does not depend on mpts, so the sweep builds it once and replays it per
// value; a repeated sweep (the serving scenario) additionally replays the
// per-mpts core distances.  The "rebuild" columns force caching off — what
// this bench necessarily did before the spatial cache hooks existed — and the
// "replay" columns run the same per-mpts preparation on a warm cache, leaving
// only the genuinely mpts-dependent EMST to rebuild.

#include <optional>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

namespace {

struct PrepareTimes {
  double tree_seconds = 0;
  double core_seconds = 0;
  double mst_seconds = 0;
  graph::EdgeList mst;

  [[nodiscard]] double total() const { return tree_seconds + core_seconds + mst_seconds; }
};

/// The per-mpts preparation (kd-tree, core distances, mutual-reachability
/// EMST) through the cache-aware hooks; with caching off this is the rebuild
/// path, on a warm cache the tree and core phases become replays.
PrepareTimes prepare(const exec::Executor& executor, const spatial::PointSet& points,
                     int mpts) {
  PrepareTimes times;
  // One content hash shared by both cache lookups (cf. hdbscan()).
  std::optional<std::uint64_t> points_fp;
  if (executor.artifact_caching())
    points_fp = spatial::point_set_fingerprint(executor, points);

  Timer timer;
  const auto tree = spatial::kdtree_cached(executor, points, 32, points_fp);
  times.tree_seconds = timer.seconds();

  timer.reset();
  const auto core = hdbscan::core_distances_cached(executor, points, *tree, mpts, points_fp);
  times.core_seconds = timer.seconds();

  timer.reset();
  times.mst = spatial::mutual_reachability_mst(executor, points, *tree, *core);
  times.mst_seconds = timer.seconds();
  return times;
}

void run_dataset(const exec::Executor& executor, const std::string& name,
                 bench::JsonReport& json) {
  std::printf("\n--- %s ---\n", name.c_str());
  std::printf("%6s | %13s %14s | %13s %14s | %9s | %13s\n", "mpts", "Ttotal(base)",
              "Tdendro(base)", "Ttotal(ours)", "Tdendro(ours)", "speedup", "prep replay");
  const index_t n = bench::scaled(400000);
  const spatial::PointSet points = data::make_dataset(name, n, 2024);
  double first_uf = 0, last_uf = 0, first_pandora = 0, last_pandora = 0;
  double rebuild_total = 0, replay_total = 0;
  for (const int mpts : {2, 4, 8, 16}) {
    // Rebuild path: caching off, every phase computed from scratch (the
    // cold-construction columns of the figure).  Median-of-3 like every
    // other measurement the CI regression gate consumes.
    executor.set_artifact_caching(false);
    PrepareTimes rebuild;
    const bench::Measurement m_rebuild =
        bench::measure(3, [&] { rebuild = prepare(executor, points, mpts); });

    // Replay path: warm the cache with one pass, then measure the same
    // preparation again — tree and core replay, the EMST rebuilds.
    executor.set_artifact_caching(true);
    (void)prepare(executor, points, mpts);
    PrepareTimes replay;
    const bench::Measurement m_replay_prepare =
        bench::measure(3, [&] { replay = prepare(executor, points, mpts); });
    rebuild_total += m_rebuild.median();
    replay_total += m_replay_prepare.median();

    const graph::EdgeList& mst = rebuild.mst;

    // Cold dendrogram construction comparison (SortedEdges cache off so
    // repeats sort).
    executor.set_artifact_caching(false);
    const auto baseline = Pipeline::on(executor).with_dendrogram_algorithm(
        hdbscan::DendrogramAlgorithm::union_find);
    const bench::Measurement m_uf = bench::measure(3, [&] {
      (void)baseline.build_dendrogram(mst, n);
    });
    const double t_uf = m_uf.best();
    const auto pandora_pipeline = Pipeline::on(executor);
    const bench::Measurement m_pandora = bench::measure(3, [&] {
      (void)pandora_pipeline.build_dendrogram(mst, n);
    });
    const double t_pandora = m_pandora.best();

    // Sweep scenario with the cross-call SortedEdges cache on: repeated
    // queries against this mpts's MST replay the sort instead of redoing it.
    executor.set_artifact_caching(true);
    dendrogram::Dendrogram reused;
    pandora_pipeline.build_dendrogram_into(mst, n, reused);
    const bench::Measurement m_replay = bench::measure(3, [&] {
      pandora_pipeline.build_dendrogram_into(mst, n, reused);
    });
    if (mpts == 2) {
      first_uf = t_uf;
      first_pandora = t_pandora;
    }
    last_uf = t_uf;
    last_pandora = t_pandora;

    const double shared = rebuild.core_seconds + rebuild.mst_seconds;
    std::printf(
        "%6d | %12.3fs %13.1fms | %12.3fs %13.1fms (replay %.1fms) | %8.2fx | %6.0fms/%.0fms\n",
        mpts, shared + t_uf, 1e3 * t_uf, shared + t_pandora, 1e3 * t_pandora,
        1e3 * m_replay.best(), (shared + t_uf) / (shared + t_pandora),
        1e3 * m_replay_prepare.median(), 1e3 * m_rebuild.median());

    json.field("dataset", name)
        .field("mpts", static_cast<std::int64_t>(mpts))
        .field("n", points.size())
        .field("shared_seconds", shared)
        .field("prepare_rebuild_seconds", m_rebuild.median())
        .field("prepare_rebuild_tree_seconds", rebuild.tree_seconds)
        .field("prepare_rebuild_core_seconds", rebuild.core_seconds)
        .field("prepare_replay_seconds", m_replay_prepare.median())
        .field("prepare_replay_tree_seconds", replay.tree_seconds)
        .field("prepare_replay_core_seconds", replay.core_seconds)
        .timing("union_find", m_uf)
        .timing("pandora", m_pandora)
        .timing("pandora_replay", m_replay);
    json.end_row();
  }
  std::printf("dendrogram growth mpts 2 -> 16: baseline %.2fx, pandora %.2fx\n",
              last_uf / first_uf, last_pandora / first_pandora);
  std::printf("sweep preparation, all mpts: rebuild %.0fms vs cache replay %.0fms (%.2fx)\n",
              1e3 * rebuild_total, 1e3 * replay_total,
              replay_total > 0 ? rebuild_total / replay_total : 0.0);
}

}  // namespace

int main() {
  bench::print_header("HDBSCAN* (EMST + dendrogram) vs minPts",
                      "Figure 15 (Hacc37M and Uniform100M3D, mpts sweep)");
  exec::Executor executor(exec::default_backend());
  bench::JsonReport json("fig15");
  run_dataset(executor, "HaccProxy", json);
  run_dataset(executor, "Uniform3D", json);
  std::printf(
      "\nExpected shape (paper): times grow with mpts; the baseline's dendrogram time\n"
      "grows 1.6-2.4x across the sweep vs 1.1-1.5x for Pandora, so the end-to-end\n"
      "advantage of the Pandora pipeline widens with mpts.  Sweep mode: replayed\n"
      "preparation beats the rebuild path (the kd-tree and core distances are cache\n"
      "hits; only the mpts-dependent EMST is rebuilt).\n");
  return 0;
}
