// Ablation B (DESIGN.md): substrate micro-benchmarks via google-benchmark —
// the primitives whose scaling drives Figures 12/13: radix vs comparison
// sorting, parallel vs serial scans, and concurrent vs sequential union-find
// on the contraction's union workload.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "pandora/common/rng.hpp"
#include "pandora/data/tree_generators.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/scan.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/union_find.hpp"

using namespace pandora;

namespace {

std::vector<std::uint64_t> random_keys(std::int64_t n) {
  Rng rng(42);
  std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
  for (auto& k : keys) k = rng.next_u64() >> 20;  // ~44-bit keys, as in expansion
  return keys;
}

void BM_RadixSort(benchmark::State& state) {
  const exec::Executor executor(state.range(1) ? exec::default_backend() : exec::serial_backend());
  const auto base = random_keys(state.range(0));
  for (auto _ : state) {
    auto keys = base;
    exec::radix_sort_u64(executor, keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StdSort(benchmark::State& state) {
  const auto base = random_keys(state.range(0));
  for (auto _ : state) {
    auto keys = base;
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MergeSort(benchmark::State& state) {
  const exec::Executor executor(state.range(1) ? exec::default_backend() : exec::serial_backend());
  const auto base = random_keys(state.range(0));
  for (auto _ : state) {
    auto keys = base;
    exec::merge_sort(executor, keys, std::less<>{});
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ExclusiveScan(benchmark::State& state) {
  const exec::Executor executor(state.range(1) ? exec::default_backend() : exec::serial_backend());
  std::vector<index_t> in(static_cast<std::size_t>(state.range(0)), 1);
  std::vector<index_t> out(in.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::exclusive_scan<index_t>(executor, in, out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// The contraction workload: union the endpoints of every non-alpha edge of a
/// skewed tree.
void BM_UnionFindContraction(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const bool concurrent = state.range(1) != 0;
  Rng rng(7);
  graph::EdgeList tree = data::preferential_attachment_tree(n, rng);
  for (auto _ : state) {
    if (concurrent) {
      static const exec::Executor parallel_executor(exec::default_backend());
      graph::ConcurrentUnionFind uf(n);
      exec::parallel_for(parallel_executor, static_cast<size_type>(tree.size()),
                         [&](size_type i) {
                           uf.unite(tree[static_cast<std::size_t>(i)].u,
                                    tree[static_cast<std::size_t>(i)].v);
                         });
      benchmark::DoNotOptimize(uf.find(0));
    } else {
      graph::UnionFind uf(n);
      for (const auto& e : tree) uf.unite(e.u, e.v);
      benchmark::DoNotOptimize(uf.find(0));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_RadixSort)->Args({1 << 20, 0})->Args({1 << 20, 1})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StdSort)->Args({1 << 20})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeSort)->Args({1 << 20, 0})->Args({1 << 20, 1})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExclusiveScan)
    ->Args({1 << 22, 0})
    ->Args({1 << 22, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UnionFindContraction)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
