// Ablation A (DESIGN.md): multilevel expansion (Section 3.3.2) vs the
// single-level walk-up (Section 3.3.1).  The walk-up is O(n * h_alpha) and
// collapses on skewed dendrograms — exactly why the paper develops the
// multilevel scheme.  Synthetic topologies sweep the skewness axis; the EMST
// of the cosmology proxy provides a realistic instance.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "pandora/common/rng.hpp"
#include "pandora/data/tree_generators.hpp"
#include "pandora/dendrogram/analysis.hpp"
#include "pandora/graph/euler_tour.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

namespace {

void run_case(const exec::Executor& executor, const std::string& label,
              const graph::EdgeList& tree, index_t nv) {
  const auto multilevel = Pipeline::on(executor);
  const auto single =
      Pipeline::on(executor).with_expansion(dendrogram::ExpansionPolicy::single_level);

  const auto dendro = multilevel.build_dendrogram(tree, nv);
  const double t_multi = bench::best_of(3, [&] {
    (void)multilevel.build_dendrogram(tree, nv);
  });
  const double t_single = bench::best_of(3, [&] {
    (void)single.build_dendrogram(tree, nv);
  });
  std::printf("%-28s %9d %10.1f | %12.3fs %14.3fs | %8.1fx\n", label.c_str(), nv - 1,
              dendrogram::skewness(dendro), t_multi, t_single, t_single / t_multi);
}

}  // namespace

int main() {
  bench::print_header("Ablation: multilevel expansion vs single-level walk-up",
                      "Sections 3.3.1 vs 3.3.2 (work-optimality claim of Section 4)");

  const exec::Executor executor(exec::default_backend());
  const index_t nv = bench::scaled(400000);
  std::printf("%-28s %9s %10s | %12s %14s | %8s\n", "tree", "edges", "skewness",
              "multilevel", "single-level", "ratio");

  Rng rng(17);
  {
    graph::EdgeList tree = data::preferential_attachment_tree(nv, rng);
    data::assign_random_weights(tree, rng);
    run_case(executor, "preferential-attachment", tree, nv);
  }
  {
    graph::EdgeList tree = data::random_attachment_tree(nv, rng);
    data::assign_random_weights(tree, rng);
    run_case(executor, "random-attachment", tree, nv);
  }
  {
    graph::EdgeList tree = data::caterpillar_tree(nv);
    data::assign_random_weights(tree, rng);
    run_case(executor, "caterpillar", tree, nv);
  }
  {
    graph::EdgeList tree = data::balanced_tree(nv);
    data::assign_random_weights(tree, rng);
    run_case(executor, "balanced", tree, nv);
  }
  {
    const bench::PreparedDataset prepared =
        bench::prepare_dataset("HaccProxy", nv, 2, executor);
    run_case(executor, "HaccProxy EMST", prepared.mst, prepared.n);

    // Section 5's rejected alternative: converting the edge-list MST into an
    // Euler tour (parallel list ranking) before any dendrogram work.  The
    // paper's finding to reproduce: the conversion alone costs about as much
    // as the entire contraction-based dendrogram construction.
    const double t_euler = bench::best_of(3, [&] {
      (void)graph::build_euler_tour(executor, prepared.mst, prepared.n, 0);
    });
    const auto pipeline = Pipeline::on(executor);
    const double t_full = bench::best_of(3, [&] {
      (void)pipeline.build_dendrogram(prepared.mst, prepared.n);
    });
    std::printf(
        "\nEuler-tour conversion (Section 5 alternative) on HaccProxy EMST:\n"
        "  edge list -> Euler tour (list ranking): %.3fs\n"
        "  full PANDORA dendrogram construction:   %.3fs   (ratio %.2fx)\n",
        t_euler, t_full, t_euler / t_full);
  }
  std::printf(
      "\nExpected shape: the two produce identical dendrograms (asserted in tests);\n"
      "single-level degrades as skewness grows, multilevel stays O(n log n); the\n"
      "Euler-tour conversion alone costs about as much as the full construction\n"
      "(the paper's Section 5 finding).\n");
  return 0;
}
