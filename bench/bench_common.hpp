#pragma once

// Shared helpers for the figure/table reproduction binaries.
//
// Every binary prints a self-contained table mirroring one table or figure of
// the paper.  Sizes default to laptop scale and honour the environment
// variable PANDORA_BENCH_SCALE (a float multiplier on the point counts).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

namespace pandora::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("PANDORA_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

inline index_t scaled(index_t n) {
  const double s = bench_scale();
  return static_cast<index_t>(static_cast<double>(n) * s);
}

/// Millions of points processed per second — the paper's throughput metric.
inline double mpoints_per_sec(index_t n, double seconds) {
  return seconds > 0 ? 1e-6 * static_cast<double>(n) / seconds : 0.0;
}

/// A dataset prepared for dendrogram benchmarking: the mutual-reachability
/// MST is built once (timed) and shared across algorithms.
struct PreparedDataset {
  std::string name;
  index_t n = 0;
  int dim = 0;
  graph::EdgeList mst;
  double tree_build_seconds = 0;
  double core_seconds = 0;
  double mst_seconds = 0;
};

inline PreparedDataset prepare_dataset(const std::string& name, index_t n, int min_pts,
                                       const exec::Executor& exec, std::uint64_t seed = 2024) {
  PreparedDataset prepared;
  prepared.name = name;
  const spatial::PointSet points = data::make_dataset(name, n, seed);
  prepared.n = points.size();
  prepared.dim = points.dim();

  Timer timer;
  spatial::KdTree tree(points);
  prepared.tree_build_seconds = timer.seconds();

  timer.reset();
  const auto core = hdbscan::core_distances(exec, points, tree, min_pts);
  prepared.core_seconds = timer.seconds();

  timer.reset();
  prepared.mst = spatial::mutual_reachability_mst(exec, points, tree, core);
  prepared.mst_seconds = timer.seconds();
  return prepared;
}

/// Minimum wall-clock over `repeats` runs of `f` (the usual bench practice).
template <class F>
double best_of(int repeats, F&& f) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    f();
    best = std::min(best, timer.seconds());
  }
  return best;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %.2fx (set PANDORA_BENCH_SCALE to change), threads: %d\n",
              bench_scale(), exec::max_threads());
  std::printf("==============================================================================\n");
}

}  // namespace pandora::bench
