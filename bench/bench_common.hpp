#pragma once

// Shared helpers for the figure/table reproduction binaries.
//
// Every binary prints a self-contained table mirroring one table or figure of
// the paper.  Sizes default to laptop scale and honour the environment
// variable PANDORA_BENCH_SCALE (a float multiplier on the point counts).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/obs/metrics.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

namespace pandora::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("PANDORA_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

inline index_t scaled(index_t n) {
  const double s = bench_scale();
  return static_cast<index_t>(static_cast<double>(n) * s);
}

/// Millions of points processed per second — the paper's throughput metric.
inline double mpoints_per_sec(index_t n, double seconds) {
  return seconds > 0 ? 1e-6 * static_cast<double>(n) / seconds : 0.0;
}

/// A dataset prepared for dendrogram benchmarking: the mutual-reachability
/// MST is built once (timed) and shared across algorithms.  The points, the
/// kd-tree and the core distances are kept alive (behind stable addresses, so
/// the struct stays movable) for benches that re-measure spatial phases —
/// e.g. fig11's edge-sort-excluded EMST column.
struct PreparedDataset {
  std::string name;
  index_t n = 0;
  int dim = 0;
  std::shared_ptr<spatial::PointSet> points;
  std::unique_ptr<spatial::KdTree> tree;  ///< built over *points
  std::vector<double> core;               ///< core distances at min_pts
  graph::EdgeList mst;
  double tree_build_seconds = 0;
  double core_seconds = 0;
  double mst_seconds = 0;
};

inline PreparedDataset prepare_dataset(const std::string& name, index_t n, int min_pts,
                                       const exec::Executor& exec, std::uint64_t seed = 2024) {
  PreparedDataset prepared;
  prepared.name = name;
  prepared.points = std::make_shared<spatial::PointSet>(data::make_dataset(name, n, seed));
  prepared.n = prepared.points->size();
  prepared.dim = prepared.points->dim();

  Timer timer;
  prepared.tree = std::make_unique<spatial::KdTree>(*prepared.points);
  prepared.tree_build_seconds = timer.seconds();

  timer.reset();
  prepared.core = hdbscan::core_distances(exec, *prepared.points, *prepared.tree, min_pts);
  prepared.core_seconds = timer.seconds();

  timer.reset();
  prepared.mst =
      spatial::mutual_reachability_mst(exec, *prepared.points, *prepared.tree, prepared.core);
  prepared.mst_seconds = timer.seconds();
  return prepared;
}

/// Minimum wall-clock over `repeats` runs of `f` (the usual bench practice).
template <class F>
double best_of(int repeats, F&& f) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    f();
    best = std::min(best, timer.seconds());
  }
  return best;
}

/// Wall-clock samples of repeated runs, with the order statistics the JSON
/// artifacts track across PRs (median for the headline, p90 for tail noise,
/// min for the classic best-of number).
struct Measurement {
  std::vector<double> samples;  ///< seconds, in run order

  [[nodiscard]] double quantile(double q) const {
    if (samples.empty()) return 0.0;
    std::vector<double> s = samples;
    std::sort(s.begin(), s.end());
    const double pos = q * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return s[lo] + (s[hi] - s[lo]) * frac;
  }
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p90() const { return quantile(0.9); }
  [[nodiscard]] double best() const {
    return samples.empty() ? 0.0 : *std::min_element(samples.begin(), samples.end());
  }
};

template <class F>
Measurement measure(int repeats, F&& f) {
  Measurement m;
  m.samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    f();
    m.samples.push_back(timer.seconds());
  }
  return m;
}

/// Machine-readable benchmark emitter.  When the environment variable
/// PANDORA_BENCH_JSON_DIR names a directory, the report writes
/// `<dir>/BENCH_<name>.json` on destruction:
///
///   {"bench": "fig11", "threads": 8, "scale": 1.0,
///    "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
///    "rows": [{"dataset": "HaccProxy", "n": 500000, ...}, ...]}
///
/// so the perf trajectory (median/p90 wall times, steady-state allocations)
/// can be diffed across PRs.  The `metrics` object is the process-wide
/// obs:: registry snapshot taken as the report is written — cache traffic,
/// QoS outcomes, publish latencies etc. ride along without per-bench
/// plumbing (check_regression.py validates its shape).  With the variable
/// unset the report is inert and the bench prints its usual table only.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {
    if (const char* dir = std::getenv("PANDORA_BENCH_JSON_DIR")) dir_ = dir;
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  [[nodiscard]] bool enabled() const { return !dir_.empty(); }

  JsonReport& field(const char* key, const std::string& value) {
    append_key(key);
    row_ += '"';
    for (const char c : value) {
      if (c == '"' || c == '\\') row_ += '\\';
      row_ += c;
    }
    row_ += '"';
    return *this;
  }
  JsonReport& field(const char* key, double value) {
    append_key(key);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    row_ += buf;
    return *this;
  }
  JsonReport& field(const char* key, std::int64_t value) {
    append_key(key);
    row_ += std::to_string(value);
    return *this;
  }
  JsonReport& field(const char* key, index_t value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonReport& field(const char* key, std::size_t value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  /// Emits `<key>_median`, `<key>_p90` and `<key>_best` seconds fields.
  JsonReport& timing(const char* key, const Measurement& m) {
    field((std::string(key) + "_median").c_str(), m.median());
    field((std::string(key) + "_p90").c_str(), m.p90());
    field((std::string(key) + "_best").c_str(), m.best());
    return *this;
  }

  void end_row() {
    if (!rows_.empty()) rows_ += ",\n    ";
    rows_ += '{' + row_ + '}';
    row_.clear();
  }

 private:
  void append_key(const char* key) {
    if (!row_.empty()) row_ += ", ";
    row_ += '"';
    row_ += key;
    row_ += "\": ";
  }

  void write() const {
    if (!enabled()) return;
    const std::string path = dir_ + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    // The top-level backend column records which Backend the bench ran on
    // by default (rows that sweep backends carry their own "backend" field).
    const char* backend = exec::default_backend()->name();
    const int threads = exec::default_backend()->concurrency();
    const std::string metrics = obs::registry().json();
    if (rows_.empty()) {
      // Keep the artifact parseable even if the bench exited before any row.
      std::fprintf(f,
                   "{\n  \"bench\": \"%s\",\n  \"backend\": \"%s\",\n"
                   "  \"threads\": %d,\n  \"scale\": %.6g,\n"
                   "  \"metrics\": %s,\n  \"rows\": []\n}\n",
                   name_.c_str(), backend, threads, bench_scale(), metrics.c_str());
    } else {
      std::fprintf(f,
                   "{\n  \"bench\": \"%s\",\n  \"backend\": \"%s\",\n"
                   "  \"threads\": %d,\n  \"scale\": %.6g,\n"
                   "  \"metrics\": %s,\n"
                   "  \"rows\": [\n    %s\n  ]\n}\n",
                   name_.c_str(), backend, threads, bench_scale(), metrics.c_str(),
                   rows_.c_str());
    }
    std::fclose(f);
  }

  std::string name_;
  std::string dir_;
  std::string row_;   ///< fields of the row being built
  std::string rows_;  ///< completed rows, comma-joined
};

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %.2fx (set PANDORA_BENCH_SCALE to change), threads: %d, backend: %s\n",
              bench_scale(), exec::default_backend()->concurrency(),
              exec::default_backend()->name());
  std::printf("==============================================================================\n");
}

}  // namespace pandora::bench
