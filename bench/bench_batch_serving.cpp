// Batched multi-query serving: N independent dendrogram queries on one
// Executor, batched through serve::BatchExecutor versus a sequential loop on
// the same executor.  The serving scenario of the ROADMAP north star: the
// paper's throughput claim (Figs. 11/14) amortised across a query stream
// rather than within one call.
//
// Scenarios:
//  * small-uniform: N same-sized small queries — the batch packs one query
//    per slot thread, so the speedup approaches min(N, threads) minus
//    scheduling overhead.  The CI regression gate checks the N=8 speedup.
//    This scenario runs once per execution backend (openmp, pinned) at a
//    FIXED size (not PANDORA_BENCH_SCALE-scaled, so the kernels stay above
//    the parallel grain on CI): the rows carry a "backend" column, and a
//    second self-relative gate requires the pinned-pool backend to serve the
//    batch at >= 1.0x the OpenMP backend's throughput.
//  * mixed: small queries plus large ones that keep intra-query parallelism.
// A single-threaded host cannot overlap queries; the gates only apply where
// threads > 1 (the CI host).

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/data/tree_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/exec/backend.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/serve/batch_executor.hpp"
#include "pandora/snapshot/published_clustering.hpp"

using namespace pandora;

namespace {

/// Delta of one obs:: registry counter over a scenario: snapshotted at
/// construction, read back as what happened since.  The rows used to
/// hand-plumb ArtifactCache::Stats / JobOutcome tallies per scenario; the
/// registry is now the single source and the row fields keep their names.
class CounterDelta {
 public:
  explicit CounterDelta(const char* name)
      : name_(name), start_(obs::registry().counter_value(name)) {}
  [[nodiscard]] std::int64_t value() const {
    return static_cast<std::int64_t>(obs::registry().counter_value(name_) - start_);
  }

 private:
  const char* name_;
  std::uint64_t start_;
};

std::vector<graph::EdgeList> make_query_trees(index_t num_vertices, std::size_t count,
                                              std::uint64_t seed_base) {
  std::vector<graph::EdgeList> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(seed_base + i);
    graph::EdgeList tree = data::random_attachment_tree(num_vertices, rng);
    data::assign_random_weights(tree, rng);
    trees.push_back(std::move(tree));
  }
  return trees;
}

void run_scenario(const char* name, const exec::Executor& executor,
                  const std::vector<graph::EdgeList>& trees,
                  const std::vector<index_t>& num_vertices, size_type small_threshold,
                  bench::JsonReport& json) {
  std::vector<serve::DendrogramQuery> queries;
  for (std::size_t i = 0; i < trees.size(); ++i)
    queries.push_back({&trees[i], num_vertices[i], {}});

  const CounterDelta cache_hits("pandora_cache_hits_total");
  const CounterDelta cache_misses("pandora_cache_misses_total");
  const CounterDelta cache_evictions("pandora_cache_evictions_total");

  // The threshold is pinned per scenario so the small/large classification —
  // the thing each scenario exists to measure — holds at every
  // PANDORA_BENCH_SCALE, not just the default.
  serve::BatchOptions options;
  options.small_query_threshold = small_threshold;

  // Distinct MSTs per query: the artifact cache cannot collapse the batch,
  // every query does real work.
  serve::BatchExecutor batch = Pipeline::on(executor).batch(options);

  // Sequential same-executor loop (the status quo a server without the
  // batch layer runs): every query one at a time on the parent.
  std::vector<dendrogram::Dendrogram> sequential_out(queries.size());
  const auto sequential_pass = [&] {
    for (std::size_t i = 0; i < queries.size(); ++i)
      dendrogram::pandora_dendrogram_into(executor, *queries[i].mst, queries[i].num_vertices,
                                          queries[i].options, sequential_out[i]);
  };
  sequential_pass();  // warm the parent arena
  const bench::Measurement sequential = bench::measure(5, sequential_pass);

  std::vector<dendrogram::Dendrogram> batched_out(queries.size());
  batch.build_dendrograms_into(queries, batched_out);  // warm the slot arenas
  const bench::Measurement batched = bench::measure(5, [&] {
    batch.build_dendrograms_into(queries, batched_out);
  });

  size_type total_edges = 0;
  for (const auto& tree : trees) total_edges += static_cast<size_type>(tree.size());
  const double speedup = batched.median() > 0 ? sequential.median() / batched.median() : 0.0;

  std::printf("%-14s | %4zu queries %9lld edges | seq %8.2fms  batch %8.2fms | %5.2fx\n",
              name, queries.size(), static_cast<long long>(total_edges),
              1e3 * sequential.median(), 1e3 * batched.median(), speedup);

  // Shared-ArtifactCache traffic over this scenario, read back from the
  // obs:: registry as deltas: the replay economy the batch rides on,
  // alongside the timings.  (The full cumulative registry snapshot also
  // rides along in the report's top-level "metrics" object.)
  json.field("scenario", std::string(name))
      .field("backend", std::string(executor.name()))
      .field("num_queries", static_cast<std::int64_t>(queries.size()))
      .field("total_edges", total_edges)
      .field("num_slots", static_cast<std::int64_t>(batch.num_slots()))
      .timing("sequential", sequential)
      .timing("batched", batched)
      .field("batched_speedup", speedup)
      .field("cache_hits", cache_hits.value())
      .field("cache_misses", cache_misses.value())
      .field("cache_evictions", cache_evictions.value())
      .field("cache_pinned_slots", obs::registry().gauge_value("pandora_cache_pinned_slots"));
  json.end_row();
}

/// Admission control under a QoS policy: the same dendrogram batch with one
/// oversized query (shed while batchmates are pending) and one query carrying
/// an already-expired deadline (cancelled at its first chunk boundary).  The
/// payload is the JobOutcome counters, not a timing gate: the JSON row lets
/// CI watch the shed/cancel plumbing end to end.  On a single hardware thread
/// the oversized query may be admitted after the small phase drained (no
/// pressure left), so jobs_shed is reported, not gated.
void run_qos(const exec::Executor& executor, bench::JsonReport& json) {
  const index_t n = 20000;
  constexpr std::size_t kQueries = 8;
  const std::vector<graph::EdgeList> trees = make_query_trees(n, kQueries, 400);

  serve::BatchOptions options;
  options.small_query_threshold = static_cast<size_type>(n);
  options.qos.shed_above = static_cast<size_type>(n);
  options.qos.pressure_threshold = 0;
  serve::BatchExecutor batch = Pipeline::on(executor).batch(options);

  std::vector<dendrogram::Dendrogram> out(kQueries);
  std::vector<serve::BatchExecutor::Job> jobs;
  for (std::size_t i = 0; i < kQueries; ++i) {
    jobs.push_back(serve::BatchExecutor::Job{
        .run =
            [&, i](const exec::Executor& exec) {
              dendrogram::pandora_dendrogram_into(exec, trees[i], n, {}, out[i]);
            },
        .size_hint = static_cast<size_type>(trees[i].size()),
    });
  }
  jobs[kQueries - 2].size_hint = 4 * static_cast<size_type>(n);  // above shed_above
  jobs[kQueries - 1].deadline = std::chrono::nanoseconds(1);     // expired on arrival

  (void)batch.run_jobs(jobs);  // warm the slot arenas

  // Outcome tallies come back from the obs:: registry, not from the returned
  // JobResult vector — the row doubles as an end-to-end check that the
  // serve-layer instrumentation counts what actually happened.  Deltas start
  // after the warm pass so the warm batch's outcomes don't pollute the row.
  const CounterDelta ok("pandora_serve_jobs_total{outcome=\"ok\"}");
  const CounterDelta shed("pandora_serve_jobs_total{outcome=\"shed\"}");
  const CounterDelta cancelled("pandora_serve_jobs_total{outcome=\"cancelled\"}");
  const CounterDelta failed("pandora_serve_jobs_total{outcome=\"failed\"}");

  Timer timer;
  (void)batch.run_jobs(jobs);
  const double seconds = timer.seconds();

  std::printf("%-14s | %4zu queries %9s | ok %lld shed %lld cancelled %lld failed %lld | %6.2fms\n",
              "qos", kQueries, "", static_cast<long long>(ok.value()),
              static_cast<long long>(shed.value()), static_cast<long long>(cancelled.value()),
              static_cast<long long>(failed.value()), 1e3 * seconds);

  json.field("scenario", std::string("qos"))
      .field("num_queries", static_cast<std::int64_t>(kQueries))
      .field("n", n)
      .field("batch_seconds", seconds)
      .field("jobs_ok", ok.value())
      .field("jobs_shed", shed.value())
      .field("jobs_cancelled", cancelled.value())
      .field("jobs_failed", failed.value());
  json.end_row();
}

/// The snapshot serving tier under a read/write mix: 8 reader threads (each
/// with its own serial executor, as the snapshot contract prescribes) running
/// HDBSCAN* against pinned snapshots of one PublishedClustering — first with
/// the writer idle, then with it churning insert/erase batches and publishing
/// after every mutation.  Per-query reader latencies feed p50/p90 with and
/// without the writer; the ratio (`reader_p90_degradation`) is the
/// writers-never-block-readers claim as a number, gated by
/// check_regression.py on hosts with >= 4 threads.
void run_mixed_rw(bench::JsonReport& json) {
  constexpr int kReaders = 8;
  constexpr int kQueriesPerReader = 6;
  const index_t n = bench::scaled(4000);

  const CounterDelta cache_hits("pandora_cache_hits_total");
  const CounterDelta cache_misses("pandora_cache_misses_total");
  const CounterDelta cache_evictions("pandora_cache_evictions_total");

  const exec::Executor writer_exec(exec::serial_backend());
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(n, 2, 4, 0.03, 0.1, 42));

  hdbscan::HdbscanOptions options;
  options.min_pts = 4;
  options.min_cluster_size = 16;

  const auto reader_phase = [&](bool with_writer) {
    bench::Measurement latencies;
    std::mutex collect;
    std::atomic<bool> stop{false};
    std::thread writer;
    if (with_writer) {
      writer = std::thread([&] {
        // Insert a batch, erase the same batch: n stays stable across the
        // phase (latencies compare like with like) while every round
        // publishes two successor snapshots.
        std::uint64_t round = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const std::vector<index_t> ids =
              published.insert(data::gaussian_blobs(50, 2, 4, 0.03, 0.1, 1000 + round++));
          published.erase(ids);
        }
      });
    }
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        const exec::Executor reader(exec::serial_backend());
        std::vector<double> local;
        local.reserve(kQueriesPerReader);
        for (int q = 0; q < kQueriesPerReader; ++q) {
          const snapshot::SnapshotPtr snap = published.acquire();
          Timer timer;
          (void)snap->hdbscan(reader, options);
          local.push_back(timer.seconds());
        }
        const std::lock_guard<std::mutex> lock(collect);
        latencies.samples.insert(latencies.samples.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : readers) t.join();
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();
    return latencies;
  };

  reader_phase(false);  // warm: arenas, the first epoch's cached artifacts
  const bench::Measurement read_only = reader_phase(false);
  const bench::Measurement read_write = reader_phase(true);
  const double degradation =
      read_only.p90() > 0 ? read_write.p90() / read_only.p90() : 0.0;

  std::printf("%-14s | %4d readers %8lld points | ro p90 %6.2fms  rw p90 %8.2fms | %5.2fx\n",
              "mixed_rw", kReaders, static_cast<long long>(n), 1e3 * read_only.p90(),
              1e3 * read_write.p90(), degradation);

  // Serving-cache traffic for the whole scenario (all snapshot epochs), as
  // obs:: registry deltas since the scenario began.
  json.field("scenario", std::string("mixed_rw"))
      .field("num_readers", static_cast<std::int64_t>(kReaders))
      .field("queries_per_reader", static_cast<std::int64_t>(kQueriesPerReader))
      .field("n", n)
      .timing("reader_ro", read_only)
      .timing("reader_rw", read_write)
      .field("reader_p90_degradation", degradation)
      .field("cache_hits", cache_hits.value())
      .field("cache_misses", cache_misses.value())
      .field("cache_evictions", cache_evictions.value())
      .field("cache_pinned_slots", obs::registry().gauge_value("pandora_cache_pinned_slots"));
  json.end_row();
}

}  // namespace

int main() {
  bench::print_header("Batched multi-query serving vs sequential same-executor loop",
                      "ROADMAP north star (serving); amortises Figs. 11/14 across a stream");
  exec::Executor executor(exec::default_backend());
  bench::JsonReport json("batch_serving");

  std::printf("%-14s | %4s %18s | %28s | %6s\n", "scenario", "N", "work", "median wall",
              "speedup");

  // The acceptance scenario — N=8 small queries, one machine — once per
  // execution backend, at a fixed (unscaled) size so the per-kernel dispatch
  // the backends differ in is actually exercised on CI.  The openmp row
  // feeds the batched>=1.3x gate; the openmp/pinned pair feeds the
  // backend-parity gate in check_regression.py.
  {
    const index_t fixed_n = 20000;
    const std::vector<graph::EdgeList> trees = make_query_trees(fixed_n, 8, 1);
    for (const auto& backend : {exec::openmp_backend(), exec::pinned_pool_backend()}) {
      const exec::Executor backend_executor(backend);
      run_scenario("small-uniform", backend_executor, trees,
                   std::vector<index_t>(8, fixed_n), static_cast<size_type>(fixed_n), json);
    }
  }

  const index_t small_n = bench::scaled(20000);
  const auto small_threshold = static_cast<size_type>(small_n);

  // A wider batch of the same shape (queue depth beyond the slot count).
  {
    const std::vector<graph::EdgeList> trees = make_query_trees(small_n, 32, 100);
    run_scenario("small-deep", executor, trees, std::vector<index_t>(32, small_n),
                 small_threshold, json);
  }

  // Mixed: six small queries packed per-thread + two large ones that keep
  // intra-query parallelism.
  {
    const index_t large_n = bench::scaled(200000);
    std::vector<graph::EdgeList> trees = make_query_trees(small_n, 6, 200);
    std::vector<index_t> sizes(6, small_n);
    for (std::uint64_t i = 0; i < 2; ++i) {
      Rng rng(300 + i);
      graph::EdgeList tree = data::random_attachment_tree(large_n, rng);
      data::assign_random_weights(tree, rng);
      trees.push_back(std::move(tree));
      sizes.push_back(large_n);
    }
    run_scenario("mixed", executor, trees, sizes, small_threshold, json);
  }

  // Admission control: JobOutcome counters under a QoS policy.
  run_qos(executor, json);

  // Read/write mix on the snapshot serving tier (epoch publication).
  run_mixed_rw(json);

  std::printf(
      "\nExpected shape: batched >= 1.3x sequential for small-uniform N=8 on a\n"
      "multi-core host (query-level parallelism without per-query fork/join);\n"
      "~1x on a single hardware thread, where queries cannot overlap.  The\n"
      "pinned backend's small-uniform row should match or beat the openmp row\n"
      "(persistent workers, no per-kernel fork/join).  mixed_rw: reader p90\n"
      "with a churning writer <= 1.5x the writer-idle p90 (the CI gate where\n"
      "threads >= 4) — writers publish snapshots, they never block readers.\n");
  return 0;
}
