// Figure 13: breakdown of the time PANDORA spends in its three phases
// (sort / multilevel contraction / expansion), normalised per dataset, on the
// multithreaded space.  The paper's shape: sorting dominates (~0.7-0.85),
// contraction is second (~0.1-0.2), expansion is negligible.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

int main() {
  bench::print_header("PANDORA phase breakdown (normalised, parallel space)", "Figure 13");

  const std::vector<std::string> datasets = {"Pamap2Proxy", "VisualSim5D", "FarmProxy",
                                             "HaccProxy",   "Normal2D",    "Uniform3D"};
  std::printf("%-14s | %10s %12s %11s\n", "dataset", "sort", "contraction", "expansion");
  for (const auto& name : datasets) {
    const index_t n = bench::scaled(400000);
    const exec::Executor executor(exec::default_backend());
    const bench::PreparedDataset prepared = bench::prepare_dataset(name, n, 2, executor);
    exec::PhaseTimesProfiler profiler;
    executor.set_profiler(&profiler);
    const auto pipeline = Pipeline::on(executor);
    for (int repeat = 0; repeat < 5; ++repeat)  // accumulate to smooth noise
      (void)pipeline.build_dendrogram(prepared.mst, prepared.n);
    executor.set_profiler(nullptr);
    const PhaseTimes& times = profiler.times();
    const double sort = times.get("sort");
    const double contraction = times.get("contraction");
    const double expansion = times.get("expansion");
    const double total = sort + contraction + expansion;
    std::printf("%-14s | %10.2f %12.2f %11.2f\n", name.c_str(), sort / total,
                contraction / total, expansion / total);
  }
  std::printf(
      "\nExpected shape (paper): sort_time dominant (0.67-0.85), contraction second\n"
      "(0.12-0.22), expansion small (0.03-0.10).\n");
  return 0;
}
