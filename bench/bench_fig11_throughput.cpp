// Figure 11: dendrogram-construction throughput (MPoints/sec) across the
// dataset roster for:
//   * UnionFind   — Algorithm 2 baseline (parallel sort, sequential merge
//                   loop), the "Union-Find (AMD 7A53-64c)" bars;
//   * Pandora(1T) — PANDORA in the serial space, the single-thread reference;
//   * Pandora(MT) — PANDORA in the parallel space, standing in for the
//                   GPU bars (MI250X / A100).
// The reproduced shape: PANDORA-parallel beats the union-find baseline on
// every dataset, with the largest gains on the most skewed dendrograms.
//
// The initial descending-(weight, id) edge sort — the phase the paper's
// Figure 12 shows dominating dendrogram time — is also measured on its own,
// so the JSON artifact tracks the edge-sort trajectory across PRs.

#include <cstdio>

#include "bench_common.hpp"
#include "pandora/dendrogram/mixed.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

int main() {
  const exec::Executor parallel_executor(exec::default_backend());
  const exec::Executor serial_executor(exec::serial_backend());
  // Construction algorithms are compared cold: the cross-call SortedEdges
  // cache would otherwise let every repeat replay the first sort.  (The
  // cache's own benefit is measured separately below and in fig14.)
  parallel_executor.set_artifact_caching(false);
  serial_executor.set_artifact_caching(false);
  bench::print_header("Dendrogram construction throughput (MPoints/sec, higher is better)",
                      "Figure 11 (plus the Section 2.3.3 mixed baseline)");
  bench::JsonReport json("fig11");

  std::printf("%-16s %9s | %12s %12s %12s %12s | %10s %10s %10s | %9s\n", "dataset", "npts",
              "UnionFind", "Mixed(MT)", "Pandora(1T)", "Pandora(MT)", "radix [ms]",
              "merge [ms]", "emst [ms]", "speedup");
  for (const auto& spec : data::table2_datasets()) {
    const index_t n = bench::scaled(static_cast<index_t>(spec.default_n / 2));
    const bench::PreparedDataset prepared =
        bench::prepare_dataset(spec.name, n, /*min_pts=*/2, parallel_executor);

    const auto uf_pipeline = Pipeline::on(parallel_executor)
                                 .with_dendrogram_algorithm(
                                     hdbscan::DendrogramAlgorithm::union_find);
    const bench::Measurement m_uf = bench::measure(3, [&] {
      (void)uf_pipeline.build_dendrogram(prepared.mst, prepared.n);
    });
    const bench::Measurement m_mixed = bench::measure(3, [&] {
      (void)dendrogram::mixed_dendrogram(parallel_executor, prepared.mst, prepared.n, 0.1);
    });
    const auto serial_pipeline = Pipeline::on(serial_executor);
    const bench::Measurement m_serial = bench::measure(3, [&] {
      (void)serial_pipeline.build_dendrogram(prepared.mst, prepared.n);
    });
    const auto parallel_pipeline = Pipeline::on(parallel_executor);
    const bench::Measurement m_parallel = bench::measure(3, [&] {
      (void)parallel_pipeline.build_dendrogram(prepared.mst, prepared.n);
    });
    // The Section 3.1.1 edge sort on its own (the Figure 12/13 hot phase):
    // the default key-packed radix path against the comparison merge path.
    parallel_executor.set_edge_sort_algorithm(exec::EdgeSortAlgorithm::radix);
    const bench::Measurement m_sort = bench::measure(5, [&] {
      (void)dendrogram::sort_edges(parallel_executor, prepared.mst, prepared.n);
    });
    parallel_executor.set_edge_sort_algorithm(exec::EdgeSortAlgorithm::merge);
    const bench::Measurement m_sort_merge = bench::measure(5, [&] {
      (void)dendrogram::sort_edges(parallel_executor, prepared.mst, prepared.n);
    });
    parallel_executor.set_edge_sort_algorithm(exec::EdgeSortAlgorithm::radix);
    // The EMST phase on its own, edge sort excluded: this is the column the
    // SoA/SIMD distance kernels move (Borůvka leaf scans are its hot loop).
    const bench::Measurement m_emst = bench::measure(3, [&] {
      (void)spatial::mutual_reachability_mst(parallel_executor, *prepared.points,
                                             *prepared.tree, prepared.core);
    });

    const double t_uf = m_uf.best();
    const double t_parallel = m_parallel.best();
    std::printf("%-16s %9d | %12.1f %12.1f %12.1f %12.1f | %10.2f %10.2f %10.2f | %8.1fx\n",
                spec.name.c_str(), prepared.n, bench::mpoints_per_sec(prepared.n, t_uf),
                bench::mpoints_per_sec(prepared.n, m_mixed.best()),
                bench::mpoints_per_sec(prepared.n, m_serial.best()),
                bench::mpoints_per_sec(prepared.n, t_parallel), 1e3 * m_sort.median(),
                1e3 * m_sort_merge.median(), 1e3 * m_emst.median(), t_uf / t_parallel);

    json.field("dataset", spec.name)
        .field("n", prepared.n)
        .timing("union_find", m_uf)
        .timing("mixed", m_mixed)
        .timing("pandora_serial", m_serial)
        .timing("pandora_parallel", m_parallel)
        .timing("edge_sort", m_sort)
        .timing("edge_sort_merge", m_sort_merge)
        .timing("emst", m_emst)
        .field("pandora_mpoints_per_sec", bench::mpoints_per_sec(prepared.n, t_parallel));
    json.end_row();
  }
  std::printf(
      "\nExpected shape (paper): multithreaded Pandora ~0.7-2.2x UnionFind; the\n"
      "accelerated space adds another large factor (6-37x on GPUs there), uniformly\n"
      "across skewness levels.\n");
  return 0;
}
