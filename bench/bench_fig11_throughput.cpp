// Figure 11: dendrogram-construction throughput (MPoints/sec) across the
// dataset roster for:
//   * UnionFind   — Algorithm 2 baseline (parallel sort, sequential merge
//                   loop), the "Union-Find (AMD 7A53-64c)" bars;
//   * Pandora(1T) — PANDORA in the serial space, the single-thread reference;
//   * Pandora(MT) — PANDORA in the parallel space, standing in for the
//                   GPU bars (MI250X / A100).
// The reproduced shape: PANDORA-parallel beats the union-find baseline on
// every dataset, with the largest gains on the most skewed dendrograms.

#include <cstdio>

#include "bench_common.hpp"
#include "pandora/dendrogram/mixed.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

int main() {
  const exec::Executor parallel_executor(exec::Space::parallel);
  const exec::Executor serial_executor(exec::Space::serial);
  bench::print_header("Dendrogram construction throughput (MPoints/sec, higher is better)",
                      "Figure 11 (plus the Section 2.3.3 mixed baseline)");

  std::printf("%-16s %9s | %12s %12s %12s %12s | %9s\n", "dataset", "npts", "UnionFind",
              "Mixed(MT)", "Pandora(1T)", "Pandora(MT)", "speedup");
  for (const auto& spec : data::table2_datasets()) {
    const index_t n = bench::scaled(static_cast<index_t>(spec.default_n / 2));
    const bench::PreparedDataset prepared =
        bench::prepare_dataset(spec.name, n, /*min_pts=*/2, parallel_executor);

    const auto uf_pipeline = Pipeline::on(parallel_executor)
                                 .with_dendrogram_algorithm(
                                     hdbscan::DendrogramAlgorithm::union_find);
    const double t_uf = bench::best_of(3, [&] {
      (void)uf_pipeline.build_dendrogram(prepared.mst, prepared.n);
    });
    const double t_mixed = bench::best_of(3, [&] {
      (void)dendrogram::mixed_dendrogram(parallel_executor, prepared.mst, prepared.n, 0.1);
    });
    const auto serial_pipeline = Pipeline::on(serial_executor);
    const double t_serial = bench::best_of(3, [&] {
      (void)serial_pipeline.build_dendrogram(prepared.mst, prepared.n);
    });
    const auto parallel_pipeline = Pipeline::on(parallel_executor);
    const double t_parallel = bench::best_of(3, [&] {
      (void)parallel_pipeline.build_dendrogram(prepared.mst, prepared.n);
    });

    std::printf("%-16s %9d | %12.1f %12.1f %12.1f %12.1f | %8.1fx\n", spec.name.c_str(),
                prepared.n, bench::mpoints_per_sec(prepared.n, t_uf),
                bench::mpoints_per_sec(prepared.n, t_mixed),
                bench::mpoints_per_sec(prepared.n, t_serial),
                bench::mpoints_per_sec(prepared.n, t_parallel), t_uf / t_parallel);
  }
  std::printf(
      "\nExpected shape (paper): multithreaded Pandora ~0.7-2.2x UnionFind; the\n"
      "accelerated space adds another large factor (6-37x on GPUs there), uniformly\n"
      "across skewness levels.\n");
  return 0;
}
