#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json artifacts.

Two kinds of checks:

1. Baseline comparison (``--baseline``): every ``BENCH_<name>.baseline.json``
   in the baseline directory is matched against ``BENCH_<name>.json`` in the
   current directory; rows are matched on their identity fields (dataset,
   n, mpts, scenario, ...) and every ``*_median`` timing is compared.

   CI hosts differ in absolute speed from whatever machine recorded the
   baselines, so the comparison is host-calibrated by default: the median of
   all current/baseline ratios is taken as the host-speed factor, and a
   timing regresses only if its ratio exceeds ``factor * (1 + tolerance)`` —
   i.e. it got slower *relative to everything else* by more than the
   tolerance.  A uniformly slower host passes; one kernel regressing 15%
   while the rest hold fails.  ``--no-calibrate`` pins the factor to 1 for
   strict absolute gating on a stable host.

   Millisecond-scale medians of a handful of samples carry ~±15% noise on a
   shared runner, so a single uncorrelated exceedance is reported as a
   warning rather than failing the gate (``--max-outliers``, default 1 per
   bench file).  A genuine kernel regression is correlated: it exceeds the
   limit on many rows of the same file at once, far above the allowance.

2. Self-relative serving gates (machine-independent):
   * ``--batch-json``: the small-uniform N=8 scenario of bench_batch_serving
     (the openmp-backend row) must reach ``--min-batch-speedup`` (checked only
     when the run had >= 4 threads; query-level parallelism cannot show on
     fewer).
   * ``--min-backend-speedup``: the same N=8 scenario on the pinned-pool
     backend must serve the batch at that multiple of the OpenMP backend's
     median (>= 1.0 = no regression from swapping the execution backend).
     ``--backend-noise`` is subtracted first: the two rows execute the same
     scheduler code, so on a shared runner the ratio hovers around its true
     value with ~10% median-of-a-few-samples jitter; a genuine backend
     regression is far larger.  Skipped below 4 threads like the batch
     gate.
   * ``--max-reader-degradation``: the mixed_rw scenario of
     bench_batch_serving (8 snapshot readers with vs without a churning
     writer) must keep reader p90 within that ratio of the writer-idle p90
     (writers publish snapshots; they never block readers).  Skipped below
     4 threads like the batch gate.
   * ``--fig15-json``: per dataset, the summed cache-replay preparation must
     beat the summed rebuild preparation.
   * ``--distance-json``: bench_distance_kernels' SoA batch kernels must show
     the SIMD dispatch beating the scalar reference by
     ``--min-distance-speedup`` (median across the Table 2 dimensionality
     rows).  Skipped when the artifact reports a runtime vector width < 4
     (PANDORA_SIMD=OFF build, or a host without AVX2): there the dispatch IS
     the scalar kernel and the two columns are identical by construction.
   * ``--dynamic-json``: bench_dynamic_updates' single-insert scenario at
     n >= 50k must reach ``--min-dynamic-speedup`` (steady-state incremental
     update + dendrogram replay vs the full cold rebuild, same host).  The
     churn scenario is reported but not gated: its update-vs-rebuild ratio
     hovers near 1x and swings +/-40% run-to-run on shared single-core
     runners, so a hard gate would only measure host noise.

Every loaded artifact is also schema-checked, including the embedded
``metrics`` object (the obs:: registry snapshot bench_common.hpp writes into
each report) — a malformed or missing snapshot is a usage error (exit 2),
never a silent pass.

Exit code 0 = gate green, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import pathlib
import statistics
import sys

IDENTITY_KEYS = ("dataset", "scenario", "name", "backend", "n", "mpts", "num_queries",
                 "threads_used")


def die(message: str) -> None:
    """Abort with a one-line actionable error and the usage/IO exit code (2).

    Distinct from exit 1 (a real perf regression) so CI can tell "the gate
    tripped" apart from "the gate never ran" — a missing or corrupt artifact
    must never read as green OR as a regression.
    """
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def load(path: pathlib.Path) -> dict:
    if not path.exists():
        die(f"{path}: no such bench artifact — did the bench binary run and "
            "write its BENCH_*.json next to it?")
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as error:
        die(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        die(f"{path} is not valid JSON ({error}) — truncated artifact from a "
            "crashed or interrupted bench run? Delete it and re-run the bench.")
    if not isinstance(report, dict) or not isinstance(report.get("rows"), list):
        die(f"{path}: schema mismatch — expected an object with a \"rows\" list "
            "(bench_common.hpp JsonReport); artifact written by an older or "
            "foreign tool?")
    for i, row in enumerate(report["rows"]):
        if not isinstance(row, dict):
            die(f"{path}: schema mismatch — rows[{i}] is not an object; "
                "regenerate the artifact with the current bench binary.")
    validate_metrics(path, report)
    return report


def validate_metrics(path: pathlib.Path, report: dict) -> None:
    """Validate the embedded obs:: registry snapshot.

    Every artifact written by the current bench_common.hpp carries a top-level
    ``metrics`` object (the process-wide telemetry registry at report time).
    Baseline artifacts recorded before the registry existed may omit it; a
    *current* artifact without it means a stale bench binary, and a malformed
    one means the emitter broke — both are usage errors (exit 2), never green.
    """
    metrics = report.get("metrics")
    if metrics is None:
        if path.name.endswith(".baseline.json"):
            return  # pre-registry baseline; nothing to validate
        die(f"{path}: no \"metrics\" object — artifact written by a bench "
            "binary older than the obs:: registry? Rebuild and re-run.")
    if not isinstance(metrics, dict):
        die(f"{path}: \"metrics\" is not an object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            die(f"{path}: metrics.{section} missing or not an object")
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            die(f"{path}: metrics.counters[{name!r}] is not a non-negative integer")
    for name, value in metrics["gauges"].items():
        if not isinstance(value, int):
            die(f"{path}: metrics.gauges[{name!r}] is not an integer")
    for name, hist in metrics["histograms"].items():
        if not isinstance(hist, dict):
            die(f"{path}: metrics.histograms[{name!r}] is not an object")
        for key in ("count", "sum_seconds", "p50", "p90", "p99"):
            if not isinstance(hist.get(key), (int, float)):
                die(f"{path}: metrics.histograms[{name!r}].{key} missing or not a number")
        buckets = hist.get("buckets")
        if not isinstance(buckets, dict):
            die(f"{path}: metrics.histograms[{name!r}].buckets missing or not an object")
        for key, value in buckets.items():
            if not (key.isdigit() and 0 <= int(key) < 64):
                die(f"{path}: metrics.histograms[{name!r}].buckets key {key!r} is not "
                    "a bucket index in [0, 64)")
            if not isinstance(value, int) or value < 0:
                die(f"{path}: metrics.histograms[{name!r}].buckets[{key!r}] is not a "
                    "non-negative integer")
        if sum(buckets.values()) != hist["count"]:
            die(f"{path}: metrics.histograms[{name!r}]: bucket counts sum to "
                f"{sum(buckets.values())}, not count={hist['count']} — torn "
                "(snapshot taken while threads were still recording) or "
                "hand-edited artifact")


def row_identity(row: dict) -> tuple:
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def compare_to_baseline(current_dir: pathlib.Path, baseline_dir: pathlib.Path,
                        tolerance: float, calibrate: bool, max_outliers: int) -> list[str]:
    failures = []
    baselines = sorted(baseline_dir.glob("BENCH_*.baseline.json"))
    if not baselines:
        print(f"warning: no *.baseline.json under {baseline_dir}; nothing to compare")
        return failures

    for baseline_path in baselines:
        name = baseline_path.name.replace(".baseline", "")
        current_path = current_dir / name
        if not current_path.exists():
            failures.append(f"{name}: current run produced no artifact")
            continue
        baseline = load(baseline_path)
        current = load(current_path)
        current_rows = {row_identity(row): row for row in current.get("rows", [])}

        pairs = []  # (field-id, baseline-median, current-median)
        for base_row in baseline.get("rows", []):
            identity = row_identity(base_row)
            cur_row = current_rows.get(identity)
            if cur_row is None:
                failures.append(f"{name}: row {dict(identity)} missing from current run")
                continue
            for field, base_value in base_row.items():
                if not field.endswith("_median") or not isinstance(base_value, (int, float)):
                    continue
                cur_value = cur_row.get(field)
                if not isinstance(cur_value, (int, float)):
                    failures.append(f"{name}: {dict(identity)} lost field {field}")
                    continue
                if base_value > 0:
                    pairs.append((f"{name} {dict(identity)} {field}", base_value, cur_value))

        if not pairs:
            continue
        factor = statistics.median(c / b for _, b, c in pairs) if calibrate else 1.0
        # Floor the factor at 1: on a host faster than the baseline machine, a
        # field merely *at* baseline speed is not a regression — only fields
        # beyond the absolute tolerance can fail.
        limit = max(factor, 1.0) * (1.0 + tolerance)
        print(f"{name}: {len(pairs)} medians, host-speed factor {factor:.3f}, "
              f"per-field limit {limit:.3f}x baseline")
        exceedances = []
        for field_id, base_value, cur_value in pairs:
            ratio = cur_value / base_value
            if ratio > limit:
                exceedances.append(
                    f"{field_id}: {cur_value * 1e3:.3f}ms vs baseline "
                    f"{base_value * 1e3:.3f}ms ({ratio:.2f}x, limit {limit:.2f}x)")
        if len(exceedances) > max_outliers:
            failures += exceedances
        else:
            for exceedance in exceedances:
                print(f"  warning (within outlier allowance of {max_outliers}): {exceedance}")
    return failures


def small_uniform_rows(report: dict) -> list[dict]:
    return [row for row in report.get("rows", [])
            if row.get("scenario") == "small-uniform" and row.get("num_queries") == 8]


def check_batch_gate(path: pathlib.Path, min_speedup: float) -> list[str]:
    report = load(path)
    threads = report.get("threads", 1)
    # The scenario runs once per backend; the openmp row is the gated one
    # (rows without a backend column predate the backend sweep).
    for row in small_uniform_rows(report):
        if row.get("backend", "openmp") == "openmp":
            speedup = row.get("batched_speedup", 0.0)
            if threads < 4:
                print(f"batch gate: skipped (threads={threads} < 4); "
                      f"observed speedup {speedup:.2f}x")
                return []
            print(f"batch gate: small-uniform N=8 speedup {speedup:.2f}x "
                  f"(required {min_speedup:.2f}x, threads={threads})")
            if speedup < min_speedup:
                return [f"batched N=8 speedup {speedup:.2f}x < required {min_speedup:.2f}x"]
            return []
    return [f"{path.name}: no small-uniform N=8 row found"]


def check_backend_gate(path: pathlib.Path, min_speedup: float, noise: float) -> list[str]:
    report = load(path)
    threads = report.get("threads", 1)
    by_backend = {row.get("backend"): row for row in small_uniform_rows(report)}
    openmp = by_backend.get("openmp")
    pinned = by_backend.get("pinned")
    if openmp is None or pinned is None:
        return [f"{path.name}: need small-uniform N=8 rows for both the openmp and "
                "pinned backends"]
    openmp_median = openmp.get("batched_median", 0.0)
    pinned_median = pinned.get("batched_median", 0.0)
    if pinned_median <= 0:
        return [f"{path.name}: pinned small-uniform batched_median missing or zero"]
    speedup = openmp_median / pinned_median
    if threads < 4:
        print(f"backend gate: skipped (threads={threads} < 4); "
              f"observed pinned-vs-openmp {speedup:.2f}x")
        return []
    limit = min_speedup - noise
    print(f"backend gate: pinned batch {pinned_median * 1e3:.2f}ms vs openmp "
          f"{openmp_median * 1e3:.2f}ms = {speedup:.2f}x "
          f"(required {min_speedup:.2f}x, noise allowance {noise:.2f})")
    if speedup < limit:
        return [f"pinned backend served the N=8 batch at {speedup:.2f}x the openmp "
                f"backend (< required {min_speedup:.2f}x - {noise:.2f} noise)"]
    return []


def check_reader_gate(path: pathlib.Path, max_degradation: float) -> list[str]:
    report = load(path)
    threads = report.get("threads", 1)
    for row in report.get("rows", []):
        if row.get("scenario") != "mixed_rw":
            continue
        degradation = row.get("reader_p90_degradation", 0.0)
        if threads < 4:
            print(f"reader gate: skipped (threads={threads} < 4); "
                  f"observed p90 degradation {degradation:.2f}x")
            return []
        print(f"reader gate: mixed_rw reader p90 with writer "
              f"{row.get('reader_rw_p90', 0.0) * 1e3:.2f}ms vs without "
              f"{row.get('reader_ro_p90', 0.0) * 1e3:.2f}ms = {degradation:.2f}x "
              f"(allowed {max_degradation:.2f}x)")
        if degradation > max_degradation:
            return [f"mixed_rw reader p90 degraded {degradation:.2f}x under writer churn "
                    f"(> allowed {max_degradation:.2f}x) — the writer is blocking readers"]
        return []
    return [f"{path.name}: no mixed_rw row found"]


def check_fig15_gate(path: pathlib.Path) -> list[str]:
    report = load(path)
    rebuild: dict[str, float] = {}
    replay: dict[str, float] = {}
    for row in report.get("rows", []):
        dataset = row.get("dataset", "?")
        rebuild[dataset] = rebuild.get(dataset, 0.0) + row.get("prepare_rebuild_seconds", 0.0)
        replay[dataset] = replay.get(dataset, 0.0) + row.get("prepare_replay_seconds", 0.0)
    if not rebuild:
        return [f"{path.name}: no rows with sweep preparation timings"]
    failures = []
    for dataset, rebuild_total in rebuild.items():
        replay_total = replay.get(dataset, 0.0)
        print(f"fig15 gate: {dataset} sweep prepare rebuild {rebuild_total * 1e3:.1f}ms "
              f"vs replay {replay_total * 1e3:.1f}ms")
        if not replay_total < rebuild_total:
            failures.append(
                f"fig15 {dataset}: cache replay ({replay_total * 1e3:.1f}ms) did not beat "
                f"rebuild ({rebuild_total * 1e3:.1f}ms)")
    return failures


def check_dynamic_gate(path: pathlib.Path, min_speedup: float) -> list[str]:
    report = load(path)
    failures = []
    gated_row = None
    for row in report.get("rows", []):
        speedup = row.get("update_speedup", 0.0)
        print(f"dynamic gate: {row.get('scenario', '?')} n={row.get('n', '?')} "
              f"update {row.get('update_median', 0.0) * 1e3:.2f}ms vs rebuild "
              f"{row.get('rebuild_median', 0.0) * 1e3:.2f}ms ({speedup:.2f}x)")
        if row.get("scenario") == "single-insert" and row.get("n", 0) >= 50000:
            gated_row = row
    if gated_row is None:
        failures.append(f"{path.name}: no single-insert row at n >= 50000 "
                        "(the acceptance scale) — run without PANDORA_BENCH_SCALE < 1")
    elif gated_row.get("update_speedup", 0.0) < min_speedup:
        failures.append(f"dynamic single-insert speedup "
                        f"{gated_row.get('update_speedup', 0.0):.2f}x < required "
                        f"{min_speedup:.2f}x")
    return failures


def check_distance_gate(path: pathlib.Path, min_speedup: float) -> list[str]:
    report = load(path)
    rows = report.get("rows", [])
    if not rows:
        return [f"{path.name}: no distance-kernel rows"]
    width = min(row.get("simd_width", 1) for row in rows)
    speedups = []
    for row in rows:
        speedup = row.get("speedup", 0.0)
        print(f"distance gate: dim={row.get('dim', '?')} scalar "
              f"{row.get('scalar_median', 0.0) * 1e3:.2f}ms vs simd "
              f"{row.get('simd_median', 0.0) * 1e3:.2f}ms ({speedup:.2f}x, "
              f"width {row.get('simd_width', 1)})")
        speedups.append(speedup)
    if width < 4:
        print(f"distance gate: skipped (runtime vector width {width} < 4; "
              "scalar dispatch is the kernel under test)")
        return []
    median_speedup = statistics.median(speedups)
    print(f"distance gate: median SIMD speedup {median_speedup:.2f}x across "
          f"{len(speedups)} dims (required {min_speedup:.2f}x)")
    if median_speedup < min_speedup:
        return [f"SIMD distance kernels {median_speedup:.2f}x scalar "
                f"< required {min_speedup:.2f}x at vector width {width}"]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="directory with BENCH_*.baseline.json to compare against")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative slowdown per median (default 0.15)")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="disable host-speed calibration (strict absolute compare)")
    parser.add_argument("--max-outliers", type=int, default=1,
                        help="uncorrelated per-file exceedances tolerated as noise "
                             "(default 1); real regressions exceed on many rows at once")
    parser.add_argument("--batch-json", type=pathlib.Path,
                        help="BENCH_batch_serving.json for the batched-speedup and "
                             "backend-parity gates")
    parser.add_argument("--min-batch-speedup", type=float, default=1.3)
    parser.add_argument("--min-backend-speedup", type=float, default=1.0,
                        help="required pinned-vs-openmp batched throughput ratio "
                             "(default 1.0: the pinned backend must not regress)")
    parser.add_argument("--backend-noise", type=float, default=0.1,
                        help="measurement-noise allowance subtracted from the "
                             "backend-parity requirement (default 0.1)")
    parser.add_argument("--max-reader-degradation", type=float, default=1.5,
                        help="allowed mixed_rw reader-p90 ratio with vs without a "
                             "churning writer (default 1.5; snapshot publication "
                             "must keep writers off the reader path)")
    parser.add_argument("--fig15-json", type=pathlib.Path,
                        help="BENCH_fig15.json for the sweep replay-beats-rebuild gate")
    parser.add_argument("--dynamic-json", type=pathlib.Path,
                        help="BENCH_dynamic_updates.json for the update-vs-rebuild gate")
    parser.add_argument("--min-dynamic-speedup", type=float, default=3.0)
    parser.add_argument("--distance-json", type=pathlib.Path,
                        help="BENCH_distance_kernels.json for the SIMD-vs-scalar "
                             "kernel gate (skipped at runtime vector width < 4)")
    parser.add_argument("--min-distance-speedup", type=float, default=1.2)
    args = parser.parse_args()

    failures: list[str] = []
    if args.baseline is not None:
        failures += compare_to_baseline(args.current, args.baseline, args.tolerance,
                                        calibrate=not args.no_calibrate,
                                        max_outliers=args.max_outliers)
    if args.batch_json is not None:
        failures += check_batch_gate(args.batch_json, args.min_batch_speedup)
        failures += check_backend_gate(args.batch_json, args.min_backend_speedup,
                                       args.backend_noise)
        failures += check_reader_gate(args.batch_json, args.max_reader_degradation)
    if args.fig15_json is not None:
        failures += check_fig15_gate(args.fig15_json)
    if args.dynamic_json is not None:
        failures += check_dynamic_gate(args.dynamic_json, args.min_dynamic_speedup)
    if args.distance_json is not None:
        failures += check_distance_gate(args.distance_json, args.min_distance_speedup)

    if failures:
        print("\nPERF REGRESSION GATE: FAILED")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPERF REGRESSION GATE: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
