// Table 2: the dataset roster with dendrogram imbalance ("Imb" — the ratio of
// the dendrogram height to the ideal log2(n) height).  Every paper dataset is
// substituted by a deterministic generator of matching dimensionality and
// distribution shape (DESIGN.md); sizes are scaled to the machine, so the
// absolute Imb values are smaller than the paper's (height grows with n) but
// the qualitative ordering — VisualSim lowest by far, cosmology/GPS/uniform
// highly skewed — is the reproduced result.

#include <cstdio>

#include "bench_common.hpp"
#include "pandora/dendrogram/analysis.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

int main() {
  const exec::Executor executor(exec::default_backend());
  bench::print_header("Dataset roster and dendrogram imbalance", "Table 2");

  std::printf("%-16s %-34s %4s %9s %8s %10s\n", "name", "substitutes", "dim", "npts",
              "height", "Imb");
  for (const auto& spec : data::table2_datasets()) {
    const index_t n = bench::scaled(static_cast<index_t>(spec.default_n / 4));
    const bench::PreparedDataset prepared =
        bench::prepare_dataset(spec.name, n, /*min_pts=*/2, executor);
    const auto dendro = Pipeline::on(executor).build_dendrogram(prepared.mst, prepared.n);
    std::printf("%-16s %-34s %4d %9d %8d %10.1f\n", spec.name.c_str(),
                spec.paper_name.c_str(), prepared.dim, prepared.n,
                dendrogram::height(dendro), dendrogram::skewness(dendro));
  }
  std::printf(
      "\nExpected shape (paper): all families are far from balanced (Imb >> 1);\n"
      "VisualSim is the least skewed (43 at paper scale), cosmology/GPS/uniform are\n"
      "orders of magnitude above the ideal height.\n");
  return 0;
}
