// Distance-kernel microbench: the scalar reference batch kernel against the
// runtime-dispatched SIMD kernel over dimension-blocked SoA storage, at the
// paper's Table 2 dimensionalities (2, 3, 5, 7).  Throughput is point-pairs
// per second (one squared distance each); speedup = scalar_median /
// simd_median.
//
// The JSON artifact (BENCH_distance_kernels.json) is the input of the
// check_regression.py --distance-json gate: when the build dispatches to a
// vector path (simd_width >= 4) the median speedup across rows must clear
// the configured floor; scalar builds (PANDORA_SIMD=OFF or no AVX2 cpu)
// record simd_width so the gate knows to skip.

#include <cstdio>

#include "bench_common.hpp"
#include "pandora/data/point_generators.hpp"
#include "pandora/spatial/distance.hpp"
#include "pandora/spatial/point_set.hpp"

using namespace pandora;

int main() {
  bench::print_header("SoA batch distance kernels: scalar vs SIMD dispatch",
                      "Section 6.5 kNN hot loop, Table 2 dimensionalities");
  bench::JsonReport json("distance_kernels");

  const int width = spatial::distance::simd_vector_width();
  std::printf("simd compiled: %s, runtime vector width: %d\n",
              spatial::distance::simd_compiled() ? "yes" : "no", width);
  std::printf("%4s %9s | %14s %14s | %8s\n", "dim", "npts", "scalar [Mp/s]", "simd [Mp/s]",
              "speedup");

  for (const int dim : {2, 3, 5, 7}) {
    const index_t n = bench::scaled(1 << 17);
    const spatial::PointSet points =
        data::uniform_points(n, dim, 2024 + static_cast<std::uint64_t>(dim));
    const std::shared_ptr<const spatial::SoaStore> soa = points.soa();
    const std::vector<double> query(static_cast<std::size_t>(dim), 0.5);
    std::vector<double> out(static_cast<std::size_t>(n));

    // Checksum folded into a volatile sink so neither kernel's stores can be
    // dead-code-eliminated; also asserts the two paths agree bit-for-bit.
    volatile double sink = 0;
    const auto sweep = [&](auto&& kernel) {
      for (index_t b = 0; b < soa->num_blocks(); ++b)
        kernel(query.data(), soa->block(b), dim, soa->block_size(b), spatial::SoaStore::kLane,
               out.data() + b * spatial::SoaStore::kLane);
      sink = sink + out[static_cast<std::size_t>(n) / 2];
    };

    const int repeats = 9;
    const bench::Measurement m_scalar = bench::measure(
        repeats, [&] { sweep(spatial::distance::batch_squared_distances_scalar); });
    std::vector<double> scalar_out = out;
    const bench::Measurement m_simd = bench::measure(repeats, [&] {
      sweep([](const double* q, const double* block, int d, index_t count, index_t stride,
               double* o) {
        spatial::distance::batch_squared_distances(q, block, d, count, stride, o);
      });
    });
    if (scalar_out != out) {
      std::fprintf(stderr, "FATAL: scalar and dispatched kernels disagree at dim %d\n", dim);
      return 1;
    }

    const double scalar_mps = bench::mpoints_per_sec(points.size(), m_scalar.median());
    const double simd_mps = bench::mpoints_per_sec(points.size(), m_simd.median());
    const double speedup = m_simd.median() > 0 ? m_scalar.median() / m_simd.median() : 0.0;
    std::printf("%4d %9d | %14.1f %14.1f | %7.2fx\n", dim, points.size(), scalar_mps, simd_mps,
                speedup);

    json.field("dim", static_cast<std::int64_t>(dim))
        .field("n", points.size())
        .field("simd_width", static_cast<std::int64_t>(width))
        .timing("scalar", m_scalar)
        .timing("simd", m_simd)
        .field("scalar_mpoints_per_sec", scalar_mps)
        .field("simd_mpoints_per_sec", simd_mps)
        .field("speedup", speedup);
    json.end_row();
  }

  std::printf(
      "\nExpected shape: with AVX2 dispatched (width 4) the SIMD column clears the\n"
      "scalar one by well over the 1.2x CI floor at every Table 2 dimensionality;\n"
      "scalar builds report width 1 and identical columns (bit-identical kernels).\n");
  return 0;
}
