// Streaming updates vs from-scratch rebuilds: the dyn:: subsystem's reason
// to exist, measured.  Two scenarios:
//
//  * single-insert: a warm DynamicClustering at n=50k (scaled) absorbing one
//    point per sample — incremental EMST repair + delta merge + PANDORA
//    replay — against the full cold pipeline a static deployment would run
//    for the same change (kd-tree build, Borůvka EMST, edge sort, PANDORA).
//    The CI gate requires update >= 3x faster (median, self-relative, so it
//    holds on any host).
//  * churn-1pct: 1% of the points erased and as many inserted per sample, as
//    two batches — the erase path (splinter + component-restricted re-join)
//    plus a batch insert, against the same cold rebuild.
//
// Every sample leaves the stream a valid exact EMST (asserted once at the
// end against a reference build), so the numbers measure correct work.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/dyn/dynamic_clustering.hpp"
#include "pandora/graph/tree.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

namespace {

/// The full cold pipeline for one changed point set: what a static server
/// re-runs per update.  A fresh executor per call keeps it honestly cold
/// (no artifact cache, no warm arena).
double rebuild_once(const spatial::PointSet& points) {
  Timer timer;
  const exec::Executor cold(exec::default_backend());
  spatial::KdTree tree(points, 32);
  const graph::EdgeList mst = spatial::euclidean_mst(cold, points, tree);
  const dendrogram::Dendrogram dendrogram =
      dendrogram::pandora_dendrogram(cold, mst, points.size());
  (void)dendrogram;
  return timer.seconds();
}

void report(const char* scenario, index_t n, const bench::Measurement& update,
            const bench::Measurement& rebuild, bench::JsonReport& json) {
  const double speedup = update.median() > 0 ? rebuild.median() / update.median() : 0.0;
  std::printf("%-13s | n %7lld | update %9.3fms  rebuild %9.3fms | %6.2fx\n", scenario,
              static_cast<long long>(n), 1e3 * update.median(), 1e3 * rebuild.median(),
              speedup);
  // Cumulative ArtifactCache counters from the obs:: registry: how much the
  // incremental path replayed vs recomputed across the scenario so far (the
  // cold rebuilds run on fresh cacheless executors, so this is all stream
  // traffic).
  obs::Registry& reg = obs::registry();
  json.field("scenario", std::string(scenario))
      .field("n", n)
      .timing("update", update)
      .timing("rebuild", rebuild)
      .field("update_speedup", speedup)
      .field("cache_hits",
             static_cast<std::int64_t>(reg.counter_value("pandora_cache_hits_total")))
      .field("cache_misses",
             static_cast<std::int64_t>(reg.counter_value("pandora_cache_misses_total")))
      .field("cache_evictions",
             static_cast<std::int64_t>(reg.counter_value("pandora_cache_evictions_total")))
      .field("cache_pinned_slots", reg.gauge_value("pandora_cache_pinned_slots"));
  json.end_row();
}

void check_exact(const dyn::DynamicClustering& stream) {
  const exec::Executor reference(exec::default_backend());
  spatial::KdTree tree(stream.points(), 32);
  const graph::EdgeList rebuilt = spatial::euclidean_mst(reference, stream.points(), tree);
  if (!graph::is_spanning_tree(stream.emst(), stream.size()) ||
      std::abs(graph::total_weight(stream.emst()) - graph::total_weight(rebuilt)) >
          1e-9 * std::max(1.0, graph::total_weight(rebuilt))) {
    std::fprintf(stderr, "FATAL: maintained EMST diverged from the reference rebuild\n");
    std::exit(1);
  }
}

}  // namespace

int main() {
  bench::print_header("Dynamic updates: incremental repair vs from-scratch rebuild",
                      "ROADMAP north star (streaming corpora); De Man et al. 2025 workload");
  bench::JsonReport json("dynamic_updates");
  const exec::Executor executor(exec::default_backend());

  std::printf("%-13s | %9s | %42s | %7s\n", "scenario", "points", "median wall", "speedup");

  constexpr int kSamples = 7;

  // --- single-insert steady state ----------------------------------------
  {
    const index_t n = bench::scaled(50000);
    dyn::DynamicClustering stream = Pipeline::on(executor).dynamic();
    stream.insert(data::gaussian_blobs(n, 2, 16, 0.03, 0.1, 2024));
    const spatial::PointSet extra = data::uniform_points(kSamples + 2, 2, 77);
    index_t cursor = 0;
    // Warm: arena blocks, kd index, replay buffers.
    for (; cursor < 2; ++cursor) {
      const auto row = extra.point(cursor);
      stream.insert(std::span<const double>(row.data(), row.size()));
    }
    const bench::Measurement update = bench::measure(kSamples, [&] {
      const auto row = extra.point(cursor++);
      stream.insert(std::span<const double>(row.data(), row.size()));
    });
    const bench::Measurement rebuild =
        bench::measure(kSamples, [&] { (void)rebuild_once(stream.points()); });
    check_exact(stream);
    report("single-insert", stream.size(), update, rebuild, json);
  }

  // --- 1% churn batches ----------------------------------------------------
  {
    const index_t n = bench::scaled(50000);
    const index_t churn = std::max<index_t>(n / 100, 1);
    dyn::DynamicClustering stream = Pipeline::on(executor).dynamic();
    std::vector<index_t> live = stream.insert(data::gaussian_blobs(n, 2, 16, 0.03, 0.1, 4048));
    std::uint64_t round = 0;
    const auto churn_once = [&] {
      // Erase the oldest `churn` ids, insert as many fresh points.
      const std::vector<index_t> victims(live.begin(), live.begin() + churn);
      live.erase(live.begin(), live.begin() + churn);
      stream.erase(victims);
      const std::vector<index_t> fresh =
          stream.insert(data::uniform_points(churn, 2, 5000 + round++));
      live.insert(live.end(), fresh.begin(), fresh.end());
    };
    churn_once();  // warm
    const bench::Measurement update = bench::measure(kSamples, churn_once);
    const bench::Measurement rebuild =
        bench::measure(kSamples, [&] { (void)rebuild_once(stream.points()); });
    check_exact(stream);
    report("churn-1pct", stream.size(), update, rebuild, json);
  }

  std::printf(
      "\nExpected shape: single-insert update >= 3x faster than the cold rebuild\n"
      "(the CI self-relative gate).  Churn batches win by much less — the erase\n"
      "path rebuilds the kd index and pays one full Borůvka query round — and\n"
      "hover near the rebuild on a noisy single-core host (reported, not gated).\n");
  return 0;
}
