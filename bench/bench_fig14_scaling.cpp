// Figure 14: throughput as a function of the sample count, comparing the
// union-find baseline with parallel PANDORA on subsamples of a large dataset.
// The reproduced shape: the baseline peaks immediately and slowly decays;
// PANDORA's throughput *grows* with n until the parallel hardware saturates,
// overtaking the baseline at a modest crossover size.
//
// This bench re-runs the dendrogram many times per size, so it also reports
// the Executor workspace's steady-state behaviour: scratch allocations per
// iteration after the first call (expected: 0 — every buffer is recycled).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pandora/common/rng.hpp"
#include "pandora/pipeline.hpp"

using namespace pandora;

namespace {

spatial::PointSet subsample(const spatial::PointSet& points, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  spatial::PointSet out(points.dim(), n);
  for (index_t i = 0; i < n; ++i) {
    const auto src = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(points.size())));
    for (int d = 0; d < points.dim(); ++d) out.at(i, d) = points.at(src, d);
  }
  return out;
}

void run_series(const exec::Executor& executor, const std::string& dataset,
                bench::JsonReport& json) {
  const index_t full_n = bench::scaled(2000000);
  const spatial::PointSet full = data::make_dataset(dataset, full_n, 11);
  std::printf("\n--- %s (subsampled from %d points) ---\n", dataset.c_str(), full.size());
  std::printf("%10s %18s %18s %17s %14s %14s\n", "samples", "UnionFind [MP/s]",
              "Pandora-MT [MP/s]", "Replay [MP/s]", "warm allocs", "steady allocs");
  for (index_t n = 10000; n <= full_n; n *= 4) {
    const spatial::PointSet points = subsample(full, n, 5 + static_cast<std::uint64_t>(n));
    spatial::KdTree tree(points);
    const graph::EdgeList mst =
        Pipeline::on(executor).with_min_pts(2).build_mst(points, tree);

    // Cold construction comparison: the SortedEdges cache off, so every
    // repeat really sorts (comparable across PRs and algorithms).
    executor.set_artifact_caching(false);
    const auto baseline = Pipeline::on(executor).with_dendrogram_algorithm(
        hdbscan::DendrogramAlgorithm::union_find);
    const bench::Measurement m_uf =
        bench::measure(3, [&] { (void)baseline.build_dendrogram(mst, n); });
    const double t_uf = m_uf.best();

    const auto pandora_pipeline = Pipeline::on(executor);
    // Warm-up call: the workspace sizes itself for this n (counting misses),
    // then the timed repeats should run allocation-free out of the arena.
    executor.workspace().reset_stats();
    (void)pandora_pipeline.build_dendrogram(mst, n);
    const exec::Workspace::Stats warm = executor.workspace().stats();
    executor.workspace().reset_stats();
    const int repeats = 3;
    const bench::Measurement m_pandora =
        bench::measure(repeats, [&] { (void)pandora_pipeline.build_dendrogram(mst, n); });
    const double t_pandora = m_pandora.best();
    const exec::Workspace::Stats steady = executor.workspace().stats();

    // The repeated-identical-query scenario this bench frames: SortedEdges
    // cache on and output storage reused — the sort is replayed and the whole
    // run is allocation-free (the "steady allocs" column counts arena misses
    // of exactly these runs).
    executor.set_artifact_caching(true);
    dendrogram::Dendrogram reused;
    pandora_pipeline.build_dendrogram_into(mst, n, reused);  // warm cache + output
    executor.workspace().reset_stats();
    const bench::Measurement m_replay = bench::measure(
        repeats, [&] { pandora_pipeline.build_dendrogram_into(mst, n, reused); });
    const exec::Workspace::Stats replay_steady = executor.workspace().stats();

    std::printf("%10d %18.1f %18.1f %17.1f %14zu %14.1f\n", n,
                bench::mpoints_per_sec(n, t_uf), bench::mpoints_per_sec(n, t_pandora),
                bench::mpoints_per_sec(n, m_replay.best()), warm.misses,
                static_cast<double>(replay_steady.misses) / repeats);

    json.field("dataset", dataset)
        .field("n", n)
        .timing("union_find", m_uf)
        .timing("pandora", m_pandora)
        .timing("pandora_replay", m_replay)
        .field("warm_allocs", warm.misses)
        .field("steady_allocs_per_run",
               static_cast<double>(steady.misses) / repeats)
        .field("replay_steady_allocs_per_run",
               static_cast<double>(replay_steady.misses) / repeats);
    json.end_row();
  }
}

}  // namespace

int main() {
  bench::print_header("Throughput vs sample count (dendrogram construction)",
                      "Figure 14 (Hacc497M and Normal300M2 sampling curves)");
  exec::Executor executor(exec::default_backend());
  bench::JsonReport json("fig14");
  run_series(executor, "HaccProxy", json);
  run_series(executor, "Normal2D", json);
  std::printf(
      "\nExpected shape (paper): UnionFind flat/slowly decaying from the start;\n"
      "Pandora rising with n until saturation (~1e6 there), crossing UnionFind at\n"
      "moderate sizes (~3e4 there).  'steady allocs' should be 0: repeated queries\n"
      "on one Executor recycle every scratch buffer from its workspace arena.\n");
  return 0;
}
