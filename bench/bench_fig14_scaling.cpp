// Figure 14: throughput as a function of the sample count, comparing the
// union-find baseline with parallel PANDORA on subsamples of a large dataset.
// The reproduced shape: the baseline peaks immediately and slowly decays;
// PANDORA's throughput *grows* with n until the parallel hardware saturates,
// overtaking the baseline at a modest crossover size.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pandora/common/rng.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

using namespace pandora;

namespace {

spatial::PointSet subsample(const spatial::PointSet& points, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  spatial::PointSet out(points.dim(), n);
  for (index_t i = 0; i < n; ++i) {
    const auto src = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(points.size())));
    for (int d = 0; d < points.dim(); ++d) out.at(i, d) = points.at(src, d);
  }
  return out;
}

void run_series(const std::string& dataset) {
  const index_t full_n = bench::scaled(2000000);
  const spatial::PointSet full = data::make_dataset(dataset, full_n, 11);
  std::printf("\n--- %s (subsampled from %d points) ---\n", dataset.c_str(), full.size());
  std::printf("%10s %18s %18s\n", "samples", "UnionFind [MP/s]", "Pandora-MT [MP/s]");
  for (index_t n = 10000; n <= full_n; n *= 4) {
    const spatial::PointSet points = subsample(full, n, 5 + static_cast<std::uint64_t>(n));
    spatial::KdTree tree(points);
    const auto core = hdbscan::core_distances(exec::Space::parallel, points, tree, 2);
    const graph::EdgeList mst =
        spatial::mutual_reachability_mst(exec::Space::parallel, points, tree, core);

    const double t_uf = bench::best_of(3, [&] {
      (void)dendrogram::union_find_dendrogram(mst, n, exec::Space::parallel);
    });
    dendrogram::PandoraOptions options;
    options.space = exec::Space::parallel;
    const double t_pandora = bench::best_of(3, [&] {
      (void)dendrogram::pandora_dendrogram(mst, n, options);
    });
    std::printf("%10d %18.1f %18.1f\n", n, bench::mpoints_per_sec(n, t_uf),
                bench::mpoints_per_sec(n, t_pandora));
  }
}

}  // namespace

int main() {
  bench::print_header("Throughput vs sample count (dendrogram construction)",
                      "Figure 14 (Hacc497M and Normal300M2 sampling curves)");
  run_series("HaccProxy");
  run_series("Normal2D");
  std::printf(
      "\nExpected shape (paper): UnionFind flat/slowly decaying from the start;\n"
      "Pandora rising with n until saturation (~1e6 there), crossing UnionFind at\n"
      "moderate sizes (~3e4 there).\n");
  return 0;
}
