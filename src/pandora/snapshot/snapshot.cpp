#include "pandora/snapshot/snapshot.hpp"

#include <utility>

#include "pandora/common/expect.hpp"
#include "pandora/obs/metrics.hpp"

namespace pandora::snapshot {

namespace {

/// Epoch bundles currently alive — the writer's published snapshot plus
/// every epoch still pinned by a draining reader; a value stuck above 1
/// means readers are holding epochs back from reclamation.
obs::Gauge& live_epochs_metric() {
  static obs::Gauge& metric = obs::registry().gauge("pandora_snapshot_live_epochs");
  return metric;
}

obs::Counter& epochs_reclaimed_metric() {
  static obs::Counter& metric =
      obs::registry().counter("pandora_snapshot_epochs_reclaimed_total");
  return metric;
}

}  // namespace

/// Installs the reader context on a reader's executor for the duration of
/// one query: the serving cache (so every reader shares one artifact pool)
/// and the snapshot's pin group as cache owner (so everything the query
/// inserts is pinned until the snapshot retires).  The reader's tenant tag
/// is preserved — quota accounting composes with pinned reads.  Previous
/// state is restored on exit, so a reader executor can serve interleaved
/// snapshot and non-snapshot work.
class Snapshot::ReaderScope {
 public:
  ReaderScope(const exec::Executor& exec, const Snapshot& snapshot)
      : exec_(exec),
        saved_cache_(exec.shared_artifact_cache()),
        owner_guard_(exec, exec::ArtifactCache::Owner{snapshot.fingerprint(),
                                                      exec.cache_owner().tenant}) {
    if (snapshot.cache_ != nullptr) exec.use_shared_artifact_cache(snapshot.cache_.get());
  }
  ReaderScope(const ReaderScope&) = delete;
  ReaderScope& operator=(const ReaderScope&) = delete;
  ~ReaderScope() { exec_.use_shared_artifact_cache(saved_cache_); }

 private:
  const exec::Executor& exec_;
  exec::ArtifactCache* saved_cache_;
  exec::ScopedCacheOwner owner_guard_;
};

Snapshot::Snapshot(std::shared_ptr<exec::ArtifactCache> cache, dyn::ArtifactBundle bundle)
    : cache_(std::move(cache)), bundle_(std::move(bundle)) {
  PANDORA_EXPECT(bundle_.points != nullptr && bundle_.emst != nullptr &&
                     bundle_.sorted_edges != nullptr && bundle_.dendrogram != nullptr,
                 "Snapshot requires a fully captured ArtifactBundle");
  if (cache_ != nullptr) cache_->pin(bundle_.fingerprint);
  live_epochs_metric().add(1);
}

Snapshot::~Snapshot() {
  // The destructor is RCU-style reclamation itself: it runs when the last
  // reader of this epoch drains (or the writer republishes an unread one).
  live_epochs_metric().add(-1);
  epochs_reclaimed_metric().inc();
  if (cache_ != nullptr) {
    // Purge before unpin: the entries leave the cache while still counted
    // as pinned, and the group refcount drops once nothing references it.
    cache_->purge_group(bundle_.fingerprint);
    cache_->unpin(bundle_.fingerprint);
  }
}

std::shared_ptr<const spatial::KdTree> Snapshot::tree(const exec::Executor& exec) const {
  PANDORA_EXPECT(size() > 0, "snapshot holds no points");
  std::call_once(tree_once_, [&] {
    const ReaderScope scope(exec, *this);
    tree_ = spatial::kdtree_cached(exec, *bundle_.points, /*leaf_size=*/32,
                                   bundle_.fingerprint);
  });
  return tree_;
}

pandora::hdbscan::HdbscanResult Snapshot::hdbscan(
    const exec::Executor& exec, const pandora::hdbscan::HdbscanOptions& options) const {
  PANDORA_EXPECT(size() > 0, "snapshot holds no points");
  (void)tree(exec);  // concurrent first readers share one tree build
  const ReaderScope scope(exec, *this);
  return pandora::hdbscan::hdbscan(exec, *bundle_.points, options, bundle_.fingerprint);
}

pandora::hdbscan::MinClusterSizeSweep Snapshot::sweep_min_cluster_size(
    const exec::Executor& exec, std::span<const index_t> min_cluster_sizes,
    const pandora::hdbscan::HdbscanOptions& base) const {
  PANDORA_EXPECT(size() > 0, "snapshot holds no points");
  (void)tree(exec);
  const ReaderScope scope(exec, *this);
  return pandora::hdbscan::hdbscan_sweep_min_cluster_size(exec, *bundle_.points,
                                                          min_cluster_sizes, base,
                                                          bundle_.fingerprint);
}

std::vector<pandora::hdbscan::HdbscanResult> Snapshot::sweep_min_pts(
    const exec::Executor& exec, std::span<const int> min_pts_values,
    const pandora::hdbscan::HdbscanOptions& base) const {
  PANDORA_EXPECT(size() > 0, "snapshot holds no points");
  (void)tree(exec);
  const ReaderScope scope(exec, *this);
  return pandora::hdbscan::hdbscan_sweep_min_pts(exec, *bundle_.points, min_pts_values, base,
                                                 bundle_.fingerprint);
}

}  // namespace pandora::snapshot
