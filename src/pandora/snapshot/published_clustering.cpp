#include "pandora/snapshot/published_clustering.hpp"

#include <utility>

#include "pandora/common/timer.hpp"
#include "pandora/exec/failpoint.hpp"
#include "pandora/obs/metrics.hpp"

namespace pandora::snapshot {

namespace {

obs::Counter& publishes_metric() {
  static obs::Counter& metric = obs::registry().counter("pandora_snapshot_publishes_total");
  return metric;
}

obs::Histogram& publish_latency_metric() {
  static obs::Histogram& metric =
      obs::registry().histogram("pandora_snapshot_publish_seconds");
  return metric;
}

}  // namespace

PublishedClustering::PublishedClustering(const exec::Executor& writer, PublishedOptions options)
    : cache_(std::make_shared<exec::ArtifactCache>(options.cache_slots)),
      stream_(writer, options.dynamic) {
  publish();  // readers may acquire before the first insert (empty snapshot)
}

std::vector<index_t> PublishedClustering::insert(const spatial::PointSet& batch) {
  std::vector<index_t> ids = stream_.insert(batch);
  publish();
  return ids;
}

index_t PublishedClustering::insert(std::span<const double> coords) {
  const index_t id = stream_.insert(coords);
  publish();
  return id;
}

void PublishedClustering::erase(std::span<const index_t> ids) {
  stream_.erase(ids);
  publish();
}

void PublishedClustering::publish() {
  // Materialize off to the side: the deep copy and the group pin happen
  // before — and entirely outside — the pointer-swap critical section, so a
  // concurrent acquire() never waits on capture work.  A throw anywhere up
  // to the swap (both chaos seams below) leaves `current_` untouched:
  // readers keep being served the previous epoch, never a torn one.
  const exec::ScopedSpan span(stream_.executor(), "snapshot.publish");
  const Timer timer;
  PANDORA_FAILPOINT("snapshot.materialise");
  SnapshotPtr next = std::make_shared<const Snapshot>(cache_, stream_.capture_artifacts());
  PANDORA_FAILPOINT("snapshot.publish");
  {
    const std::lock_guard<std::mutex> lock(current_mutex_);
    current_ = std::move(next);
  }
  publishes_metric().inc();
  publish_latency_metric().observe(timer.seconds());
}

std::uint64_t PublishedClustering::recover() {
  const SnapshotPtr last = acquire();
  stream_.restore(last->bundle());
  publish();
  return last->epoch();
}

SnapshotPtr PublishedClustering::acquire() const {
  const std::lock_guard<std::mutex> lock(current_mutex_);
  return current_;
}

std::uint64_t PublishedClustering::published_epoch() const {
  const std::lock_guard<std::mutex> lock(current_mutex_);
  return current_->epoch();
}

}  // namespace pandora::snapshot
