#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/dyn/dynamic_clustering.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/snapshot/snapshot.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::snapshot {

struct PublishedOptions {
  /// Options of the owned `dyn::DynamicClustering` writer side.
  dyn::DynamicOptions dynamic;

  /// Nominal slot count of the serving cache shared by every reader of every
  /// snapshot of this stream.  The cache grows past it only while pinned
  /// snapshots need the room, and shrinks back as they retire — so the
  /// steady-state footprint is the nominal slots plus whatever the live
  /// epochs (at most 1 + max-in-flight-readers of them) have cached.
  std::size_t cache_slots = 64;
};

/// The front door of the serving tier: one writer, any number of readers,
/// and the guarantee that **writers never block readers**.
///
///   exec::Executor writer_exec;                      // the writer's executor
///   snapshot::PublishedClustering published(writer_exec);
///   published.insert(initial_points);                // mutate + publish
///
///   // any reader thread, with its own executor:
///   snapshot::SnapshotPtr snap = published.acquire();   // pin the epoch
///   auto clusters = snap->hdbscan(reader_exec, {.min_pts = 4});
///
/// **Read side.**  `acquire()` returns the current snapshot under a mutex
/// held only for the pointer copy (never while any clustering work runs), so
/// a reader waits nanoseconds at worst — and the snapshot it gets is
/// immutable, so the query itself takes no lock at all.  A reader keeps its
/// `SnapshotPtr` for as long as it wants a consistent epoch; dropping it is
/// the release.
///
/// **Write side.**  `insert` / `erase` apply the batch through the owned
/// `dyn::DynamicClustering` (exact incremental EMST repair + dendrogram
/// replay), then *materialize the successor snapshot off to the side* (deep
/// copies — readers' snapshots share nothing with the stream) and publish it
/// with a single pointer swap.  Readers mid-query keep their pinned epochs;
/// the retired snapshot — artifacts and pinned serving-cache entries — is
/// reclaimed when its last reader drains (RCU-style).  Memory cost: at most
/// `1 + max-in-flight-readers` epochs resident.
///
/// Thread-safety: one writer thread at a time (like `dyn::`); `acquire` /
/// `published_epoch` are safe from any thread concurrently with the writer.
/// The writer's executor must not be used by readers (give each reader its
/// own).
class PublishedClustering {
 public:
  explicit PublishedClustering(const exec::Executor& writer, PublishedOptions options = {});
  PublishedClustering(const PublishedClustering&) = delete;
  PublishedClustering& operator=(const PublishedClustering&) = delete;

  // --- writer side ----------------------------------------------------------

  /// Inserts a batch of points and publishes the successor snapshot; returns
  /// the stable ids (batch order).
  std::vector<index_t> insert(const spatial::PointSet& batch);

  /// Inserts one point and publishes; returns its stable id.
  index_t insert(std::span<const double> coords);

  /// Erases points by stable id and publishes.
  void erase(std::span<const index_t> ids);

  /// True when the writer stream failed mid-update and is refusing further
  /// work.  Readers are unaffected either way: the published snapshot
  /// predates the failed update and stays served.
  [[nodiscard]] bool poisoned() const { return !stream_.healthy(); }

  /// Writer recovery: rolls the stream back to the **last published**
  /// snapshot (the one readers are being served right now) and re-publishes
  /// it under a fresh epoch.  Unpublished mutations from the failed update
  /// are dropped — by construction the published bundle is the newest state
  /// that is provably consistent.  Returns the epoch that was restored.
  /// Safe to call on a healthy stream too (then it merely re-freezes the
  /// published state); the writer may resume insert/erase afterwards.
  std::uint64_t recover();

  // --- reader side ----------------------------------------------------------

  /// Pins and returns the current snapshot.  O(1), lock held only for the
  /// pointer copy; never blocks on writer work.
  [[nodiscard]] SnapshotPtr acquire() const;

  /// Epoch of the currently published snapshot.
  [[nodiscard]] std::uint64_t published_epoch() const;

  // --- introspection --------------------------------------------------------

  [[nodiscard]] const dyn::DynamicClustering& stream() const { return stream_; }
  [[nodiscard]] exec::ArtifactCache& serving_cache() const { return *cache_; }
  [[nodiscard]] const exec::Executor& writer_executor() const { return stream_.executor(); }

 private:
  /// Materializes a snapshot from the stream's current epoch and swaps it in.
  void publish();

  std::shared_ptr<exec::ArtifactCache> cache_;
  dyn::DynamicClustering stream_;
  /// Guards only the `current_` pointer: held for the copy in `acquire` and
  /// the swap in `publish`, never while clustering work runs.
  mutable std::mutex current_mutex_;
  SnapshotPtr current_;
};

}  // namespace pandora::snapshot
