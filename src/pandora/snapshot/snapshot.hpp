#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/dyn/dynamic_clustering.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

/// The epoch-published serving tier.
///
/// `snapshot::Snapshot` is one epoch of a stream frozen as an immutable,
/// refcounted unit: the points plus every maintained derived structure
/// (EMST, canonical sorted run, dendrogram), all consistent with one
/// `exec::epoch_fingerprint`.  Readers run full queries against it — HDBSCAN*,
/// `min_cluster_size` / mpts sweeps, `Pipeline::on_snapshot` — with complete
/// intra-query parallelism and never take a lock a writer holds: everything
/// a query reads is immutable, and everything it caches lands in the serving
/// cache under the snapshot's epoch key, pinned against eviction for the
/// snapshot's lifetime.
///
/// `snapshot::PublishedClustering` (published_clustering.hpp) is the front
/// door that owns the writer side and swaps the current-snapshot pointer.
namespace pandora::snapshot {

/// An immutable, epoch-consistent bundle of clustering artifacts.
///
/// Lifecycle (RCU-style): readers hold a `SnapshotPtr` (shared_ptr refcount
/// = the reader count); the publisher drops its reference when a successor
/// is published, so the snapshot — and with it the deep-copied artifacts and
/// the serving-cache entries of its pin group — is reclaimed exactly when
/// the last reader drains.  Construction pins the snapshot's cache group;
/// destruction purges it (epoch fingerprints never repeat, so the entries
/// are unreachable afterwards and must not squat in the LRU).
///
/// Thread-safety: all query methods are const and safe to call from many
/// reader threads concurrently, **each with its own Executor** (the usual
/// one-kernel-per-executor rule still applies per reader).
class Snapshot {
 public:
  /// Freezes `bundle` over the serving cache `cache` (may be nullptr: the
  /// snapshot then uses each reader's own cache, unpinned).  Normally called
  /// by `PublishedClustering::publish`, not user code.
  Snapshot(std::shared_ptr<exec::ArtifactCache> cache, dyn::ArtifactBundle bundle);
  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  [[nodiscard]] std::uint64_t epoch() const noexcept { return bundle_.epoch; }
  /// The epoch fingerprint every artifact of this snapshot is keyed on —
  /// also the snapshot's cache pin group.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return bundle_.fingerprint; }

  [[nodiscard]] const spatial::PointSet& points() const noexcept { return *bundle_.points; }
  [[nodiscard]] index_t size() const { return bundle_.points->size(); }
  [[nodiscard]] int dim() const { return bundle_.points->dim(); }
  [[nodiscard]] const graph::EdgeList& emst() const noexcept { return *bundle_.emst; }
  [[nodiscard]] const dendrogram::SortedEdges& sorted_edges() const noexcept {
    return *bundle_.sorted_edges;
  }
  /// The single-linkage dendrogram at this epoch (leaves are the stream's
  /// dense slots at capture time).
  [[nodiscard]] const dendrogram::Dendrogram& dendrogram() const noexcept {
    return *bundle_.dendrogram;
  }
  [[nodiscard]] dendrogram::ExpansionPolicy expansion() const noexcept {
    return bundle_.expansion;
  }

  /// The kd-tree over the snapshot's points, built lazily by the first
  /// reader that needs it (concurrent first readers block on one build
  /// rather than racing N redundant ones) and pinned in the serving cache
  /// for the snapshot's lifetime.
  [[nodiscard]] std::shared_ptr<const spatial::KdTree> tree(const exec::Executor& exec) const;

  /// Full HDBSCAN* against the pinned epoch.  Bit-identical to a cold
  /// `hdbscan::hdbscan(exec, snapshot.points(), options)` — the cache only
  /// skips recomputation, never changes results.  Repeated reader queries
  /// (any reader) replay the kd-tree, core distances and mutual-reachability
  /// EMST from the serving cache.
  [[nodiscard]] pandora::hdbscan::HdbscanResult hdbscan(
      const exec::Executor& exec, const pandora::hdbscan::HdbscanOptions& options = {}) const;

  /// `min_cluster_size` sweep at the pinned epoch (see
  /// hdbscan_sweep_min_cluster_size); the shared pipeline prefix keys on the
  /// epoch fingerprint, so concurrent readers sweeping the same snapshot
  /// share one kd-tree, one core-distance pass, one EMST.
  [[nodiscard]] pandora::hdbscan::MinClusterSizeSweep sweep_min_cluster_size(
      const exec::Executor& exec, std::span<const index_t> min_cluster_sizes,
      const pandora::hdbscan::HdbscanOptions& base = {}) const;

  /// mpts sweep at the pinned epoch (see hdbscan_sweep_min_pts).
  [[nodiscard]] std::vector<pandora::hdbscan::HdbscanResult> sweep_min_pts(
      const exec::Executor& exec, std::span<const int> min_pts_values,
      const pandora::hdbscan::HdbscanOptions& base = {}) const;

  /// The serving cache this snapshot pins (nullptr when standalone).
  [[nodiscard]] exec::ArtifactCache* serving_cache() const noexcept { return cache_.get(); }

  /// The frozen bundle itself — what `PublishedClustering::recover()` feeds
  /// back into `dyn::DynamicClustering::restore()` to roll a poisoned writer
  /// back to this epoch.
  [[nodiscard]] const dyn::ArtifactBundle& bundle() const noexcept { return bundle_; }

 private:
  class ReaderScope;

  std::shared_ptr<exec::ArtifactCache> cache_;
  dyn::ArtifactBundle bundle_;
  mutable std::once_flag tree_once_;
  mutable std::shared_ptr<const spatial::KdTree> tree_;
};

/// How readers hold a snapshot: the refcount is the reader pin.
using SnapshotPtr = std::shared_ptr<const Snapshot>;

}  // namespace pandora::snapshot
