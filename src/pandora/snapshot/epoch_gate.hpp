#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <utility>

namespace pandora::snapshot {

/// The reader/publisher exclusion primitive of the serving tier.
///
/// Readers enter shared sections (`read_section`) that may overlap freely;
/// a publisher runs its mutation under `publish`, which excludes every
/// reader section and bumps the epoch counter on completion.  This is the
/// strong half of the snapshot story: `snapshot::PublishedClustering` never
/// needs it on the query path (readers there pin immutable snapshots and the
/// writer publishes with a pointer swap), but the legacy
/// `serve::BatchExecutor::run_waves` path mutates shared state in place —
/// its updates now run through `publish`, so a query admitted concurrently
/// with a pending update can no longer observe a half-applied epoch: it
/// either drained before the update took the gate, or it starts after the
/// update released it.  Impossible by construction, not by caller
/// discipline.
class EpochGate {
 public:
  EpochGate() = default;
  EpochGate(const EpochGate&) = delete;
  EpochGate& operator=(const EpochGate&) = delete;

  /// A shared lock readers hold for the duration of one query batch.
  [[nodiscard]] std::shared_lock<std::shared_mutex> read_section() const {
    return std::shared_lock<std::shared_mutex>(mutex_);
  }

  /// Runs `mutate` exclusively (no reader section in flight, none admitted
  /// until it returns) and bumps the epoch.  The epoch bump happens even if
  /// `mutate` throws: a failed update may have partially mutated state, so
  /// anything keyed on the old epoch must not be trusted.
  template <class F>
  void publish(F&& mutate) {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    epoch_.fetch_add(1, std::memory_order_release);
    std::forward<F>(mutate)();
  }

  /// Completed-or-in-flight publish count (0 before the first publish).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  mutable std::shared_mutex mutex_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace pandora::snapshot
