#pragma once

#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::graph {

/// Compressed adjacency of an undirected graph: for vertex v, the incident
/// half-edges live in entries [offset[v], offset[v+1]).  Each entry records
/// the edge id and the opposite endpoint.
struct Adjacency {
  struct HalfEdge {
    index_t edge = kNone;      ///< index into the originating edge list
    index_t neighbor = kNone;  ///< opposite endpoint
  };

  std::vector<index_t> offset;   ///< size num_vertices + 1
  std::vector<HalfEdge> entries;  ///< size 2 * num_edges

  [[nodiscard]] std::span<const HalfEdge> incident(index_t v) const {
    return {entries.data() + offset[v], entries.data() + offset[v + 1]};
  }

  [[nodiscard]] index_t num_vertices() const {
    return static_cast<index_t>(offset.size()) - 1;
  }
};

/// Builds the adjacency structure of `edges` over `num_vertices` vertices.
[[nodiscard]] Adjacency build_adjacency(const EdgeList& edges, index_t num_vertices);

/// True iff `edges` over `num_vertices` vertices forms a single spanning tree
/// (connected, acyclic, |E| = |V| - 1, all endpoints in range, no self-loops).
[[nodiscard]] bool is_spanning_tree(const EdgeList& edges, index_t num_vertices);

/// Throws std::invalid_argument (with a description of the defect) unless
/// `edges` is a spanning tree with finite non-negative weights.  Public
/// dendrogram entry points call this when validation is requested.
void validate_tree(const EdgeList& edges, index_t num_vertices);

}  // namespace pandora::graph
