#pragma once

#include <vector>

#include "pandora/common/types.hpp"

namespace pandora::graph {

/// An undirected weighted edge.  Weights are the linkage distances (Euclidean
/// or mutual-reachability); the library requires them to be finite and
/// non-negative.
struct WeightedEdge {
  index_t u = kNone;
  index_t v = kNone;
  double weight = 0.0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

using EdgeList = std::vector<WeightedEdge>;

/// Total weight of an edge list (used to compare MSTs, which are unique as
/// edge sets only under total tie-ordering but always unique in weight).
[[nodiscard]] inline double total_weight(const EdgeList& edges) {
  double sum = 0;
  for (const auto& e : edges) sum += e.weight;
  return sum;
}

}  // namespace pandora::graph
