#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"

namespace pandora::graph {

/// Sequential disjoint-set structure with path halving.
///
/// Roots are canonical: unite always hooks the larger-id root below the
/// smaller-id root, so the representative of every component is its minimum
/// member id regardless of the order of operations.  That determinism is what
/// lets the test-suite compare components across algorithms and spaces.
class UnionFind {
 public:
  explicit UnionFind(index_t n);

  /// Representative (minimum id) of x's component.
  [[nodiscard]] index_t find(index_t x);

  /// Merge the components of a and b; returns true if they were distinct.
  bool unite(index_t a, index_t b);

  [[nodiscard]] index_t size() const { return static_cast<index_t>(parent_.size()); }

  /// Number of distinct components remaining.
  [[nodiscard]] index_t num_components();

 private:
  std::vector<index_t> parent_;
};

/// Non-owning lock-free disjoint-set view over caller-provided parent
/// storage, after the synchronisation-free GPU connected-components algorithm
/// of Jaiganesh & Burtscher (HPDC'18) that the paper uses for its contraction
/// kernels (Section 5): finds perform pointer jumping with opportunistic
/// grandparent compression, and unions hook the larger root under the smaller
/// root with a single CAS.  Parent pointers only ever decrease, which rules
/// out cycles and makes the final representatives (component minima)
/// identical to the sequential structure no matter how operations interleave.
///
/// The view form exists so allocation-free callers (the contraction loop) can
/// run union-find over a span leased from the Executor's Workspace; the
/// caller must initialise the storage to the identity (`parent[x] = x`, see
/// `reset_singletons`) before the first operation.
class ConcurrentUnionFindView {
 public:
  ConcurrentUnionFindView() = default;
  explicit ConcurrentUnionFindView(std::span<index_t> parent) : parent_(parent) {}

  /// Serially re-initialise every slot to a singleton.  Parallel callers can
  /// instead fill the span themselves (`parent[x] = x` per x).
  void reset_singletons() {
    for (index_t x = 0; x < size(); ++x) parent_[static_cast<std::size_t>(x)] = x;
  }

  /// Representative of x's component.  Safe to call concurrently with unite.
  index_t find(index_t x);

  /// Merge the components of a and b.  Safe to call concurrently.
  void unite(index_t a, index_t b);

  [[nodiscard]] index_t size() const { return static_cast<index_t>(parent_.size()); }

 private:
  std::span<index_t> parent_;
};

/// Owning variant of ConcurrentUnionFindView (convenience for callers without
/// an arena at hand).
class ConcurrentUnionFind {
 public:
  explicit ConcurrentUnionFind(index_t n);

  // Non-copyable/movable: the view aliases the owned storage, and a default
  // copy would keep pointing at (and mutating) the source object's array.
  ConcurrentUnionFind(const ConcurrentUnionFind&) = delete;
  ConcurrentUnionFind& operator=(const ConcurrentUnionFind&) = delete;

  /// Reset to n singleton sets (reusing storage).
  void reset(index_t n);

  /// Representative of x's component.  Safe to call concurrently with unite.
  index_t find(index_t x) { return view_.find(x); }

  /// Merge the components of a and b.  Safe to call concurrently.
  void unite(index_t a, index_t b) { view_.unite(a, b); }

  [[nodiscard]] index_t size() const { return static_cast<index_t>(parent_.size()); }

 private:
  std::vector<index_t> parent_;
  ConcurrentUnionFindView view_;
};

}  // namespace pandora::graph
