#pragma once

#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::graph {

/// Parallel Euler tour of a tree, with parallel list ranking.
///
/// This is the classic substrate for top-down dendrogram construction and
/// the alternative the paper evaluated for its contraction kernels
/// (Section 5): an Euler tour makes tree splitting and subtree queries O(1),
/// but *converting* an edge-list MST into a tour requires list ranking —
/// pointer jumping with O(n log n) work and log n dependent rounds — which
/// the paper found "expensive in practice, taking time comparable to the full
/// dendrogram construction".  The implementation exists to reproduce that
/// measurement (bench_ablation_expansion) and as a general tree utility.
///
/// Directed half-edge encoding: tree edge e yields half-edges 2e (u -> v)
/// and 2e+1 (v -> u).
struct EulerTour {
  index_t root = kNone;
  std::vector<index_t> rank;           ///< per half-edge: position in the tour [0, 2n)
  std::vector<index_t> parent_vertex;  ///< per vertex: parent under `root` (kNone at root)
  std::vector<index_t> parent_edge;    ///< per vertex: edge to the parent (kNone at root)
  std::vector<index_t> subtree_size;   ///< per vertex: vertices in its subtree

  [[nodiscard]] index_t num_vertices() const {
    return static_cast<index_t>(parent_vertex.size());
  }
};

/// Builds the Euler tour of `edges` (a spanning tree over `num_vertices`
/// vertices) rooted at `root`.  All steps are parallel under the executor;
/// the list ranking is pointer jumping (O(n log n) work by design — this
/// mirrors the GPU cost model the paper discusses, not the best PRAM
/// algorithm).
[[nodiscard]] EulerTour build_euler_tour(const exec::Executor& exec, const EdgeList& edges,
                                         index_t num_vertices, index_t root = 0);

/// Parallel list ranking by pointer jumping: given `next` (successor index or
/// kNone at the tail), returns for every element its distance to the tail.
[[nodiscard]] std::vector<index_t> list_rank(const exec::Executor& exec,
                                             const std::vector<index_t>& next);

}  // namespace pandora::graph
