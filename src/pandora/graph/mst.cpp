#include "pandora/graph/mst.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "pandora/common/expect.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/union_find.hpp"

namespace pandora::graph {

EdgeList kruskal_mst(const EdgeList& edges, index_t num_vertices) {
  PANDORA_EXPECT(num_vertices > 0, "graph must have at least one vertex");
  std::vector<index_t> order(edges.size());
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return edges[static_cast<std::size_t>(a)].weight < edges[static_cast<std::size_t>(b)].weight;
  });

  EdgeList mst;
  mst.reserve(static_cast<std::size_t>(num_vertices) - 1);
  UnionFind uf(num_vertices);
  for (index_t id : order) {
    const auto& e = edges[static_cast<std::size_t>(id)];
    if (uf.unite(e.u, e.v)) {
      mst.push_back(e);
      if (static_cast<index_t>(mst.size()) == num_vertices - 1) break;
    }
  }
  PANDORA_EXPECT(static_cast<index_t>(mst.size()) == num_vertices - 1,
                 "graph is not connected");
  return mst;
}

EdgeList boruvka_mst(const exec::Executor& exec, const EdgeList& edges,
                     index_t num_vertices) {
  PANDORA_EXPECT(num_vertices > 0, "graph must have at least one vertex");
  const size_type m = static_cast<size_type>(edges.size());
  constexpr std::uint64_t kInfWeight = std::numeric_limits<std::uint64_t>::max();
  // Sentinel for the atomic-min edge slots (kNone = -1 would win every min).
  constexpr index_t kUnsetEdge = std::numeric_limits<index_t>::max();

  ConcurrentUnionFind uf(num_vertices);
  // Per-component minimum outgoing edge, two-phase to get an exact
  // (weight, edge-id) lexicographic minimum without a 128-bit CAS:
  // phase 1 races on weight bits, phase 2 races on edge id among weight ties.
  std::vector<std::uint64_t> best_weight(static_cast<std::size_t>(num_vertices), kInfWeight);
  std::vector<index_t> best_edge(static_cast<std::size_t>(num_vertices), kUnsetEdge);

  std::vector<index_t> roots(static_cast<std::size_t>(num_vertices));
  std::iota(roots.begin(), roots.end(), index_t{0});

  EdgeList mst;
  mst.reserve(static_cast<std::size_t>(num_vertices) - 1);

  while (static_cast<index_t>(mst.size()) < num_vertices - 1) {
    PANDORA_EXPECT(roots.size() > 1, "graph is not connected");

    exec::parallel_for(exec, m, [&](size_type i) {
      const auto& e = edges[static_cast<std::size_t>(i)];
      const index_t ru = uf.find(e.u);
      const index_t rv = uf.find(e.v);
      if (ru == rv) return;
      const std::uint64_t wbits = exec::order_preserving_bits(e.weight);
      exec::atomic_fetch_min(best_weight[static_cast<std::size_t>(ru)], wbits);
      exec::atomic_fetch_min(best_weight[static_cast<std::size_t>(rv)], wbits);
    });
    exec::parallel_for(exec, m, [&](size_type i) {
      const auto& e = edges[static_cast<std::size_t>(i)];
      const index_t ru = uf.find(e.u);
      const index_t rv = uf.find(e.v);
      if (ru == rv) return;
      const std::uint64_t wbits = exec::order_preserving_bits(e.weight);
      const auto id = static_cast<index_t>(i);
      if (best_weight[static_cast<std::size_t>(ru)] == wbits)
        exec::atomic_fetch_min(best_edge[static_cast<std::size_t>(ru)], id);
      if (best_weight[static_cast<std::size_t>(rv)] == wbits)
        exec::atomic_fetch_min(best_edge[static_cast<std::size_t>(rv)], id);
    });

    // Hooking: each component adds its selected edge unless a previous union
    // this round already connected the two components (classic Borůvka
    // cycle-avoidance via the union-find itself).
    std::size_t before = mst.size();
    for (index_t r : roots) {
      const index_t picked = best_edge[static_cast<std::size_t>(r)];
      if (picked == kUnsetEdge) continue;
      const auto& e = edges[static_cast<std::size_t>(picked)];
      if (uf.find(e.u) != uf.find(e.v)) {
        uf.unite(e.u, e.v);
        mst.push_back(e);
      }
    }
    PANDORA_EXPECT(mst.size() > before, "graph is not connected");

    // Compact the live roots and reset their selection slots.
    std::vector<index_t> next_roots;
    next_roots.reserve(roots.size() / 2 + 1);
    for (index_t r : roots) {
      if (uf.find(r) == r) next_roots.push_back(r);
      best_weight[static_cast<std::size_t>(r)] = kInfWeight;
      best_edge[static_cast<std::size_t>(r)] = kUnsetEdge;
    }
    roots.swap(next_roots);
  }
  return mst;
}

}  // namespace pandora::graph
