#include "pandora/graph/union_find.hpp"

#include <numeric>

namespace pandora::graph {

UnionFind::UnionFind(index_t n) : parent_(static_cast<std::size_t>(n)) {
  std::iota(parent_.begin(), parent_.end(), index_t{0});
}

index_t UnionFind::find(index_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(index_t a, index_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (a > b) std::swap(a, b);
  parent_[b] = a;
  return true;
}

index_t UnionFind::num_components() {
  index_t count = 0;
  for (index_t i = 0; i < size(); ++i)
    if (find(i) == i) ++count;
  return count;
}

ConcurrentUnionFind::ConcurrentUnionFind(index_t n) { reset(n); }

void ConcurrentUnionFind::reset(index_t n) {
  parent_.resize(static_cast<std::size_t>(n));
  std::iota(parent_.begin(), parent_.end(), index_t{0});
  view_ = ConcurrentUnionFindView(parent_);
}

index_t ConcurrentUnionFindView::find(index_t x) {
  // Pointer jumping: parents only ever decrease, so this terminates even
  // while other threads hook roots.  Writing the grandparent back is a benign
  // race (all writers store values on the path to the same root).
  index_t p = std::atomic_ref<index_t>(parent_[x]).load(std::memory_order_relaxed);
  while (p != x) {
    index_t gp = std::atomic_ref<index_t>(parent_[p]).load(std::memory_order_relaxed);
    if (gp != p) std::atomic_ref<index_t>(parent_[x]).store(gp, std::memory_order_relaxed);
    x = p;
    p = gp;
  }
  return x;
}

void ConcurrentUnionFindView::unite(index_t a, index_t b) {
  while (true) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);  // a is the smaller id; b hooks under a
    index_t expected = b;
    if (std::atomic_ref<index_t>(parent_[b])
            .compare_exchange_strong(expected, a, std::memory_order_acq_rel)) {
      return;
    }
    // Lost the race: b gained a new parent; retry from the new roots.
  }
}

}  // namespace pandora::graph
