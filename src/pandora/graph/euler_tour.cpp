#include "pandora/graph/euler_tour.hpp"

#include <utility>

#include "pandora/common/expect.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/graph/tree.hpp"

namespace pandora::graph {

std::vector<index_t> list_rank(const exec::Executor& exec, const std::vector<index_t>& next) {
  const size_type n = static_cast<size_type>(next.size());
  std::vector<index_t> distance(next.size(), 0);
  std::vector<index_t> jump = next;
  std::vector<index_t> jump_buffer(next.size());
  std::vector<index_t> distance_buffer(next.size());

  exec::parallel_for(exec, n, [&](size_type i) {
    distance[static_cast<std::size_t>(i)] =
        jump[static_cast<std::size_t>(i)] == kNone ? 0 : 1;
  });
  // Pointer jumping: after round k every live pointer spans 2^k elements.
  // (This is the O(n log n)-work formulation used on GPUs; the sequential
  // alternative is a single O(n) walk, which is what makes the conversion
  // unattractive there — Section 5.)
  for (;;) {
    bool any_live = false;
    exec::parallel_for(exec, n, [&](size_type i) {
      const index_t j = jump[static_cast<std::size_t>(i)];
      if (j == kNone) {
        jump_buffer[static_cast<std::size_t>(i)] = kNone;
        distance_buffer[static_cast<std::size_t>(i)] =
            distance[static_cast<std::size_t>(i)];
        return;
      }
      distance_buffer[static_cast<std::size_t>(i)] =
          distance[static_cast<std::size_t>(i)] + distance[static_cast<std::size_t>(j)];
      jump_buffer[static_cast<std::size_t>(i)] = jump[static_cast<std::size_t>(j)];
    });
    jump.swap(jump_buffer);
    distance.swap(distance_buffer);
    // Termination check (a reduction, like everything else here).
    any_live = exec::parallel_reduce(
                   exec, n, size_type{0},
                   [&](size_type i) {
                     return jump[static_cast<std::size_t>(i)] == kNone ? size_type{0}
                                                                       : size_type{1};
                   },
                   [](size_type a, size_type b) { return a + b; }) > 0;
    if (!any_live) break;
  }
  return distance;
}

EulerTour build_euler_tour(const exec::Executor& exec, const EdgeList& edges,
                           index_t num_vertices, index_t root) {
  PANDORA_EXPECT(root >= 0 && root < num_vertices, "root out of range");
  const index_t n = static_cast<index_t>(edges.size());
  EulerTour tour;
  tour.root = root;
  tour.parent_vertex.assign(static_cast<std::size_t>(num_vertices), kNone);
  tour.parent_edge.assign(static_cast<std::size_t>(num_vertices), kNone);
  tour.subtree_size.assign(static_cast<std::size_t>(num_vertices), 1);
  tour.rank.assign(static_cast<std::size_t>(2) * static_cast<std::size_t>(n), 0);
  if (n == 0) return tour;

  const Adjacency adj = build_adjacency(edges, num_vertices);

  // Successor of half-edge h = (u -> v): the half-edge out of v that follows
  // (v -> u) in v's (cyclic) incidence order.  Positions of each half-edge in
  // its endpoint's incidence list:
  std::vector<index_t> slot_of(static_cast<std::size_t>(2) * static_cast<std::size_t>(n));
  exec::parallel_for(exec, num_vertices, [&](size_type v) {
    const auto incident = adj.incident(static_cast<index_t>(v));
    for (std::size_t k = 0; k < incident.size(); ++k) {
      const auto& half = incident[k];
      const auto& e = edges[static_cast<std::size_t>(half.edge)];
      // Half-edge *into* v: 2e if v == e.v (u->v), else 2e+1.
      const index_t into_v = e.v == static_cast<index_t>(v)
                                 ? 2 * half.edge
                                 : 2 * half.edge + 1;
      slot_of[static_cast<std::size_t>(into_v)] = static_cast<index_t>(k);
    }
  });

  std::vector<index_t> next(static_cast<std::size_t>(2) * static_cast<std::size_t>(n));
  exec::parallel_for(exec, static_cast<size_type>(2) * n, [&](size_type h) {
    const auto edge = static_cast<index_t>(h / 2);
    const bool forward = (h % 2) == 0;  // u -> v
    const auto& e = edges[static_cast<std::size_t>(edge)];
    const index_t head = forward ? e.v : e.u;  // the vertex this half-edge enters
    const auto incident = adj.incident(head);
    const index_t k = slot_of[static_cast<std::size_t>(h)];
    const auto& next_half = incident[(static_cast<std::size_t>(k) + 1) % incident.size()];
    // Leave `head` along the successor: 2e' if head == u', else 2e'+1.
    const auto& ne = edges[static_cast<std::size_t>(next_half.edge)];
    next[static_cast<std::size_t>(h)] =
        ne.u == head ? 2 * next_half.edge : 2 * next_half.edge + 1;
  });

  // Root the tour: break the cycle before the first half-edge out of `root`.
  const index_t first = [&] {
    const auto incident = adj.incident(root);
    const auto& half = incident[0];
    const auto& e = edges[static_cast<std::size_t>(half.edge)];
    return e.u == root ? 2 * half.edge : 2 * half.edge + 1;
  }();
  // The predecessor of `first` is the tail.
  index_t tail = kNone;
  {
    // Find it in parallel (the unique h with next[h] == first).
    std::vector<index_t> found(1, kNone);
    exec::parallel_for(exec, static_cast<size_type>(2) * n, [&](size_type h) {
      if (next[static_cast<std::size_t>(h)] == first)
        found[0] = static_cast<index_t>(h);  // unique writer
    });
    tail = found[0];
  }
  next[static_cast<std::size_t>(tail)] = kNone;

  // Ranks from the tail distances.
  const std::vector<index_t> to_tail = list_rank(exec, next);
  const index_t length = 2 * n;
  exec::parallel_for(exec, static_cast<size_type>(length), [&](size_type h) {
    tour.rank[static_cast<std::size_t>(h)] =
        length - 1 - to_tail[static_cast<std::size_t>(h)];
  });

  // Orientation: for edge e the direction ranked earlier descends the tree.
  exec::parallel_for(exec, static_cast<size_type>(n), [&](size_type e) {
    const auto fwd = static_cast<std::size_t>(2 * e);
    const auto bwd = fwd + 1;
    const auto& edge = edges[static_cast<std::size_t>(e)];
    const bool forward_down = tour.rank[fwd] < tour.rank[bwd];
    const index_t child = forward_down ? edge.v : edge.u;
    const index_t parent = forward_down ? edge.u : edge.v;
    tour.parent_vertex[static_cast<std::size_t>(child)] = parent;
    tour.parent_edge[static_cast<std::size_t>(child)] = static_cast<index_t>(e);
    // Subtree size from the enter/exit span: (exit - enter + 1) / 2 vertices.
    const index_t enter = forward_down ? tour.rank[fwd] : tour.rank[bwd];
    const index_t exit = forward_down ? tour.rank[bwd] : tour.rank[fwd];
    tour.subtree_size[static_cast<std::size_t>(child)] = (exit - enter + 1) / 2;
  });
  tour.subtree_size[static_cast<std::size_t>(root)] = num_vertices;
  return tour;
}

}  // namespace pandora::graph
