#pragma once

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"

/// Minimum spanning trees of explicit weighted graphs.
///
/// Single-linkage clustering of graph data (Section 2.1) starts from an MST
/// of the distance graph.  Kruskal is the sequential reference; Borůvka is
/// the data-parallel algorithm whose structure (rounds of per-component
/// minimum-edge selection + hooking) is what the paper's EMST substrate [39]
/// also uses.  Ties are broken by edge position, making the MST unique, so
/// both algorithms return the identical edge set.
namespace pandora::graph {

/// Kruskal's algorithm.  The graph must be connected.
[[nodiscard]] EdgeList kruskal_mst(const EdgeList& edges, index_t num_vertices);

/// Borůvka's algorithm, parallel over edges within each round.
/// The graph must be connected.
[[nodiscard]] EdgeList boruvka_mst(const exec::Executor& exec, const EdgeList& edges,
                                   index_t num_vertices);

}  // namespace pandora::graph
