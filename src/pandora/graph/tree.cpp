#include "pandora/graph/tree.hpp"

#include <cmath>

#include "pandora/common/expect.hpp"
#include "pandora/graph/union_find.hpp"

namespace pandora::graph {

Adjacency build_adjacency(const EdgeList& edges, index_t num_vertices) {
  Adjacency adj;
  adj.offset.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& e : edges) {
    ++adj.offset[static_cast<std::size_t>(e.u) + 1];
    ++adj.offset[static_cast<std::size_t>(e.v) + 1];
  }
  for (index_t v = 0; v < num_vertices; ++v)
    adj.offset[static_cast<std::size_t>(v) + 1] += adj.offset[v];
  adj.entries.resize(edges.size() * 2);
  std::vector<index_t> cursor(adj.offset.begin(), adj.offset.end() - 1);
  for (index_t e = 0; e < static_cast<index_t>(edges.size()); ++e) {
    const auto& edge = edges[static_cast<std::size_t>(e)];
    adj.entries[static_cast<std::size_t>(cursor[edge.u]++)] = {e, edge.v};
    adj.entries[static_cast<std::size_t>(cursor[edge.v]++)] = {e, edge.u};
  }
  return adj;
}

bool is_spanning_tree(const EdgeList& edges, index_t num_vertices) {
  if (num_vertices <= 0) return false;
  if (static_cast<index_t>(edges.size()) != num_vertices - 1) return false;
  UnionFind uf(num_vertices);
  for (const auto& e : edges) {
    if (e.u < 0 || e.u >= num_vertices || e.v < 0 || e.v >= num_vertices) return false;
    if (e.u == e.v) return false;
    if (!uf.unite(e.u, e.v)) return false;  // cycle
  }
  return true;  // |E| = |V|-1 and acyclic implies connected
}

void validate_tree(const EdgeList& edges, index_t num_vertices) {
  PANDORA_EXPECT(num_vertices > 0, "tree must have at least one vertex");
  PANDORA_EXPECT(static_cast<index_t>(edges.size()) == num_vertices - 1,
                 "a spanning tree over n vertices has exactly n-1 edges");
  UnionFind uf(num_vertices);
  for (const auto& e : edges) {
    PANDORA_EXPECT(e.u >= 0 && e.u < num_vertices && e.v >= 0 && e.v < num_vertices,
                   "edge endpoint out of range");
    PANDORA_EXPECT(e.u != e.v, "self-loop in tree");
    PANDORA_EXPECT(std::isfinite(e.weight) && e.weight >= 0.0,
                   "edge weights must be finite and non-negative");
    PANDORA_EXPECT(uf.unite(e.u, e.v), "cycle detected: input is not a tree");
  }
}

}  // namespace pandora::graph
