#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/snapshot/epoch_gate.hpp"
#include "pandora/snapshot/published_clustering.hpp"
#include "pandora/snapshot/snapshot.hpp"
#include "pandora/spatial/point_set.hpp"

/// Batched multi-query serving on one Executor.
///
/// A serving deployment of this library is sweep- and batch-shaped: many
/// parameter settings over one point set, many point sets over one machine
/// (cf. cuSLINK, ParChain).  Running such queries one at a time on a parallel
/// Executor wastes the machine twice — small queries cannot amortise the
/// fork/join of intra-query parallelism, and the queue serialises behind each
/// query's sequential tail.  The `BatchExecutor` divides one executor's
/// thread budget *across* queries instead:
///
///  * **small queries are packed per thread**: each runs serially on one of
///    N persistent slot executors, N slots running concurrently — query-level
///    parallelism with zero fork/join inside a query;
///  * **large queries keep intra-query parallelism**: they run one at a time
///    on the parent executor with its full thread budget (a large query
///    saturates the machine by itself).
///
/// Every slot owns its own `Workspace` arena, so the zero-steady-state-
/// allocation guarantee holds per slot: a warm batch of same-shaped queries
/// leases every scratch buffer from recycled blocks.  All slots share the
/// parent executor's `ArtifactCache` (thread-safe by its locking contract),
/// so artifacts computed by any query — sorted edges, kd-trees, core
/// distances, dendrograms — replay across the whole batch.
namespace pandora::serve {

/// One dendrogram query of a batch: build the dendrogram of `*mst`.
struct DendrogramQuery {
  const graph::EdgeList* mst = nullptr;
  index_t num_vertices = 0;
  dendrogram::PandoraOptions options = {};
};

/// One HDBSCAN* query of a batch: cluster `*points` under `options`.
struct HdbscanQuery {
  const spatial::PointSet* points = nullptr;
  hdbscan::HdbscanOptions options = {};
};

/// How one job of a batch ended (see BatchExecutor::run_jobs).
enum class JobOutcome : std::uint8_t {
  ok,         ///< ran to completion
  cancelled,  ///< started, then unwound with pandora::Cancelled (deadline,
              ///< batch budget, or the caller's token)
  shed,       ///< never started: rejected at admission by the QoS policy
  failed,     ///< started, then threw something other than Cancelled
};

/// Per-job outcome of a batch: what happened, the captured exception for
/// cancelled/failed jobs (nullptr for ok/shed), and the job's wall time
/// (0 for shed jobs — they never ran).
struct JobResult {
  JobOutcome outcome = JobOutcome::ok;
  std::exception_ptr error;
  double seconds = 0.0;
};

/// Admission control and load shedding for a batch (all knobs off by
/// default — a default QosPolicy admits everything and never cancels).
///
/// "Pressure" is the number of *other* jobs of the batch not yet settled at
/// the moment a job is picked up: with `pressure_threshold = 0`, a batch of
/// two jobs is already under pressure while both are pending, and the last
/// remaining job never is — so shedding drains with the queue, it does not
/// starve.
struct QosPolicy {
  /// Wall budget for the whole batch, measured from run_jobs entry (0 =
  /// unlimited).  Jobs still running when it expires unwind with
  /// `Cancelled`; jobs not yet started are shed.
  std::chrono::nanoseconds batch_budget{0};

  /// Default per-job deadline, measured from the job's own start (0 = none).
  /// A job's explicit `Job::deadline` takes precedence.
  std::chrono::nanoseconds job_deadline{0};

  /// Shed jobs whose `size_hint` exceeds this while the batch is under
  /// pressure (0 = never shed by size).  Large queries monopolise the
  /// parent executor; under load, dropping one large query frees the whole
  /// machine for many small ones.
  size_type shed_above = 0;

  /// Pending-job count above which the batch counts as "under pressure"
  /// (see the class comment on how pressure is measured).
  std::size_t pressure_threshold = 0;

  /// Learn the shedding decision from observed latencies instead of the
  /// static `shed_above` / `pressure_threshold` knobs.  The executor keeps
  /// a log2 latency histogram of completed jobs plus a running
  /// size-hint-to-seconds rate (both survive across batches); once
  /// `adaptive_min_samples` jobs have completed ok, a job picked up while
  /// more other jobs are pending than there are slots is shed when its
  /// predicted run time (size_hint x observed seconds-per-unit) exceeds
  /// `adaptive_headroom` x the rolling p99 of completed-job latency — i.e.
  /// both thresholds are derived online, none of the static knobs need
  /// tuning.  Composes with the static knobs: either can shed a job.
  bool adaptive = false;

  /// Headroom multiplier on the rolling p99 before a predicted-slow job is
  /// shed (> 1 sheds less eagerly).  Only meaningful with `adaptive`.
  double adaptive_headroom = 1.0;

  /// Completed-job samples required before adaptive shedding activates (a
  /// cold server admits everything while it learns).
  std::size_t adaptive_min_samples = 16;

  /// Under pressure, give up phase overlap so the small queries drain on
  /// the slots *before* the calling thread starts the large ones — large
  /// queries are deprioritised instead of shed.
  bool deprioritise_large_under_pressure = false;
};

struct BatchOptions {
  /// Queries whose size hint (edges for dendrogram queries, points for
  /// HDBSCAN queries) is at most this are "small" and are packed onto the
  /// serial slot executors; larger queries run with full intra-query
  /// parallelism.  The default is a few multiples of the parallel-for grain:
  /// below it, a query's OpenMP fork/join overhead outweighs what
  /// intra-query parallelism buys, so query-level packing wins.
  size_type small_query_threshold = 16 * exec::kParallelForGrain;

  /// Concurrent slots for small queries; 0 = the parent's thread budget.
  int num_slots = 0;

  /// Overlap the two scheduler phases: the calling thread starts draining
  /// the large queries on the parent executor while the slot workers are
  /// still pulling from the small queue, instead of waiting for the small
  /// phase to finish first.  On imbalanced batches this hides one phase
  /// behind the other entirely; the cost is transient thread
  /// oversubscription (the parent's OpenMP team plus the slot workers,
  /// bounded by 2x the budget).  Safe because large jobs mutate only the
  /// parent executor and small jobs only their slot; the shared
  /// ArtifactCache locks internally.
  bool overlap_phases = true;

  /// Per-tenant cap on shared-ArtifactCache slots (0 = unlimited).  Jobs
  /// carry a tenant tag (`Job::tenant`); with a cap set, a tenant at its cap
  /// displaces its own least-recently-used entry on insert, so one tenant's
  /// parameter sweep cannot evict another tenant's hot kd-tree.  Applied to
  /// the parent's cache at construction (see ArtifactCache::set_tenant_quota).
  std::size_t max_cache_slots_per_tenant = 0;

  /// Admission control / load shedding (off by default).
  QosPolicy qos;
};

class BatchExecutor {
 public:
  explicit BatchExecutor(const exec::Executor& parent, BatchOptions options = {});
  BatchExecutor(BatchExecutor&&) = default;
  BatchExecutor& operator=(BatchExecutor&&) = delete;

  /// A unit of batched work.  `run` receives the executor the scheduler
  /// assigned (a serial slot executor for small jobs, the parent for large
  /// ones) and must confine all mutation to that executor and to state no
  /// other job touches (e.g. its own output slot).
  struct Job {
    std::function<void(const exec::Executor&)> run;
    size_type size_hint = 0;
    /// Cache-quota accounting tag (0 = untagged); see
    /// BatchOptions::max_cache_slots_per_tenant.  Installed as the assigned
    /// executor's cache owner for the job's duration.
    std::uint64_t tenant = 0;
    /// Per-job deadline, measured from the job's start (0 = use the batch
    /// policy's `QosPolicy::job_deadline`, or none).
    std::chrono::nanoseconds deadline{0};
    /// Caller-owned cancellation token observed while the job runs (nullptr
    /// = none).  Must outlive the batch call.
    const exec::CancellationToken* cancellation = nullptr;
  };

  /// Runs every job to completion.  Small jobs execute concurrently: worker
  /// threads (one per slot) pull them from a shared queue, so slots stay
  /// busy regardless of how job costs vary.  Large jobs execute on the
  /// calling thread against the parent executor, one at a time —
  /// overlapping the small drain by default (BatchOptions::overlap_phases).
  /// If jobs threw (or were cancelled or shed), the first failure (in job
  /// order) is rethrown after every job has settled; the remaining jobs
  /// still ran.  Prefer `run_jobs` when per-job outcomes matter.
  void run(std::span<Job> jobs);

  /// Runs the batch under the configured `QosPolicy` and reports a
  /// structured outcome per job (index-aligned with `jobs`) instead of
  /// first-exception-wins: `ok` jobs completed, `cancelled` jobs unwound
  /// with `pandora::Cancelled` (their partial work discarded, their slot
  /// arena intact), `shed` jobs were rejected at admission — batch budget
  /// already spent, or oversized under pressure — and `failed` jobs threw.
  /// One poisoned / slow / oversized query can therefore never abort its
  /// batchmates *or* hide their results.  Never throws for job failures.
  [[nodiscard]] std::vector<JobResult> run_jobs(std::span<Job> jobs);

  /// A wave of a streaming workload: a batch of queries, then an optional
  /// exclusive update applied before the next wave.  The update runs on the
  /// calling thread against the parent executor after every query of the
  /// wave has settled and before any query of the next wave starts, so it
  /// may mutate state the queries read (e.g. a dyn::DynamicClustering whose
  /// dendrogram the queries condense) without further synchronisation.
  struct Wave {
    std::vector<Job> queries;
    std::function<void(const exec::Executor&)> update;  ///< may be empty
  };

  /// Runs waves in order: queries of wave i (concurrently, as `run`), then
  /// wave i's update (exclusively).  Query exceptions are isolated per
  /// wave: the wave's update and the remaining waves still run, and the
  /// first query exception (in wave order) is rethrown after the final
  /// wave.  An update exception aborts the remaining waves (the stream
  /// state is no longer trustworthy) and propagates immediately — it
  /// supersedes any pending query exception, which is then not reported.
  ///
  /// Updates run through the executor's `snapshot::EpochGate`: every `run`
  /// (from any thread) holds the gate's shared section, every wave update
  /// its exclusive section — so a query batch admitted concurrently with a
  /// pending update can never observe a half-applied epoch, by construction
  /// rather than by caller sequencing.  This is the compatibility path; new
  /// code should prefer the snapshot-backed overload below, where updates
  /// do not block queries at all.
  void run_waves(std::span<Wave> waves);

  /// A wave of the snapshot-backed streaming workload: queries against
  /// pinned snapshots of `published`, plus an optional update that runs
  /// **concurrently with the queries** on a dedicated writer thread.
  struct SnapshotJob {
    /// Receives the assigned executor and the snapshot pinned when the job
    /// was admitted (dispatched to a worker) — queries of one wave may
    /// observe different epochs, each of them consistent.
    std::function<void(const exec::Executor&, const snapshot::Snapshot&)> run;
    size_type size_hint = 0;
    std::uint64_t tenant = 0;
  };
  struct SnapshotWave {
    std::vector<SnapshotJob> queries;
    /// Applies mutations through the front door (insert/erase publish
    /// successor snapshots); may be empty.  Runs on its own thread against
    /// the PublishedClustering's writer executor.
    std::function<void(snapshot::PublishedClustering&)> update;
  };

  /// The snapshot-backed wave driver: wave i's queries run batched (as
  /// `run`) while wave i's update mutates and publishes concurrently —
  /// writers never block readers, because every query reads the immutable
  /// snapshot it acquired at admission.  The next wave starts after both
  /// settle.  Exception semantics match `run_waves(span<Wave>)`.
  ///
  /// The PublishedClustering's writer executor must be distinct from this
  /// batch's parent executor (large jobs run on the parent concurrently
  /// with the update; an Executor is not thread-safe).
  void run_waves(snapshot::PublishedClustering& published, std::span<SnapshotWave> waves);

  /// Batched dendrogram construction; results are index-aligned with
  /// `queries`.  `build_dendrograms_into` reuses the storage of `out`
  /// (index-aligned, resized to the query count): a second identical batch
  /// on warm slots performs no steady-state arena allocation.
  [[nodiscard]] std::vector<dendrogram::Dendrogram> build_dendrograms(
      std::span<const DendrogramQuery> queries);
  void build_dendrograms_into(std::span<const DendrogramQuery> queries,
                              std::vector<dendrogram::Dendrogram>& out);

  /// Batched HDBSCAN*; results are index-aligned with `queries`.
  [[nodiscard]] std::vector<hdbscan::HdbscanResult> run_hdbscan(
      std::span<const HdbscanQuery> queries);

  [[nodiscard]] const exec::Executor& parent() const noexcept { return *parent_; }
  [[nodiscard]] int num_slots() const noexcept { return static_cast<int>(slots_.size()); }
  /// Slot executors, exposed so tests and benches can inspect per-slot
  /// workspace statistics (the per-slot steady-state guarantee).
  [[nodiscard]] const exec::Executor& slot(int i) const { return *slots_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const BatchOptions& options() const noexcept { return options_; }

 private:
  /// Shared synchronisation state, heap-held so the executor stays movable:
  /// `batch_mutex` serialises whole batches on the slots (two threads may
  /// submit `run` concurrently; the slots are single-occupancy), and
  /// `epoch_gate` orders legacy wave updates against query batches.
  struct GateState {
    std::mutex batch_mutex;
    snapshot::EpochGate epoch_gate;
  };

  /// Rolling latency model behind `QosPolicy::adaptive`, heap-held like
  /// GateState so the executor stays movable.  Completing ok jobs write it
  /// (relaxed atomics, from any worker); admission reads it.
  struct AdaptiveState {
    obs::Histogram latency;                    ///< completed-job run time
    std::atomic<std::uint64_t> total_size{0};  ///< sum of completed size hints
    std::atomic<std::uint64_t> total_ns{0};    ///< sum of completed run time
  };

  const exec::Executor* parent_;
  BatchOptions options_;
  /// Persistent serial executors, one per slot: their Workspace arenas stay
  /// warm across batches.  unique_ptr keeps them address-stable.
  std::vector<std::unique_ptr<exec::Executor>> slots_;
  std::unique_ptr<GateState> gate_;
  std::unique_ptr<AdaptiveState> adaptive_;
};

}  // namespace pandora::serve
