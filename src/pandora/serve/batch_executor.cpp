#include "pandora/serve/batch_executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "pandora/common/expect.hpp"
#include "pandora/common/timer.hpp"
#include "pandora/exec/cancellation.hpp"
#include "pandora/obs/metrics.hpp"

namespace pandora::serve {

namespace {

/// Per-outcome registry handles (see pandora/obs/metrics.hpp for the
/// handle-caching idiom): one counter and, for jobs that actually ran, one
/// run-time histogram per JobOutcome, plus the queue-wait histogram.
obs::Counter& jobs_metric(JobOutcome outcome) {
  static obs::Counter& ok = obs::registry().counter("pandora_serve_jobs_total{outcome=\"ok\"}");
  static obs::Counter& cancelled =
      obs::registry().counter("pandora_serve_jobs_total{outcome=\"cancelled\"}");
  static obs::Counter& shed =
      obs::registry().counter("pandora_serve_jobs_total{outcome=\"shed\"}");
  static obs::Counter& failed =
      obs::registry().counter("pandora_serve_jobs_total{outcome=\"failed\"}");
  switch (outcome) {
    case JobOutcome::ok: return ok;
    case JobOutcome::cancelled: return cancelled;
    case JobOutcome::shed: return shed;
    case JobOutcome::failed: return failed;
  }
  return failed;
}

obs::Histogram& run_metric(JobOutcome outcome) {
  static obs::Histogram& ok =
      obs::registry().histogram("pandora_serve_job_run_seconds{outcome=\"ok\"}");
  static obs::Histogram& cancelled =
      obs::registry().histogram("pandora_serve_job_run_seconds{outcome=\"cancelled\"}");
  static obs::Histogram& failed =
      obs::registry().histogram("pandora_serve_job_run_seconds{outcome=\"failed\"}");
  switch (outcome) {
    case JobOutcome::cancelled: return cancelled;
    case JobOutcome::failed: return failed;
    default: return ok;
  }
}

obs::Histogram& wait_metric() {
  static obs::Histogram& wait = obs::registry().histogram("pandora_serve_job_wait_seconds");
  return wait;
}

}  // namespace

BatchExecutor::BatchExecutor(const exec::Executor& parent, BatchOptions options)
    : parent_(&parent),
      options_(options),
      gate_(std::make_unique<GateState>()),
      adaptive_(std::make_unique<AdaptiveState>()) {
  int slots = options_.num_slots > 0 ? options_.num_slots : parent.num_threads();
  slots = std::max(slots, 1);
  slots_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    auto slot = std::make_unique<exec::Executor>(exec::serial_backend());
    // All slots share the parent's artifact pool (thread-safe by the
    // ArtifactCache locking contract); each keeps its own Workspace arena.
    slot->use_shared_artifact_cache(&parent.artifact_cache());
    slots_.push_back(std::move(slot));
  }
  if (options_.max_cache_slots_per_tenant > 0)
    parent.artifact_cache().set_tenant_quota(options_.max_cache_slots_per_tenant);
}

std::vector<JobResult> BatchExecutor::run_jobs(std::span<Job> jobs) {
  // One batch at a time on these slots (they are single-occupancy), inside
  // the epoch gate's shared section: a legacy wave update (exclusive
  // section) either finished before this batch was admitted or waits until
  // it drains — a batch can never observe a half-applied epoch.
  const std::lock_guard<std::mutex> batch_lock(gate_->batch_mutex);
  const auto read_section = gate_->epoch_gate.read_section();

  // Policy toggles on the parent propagate to the slots at batch start (the
  // parent may have flipped caching or the sort algorithm since last run).
  for (const auto& slot : slots_) {
    slot->set_artifact_caching(parent_->artifact_caching());
    slot->set_edge_sort_algorithm(parent_->edge_sort_algorithm());
    // Tracing enabled on the parent covers the whole batch: slot workers
    // record into the same (thread-safe) recorder, each on its own ring.
    slot->set_trace_recorder(parent_->trace_recorder());
  }

  const QosPolicy& qos = options_.qos;
  exec::CancellationToken batch_token;
  const bool has_batch_budget = qos.batch_budget.count() > 0;
  if (has_batch_budget)
    batch_token.set_deadline(exec::CancellationToken::clock::now() + qos.batch_budget);

  std::vector<std::size_t> small, large;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    (jobs[i].size_hint <= options_.small_query_threshold ? small : large).push_back(i);
  }

  // Outcomes are captured per job and the batch always settles whole: one
  // poisoned / slow / oversized query can never abort its batchmates.
  std::vector<JobResult> results(jobs.size());
  std::atomic<std::size_t> unfinished{jobs.size()};
  const Timer batch_timer;  // queue wait = run_jobs entry -> job pickup

  // Runs (or sheds) one job on the executor the scheduler assigned.
  auto run_one = [&](std::size_t j, const exec::Executor& exec) {
    JobResult& result = results[j];
    wait_metric().observe(batch_timer.seconds());
    // Admission: a spent batch budget sheds everything not yet started, and
    // under pressure (other jobs still pending beyond the threshold) jobs
    // over the size cutoff are shed rather than run.
    const std::size_t others_pending = unfinished.load(std::memory_order_relaxed) - 1;
    const bool budget_spent = has_batch_budget && batch_token.cancelled();
    const bool oversized = qos.shed_above > 0 && jobs[j].size_hint > qos.shed_above &&
                           others_pending > qos.pressure_threshold;
    // Adaptive admission (QosPolicy::adaptive): both thresholds derived
    // online — "under pressure" means more other jobs pending than slots to
    // absorb them, "oversized" means the job's predicted run time (size hint
    // x the observed seconds-per-size-unit rate) exceeds the rolling p99 of
    // completed-job latency (x headroom).  Until enough samples accumulate
    // the model abstains and everything is admitted.
    bool predicted_slow = false;
    if (qos.adaptive && !budget_spent && !oversized &&
        others_pending > static_cast<std::size_t>(num_slots())) {
      const AdaptiveState& model = *adaptive_;
      const std::uint64_t total_ns = model.total_ns.load(std::memory_order_relaxed);
      const std::uint64_t total_size = model.total_size.load(std::memory_order_relaxed);
      if (model.latency.count() >= qos.adaptive_min_samples && total_ns > 0 && total_size > 0) {
        const double seconds_per_unit =
            1e-9 * static_cast<double>(total_ns) / static_cast<double>(total_size);
        const double predicted =
            static_cast<double>(std::max<size_type>(jobs[j].size_hint, 1)) * seconds_per_unit;
        predicted_slow = predicted > qos.adaptive_headroom * model.latency.quantile(0.99);
      }
    }
    if (budget_spent || oversized || predicted_slow) {
      result.outcome = JobOutcome::shed;
      jobs_metric(JobOutcome::shed).inc();
      unfinished.fetch_sub(1, std::memory_order_relaxed);
      return;
    }

    // Per-job token: own deadline (job's, else the policy default), chained
    // to the batch budget and the caller's token.  Stack-allocated — the
    // scope guard uninstalls it before it dies.
    exec::CancellationToken job_token;
    const std::chrono::nanoseconds deadline =
        jobs[j].deadline.count() > 0 ? jobs[j].deadline : qos.job_deadline;
    bool cancellable = false;
    if (deadline.count() > 0) {
      job_token.set_deadline(exec::CancellationToken::clock::now() + deadline);
      cancellable = true;
    }
    if (has_batch_budget) {
      job_token.add_parent(&batch_token);
      cancellable = true;
    }
    if (jobs[j].cancellation != nullptr) {
      job_token.add_parent(jobs[j].cancellation);
      cancellable = true;
    }

    Timer timer;
    try {
      // The job's tenant tag governs cache-quota accounting for every
      // artifact the job inserts.  The job-level span wraps the whole run —
      // phases and run_chunks launches nest inside it — and still records
      // when the job unwinds with an exception.
      const exec::ScopedSpan span(exec, "serve.job");
      const exec::ScopedCacheOwner owner(exec, exec::ArtifactCache::Owner{0, jobs[j].tenant});
      const exec::ScopedCancellation scope(exec, cancellable ? &job_token : nullptr);
      jobs[j].run(exec);
      result.outcome = JobOutcome::ok;
    } catch (const Cancelled&) {
      result.outcome = JobOutcome::cancelled;
      result.error = std::current_exception();
    } catch (...) {
      result.outcome = JobOutcome::failed;
      result.error = std::current_exception();
    }
    result.seconds = timer.seconds();
    jobs_metric(result.outcome).inc();
    run_metric(result.outcome).observe(result.seconds);
    if (result.outcome == JobOutcome::ok) {
      adaptive_->latency.observe(result.seconds);
      adaptive_->total_size.fetch_add(
          static_cast<std::uint64_t>(std::max<size_type>(jobs[j].size_hint, 1)),
          std::memory_order_relaxed);
      adaptive_->total_ns.fetch_add(static_cast<std::uint64_t>(result.seconds * 1e9),
                                    std::memory_order_relaxed);
    }
    unfinished.fetch_sub(1, std::memory_order_relaxed);
  };

  // Small queries packed per thread.  One worker per slot; workers pull
  // from a shared atomic cursor, so uneven job costs balance dynamically
  // instead of by a static split.
  std::atomic<std::size_t> cursor{0};
  auto drain = [&](int worker) {
    const exec::Executor& slot_exec = *slots_[static_cast<std::size_t>(worker)];
    while (true) {
      const std::size_t next = cursor.fetch_add(1, std::memory_order_relaxed);
      if (next >= small.size()) return;
      run_one(small[next], slot_exec);
    }
  };
  // Large queries one at a time on the calling thread with full intra-query
  // parallelism against the parent executor.
  auto drain_large = [&] {
    for (const std::size_t j : large) run_one(j, *parent_);
  };

  // With overlap (the default) the calling thread drains the large queue
  // while the slot workers drain the small one, so neither phase waits for
  // the other; large jobs mutate only the parent executor, small jobs only
  // their slot, and the shared ArtifactCache locks internally.  Under
  // pressure, the deprioritise knob turns overlap off for this batch so the
  // small queries drain first.  Without overlap — or when one of the queues
  // is empty — the phases run in sequence, and a small-only batch keeps the
  // old single-worker shortcut (no thread spawn when one worker suffices).
  const bool deprioritise = qos.deprioritise_large_under_pressure &&
                            jobs.size() > qos.pressure_threshold + 1;
  const int workers = std::min<int>(num_slots(), static_cast<int>(small.size()));
  const bool overlapped =
      options_.overlap_phases && !deprioritise && !small.empty() && !large.empty();
  if (overlapped || workers > 1) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(drain, w);
    if (overlapped) drain_large();
    for (std::thread& t : pool) t.join();
    if (!overlapped) drain_large();
  } else {
    if (workers == 1) drain(0);
    drain_large();
  }

  return results;
}

void BatchExecutor::run(std::span<Job> jobs) {
  const std::vector<JobResult> results = run_jobs(jobs);
  // First failure in job order wins; a shed job (no exception object to
  // rethrow) surfaces as Cancelled so legacy callers see one error family
  // for "the server gave up on this query".
  for (const JobResult& result : results) {
    if (result.outcome == JobOutcome::ok) continue;
    if (result.error != nullptr) std::rethrow_exception(result.error);
    throw Cancelled("pandora: query shed by QoS policy under load");
  }
}

void BatchExecutor::run_waves(std::span<Wave> waves) {
  // Query exceptions are isolated per wave: the wave's update and the
  // remaining waves still run, and the first query exception is rethrown
  // after the final wave.  An update exception propagates immediately (the
  // stream state is no longer trustworthy for the waves that follow) and
  // supersedes a pending query exception — the caller learns about the
  // failure that invalidates everything downstream, not the one that was
  // already contained to its wave.
  std::exception_ptr first_query_error;
  for (Wave& wave : waves) {
    try {
      run(wave.queries);
    } catch (...) {
      if (first_query_error == nullptr) first_query_error = std::current_exception();
    }
    // Exclusive update through the epoch gate: every query above has
    // settled (run joins its workers and released the shared section), no
    // query batch — from this thread or any other — can be admitted until
    // the gate is released, and the epoch counter records the publish.
    if (wave.update) {
      gate_->epoch_gate.publish([&] { wave.update(*parent_); });
    }
  }
  if (first_query_error != nullptr) std::rethrow_exception(first_query_error);
}

void BatchExecutor::run_waves(snapshot::PublishedClustering& published,
                              std::span<SnapshotWave> waves) {
  std::exception_ptr first_query_error;
  for (SnapshotWave& wave : waves) {
    std::vector<Job> jobs;
    jobs.reserve(wave.queries.size());
    for (SnapshotJob& query : wave.queries) {
      PANDORA_EXPECT(query.run != nullptr, "SnapshotJob::run must be set");
      jobs.push_back(Job{
          [&published, &query](const exec::Executor& exec) {
            // Pin at admission: the snapshot current when the job starts.
            // Immutable from here on — the concurrent writer only publishes
            // successors, never touches what this query reads.
            const snapshot::SnapshotPtr snap = published.acquire();
            query.run(exec, *snap);
          },
          query.size_hint,
          query.tenant,
      });
    }

    // The wave's update runs concurrently with its queries: writers never
    // block readers.  Its failure aborts the remaining waves (matching the
    // legacy semantics), but the queries of this wave still settle first.
    std::exception_ptr update_error;
    std::thread writer;
    if (wave.update) {
      writer = std::thread([&] {
        try {
          wave.update(published);
        } catch (...) {
          update_error = std::current_exception();
        }
      });
    }
    try {
      run(jobs);
    } catch (...) {
      if (first_query_error == nullptr) first_query_error = std::current_exception();
    }
    if (writer.joinable()) writer.join();
    if (update_error != nullptr) std::rethrow_exception(update_error);
  }
  if (first_query_error != nullptr) std::rethrow_exception(first_query_error);
}

void BatchExecutor::build_dendrograms_into(std::span<const DendrogramQuery> queries,
                                           std::vector<dendrogram::Dendrogram>& out) {
  out.resize(queries.size());
  std::vector<Job> jobs;
  jobs.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const DendrogramQuery& query = queries[i];
    PANDORA_EXPECT(query.mst != nullptr, "DendrogramQuery::mst must be set");
    jobs.push_back(Job{
        [&query, &slot = out[i]](const exec::Executor& exec) {
          dendrogram::pandora_dendrogram_into(exec, *query.mst, query.num_vertices,
                                              query.options, slot);
        },
        static_cast<size_type>(query.mst->size()),
    });
  }
  run(jobs);
}

std::vector<dendrogram::Dendrogram> BatchExecutor::build_dendrograms(
    std::span<const DendrogramQuery> queries) {
  std::vector<dendrogram::Dendrogram> results;
  build_dendrograms_into(queries, results);
  return results;
}

std::vector<hdbscan::HdbscanResult> BatchExecutor::run_hdbscan(
    std::span<const HdbscanQuery> queries) {
  std::vector<hdbscan::HdbscanResult> results(queries.size());
  std::vector<Job> jobs;
  jobs.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const HdbscanQuery& query = queries[i];
    PANDORA_EXPECT(query.points != nullptr, "HdbscanQuery::points must be set");
    jobs.push_back(Job{
        [&query, &slot = results[i]](const exec::Executor& exec) {
          slot = hdbscan::hdbscan(exec, *query.points, query.options);
        },
        static_cast<size_type>(query.points->size()),
    });
  }
  run(jobs);
  return results;
}

}  // namespace pandora::serve
