#include "pandora/obs/trace.hpp"

#include <cstdio>
#include <cstring>

namespace pandora::obs {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// One-entry per-thread cache mapping the last-used recorder to this
/// thread's ring.  Keyed by the recorder's process-unique id (not its
/// address) so a recorder reallocated at a stale address can never alias a
/// dead ring pointer.
struct ThreadCache {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local ThreadCache t_ring_cache;

}  // namespace

TraceRecorder::TraceRecorder(TraceOptions options)
    : id_(next_recorder_id()), epoch_(clock::now()), options_(options) {
  rings_.resize(options_.max_threads > 0 ? options_.max_threads : 1);
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Ring* TraceRecorder::claim_ring() const noexcept {
  const std::thread::id self = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(claim_mutex_);
  Ring* free_slot = nullptr;
  for (Ring& ring : rings_) {
    if (ring.claimed && ring.owner == self) {
      t_ring_cache = {id_, &ring};
      return &ring;
    }
    if (!ring.claimed && free_slot == nullptr) free_slot = &ring;
  }
  if (free_slot == nullptr) return nullptr;  // every slot taken: drop
  free_slot->claimed = true;
  free_slot->owner = self;
  free_slot->events.resize(options_.events_per_thread > 0 ? options_.events_per_thread : 1);
  t_ring_cache = {id_, free_slot};
  return free_slot;
}

void TraceRecorder::record(std::string_view name, std::uint64_t start_ns,
                           std::uint64_t end_ns) noexcept {
  Ring* ring = t_ring_cache.recorder_id == id_ ? static_cast<Ring*>(t_ring_cache.ring)
                                               : claim_ring();
  if (ring == nullptr) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& event = ring->events[ring->next];
  event.start_ns = start_ns;
  event.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  const std::size_t len = name.size() < sizeof(event.name) - 1 ? name.size()
                                                               : sizeof(event.name) - 1;
  std::memcpy(event.name, name.data(), len);
  event.name[len] = '\0';
  ring->next = (ring->next + 1) % ring->events.size();
  ++ring->total;
}

std::size_t TraceRecorder::events_recorded() const {
  const std::lock_guard<std::mutex> lock(claim_mutex_);
  std::size_t retained = 0;
  for (const Ring& ring : rings_) {
    if (!ring.claimed) continue;
    retained += ring.total < ring.events.size() ? static_cast<std::size_t>(ring.total)
                                                : ring.events.size();
  }
  return retained;
}

std::uint64_t TraceRecorder::events_dropped() const {
  const std::lock_guard<std::mutex> lock(claim_mutex_);
  std::uint64_t dropped = rejected_.load(std::memory_order_relaxed);
  for (const Ring& ring : rings_) {
    if (ring.claimed && ring.total > ring.events.size()) {
      dropped += ring.total - ring.events.size();
    }
  }
  return dropped;
}

std::string TraceRecorder::chrome_trace_json() const {
  const std::lock_guard<std::mutex> lock(claim_mutex_);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  int tid = 0;
  for (const Ring& ring : rings_) {
    ++tid;
    if (!ring.claimed || ring.total == 0) continue;
    const std::size_t retained = ring.total < ring.events.size()
                                     ? static_cast<std::size_t>(ring.total)
                                     : ring.events.size();
    // Oldest-first: with a wrapped ring, `next` points at the oldest event.
    const std::size_t begin = ring.total < ring.events.size() ? 0 : ring.next;
    for (std::size_t i = 0; i < retained; ++i) {
      const Event& event = ring.events[(begin + i) % ring.events.size()];
      if (!first) out += ',';
      first = false;
      char buf[192];
      std::snprintf(buf, sizeof buf,
                    "\n  {\"name\": \"%s\", \"cat\": \"pandora\", \"ph\": \"X\", "
                    "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d}",
                    event.name, 1e-3 * static_cast<double>(event.start_ns),
                    1e-3 * static_cast<double>(event.dur_ns), tid);
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0) return false;
  if (!ok) std::remove(path.c_str());
  return ok;
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(claim_mutex_);
  for (Ring& ring : rings_) {
    ring.next = 0;
    ring.total = 0;
  }
  rejected_.store(0, std::memory_order_relaxed);
}

}  // namespace pandora::obs
