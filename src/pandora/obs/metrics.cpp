#include "pandora/obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace pandora::obs {

namespace {

/// Splits `pandora_x_total{outcome="ok"}` into base name and the inner label
/// list (without braces); labels are empty when the name carries none.
struct SplitName {
  std::string_view base;
  std::string_view labels;
};

SplitName split_name(std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out += buf;
}

/// `base_bucket{labels,le="1.23e-05"}` — merges `le` into any existing
/// label list.
void append_bucket_line(std::string& out, const SplitName& name, double le_seconds,
                        std::uint64_t cumulative) {
  out += name.base;
  out += "_bucket{";
  if (!name.labels.empty()) {
    out += name.labels;
    out += ',';
  }
  out += "le=\"";
  append_double(out, le_seconds);
  out += "\"} ";
  append_u64(out, cumulative);
  out += '\n';
}

void append_inf_bucket_line(std::string& out, const SplitName& name, std::uint64_t count) {
  out += name.base;
  out += "_bucket{";
  if (!name.labels.empty()) {
    out += name.labels;
    out += ',';
  }
  out += "le=\"+Inf\"} ";
  append_u64(out, count);
  out += '\n';
}

/// `base_suffix{labels}` for the _sum/_count samples.
void append_suffixed_name(std::string& out, const SplitName& name, const char* suffix) {
  out += name.base;
  out += suffix;
  if (!name.labels.empty()) {
    out += '{';
    out += name.labels;
    out += '}';
  }
}

/// Emits `# TYPE` once per base name (labelled variants of one base sort
/// adjacently in the std::map, so tracking the last emitted base suffices).
void append_type_line(std::string& out, std::string& last_base, std::string_view base,
                      const char* type) {
  if (last_base == base) return;
  last_base.assign(base);
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::piecewise_construct, std::forward_as_tuple(name),
                           std::forward_as_tuple())
      .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::piecewise_construct, std::forward_as_tuple(name),
                         std::forward_as_tuple())
      .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::piecewise_construct, std::forward_as_tuple(name),
                             std::forward_as_tuple())
      .first->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.value() : 0;
}

std::int64_t Registry::gauge_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.value() : 0;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

std::string Registry::prometheus_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string last_base;
  for (const auto& [name, counter] : counters_) {
    const SplitName split = split_name(name);
    append_type_line(out, last_base, split.base, "counter");
    out += name;
    out += ' ';
    append_u64(out, counter.value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, gauge] : gauges_) {
    const SplitName split = split_name(name);
    append_type_line(out, last_base, split.base, "gauge");
    out += name;
    out += ' ';
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, gauge.value());
    out += buf;
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, histogram] : histograms_) {
    const SplitName split = split_name(name);
    append_type_line(out, last_base, split.base, "histogram");
    // Cumulative buckets up to the last non-empty one, then +Inf.
    int highest = -1;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (histogram.bucket_count(b) > 0) highest = b;
    }
    std::uint64_t cumulative = 0;
    for (int b = 0; b <= highest; ++b) {
      cumulative += histogram.bucket_count(b);
      append_bucket_line(out, split, 1e-9 * static_cast<double>(Histogram::bucket_upper_ns(b)),
                         cumulative);
    }
    append_inf_bucket_line(out, split, histogram.count());
    append_suffixed_name(out, split, "_sum");
    out += ' ';
    append_double(out, histogram.sum_seconds());
    out += '\n';
    append_suffixed_name(out, split, "_count");
    out += ' ';
    append_u64(out, histogram.count());
    out += '\n';
  }
  return out;
}

std::string Registry::json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\": ";
    append_u64(out, counter.value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\": ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, gauge.value());
    out += buf;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\": {\"count\": ";
    append_u64(out, histogram.count());
    out += ", \"sum_seconds\": ";
    append_double(out, histogram.sum_seconds());
    out += ", \"p50\": ";
    append_double(out, histogram.quantile(0.5));
    out += ", \"p90\": ";
    append_double(out, histogram.quantile(0.9));
    out += ", \"p99\": ";
    append_double(out, histogram.quantile(0.99));
    out += ", \"buckets\": {";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t count = histogram.bucket_count(b);
      if (count == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += '"';
      append_u64(out, static_cast<std::uint64_t>(b));
      out += "\": ";
      append_u64(out, count);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.reset();
  for (auto& [name, histogram] : histograms_) histogram.reset();
}

Registry& registry() {
  // Leaked on purpose: handles into the process-wide registry must stay
  // valid through static destruction (worker threads may still record).
  static Registry* const instance = new Registry();
  return *instance;
}

}  // namespace pandora::obs
