#pragma once

// Process-wide metrics registry: counters, gauges and log2-bucketed latency
// histograms behind pre-registered handles.
//
// Design contract (the warm-path zero-heap CI gates depend on it):
//
//   * Registration (`Registry::counter/gauge/histogram`) takes a mutex and
//     may allocate — do it once, up front, and keep the returned reference
//     (handles are stable for the registry's lifetime; the process-wide
//     `obs::registry()` never dies).
//   * Recording on a handle (`inc`, `add`, `set`, `observe`) is a relaxed
//     atomic RMW: lock-free, allocation-free, signal-safe-ish, safe from any
//     thread.
//   * Export (`prometheus_text`, `json`) walks the registry under the mutex
//     and reads every atomic relaxed — values are per-cell exact but the
//     snapshot is not cross-metric atomic, which is the usual scrape
//     contract.
//
// Histograms use 64 fixed log2-scale buckets over nanoseconds: bucket 0
// holds the value 0, bucket b (b >= 1) holds durations with bit_width b,
// i.e. [2^(b-1), 2^b) ns.  Bucket counts are exact; p50/p90/p99 are derived
// at export time from the cumulative counts and quoted as the containing
// bucket's inclusive upper bound (2^b - 1 ns), so a quantile is never
// under-reported by more than one octave.
//
// Label sets are encoded in the metric name itself, Prometheus-style:
//
//   registry().counter("pandora_serve_jobs_total{outcome=\"ok\"}")
//
// The text exposition splits the name at '{' to emit one `# TYPE` line per
// base name and merges `le` into existing labels for histogram buckets.

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace pandora::obs {

/// Monotonically increasing event count.  Recording is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (live pins, bytes in flight, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log2-scale latency histogram (see file comment).  Concurrent
/// `observe` calls are safe; bucket counts stay exact because every cell is
/// an independent relaxed atomic.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index for a duration in nanoseconds: 0 for 0, else bit_width
  /// clamped to the last bucket (which absorbs everything >= 2^62 ns).
  [[nodiscard]] static constexpr int bucket_index(std::uint64_t ns) noexcept {
    const int width = std::bit_width(ns);
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  /// Inclusive upper bound of bucket b in nanoseconds (the value quantiles
  /// quote).  The last bucket is unbounded and reports 2^63 ns as a stand-in.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_ns(int b) noexcept {
    if (b <= 0) return 0;
    if (b >= kNumBuckets - 1) return std::uint64_t{1} << 63;
    return (std::uint64_t{1} << b) - 1;
  }

  void observe_ns(std::uint64_t ns) noexcept {
    buckets_[static_cast<std::size_t>(bucket_index(ns))].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  void observe(double seconds) noexcept {
    observe_ns(seconds > 0 ? static_cast<std::uint64_t>(std::llround(seconds * 1e9)) : 0);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum_seconds() const noexcept {
    return 1e-9 * static_cast<double>(sum_ns_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::uint64_t bucket_count(int b) const noexcept {
    return buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  }

  /// q-quantile in seconds (q in [0, 1]), derived from the bucket counts:
  /// the inclusive upper bound of the bucket holding the ceil(q * count)-th
  /// smallest sample.  0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t cumulative = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      cumulative += bucket_count(b);
      if (cumulative >= rank) return 1e-9 * static_cast<double>(bucket_upper_ns(b));
    }
    return 1e-9 * static_cast<double>(bucket_upper_ns(kNumBuckets - 1));
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Named metric store.  Handles returned by the registration calls stay
/// valid for the registry's lifetime (node-based storage; nothing moves).
/// Most code uses the process-wide `obs::registry()`; tests construct their
/// own instances for isolation.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  Takes the registry mutex; call once and keep the ref.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Read-side lookups for tests and gates: current value, or 0 / nullptr
  /// when the metric was never registered.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Prometheus text exposition (`# TYPE` + samples; histograms as
  /// cumulative `_bucket{le=...}` series plus `_sum` / `_count`).
  [[nodiscard]] std::string prometheus_text() const;

  /// One JSON object:
  ///   {"counters": {name: value, ...},
  ///    "gauges":   {name: value, ...},
  ///    "histograms": {name: {"count": n, "sum_seconds": s,
  ///                          "p50": q, "p90": q, "p99": q,
  ///                          "buckets": {"<index>": count, ...}}, ...}}
  /// with only non-zero buckets listed.
  [[nodiscard]] std::string json() const;

  /// Zero every counter and histogram (gauges track live state and are left
  /// alone).  Benches call this to scope a snapshot to one run.
  void reset();

 private:
  mutable std::mutex mutex_;
  // std::map: node-based, so handle references survive later registrations,
  // and iteration is name-sorted for deterministic exposition.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// The process-wide registry every subsystem records into.
Registry& registry();

}  // namespace pandora::obs
