#pragma once

// Preallocated per-thread ring-buffer trace recorder with Chrome
// `trace_event` JSON export (load the file in chrome://tracing or Perfetto).
//
// Lifecycle:
//
//   obs::TraceRecorder recorder;                    // owns the rings
//   { exec::ScopedTrace trace(executor, &recorder); // enable on an Executor
//     ... queries: phases and run_chunks launches become spans ... }
//   recorder.write_chrome_trace("trace.json");
//
// Hot-path contract: `record()` is allocation-free and lock-free once a
// thread has claimed its ring (the first record from a thread takes a mutex
// and allocates the ring storage — warm it before entering a zero-alloc
// region).  A full ring wraps, overwriting the oldest events and counting
// them as dropped; when every ring slot is taken new threads drop events
// outright.  Spans are "X" (complete) events — overlapping spans on one
// thread render nested in the viewers, giving query -> phase -> run_chunks
// without explicit parent links.
//
// Export / clear are not synchronized against in-flight `record()` calls:
// quiesce recording threads (e.g. finish the batch) before exporting.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace pandora::obs {

struct TraceOptions {
  std::size_t events_per_thread = 4096;  ///< ring capacity per claimed thread
  std::size_t max_threads = 64;          ///< ring slots (threads beyond this drop)
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceOptions options = {});
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder();

  /// Nanoseconds since this recorder's construction (the span timebase).
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch_).count());
  }

  /// Records one completed span.  Allocation-free on a warm thread; names
  /// longer than the inline capacity (31 chars) are truncated.
  void record(std::string_view name, std::uint64_t start_ns, std::uint64_t end_ns) noexcept;

  /// Events currently retained across all rings (wrapped events excluded).
  [[nodiscard]] std::size_t events_recorded() const;
  /// Events lost: wrapped by a full ring or rejected for want of a ring slot.
  [[nodiscard]] std::uint64_t events_dropped() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}); ts/dur microseconds.
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Writes the JSON to `path`; false (with no partial file kept) on IO error.
  bool write_chrome_trace(const std::string& path) const;

  /// Forgets every recorded event; thread ring claims survive.
  void clear();

 private:
  using clock = std::chrono::steady_clock;

  struct Event {
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    char name[32];
  };
  struct Ring {
    std::vector<Event> events;  ///< sized at claim time, then fixed
    std::size_t next = 0;
    std::uint64_t total = 0;  ///< events ever recorded into this ring
    std::thread::id owner;
    bool claimed = false;
  };

  /// Slow path: finds or claims this thread's ring (mutex + allocation).
  Ring* claim_ring() const noexcept;

  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  const clock::time_point epoch_;
  const TraceOptions options_;
  mutable std::mutex claim_mutex_;
  mutable std::vector<Ring> rings_;  ///< fixed size (max_threads); never moves
  mutable std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace pandora::obs
