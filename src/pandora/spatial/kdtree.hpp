#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::spatial {

/// A neighbour candidate returned by queries (squared distance + point id).
struct Neighbor {
  double squared_distance = std::numeric_limits<double>::infinity();
  index_t index = kNone;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) return a.squared_distance < b.squared_distance;
    return a.index < b.index;
  }
};

/// Balanced median-split kd-tree (the stand-in for ArborX's BVH).
///
/// Supports the two traversals the HDBSCAN* pipeline needs:
///  * k-nearest-neighbour queries (core distances, Section 6.5), and
///  * nearest-point-in-another-component queries for Borůvka EMST rounds
///    ([39]); per-round component annotation prunes subtrees wholly inside
///    the query's component, and an optional per-node core-distance minimum
///    tightens mutual-reachability lower bounds.
///
/// Ties are broken on point index everywhere, so all query results — and the
/// EMST built on them — are deterministic.
class KdTree {
 public:
  /// Builds over `points` (kept by reference; must outlive the tree).
  explicit KdTree(const PointSet& points, int leaf_size = 32);

  /// k nearest neighbours of point `q`, excluding q itself, ascending.
  /// `out` is resized to min(k, n-1).
  void knn(index_t q, int k, std::vector<Neighbor>& out) const;

  /// Nearest point to `q` under the Euclidean metric among points whose
  /// `component[]` differs from `my_component`.  Uses the annotation set by
  /// annotate_components to skip single-component subtrees.
  [[nodiscard]] Neighbor nearest_other_component(index_t q, index_t my_component,
                                                 std::span<const index_t> component) const;

  /// As above under the mutual-reachability metric
  /// d_mreach(p,q) = max(core(p), core(q), d(p,q)) with *squared* core
  /// distances in `core_sq` (annotate_min_core must have been called).
  [[nodiscard]] Neighbor nearest_other_component_mreach(index_t q, index_t my_component,
                                                        std::span<const index_t> component,
                                                        std::span<const double> core_sq) const;

  /// Records, per node, the component id shared by all points below it (or
  /// kNone if mixed).  Call once per Borůvka round.
  void annotate_components(const exec::Executor& exec, std::span<const index_t> component);

  /// Records, per node, the minimum squared core distance below it.
  void annotate_min_core(const exec::Executor& exec, std::span<const double> core_sq);

  /// Deprecated shims over the per-thread default executor.
  PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
  void annotate_components(exec::Space space, std::span<const index_t> component);

  PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
  void annotate_min_core(exec::Space space, std::span<const double> core_sq);

  [[nodiscard]] index_t size() const { return static_cast<index_t>(perm_.size()); }

 private:
  struct Node {
    index_t begin = 0, end = 0;       ///< range in perm_ (leaf and internal)
    index_t left = kNone, right = kNone;
    int split_dim = 0;
    double split_value = 0;
  };

  index_t build(index_t begin, index_t end);
  void update_box(index_t node);

  template <class Score>
  void search(const double* query, Neighbor& best, index_t my_component,
              std::span<const index_t> component, const Score& score) const;

  /// Squared distance from `query` to the node's bounding box.
  [[nodiscard]] double box_squared_distance(index_t node, const double* query) const;

  const PointSet* points_ = nullptr;
  int dim_ = 0;
  int leaf_size_ = 32;
  std::vector<index_t> perm_;           ///< point ids, partitioned by node ranges
  std::vector<Node> nodes_;             ///< nodes_[0] is the root
  std::vector<double> box_lo_, box_hi_; ///< per node * dim bounding boxes
  std::vector<index_t> node_component_; ///< per node; kNone = mixed
  std::vector<double> node_min_core_;   ///< per node; min squared core below
};

}  // namespace pandora::spatial
