#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::spatial {

/// A neighbour candidate returned by queries (squared distance + point id).
struct Neighbor {
  double squared_distance = std::numeric_limits<double>::infinity();
  index_t index = kNone;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) return a.squared_distance < b.squared_distance;
    return a.index < b.index;
  }
};

/// Per-traversal annotations of a kd-tree, held by the *query*, not the tree.
///
/// Borůvka EMST rounds annotate every node with the component id shared by
/// all points below it (to prune same-component subtrees) and with the
/// minimum squared core distance below it (to tighten mutual-reachability
/// bounds).  Keeping that state outside the tree makes the tree itself
/// immutable after construction, so one tree — possibly served from the
/// Executor's ArtifactCache — can back any number of concurrent queries,
/// each bringing its own annotations.
struct KdTreeAnnotations {
  std::vector<index_t> node_component;  ///< per node; kNone = mixed
  std::vector<double> node_min_core;    ///< per node; min squared core below

  [[nodiscard]] bool has_components() const { return !node_component.empty(); }
  [[nodiscard]] bool has_min_core() const { return !node_min_core.empty(); }
};

/// Balanced median-split kd-tree (the stand-in for ArborX's BVH).
///
/// Supports the two traversals the HDBSCAN* pipeline needs:
///  * k-nearest-neighbour queries (core distances, Section 6.5), and
///  * nearest-point-in-another-component queries for Borůvka EMST rounds
///    ([39]); per-round component annotation prunes subtrees wholly inside
///    the query's component, and an optional per-node core-distance minimum
///    tightens mutual-reachability lower bounds.
///
/// The tree is immutable after construction; all queries are const.  Round
/// state lives in a caller-owned `KdTreeAnnotations` (see above), which is
/// what lets a cached tree serve concurrent batch queries.
///
/// Ties are broken on point index everywhere, so all query results — and the
/// EMST built on them — are deterministic.
class KdTree {
 public:
  /// Builds over `points` (kept by reference; must outlive the tree).
  explicit KdTree(const PointSet& points, int leaf_size = 32);

  /// k nearest neighbours of point `q`, excluding q itself, ascending.
  /// `out` is resized to min(k, n-1).
  void knn(index_t q, int k, std::vector<Neighbor>& out) const;

  /// k nearest indexed points to an arbitrary coordinate query (which need
  /// not be an indexed point), ascending; `out` is resized to min(k, n).
  /// This is the entry the dynamic subsystem uses to probe the tree around a
  /// point that is not (yet) part of the index.
  void knn(std::span<const double> query, int k, std::vector<Neighbor>& out) const;

  /// Batched multi-query kNN: all queries traverse the tree TOGETHER (one
  /// group DFS; a node is descended if any still-unpruned query needs it),
  /// so node boxes and SoA leaf blocks are visited once per group instead of
  /// once per query and the leaf distance kernel amortizes across queries.
  /// Results are BIT-IDENTICAL to per-query `knn` — the k-nearest set under
  /// the total (distance, index) order is unique, so relaxed group pruning
  /// only costs work, never changes answers.  Most effective when the
  /// queries are spatially coherent (e.g. consecutive in `tree_order()`).
  ///
  /// `out` is resized to `queries.size() * k_eff` with query i's neighbours
  /// ascending at [i * k_eff, (i+1) * k_eff), k_eff = min(k, n-1) (each
  /// query point excludes itself).  Steady-state calls on a warm thread
  /// allocate nothing beyond `out`'s capacity.
  void knn_batch(std::span<const index_t> queries, int k, std::vector<Neighbor>& out) const;

  /// As above for `num_queries` arbitrary row-major coordinate queries
  /// (dim() doubles each, none excluded): k_eff = min(k, n).  The dynamic
  /// subsystem's insert path probes whole batches through this.
  void knn_batch(const double* queries, index_t num_queries, int k,
                 std::vector<Neighbor>& out) const;

  /// Nearest point to `q` under the Euclidean metric among points whose
  /// `component[]` differs from `my_component`.  Uses the component
  /// annotation in `notes` (from annotate_components) to skip
  /// single-component subtrees.
  [[nodiscard]] Neighbor nearest_other_component(index_t q, index_t my_component,
                                                 std::span<const index_t> component,
                                                 const KdTreeAnnotations& notes) const;

  /// As above for an arbitrary coordinate query outside the index: nearest
  /// indexed point whose `component[]` differs from `my_component` (pass
  /// `kNone` as `my_component` to consider every indexed point).  The
  /// dynamic subsystem's Borůvka rounds issue these for points appended
  /// after the index was built.
  [[nodiscard]] Neighbor nearest_other_component(std::span<const double> query,
                                                 index_t my_component,
                                                 std::span<const index_t> component,
                                                 const KdTreeAnnotations& notes) const;

  /// As above under the mutual-reachability metric
  /// d_mreach(p,q) = max(core(p), core(q), d(p,q)) with *squared* core
  /// distances in `core_sq` (annotate_min_core must have filled `notes`).
  [[nodiscard]] Neighbor nearest_other_component_mreach(index_t q, index_t my_component,
                                                        std::span<const index_t> component,
                                                        std::span<const double> core_sq,
                                                        const KdTreeAnnotations& notes) const;

  /// Records into `notes`, per node, the component id shared by all points
  /// below it (or kNone if mixed).  Call once per Borůvka round.
  void annotate_components(const exec::Executor& exec, std::span<const index_t> component,
                           KdTreeAnnotations& notes) const;

  /// Records into `notes`, per node, the minimum squared core distance below.
  void annotate_min_core(const exec::Executor& exec, std::span<const double> core_sq,
                         KdTreeAnnotations& notes) const;

  [[nodiscard]] index_t size() const { return static_cast<index_t>(perm_.size()); }
  [[nodiscard]] int leaf_size() const { return leaf_size_; }
  [[nodiscard]] const PointSet& points() const { return *points_; }

  /// Point ids in tree (leaf-partition) order: consecutive ids are spatially
  /// close, which is the coherence `knn_batch` groups want.
  [[nodiscard]] std::span<const index_t> tree_order() const { return perm_; }

 private:
  struct Node {
    index_t begin = 0, end = 0;       ///< range in perm_ (leaf and internal)
    index_t left = kNone, right = kNone;
    int split_dim = 0;
    double split_value = 0;
  };

  /// One query of a batched search: raw coordinates plus the indexed point
  /// to exclude (kNone = exclude nothing).
  struct BatchQuery {
    const double* coords = nullptr;
    index_t exclude = kNone;
  };

  index_t build(index_t begin, index_t end);
  void update_box(index_t node);
  void build_leaf_soa();

  /// Squared distances from `query` to every point of leaf `nd` (tree
  /// order), through the dimension-blocked SoA leaf block.
  void scan_leaf(const Node& nd, const double* query, double* out) const;

  /// Shared kNN body: nearest indexed points to `query`, excluding the
  /// indexed point `exclude` (kNone = exclude nothing).
  void knn_search(const double* query, int k, index_t exclude,
                  std::vector<Neighbor>& out) const;

  /// Shared batched kNN body; `k` is the already-clamped per-query k_eff.
  void knn_batch_search(const BatchQuery* queries, index_t num_queries, int k,
                        std::vector<Neighbor>& out) const;

  template <class Score>
  void search(const double* query, Neighbor& best, index_t my_component,
              std::span<const index_t> component, const KdTreeAnnotations& notes,
              const Score& score) const;

  /// Squared distance from `query` to the node's bounding box.
  [[nodiscard]] double box_squared_distance(index_t node, const double* query) const;

  const PointSet* points_ = nullptr;
  int dim_ = 0;
  int leaf_size_ = 32;
  index_t max_leaf_count_ = 0;          ///< widest leaf (scratch sizing)
  std::vector<index_t> perm_;           ///< point ids, partitioned by node ranges
  std::vector<Node> nodes_;             ///< nodes_[0] is the root
  std::vector<double> box_lo_, box_hi_; ///< per node * dim bounding boxes
  /// Dimension-blocked SoA copy of the leaf points, one block per leaf in
  /// perm order: coordinate d of leaf point i (leaf range [begin, end)) is
  /// leaf_soa_[begin * dim + d * (end - begin) + (i - begin)].  This is what
  /// the batch distance kernels scan instead of gathering row-major points.
  std::vector<double> leaf_soa_;
};

/// Order-sensitive 64-bit content fingerprint of a point set (coordinates,
/// count, dimension) — the base key of the spatial artifact caches (kd-trees,
/// per-mpts core distances).  Mutating any coordinate changes the key.
[[nodiscard]] std::uint64_t point_set_fingerprint(const exec::Executor& exec,
                                                  const PointSet& points);

/// The cross-call kd-tree cache: returns the tree over `points`, reusing the
/// copy stored in the Executor's ArtifactCache when the point-set fingerprint
/// and `leaf_size` match — so parameter sweeps over one point set (mpts
/// sweeps, repeated HDBSCAN* queries) build the tree once and replay it.
/// A cached entry additionally remembers which PointSet object it was built
/// over and is treated as a miss for a different (even content-identical)
/// object, so a replayed tree never dangles.  With
/// `Executor::set_artifact_caching(false)` every call rebuilds.
///
/// `points_fingerprint` lets a caller that already computed
/// `point_set_fingerprint(exec, points)` share the pass (hdbscan does, so
/// one query hashes the points once, not once per cached artifact).
[[nodiscard]] std::shared_ptr<const KdTree> kdtree_cached(
    const exec::Executor& exec, const PointSet& points, int leaf_size = 32,
    std::optional<std::uint64_t> points_fingerprint = std::nullopt);

}  // namespace pandora::spatial
