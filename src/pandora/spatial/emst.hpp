#pragma once

#include <memory>
#include <optional>
#include <span>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/graph/union_find.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::spatial {

/// Euclidean minimum spanning tree via parallel Borůvka over the kd-tree —
/// the stand-in for the single-tree GPU Borůvka of [39] that the paper's
/// HDBSCAN* pipeline uses.  Each round every point queries its nearest
/// neighbour outside its own component; per-component winners (exact
/// (distance, point-id) lexicographic minima) hook the components together.
/// Deterministic under distance ties.
///
/// The tree is read-only: per-round component annotations live in
/// query-local `KdTreeAnnotations`, so one (possibly cached and shared) tree
/// can back concurrent EMST queries.
[[nodiscard]] graph::EdgeList euclidean_mst(const exec::Executor& exec, const PointSet& points,
                                            const KdTree& tree);

/// Component-restricted Borůvka: joins the pre-seeded components of `uf`
/// (one slot per point; seed by uniting along a partial tree's edges) with
/// exactly the minimum-weight Euclidean edges between them, returning only
/// the joining edges.  If the seed components are those of a forest F that
/// is a subset of the full EMST, then F plus the returned edges *is* the
/// full EMST — the dynamic subsystem's erase path splinters its maintained
/// tree and re-joins the splinters through this entry.  `uf` is left fully
/// united.
[[nodiscard]] graph::EdgeList join_components_emst(const exec::Executor& exec,
                                                   const PointSet& points, const KdTree& tree,
                                                   graph::ConcurrentUnionFind& uf);

/// MST under the HDBSCAN* mutual-reachability metric
/// d_mreach(p, q) = max(core(p), core(q), |p - q|), given per-point core
/// distances (Section 6.5).  This is the "MST construction" phase of the
/// paper's Figure 1/15 pipeline.
[[nodiscard]] graph::EdgeList mutual_reachability_mst(const exec::Executor& exec,
                                                      const PointSet& points,
                                                      const KdTree& tree,
                                                      std::span<const double> core_distances);

/// The cross-call EMST cache: the mutual-reachability MST of `points` at
/// `min_pts`, reusing the copy stored in the Executor's ArtifactCache when
/// the point-set fingerprint AND `min_pts` match — so a `min_cluster_size`
/// sweep (which shares one mpts) skips Borůvka entirely on repeated calls,
/// the ROADMAP follow-up to the kd-tree / core-distance caches.  Entries
/// remember the PointSet object they were computed over (cf. kdtree_cached);
/// mutated or different point sets miss.  `core_distances` must be the core
/// distances of `points` at `min_pts` (they are part of the computation, not
/// the key: (points, min_pts) already determines them).
/// `points_fingerprint` shares a precomputed `point_set_fingerprint` pass.
/// With `Executor::set_artifact_caching(false)` every call recomputes.
[[nodiscard]] std::shared_ptr<const graph::EdgeList> mutual_reachability_mst_cached(
    const exec::Executor& exec, const PointSet& points, const KdTree& tree,
    std::span<const double> core_distances, int min_pts,
    std::optional<std::uint64_t> points_fingerprint = std::nullopt);

}  // namespace pandora::spatial
