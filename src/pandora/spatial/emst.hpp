#pragma once

#include <span>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::spatial {

/// Euclidean minimum spanning tree via parallel Borůvka over the kd-tree —
/// the stand-in for the single-tree GPU Borůvka of [39] that the paper's
/// HDBSCAN* pipeline uses.  Each round every point queries its nearest
/// neighbour outside its own component; per-component winners (exact
/// (distance, point-id) lexicographic minima) hook the components together.
/// Deterministic under distance ties.
///
/// The tree is read-only: per-round component annotations live in
/// query-local `KdTreeAnnotations`, so one (possibly cached and shared) tree
/// can back concurrent EMST queries.
[[nodiscard]] graph::EdgeList euclidean_mst(const exec::Executor& exec, const PointSet& points,
                                            const KdTree& tree);

/// MST under the HDBSCAN* mutual-reachability metric
/// d_mreach(p, q) = max(core(p), core(q), |p - q|), given per-point core
/// distances (Section 6.5).  This is the "MST construction" phase of the
/// paper's Figure 1/15 pipeline.
[[nodiscard]] graph::EdgeList mutual_reachability_mst(const exec::Executor& exec,
                                                      const PointSet& points,
                                                      const KdTree& tree,
                                                      std::span<const double> core_distances);

/// Deprecated shims over the per-thread default executor.
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] graph::EdgeList euclidean_mst(exec::Space space, const PointSet& points,
                                            const KdTree& tree);

PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] graph::EdgeList mutual_reachability_mst(exec::Space space, const PointSet& points,
                                                      const KdTree& tree,
                                                      std::span<const double> core_distances);

}  // namespace pandora::spatial
