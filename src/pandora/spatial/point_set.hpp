#pragma once

#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/memory.hpp"
#include "pandora/spatial/distance.hpp"

namespace pandora::spatial {

/// Dimension-blocked SoA coordinate store: points are grouped into blocks of
/// `kLane` (8 doubles = one 64-byte cache line), and within a block
/// coordinate d of all `kLane` points is contiguous — the layout the batch
/// distance kernels (spatial/distance.hpp) consume with unit stride, and the
/// coalesced-access shape a device backend wants (cf. cuSLINK's blocked
/// layouts).  The buffer is 64-byte aligned and allocated through the
/// backend MemoryResource seam, so a device backend can land it in device
/// memory unchanged.
///
/// Layout: coordinate d of point p = data()[(block(p) * dim + d) * kLane +
/// lane(p)] with block(p) = p / kLane, lane(p) = p % kLane.  Tail lanes of
/// the last block are zero-padded; kernels receive the live `count` and
/// discard padded lanes.
class SoaStore {
 public:
  static constexpr index_t kLane = 8;  ///< doubles per 64-byte block row

  SoaStore(const double* row_major, index_t count, int dim)
      : count_(count), dim_(dim), blocks_((count + kLane - 1) / kLane) {
    bytes_ = static_cast<std::size_t>(blocks_) * static_cast<std::size_t>(dim_) * kLane *
             sizeof(double);
    if (bytes_ == 0) return;
    data_ = static_cast<double*>(exec::host_memory_resource().allocate(bytes_, 64));
    std::memset(data_, 0, bytes_);  // zero tail padding
    for (index_t p = 0; p < count_; ++p) {
      const std::size_t base =
          static_cast<std::size_t>(p / kLane) * static_cast<std::size_t>(dim_) * kLane +
          static_cast<std::size_t>(p % kLane);
      for (int d = 0; d < dim_; ++d)
        data_[base + static_cast<std::size_t>(d) * kLane] =
            row_major[static_cast<std::size_t>(p) * static_cast<std::size_t>(dim_) +
                      static_cast<std::size_t>(d)];
    }
  }
  ~SoaStore() {
    if (data_ != nullptr) exec::host_memory_resource().deallocate(data_, bytes_, 64);
  }
  SoaStore(const SoaStore&) = delete;
  SoaStore& operator=(const SoaStore&) = delete;

  [[nodiscard]] index_t size() const { return count_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] index_t num_blocks() const { return blocks_; }
  /// Points covered by block b (kLane except possibly the last block).
  [[nodiscard]] index_t block_size(index_t b) const {
    return b + 1 < blocks_ ? kLane : count_ - b * kLane;
  }
  /// 64-byte-aligned dim-major block: row d at `block(b) + d * kLane`.
  [[nodiscard]] const double* block(index_t b) const {
    return data_ + static_cast<std::size_t>(b) * static_cast<std::size_t>(dim_) * kLane;
  }
  [[nodiscard]] const double* data() const { return data_; }

 private:
  index_t count_ = 0;
  int dim_ = 0;
  index_t blocks_ = 0;
  std::size_t bytes_ = 0;
  double* data_ = nullptr;
};

/// A dense set of low-dimensional points.
///
/// The paper targets 2-7 dimensional data (Table 2); dimensionality is a
/// runtime value here, with the distance kernels specialised over small dims
/// where it matters (spatial/distance.hpp).
///
/// Storage: the row-major vector stays the authoritative, mutable store (the
/// dyn:: append/compact paths and the generators write it in place), and a
/// dimension-blocked SoA mirror (`soa()`) is materialized lazily for the
/// batch distance kernels.  Any non-const access invalidates the mirror;
/// the next `soa()` rebuilds it.  Holding a mutable reference from `at()` /
/// `coords()` across a `soa()` call and writing through it afterwards is
/// not supported (mutate first, read SoA after — every in-tree caller does).
class PointSet {
 public:
  PointSet() = default;
  PointSet(int dim, index_t count)
      : dim_(dim), coords_(static_cast<std::size_t>(count) * static_cast<std::size_t>(dim)) {}

  // The SoA mirror is identity-independent derived state: copies share or
  // lazily rebuild it, they never write through it.
  PointSet(const PointSet& other) : dim_(other.dim_), coords_(other.coords_) {}
  PointSet(PointSet&& other) noexcept
      : dim_(other.dim_), coords_(std::move(other.coords_)) {}
  PointSet& operator=(const PointSet& other) {
    if (this != &other) {
      dim_ = other.dim_;
      coords_ = other.coords_;
      invalidate_soa();
    }
    return *this;
  }
  PointSet& operator=(PointSet&& other) noexcept {
    dim_ = other.dim_;
    coords_ = std::move(other.coords_);
    invalidate_soa();
    return *this;
  }

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] index_t size() const {
    return dim_ == 0 ? 0 : static_cast<index_t>(coords_.size() / static_cast<std::size_t>(dim_));
  }

  [[nodiscard]] double& at(index_t point, int d) {
    invalidate_soa();
    return coords_[static_cast<std::size_t>(point) * static_cast<std::size_t>(dim_) +
                   static_cast<std::size_t>(d)];
  }
  [[nodiscard]] double at(index_t point, int d) const {
    return coords_[static_cast<std::size_t>(point) * static_cast<std::size_t>(dim_) +
                   static_cast<std::size_t>(d)];
  }

  [[nodiscard]] std::span<const double> point(index_t i) const {
    return {coords_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dim_),
            static_cast<std::size_t>(dim_)};
  }

  [[nodiscard]] const std::vector<double>& coords() const { return coords_; }
  [[nodiscard]] std::vector<double>& coords() {
    invalidate_soa();
    return coords_;
  }

  /// The dimension-blocked SoA mirror of the current coordinates, built on
  /// first use after any mutation and shared (immutable) thereafter — safe
  /// to call from concurrent readers of a const PointSet.
  [[nodiscard]] std::shared_ptr<const SoaStore> soa() const {
    const std::scoped_lock lock(soa_mutex_);
    if (soa_ == nullptr)
      soa_ = std::make_shared<const SoaStore>(coords_.data(), size(), dim_);
    return soa_;
  }

  /// Squared Euclidean distance from raw query coordinates to point j (the
  /// kernel behind coordinate-based kd-tree queries on points outside the
  /// index; `query` must have `dim()` entries).
  [[nodiscard]] double squared_distance(std::span<const double> query, index_t j) const {
    return distance::squared_distance(
        query.data(),
        coords_.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(dim_), dim_);
  }

  /// Squared Euclidean distance between points i and j.
  [[nodiscard]] double squared_distance(index_t i, index_t j) const {
    return distance::squared_distance(
        coords_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dim_),
        coords_.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(dim_), dim_);
  }

  [[nodiscard]] double distance(index_t i, index_t j) const {
    return std::sqrt(squared_distance(i, j));
  }

 private:
  void invalidate_soa() {
    const std::scoped_lock lock(soa_mutex_);
    soa_.reset();
  }

  int dim_ = 0;
  std::vector<double> coords_;
  mutable std::mutex soa_mutex_;
  mutable std::shared_ptr<const SoaStore> soa_;
};

/// Front-door input validation: every coordinate must be finite (no NaN/Inf —
/// they would silently poison distances, core distances and the EMST).
/// Throws std::invalid_argument naming the offending point, dimension and
/// call site (`where`).  O(n·dim) single pass; opt-in at validating entry
/// points (Pipeline::with_validation, dyn::insert), not in the kernels.
inline void validate_points(const PointSet& points, const char* where = "points") {
  const std::vector<double>& coords = points.coords();
  const int dim = points.dim();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (!std::isfinite(coords[i])) {
      const std::size_t point = dim > 0 ? i / static_cast<std::size_t>(dim) : 0;
      const std::size_t d = dim > 0 ? i % static_cast<std::size_t>(dim) : 0;
      throw std::invalid_argument("pandora: " + std::string(where) + ": non-finite coordinate at point " +
                                  std::to_string(point) + ", dim " + std::to_string(d) +
                                  " (NaN/Inf coordinates are not supported)");
    }
  }
}

}  // namespace pandora::spatial
