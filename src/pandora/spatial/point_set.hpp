#pragma once

#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "pandora/common/types.hpp"

namespace pandora::spatial {

/// A dense set of low-dimensional points (row-major, one row per point).
///
/// The paper targets 2-7 dimensional data (Table 2); dimensionality is a
/// runtime value here, with the distance kernels specialised over small dims
/// where it matters.
class PointSet {
 public:
  PointSet() = default;
  PointSet(int dim, index_t count)
      : dim_(dim), coords_(static_cast<std::size_t>(count) * static_cast<std::size_t>(dim)) {}

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] index_t size() const {
    return dim_ == 0 ? 0 : static_cast<index_t>(coords_.size() / static_cast<std::size_t>(dim_));
  }

  [[nodiscard]] double& at(index_t point, int d) {
    return coords_[static_cast<std::size_t>(point) * static_cast<std::size_t>(dim_) +
                   static_cast<std::size_t>(d)];
  }
  [[nodiscard]] double at(index_t point, int d) const {
    return coords_[static_cast<std::size_t>(point) * static_cast<std::size_t>(dim_) +
                   static_cast<std::size_t>(d)];
  }

  [[nodiscard]] std::span<const double> point(index_t i) const {
    return {coords_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dim_),
            static_cast<std::size_t>(dim_)};
  }

  [[nodiscard]] const std::vector<double>& coords() const { return coords_; }
  [[nodiscard]] std::vector<double>& coords() { return coords_; }

  /// Squared Euclidean distance from raw query coordinates to point j (the
  /// kernel behind coordinate-based kd-tree queries on points outside the
  /// index; `query` must have `dim()` entries).
  [[nodiscard]] double squared_distance(std::span<const double> query, index_t j) const {
    const double* b = coords_.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(dim_);
    double sum = 0;
    for (int d = 0; d < dim_; ++d) {
      const double diff = query[static_cast<std::size_t>(d)] - b[d];
      sum += diff * diff;
    }
    return sum;
  }

  /// Squared Euclidean distance between points i and j.
  [[nodiscard]] double squared_distance(index_t i, index_t j) const {
    const double* a = coords_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dim_);
    const double* b = coords_.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(dim_);
    double sum = 0;
    for (int d = 0; d < dim_; ++d) {
      const double diff = a[d] - b[d];
      sum += diff * diff;
    }
    return sum;
  }

  [[nodiscard]] double distance(index_t i, index_t j) const {
    return std::sqrt(squared_distance(i, j));
  }

 private:
  int dim_ = 0;
  std::vector<double> coords_;
};

/// Front-door input validation: every coordinate must be finite (no NaN/Inf —
/// they would silently poison distances, core distances and the EMST).
/// Throws std::invalid_argument naming the offending point, dimension and
/// call site (`where`).  O(n·dim) single pass; opt-in at validating entry
/// points (Pipeline::with_validation, dyn::insert), not in the kernels.
inline void validate_points(const PointSet& points, const char* where = "points") {
  const std::vector<double>& coords = points.coords();
  const int dim = points.dim();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (!std::isfinite(coords[i])) {
      const std::size_t point = dim > 0 ? i / static_cast<std::size_t>(dim) : 0;
      const std::size_t d = dim > 0 ? i % static_cast<std::size_t>(dim) : 0;
      throw std::invalid_argument("pandora: " + std::string(where) + ": non-finite coordinate at point " +
                                  std::to_string(point) + ", dim " + std::to_string(d) +
                                  " (NaN/Inf coordinates are not supported)");
    }
  }
}

}  // namespace pandora::spatial
