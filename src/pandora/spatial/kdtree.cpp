#include "pandora/spatial/kdtree.hpp"

#include <bit>
#include <numeric>

#include "pandora/common/expect.hpp"
#include "pandora/exec/fingerprint.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/spatial/distance.hpp"

namespace pandora::spatial {

KdTree::KdTree(const PointSet& points, int leaf_size)
    : points_(&points), dim_(points.dim()), leaf_size_(std::max(leaf_size, 1)) {
  PANDORA_EXPECT(dim_ > 0, "points must have positive dimension");
  const index_t n = points.size();
  perm_.resize(static_cast<std::size_t>(n));
  std::iota(perm_.begin(), perm_.end(), index_t{0});
  if (n > 0) {
    build(0, n);
    build_leaf_soa();
  }
}

void KdTree::build_leaf_soa() {
  // One dimension-blocked SoA block per leaf, laid out back to back in perm
  // order (a leaf's range [begin, end) owns leaf_soa_[begin*dim, end*dim)).
  leaf_soa_.resize(perm_.size() * static_cast<std::size_t>(dim_));
  for (const Node& nd : nodes_) {
    if (nd.left != kNone) continue;
    const index_t count = nd.end - nd.begin;
    max_leaf_count_ = std::max(max_leaf_count_, count);
    double* block = leaf_soa_.data() +
                    static_cast<std::size_t>(nd.begin) * static_cast<std::size_t>(dim_);
    for (index_t i = 0; i < count; ++i) {
      const std::span<const double> p = points_->point(perm_[static_cast<std::size_t>(nd.begin + i)]);
      for (int d = 0; d < dim_; ++d)
        block[static_cast<std::size_t>(d) * static_cast<std::size_t>(count) +
              static_cast<std::size_t>(i)] = p[static_cast<std::size_t>(d)];
    }
  }
}

void KdTree::scan_leaf(const Node& nd, const double* query, double* out) const {
  const index_t count = nd.end - nd.begin;
  distance::batch_squared_distances(
      query,
      leaf_soa_.data() + static_cast<std::size_t>(nd.begin) * static_cast<std::size_t>(dim_),
      dim_, count, count, out);
}

void KdTree::update_box(index_t node) {
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  const std::size_t base = static_cast<std::size_t>(node) * static_cast<std::size_t>(dim_);
  for (int d = 0; d < dim_; ++d) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (index_t i = nd.begin; i < nd.end; ++i) {
      const double c = points_->at(perm_[static_cast<std::size_t>(i)], d);
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    box_lo_[base + static_cast<std::size_t>(d)] = lo;
    box_hi_[base + static_cast<std::size_t>(d)] = hi;
  }
}

index_t KdTree::build(index_t begin, index_t end) {
  const auto id = static_cast<index_t>(nodes_.size());
  nodes_.push_back(Node{begin, end, kNone, kNone, 0, 0.0});
  box_lo_.resize(box_lo_.size() + static_cast<std::size_t>(dim_));
  box_hi_.resize(box_hi_.size() + static_cast<std::size_t>(dim_));
  update_box(id);
  if (end - begin <= leaf_size_) return id;

  // Split the widest box extent at the median point.
  const std::size_t base = static_cast<std::size_t>(id) * static_cast<std::size_t>(dim_);
  int split_dim = 0;
  double widest = -1;
  for (int d = 0; d < dim_; ++d) {
    const double extent = box_hi_[base + static_cast<std::size_t>(d)] -
                          box_lo_[base + static_cast<std::size_t>(d)];
    if (extent > widest) {
      widest = extent;
      split_dim = d;
    }
  }
  const index_t mid = begin + (end - begin) / 2;
  std::nth_element(perm_.begin() + begin, perm_.begin() + mid, perm_.begin() + end,
                   [&](index_t a, index_t b) {
                     const double ca = points_->at(a, split_dim);
                     const double cb = points_->at(b, split_dim);
                     if (ca != cb) return ca < cb;
                     return a < b;  // deterministic partition under ties
                   });
  const double split_value = points_->at(perm_[static_cast<std::size_t>(mid)], split_dim);

  const index_t left = build(begin, mid);
  const index_t right = build(mid, end);
  Node& nd = nodes_[static_cast<std::size_t>(id)];
  nd.left = left;
  nd.right = right;
  nd.split_dim = split_dim;
  nd.split_value = split_value;
  return id;
}

double KdTree::box_squared_distance(index_t node, const double* query) const {
  const std::size_t base = static_cast<std::size_t>(node) * static_cast<std::size_t>(dim_);
  double sum = 0;
  for (int d = 0; d < dim_; ++d) {
    const double c = query[d];
    const double lo = box_lo_[base + static_cast<std::size_t>(d)];
    const double hi = box_hi_[base + static_cast<std::size_t>(d)];
    const double diff = c < lo ? lo - c : (c > hi ? c - hi : 0.0);
    sum += diff * diff;
  }
  return sum;
}

namespace {

/// Per-thread scratch for one leaf's worth of squared distances, shared by
/// every query path on the thread (leaf scans never nest).
double* leaf_scratch(index_t max_leaf_count) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < static_cast<std::size_t>(max_leaf_count))
    scratch.resize(static_cast<std::size_t>(max_leaf_count));
  return scratch.data();
}

}  // namespace

void KdTree::knn_search(const double* query, int k, index_t exclude,
                        std::vector<Neighbor>& out) const {
  out.clear();
  if (k <= 0 || size() == 0) return;
  out.reserve(static_cast<std::size_t>(k));

  double* leaf_sq = leaf_scratch(max_leaf_count_);

  // `out` stays sorted ascending; with <= 16 typical neighbours an insertion
  // buffer beats a heap.
  auto offer = [&](index_t p, double sq) {
    if (p == exclude) return;
    Neighbor cand{sq, p};
    if (static_cast<int>(out.size()) == k && !(cand < out.back())) return;
    auto pos = std::lower_bound(out.begin(), out.end(), cand);
    out.insert(pos, cand);
    if (static_cast<int>(out.size()) > k) out.pop_back();
  };

  // Depth-first with near-child preference.
  auto visit = [&](auto&& self, index_t node) -> void {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (static_cast<int>(out.size()) == k &&
        box_squared_distance(node, query) > out.back().squared_distance)
      return;
    if (nd.left == kNone) {
      scan_leaf(nd, query, leaf_sq);
      for (index_t i = nd.begin; i < nd.end; ++i)
        offer(perm_[static_cast<std::size_t>(i)], leaf_sq[static_cast<std::size_t>(i - nd.begin)]);
      return;
    }
    const bool left_first = query[nd.split_dim] <= nd.split_value;
    self(self, left_first ? nd.left : nd.right);
    self(self, left_first ? nd.right : nd.left);
  };
  visit(visit, 0);
}

void KdTree::knn(index_t q, int k, std::vector<Neighbor>& out) const {
  knn_search(points_->point(q).data(), std::min<index_t>(k, size() - 1), q, out);
}

void KdTree::knn(std::span<const double> query, int k, std::vector<Neighbor>& out) const {
  knn_search(query.data(), std::min<index_t>(k, size()), kNone, out);
}

void KdTree::knn_batch_search(const BatchQuery* queries, index_t num_queries, int k,
                              std::vector<Neighbor>& out) const {
  if (k <= 0 || num_queries <= 0 || size() == 0) {
    out.clear();
    return;
  }
  out.assign(static_cast<std::size_t>(num_queries) * static_cast<std::size_t>(k), Neighbor{});

  constexpr index_t kGroup = 16;  // queries per group DFS (fits a uint32 mask)
  double* leaf_sq = leaf_scratch(max_leaf_count_);

  struct Frame {
    index_t node;
    std::uint32_t mask;  ///< queries still live below this node
  };
  thread_local std::vector<Frame> stack;

  int filled[kGroup];

  for (index_t g0 = 0; g0 < num_queries; g0 += kGroup) {
    const index_t gn = std::min<index_t>(kGroup, num_queries - g0);
    for (index_t qi = 0; qi < gn; ++qi) filled[qi] = 0;

    // Query qi's result slice doubles as its sorted insertion buffer, so the
    // per-query offer is byte-for-byte the single-query insertion logic.
    auto slice = [&](index_t qi) {
      return out.data() + static_cast<std::size_t>(g0 + qi) * static_cast<std::size_t>(k);
    };
    auto bound = [&](index_t qi) {
      return filled[qi] == k ? slice(qi)[k - 1].squared_distance
                             : std::numeric_limits<double>::infinity();
    };
    auto offer = [&](index_t qi, index_t p, double sq) {
      if (p == queries[g0 + qi].exclude) return;
      Neighbor* s = slice(qi);
      int& n = filled[qi];
      const Neighbor cand{sq, p};
      if (n == k && !(cand < s[n - 1])) return;
      Neighbor* pos = std::lower_bound(s, s + n, cand);
      for (Neighbor* t = s + std::min(n, k - 1); t > pos; --t) *t = *(t - 1);
      *pos = cand;
      if (n < k) ++n;
    };

    stack.clear();
    stack.push_back({0, (1u << gn) - 1});  // gn <= 16, shift never overflows
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      // Re-prune against each query's CURRENT bound (it may have tightened
      // since this frame was pushed); a node is descended if any query
      // survives.  Relaxed group pruning only adds visits, never changes the
      // (unique) k-best set, so results stay bit-identical to per-query knn.
      std::uint32_t live = 0;
      for (index_t qi = 0; qi < gn; ++qi) {
        if ((f.mask & (1u << qi)) == 0) continue;
        if (!(box_squared_distance(f.node, queries[g0 + qi].coords) > bound(qi)))
          live |= 1u << qi;
      }
      if (live == 0) continue;
      const Node& nd = nodes_[static_cast<std::size_t>(f.node)];
      if (nd.left == kNone) {
        // One SoA pass per live query while the leaf block is cache-hot.
        for (index_t qi = 0; qi < gn; ++qi) {
          if ((live & (1u << qi)) == 0) continue;
          scan_leaf(nd, queries[g0 + qi].coords, leaf_sq);
          for (index_t i = nd.begin; i < nd.end; ++i)
            offer(qi, perm_[static_cast<std::size_t>(i)],
                  leaf_sq[static_cast<std::size_t>(i - nd.begin)]);
        }
        continue;
      }
      // Near-child preference steered by the lowest live query; coherent
      // groups (consecutive in tree_order) agree on the near side anyway.
      const auto lead = static_cast<index_t>(std::countr_zero(live));
      const bool left_first =
          queries[g0 + lead].coords[nd.split_dim] <= nd.split_value;
      stack.push_back({left_first ? nd.right : nd.left, live});
      stack.push_back({left_first ? nd.left : nd.right, live});
    }
  }
}

void KdTree::knn_batch(std::span<const index_t> queries, int k, std::vector<Neighbor>& out) const {
  const index_t n = size();
  const int k_eff = static_cast<int>(std::max<index_t>(
      0, std::min<index_t>(k, n > 0 ? n - 1 : 0)));
  thread_local std::vector<BatchQuery> batch;
  batch.resize(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    batch[i] = BatchQuery{points_->point(queries[i]).data(), queries[i]};
  knn_batch_search(batch.data(), static_cast<index_t>(queries.size()), k_eff, out);
}

void KdTree::knn_batch(const double* queries, index_t num_queries, int k,
                       std::vector<Neighbor>& out) const {
  const int k_eff = static_cast<int>(std::max<index_t>(0, std::min<index_t>(k, size())));
  thread_local std::vector<BatchQuery> batch;
  batch.resize(static_cast<std::size_t>(num_queries));
  for (index_t i = 0; i < num_queries; ++i)
    batch[static_cast<std::size_t>(i)] =
        BatchQuery{queries + static_cast<std::size_t>(i) * static_cast<std::size_t>(dim_), kNone};
  knn_batch_search(batch.data(), num_queries, k_eff, out);
}

namespace {

/// Plain Euclidean scoring for component queries: the leaf scan's batched
/// squared distance IS the score.
struct EuclideanScore {
  double from_sq(index_t /*p*/, double sq) const { return sq; }
};

}  // namespace

template <class Score>
void KdTree::search(const double* query, Neighbor& best, index_t my_component,
                    std::span<const index_t> component, const KdTreeAnnotations& notes,
                    const Score& score) const {
  // Iterative DFS; near child first.  Pruning uses strict '>' so equal-score
  // candidates are still examined and the smallest index wins ties.
  std::vector<index_t> stack;
  stack.reserve(64);
  stack.push_back(0);
  double* leaf_sq = leaf_scratch(max_leaf_count_);
  // my_component == kNone disables the component filter entirely (a node's
  // kNone annotation means "mixed", which must never prune in that case).
  const bool filtered = my_component != kNone;
  while (!stack.empty()) {
    const index_t node = stack.back();
    stack.pop_back();
    if (filtered && notes.has_components() &&
        notes.node_component[static_cast<std::size_t>(node)] == my_component)
      continue;
    double bound = box_squared_distance(node, query);
    if constexpr (requires { score.extra_bound(node); }) {
      bound = std::max(bound, score.extra_bound(node));
    }
    if (bound > best.squared_distance) continue;
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (nd.left == kNone) {
      scan_leaf(nd, query, leaf_sq);
      for (index_t i = nd.begin; i < nd.end; ++i) {
        const index_t p = perm_[static_cast<std::size_t>(i)];
        if (filtered && component[static_cast<std::size_t>(p)] == my_component) continue;
        Neighbor cand{score.from_sq(p, leaf_sq[static_cast<std::size_t>(i - nd.begin)]), p};
        if (cand < best) best = cand;
      }
      continue;
    }
    const bool left_first = query[nd.split_dim] <= nd.split_value;
    // Far child pushed first so the near child is processed next.
    stack.push_back(left_first ? nd.right : nd.left);
    stack.push_back(left_first ? nd.left : nd.right);
  }
}

Neighbor KdTree::nearest_other_component(index_t q, index_t my_component,
                                         std::span<const index_t> component,
                                         const KdTreeAnnotations& notes) const {
  Neighbor best;
  const double* query = points_->point(q).data();
  EuclideanScore score{};
  search(query, best, my_component, component, notes, score);
  return best;
}

Neighbor KdTree::nearest_other_component(std::span<const double> query, index_t my_component,
                                         std::span<const index_t> component,
                                         const KdTreeAnnotations& notes) const {
  Neighbor best;
  if (size() == 0) return best;
  // An out-of-index coordinate query scores exactly like an indexed one: the
  // leaf scan's squared distance is the score.
  EuclideanScore score{};
  search(query.data(), best, my_component, component, notes, score);
  return best;
}

namespace {

/// Mreach score with the per-node minimum-core bound wired in.
struct MreachScoreBound {
  index_t q;
  std::span<const double> core_sq;
  const std::vector<double>* node_min_core;

  double from_sq(index_t p, double sq) const {
    return std::max({sq, core_sq[static_cast<std::size_t>(q)],
                     core_sq[static_cast<std::size_t>(p)]});
  }
  double extra_bound(index_t node) const {
    double b = core_sq[static_cast<std::size_t>(q)];
    if (!node_min_core->empty())
      b = std::max(b, (*node_min_core)[static_cast<std::size_t>(node)]);
    return b;
  }
};

}  // namespace

Neighbor KdTree::nearest_other_component_mreach(index_t q, index_t my_component,
                                                std::span<const index_t> component,
                                                std::span<const double> core_sq,
                                                const KdTreeAnnotations& notes) const {
  Neighbor best;
  const double* query = points_->point(q).data();
  MreachScoreBound score{q, core_sq, &notes.node_min_core};
  search(query, best, my_component, component, notes, score);
  return best;
}

void KdTree::annotate_components(const exec::Executor& exec,
                                 std::span<const index_t> component,
                                 KdTreeAnnotations& notes) const {
  const auto num_nodes = static_cast<size_type>(nodes_.size());
  std::vector<index_t>& node_component = notes.node_component;
  node_component.assign(nodes_.size(), kNone);
  // Leaves in parallel, then internal nodes in reverse creation order
  // (children always have larger ids than their parent).
  exec::parallel_for(exec, num_nodes, [&](size_type id) {
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.left != kNone) return;
    index_t c = component[static_cast<std::size_t>(perm_[static_cast<std::size_t>(nd.begin)])];
    for (index_t i = nd.begin + 1; i < nd.end && c != kNone; ++i)
      if (component[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] != c) c = kNone;
    node_component[static_cast<std::size_t>(id)] = c;
  });
  for (size_type id = num_nodes - 1; id >= 0; --id) {
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.left == kNone) continue;
    const index_t cl = node_component[static_cast<std::size_t>(nd.left)];
    const index_t cr = node_component[static_cast<std::size_t>(nd.right)];
    node_component[static_cast<std::size_t>(id)] = (cl == cr) ? cl : kNone;
  }
}

void KdTree::annotate_min_core(const exec::Executor& exec, std::span<const double> core_sq,
                               KdTreeAnnotations& notes) const {
  const auto num_nodes = static_cast<size_type>(nodes_.size());
  std::vector<double>& node_min_core = notes.node_min_core;
  node_min_core.assign(nodes_.size(), std::numeric_limits<double>::infinity());
  exec::parallel_for(exec, num_nodes, [&](size_type id) {
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.left != kNone) return;
    double m = std::numeric_limits<double>::infinity();
    for (index_t i = nd.begin; i < nd.end; ++i)
      m = std::min(m, core_sq[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])]);
    node_min_core[static_cast<std::size_t>(id)] = m;
  });
  for (size_type id = num_nodes - 1; id >= 0; --id) {
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.left == kNone) continue;
    node_min_core[static_cast<std::size_t>(id)] =
        std::min(node_min_core[static_cast<std::size_t>(nd.left)],
                 node_min_core[static_cast<std::size_t>(nd.right)]);
  }
}

std::uint64_t point_set_fingerprint(const exec::Executor& exec, const PointSet& points) {
  using exec::mix_fingerprint;
  const size_type n = static_cast<size_type>(points.size());
  const int dim = points.dim();
  // Each point hashes with its position, so the sum is order-sensitive while
  // remaining a deterministic parallel reduction (cf. mst_fingerprint).
  const std::uint64_t body = exec::parallel_sum(
      exec, n, std::uint64_t{0}, [&](size_type i) {
        std::uint64_t h = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
        const std::span<const double> p = points.point(static_cast<index_t>(i));
        for (const double c : p) h = mix_fingerprint(h ^ std::bit_cast<std::uint64_t>(c));
        return h;
      });
  return mix_fingerprint(body ^ mix_fingerprint(static_cast<std::uint64_t>(n)) ^
                         mix_fingerprint(~static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(dim))));
}

namespace {

/// A kd-tree artifact as stored in the Executor's ArtifactCache.  The tree
/// references the PointSet it was built over; `points` records which object
/// that was so a lookup against a different (even content-identical) object
/// rebuilds instead of returning a view into someone else's storage.
struct CachedKdTree {
  CachedKdTree(const PointSet& pts, int leaf_size) : tree(pts, leaf_size), points(&pts) {}
  KdTree tree;
  const PointSet* points;
};

}  // namespace

std::shared_ptr<const KdTree> kdtree_cached(const exec::Executor& exec, const PointSet& points,
                                            int leaf_size,
                                            std::optional<std::uint64_t> points_fingerprint) {
  const auto build = [&] {
    auto owned = std::make_shared<CachedKdTree>(points, leaf_size);
    const KdTree* view = &owned->tree;
    return std::shared_ptr<const KdTree>(std::move(owned), view);
  };
  if (!exec.artifact_caching()) return build();

  const std::uint64_t base =
      points_fingerprint ? *points_fingerprint : point_set_fingerprint(exec, points);
  const std::uint64_t key = exec::combine_fingerprint(
      exec::tagged_fingerprint(exec::ArtifactTag::kdtree, base),
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(leaf_size)));
  std::shared_ptr<CachedKdTree> entry = exec.artifact_cache().find<CachedKdTree>(key);
  if (entry == nullptr || entry->points != &points) {
    entry = std::make_shared<CachedKdTree>(points, leaf_size);
    exec.artifact_cache().insert(key, entry, exec.cache_owner());
  }
  const KdTree* view = &entry->tree;
  return {std::move(entry), view};
}

}  // namespace pandora::spatial
