#include "pandora/spatial/brute_force.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "pandora/graph/mst.hpp"
#include "pandora/spatial/distance.hpp"

namespace pandora::spatial {

std::vector<Neighbor> brute_force_knn(const PointSet& points, index_t q, int k) {
  const index_t n = points.size();
  // One batched pass per dimension-blocked SoA block — this reference
  // implementation exercises the same kernels the kd-tree leaf scans use.
  const std::shared_ptr<const SoaStore> soa = points.soa();
  const double* query = points.point(q).data();
  std::vector<double> sq(static_cast<std::size_t>(n));
  for (index_t b = 0; b < soa->num_blocks(); ++b)
    distance::batch_squared_distances(query, soa->block(b), points.dim(), soa->block_size(b),
                                      SoaStore::kLane, sq.data() + b * SoaStore::kLane);
  std::vector<Neighbor> all;
  all.reserve(static_cast<std::size_t>(n) - 1);
  for (index_t p = 0; p < n; ++p)
    if (p != q) all.push_back({sq[static_cast<std::size_t>(p)], p});
  std::sort(all.begin(), all.end());
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<std::size_t>(k));
  return all;
}

namespace {

graph::EdgeList complete_graph_mst(const PointSet& points,
                                   const std::function<double(index_t, index_t)>& weight) {
  const index_t n = points.size();
  graph::EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) edges.push_back({i, j, weight(i, j)});
  return graph::kruskal_mst(edges, n);
}

}  // namespace

graph::EdgeList brute_force_emst(const PointSet& points) {
  return complete_graph_mst(points,
                            [&](index_t i, index_t j) { return points.distance(i, j); });
}

graph::EdgeList brute_force_mreach_mst(const PointSet& points,
                                       std::span<const double> core_distances) {
  return complete_graph_mst(points, [&](index_t i, index_t j) {
    return std::max({points.distance(i, j), core_distances[static_cast<std::size_t>(i)],
                     core_distances[static_cast<std::size_t>(j)]});
  });
}

}  // namespace pandora::spatial
