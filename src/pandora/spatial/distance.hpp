#pragma once

#include <cstddef>

#include "pandora/common/types.hpp"

/// Distance kernels: every spatial hot path (kNN probes, core distances,
/// Borůvka component queries, dyn:: insert probing) bottoms out here.
///
/// Two kernel families:
///
///  * Single-pair squared distances over row-major coordinates, specialised
///    over the paper's Table 2 dimensionalities (2-7) so the compiler fully
///    unrolls the loop, plus a `bounded` variant carrying the early-exit
///    pruning bound the kd-tree probes use (hoisted here so brute_force.cpp,
///    knn.cpp and dyn:: stop duplicating the loop).
///
///  * Batched one-query-to-many-points kernels over dimension-blocked SoA
///    coordinate blocks (`PointSet::soa()`, kd-tree leaf blocks): coordinate
///    d of `count` consecutive points is contiguous at `block + d * stride`,
///    so the point loop is unit-stride and vectorizes.  With PANDORA_SIMD=ON
///    an AVX2 path (portable GCC/Clang vector extensions, compiled in its
///    own -mavx2 translation unit and selected at runtime via
///    __builtin_cpu_supports) processes 4 points per lane-group.
///
/// BIT-IDENTITY CONTRACT: every kernel — scalar, auto-vectorized, AVX2 —
/// accumulates each point's sum in ascending dimension order with plain IEEE
/// double adds/multiplies (the build sets -ffp-contract=off, so no FMA
/// contraction can reassociate rounding).  The SIMD path vectorizes ACROSS
/// points, never across dimensions, so each lane performs exactly the scalar
/// op sequence and results are bit-identical across scalar/SIMD and across
/// all execution backends.  test_distance_kernels asserts this on negatives,
/// signed zeros, denormals and infinities; the conformance suite asserts it
/// end-to-end on dendrograms.
namespace pandora::spatial::distance {

namespace detail {

/// AVX2 batch kernel, defined in distance_kernels.cpp (the only TU compiled
/// with -mavx2).  Falls back to the scalar loop when PANDORA_SIMD is OFF or
/// the target/compiler has no AVX2 support.
void batch_squared_distances_avx2(const double* query, const double* block, int dim,
                                  index_t count, index_t stride, double* out);

/// Number of points a lane-group of the compiled-in SIMD batch kernel
/// processes per step on THIS cpu: 4 when the AVX2 path is compiled in and
/// the processor supports it, 1 otherwise (scalar fallback).
[[nodiscard]] int simd_width_impl();

}  // namespace detail

/// Runtime SIMD vector width of `batch_squared_distances` (points per
/// lane-group).  1 means the dispatch resolves to the scalar loop — either
/// PANDORA_SIMD=OFF, a non-x86/AVX2 toolchain, or a cpu without AVX2.  The
/// distance microbench gate only engages when this is >= 4.
[[nodiscard]] inline int simd_vector_width() {
#if defined(PANDORA_SIMD_ENABLED)
  static const int width = detail::simd_width_impl();
  return width;
#else
  return 1;
#endif
}

/// True when `batch_squared_distances` dispatches to a vector path.
[[nodiscard]] inline bool simd_enabled() { return simd_vector_width() > 1; }

/// True when the library was built with PANDORA_SIMD=ON (the AVX2 TU is
/// compiled in; whether it is *used* additionally depends on the cpu).
[[nodiscard]] constexpr bool simd_compiled() {
#if defined(PANDORA_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

namespace detail {

/// Fully-unrolled fixed-dimension pair kernel (ascending-d accumulation).
template <int Dim>
[[nodiscard]] inline double squared_distance_fixed(const double* a, const double* b) {
  double sum = 0;
  for (int d = 0; d < Dim; ++d) {  // constant trip count: unrolled, no branch
    const double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace detail

/// Squared Euclidean distance between two row-major coordinate arrays of
/// `dim` entries.  Dims 2-7 (Table 2) dispatch to unrolled bodies; the
/// generic loop covers the rest.  Accumulation order is ascending d in every
/// branch — the order all other kernels replicate.
[[nodiscard]] inline double squared_distance(const double* a, const double* b, int dim) {
  switch (dim) {
    case 2: return detail::squared_distance_fixed<2>(a, b);
    case 3: return detail::squared_distance_fixed<3>(a, b);
    case 4: return detail::squared_distance_fixed<4>(a, b);
    case 5: return detail::squared_distance_fixed<5>(a, b);
    case 6: return detail::squared_distance_fixed<6>(a, b);
    case 7: return detail::squared_distance_fixed<7>(a, b);
    default: {
      double sum = 0;
      for (int d = 0; d < dim; ++d) {
        const double diff = a[d] - b[d];
        sum += diff * diff;
      }
      return sum;
    }
  }
}

/// Squared distance with the kd-tree probes' early-exit pruning bound: stops
/// as soon as the partial sum strictly exceeds `bound` and returns that
/// partial (already > bound, so the caller's "discard when > bound" test is
/// unaffected).  When the result is <= bound it is EXACT and bit-identical
/// to `squared_distance` — partial sums are non-decreasing, so early exit
/// can only fire on pairs the caller discards, never on ties (a tie at
/// exactly `bound` runs to completion and keeps its index-based
/// tie-breaking).  Callers must not store an early-exited value as a
/// distance.
[[nodiscard]] inline double squared_distance_bounded(const double* a, const double* b, int dim,
                                                     double bound) {
  double sum = 0;
  for (int d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    sum += diff * diff;
    if (sum > bound) return sum;
  }
  return sum;
}

/// Scalar reference batch kernel: out[j] = squared distance from `query` to
/// point j of a dimension-blocked SoA block (`block[d * stride + j]` is
/// coordinate d of point j; `count` <= `stride` points are live).  Ascending
/// d per point, identical to `squared_distance`.
inline void batch_squared_distances_scalar(const double* query, const double* block, int dim,
                                           index_t count, index_t stride, double* out) {
  for (index_t j = 0; j < count; ++j) {
    double sum = 0;
    const double* p = block + j;
    for (int d = 0; d < dim; ++d) {
      const double diff = query[d] - p[static_cast<std::size_t>(d) *
                                       static_cast<std::size_t>(stride)];
      sum += diff * diff;
    }
    out[j] = sum;
  }
}

/// The dispatching batch kernel every spatial hot path calls: AVX2 when
/// compiled in and supported by the cpu, the scalar loop otherwise.  Both
/// paths are bit-identical (see the header comment).
inline void batch_squared_distances(const double* query, const double* block, int dim,
                                    index_t count, index_t stride, double* out) {
#if defined(PANDORA_SIMD_ENABLED)
  if (simd_enabled()) {
    detail::batch_squared_distances_avx2(query, block, dim, count, stride, out);
    return;
  }
#endif
  batch_squared_distances_scalar(query, block, dim, count, stride, out);
}

}  // namespace pandora::spatial::distance
