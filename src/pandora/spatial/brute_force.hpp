#pragma once

#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

/// O(n^2) reference implementations used as oracles by the test-suite.
namespace pandora::spatial {

/// k nearest neighbours of q by exhaustive scan, ascending (ties by index).
[[nodiscard]] std::vector<Neighbor> brute_force_knn(const PointSet& points, index_t q, int k);

/// Euclidean MST by Kruskal over the complete distance graph.
[[nodiscard]] graph::EdgeList brute_force_emst(const PointSet& points);

/// Mutual-reachability MST by Kruskal over the complete graph with
/// d_mreach(p, q) = max(core(p), core(q), |p - q|).
[[nodiscard]] graph::EdgeList brute_force_mreach_mst(const PointSet& points,
                                                     std::span<const double> core_distances);

}  // namespace pandora::spatial
