#pragma once

#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::spatial {

/// Distance (not squared) from every point to its k-th nearest neighbour,
/// excluding the point itself.  k <= 0 yields zeros.  Parallel over points.
[[nodiscard]] std::vector<double> kth_neighbor_distances(const exec::Executor& exec,
                                                         const PointSet& points,
                                                         const KdTree& tree, int k);

/// Deprecated shim over the per-thread default executor.
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] std::vector<double> kth_neighbor_distances(exec::Space space,
                                                         const PointSet& points,
                                                         const KdTree& tree, int k);

}  // namespace pandora::spatial
