#pragma once

#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::spatial {

/// Distance (not squared) from every point to its k-th nearest neighbour,
/// excluding the point itself.  k <= 0 yields zeros.  Parallel over points.
[[nodiscard]] std::vector<double> kth_neighbor_distances(const exec::Executor& exec,
                                                         const PointSet& points,
                                                         const KdTree& tree, int k);

}  // namespace pandora::spatial
