#include "pandora/spatial/knn.hpp"

#include <algorithm>
#include <cmath>

#include "pandora/exec/backend.hpp"

namespace pandora::spatial {

std::vector<double> kth_neighbor_distances(const exec::Executor& exec, const PointSet& points,
                                           const KdTree& tree, int k) {
  const index_t n = points.size();
  std::vector<double> result(static_cast<std::size_t>(n), 0.0);
  if (k <= 0 || n <= 1) return result;

  // Queries run in tree (leaf-partition) order so each knn_batch group is
  // spatially coherent — the group DFS then shares most of its node visits
  // and leaf SoA scans across the group.  Results scatter back by point id,
  // so the output is identical to querying 0..n-1 directly.
  const std::span<const index_t> order = tree.tree_order();
  const int k_eff = static_cast<int>(std::min<index_t>(k, n - 1));

  const auto run_chunk = [&](index_t lo, index_t hi, std::vector<Neighbor>& scratch) {
    tree.knn_batch(order.subspan(static_cast<std::size_t>(lo), static_cast<std::size_t>(hi - lo)),
                   k, scratch);
    for (index_t i = lo; i < hi; ++i)
      result[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = std::sqrt(
          scratch[static_cast<std::size_t>(i - lo + 1) * static_cast<std::size_t>(k_eff) - 1]
              .squared_distance);
  };
  if (exec.num_threads() > 1) {
    // Small chunks so uneven query costs balance dynamically across the
    // backend's workers (kd-tree searches vary with local density).
    constexpr index_t kQueriesPerChunk = 256;
    const int num_chunks = static_cast<int>((n + kQueriesPerChunk - 1) / kQueriesPerChunk);
    auto body = [&](int c) {
      // Per-worker scratch, persistent across chunks and calls (backend
      // workers are long-lived threads) — steady-state passes allocate
      // nothing here.
      thread_local std::vector<Neighbor> scratch;
      const index_t lo = static_cast<index_t>(c) * kQueriesPerChunk;
      const index_t hi = std::min<index_t>(n, lo + kQueriesPerChunk);
      run_chunk(lo, hi, scratch);
    };
    exec.run_chunks(num_chunks, exec.num_threads(), body);
  } else {
    std::vector<Neighbor> scratch;
    run_chunk(0, n, scratch);
  }
  return result;
}

}  // namespace pandora::spatial
