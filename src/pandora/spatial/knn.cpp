#include "pandora/spatial/knn.hpp"

#include <algorithm>
#include <cmath>

#include "pandora/exec/backend.hpp"

namespace pandora::spatial {

std::vector<double> kth_neighbor_distances(const exec::Executor& exec, const PointSet& points,
                                           const KdTree& tree, int k) {
  const index_t n = points.size();
  std::vector<double> result(static_cast<std::size_t>(n), 0.0);
  if (k <= 0 || n <= 1) return result;

  const auto query = [&](index_t q, std::vector<Neighbor>& scratch) {
    tree.knn(q, k, scratch);
    result[static_cast<std::size_t>(q)] =
        scratch.empty() ? 0.0 : std::sqrt(scratch.back().squared_distance);
  };
  if (exec.num_threads() > 1) {
    // Small chunks so uneven query costs balance dynamically across the
    // backend's workers (kd-tree searches vary with local density).
    constexpr index_t kQueriesPerChunk = 256;
    const int num_chunks = static_cast<int>((n + kQueriesPerChunk - 1) / kQueriesPerChunk);
    auto body = [&](int c) {
      // Per-worker scratch, persistent across chunks and calls (backend
      // workers are long-lived threads), mirroring the old per-thread
      // hoisting — steady-state passes allocate nothing here.
      thread_local std::vector<Neighbor> scratch;
      const index_t lo = static_cast<index_t>(c) * kQueriesPerChunk;
      const index_t hi = std::min<index_t>(n, lo + kQueriesPerChunk);
      for (index_t q = lo; q < hi; ++q) query(q, scratch);
    };
    exec.run_chunks(num_chunks, exec.num_threads(), body);
  } else {
    std::vector<Neighbor> scratch;
    for (index_t q = 0; q < n; ++q) query(q, scratch);
  }
  return result;
}

}  // namespace pandora::spatial
