#include "pandora/spatial/knn.hpp"

#include <cmath>
#include <omp.h>

#include "pandora/exec/parallel.hpp"

namespace pandora::spatial {

std::vector<double> kth_neighbor_distances(const exec::Executor& exec, const PointSet& points,
                                           const KdTree& tree, int k) {
  const index_t n = points.size();
  std::vector<double> result(static_cast<std::size_t>(n), 0.0);
  if (k <= 0 || n <= 1) return result;

  if (exec.space() == exec::Space::parallel) {
    const int num_threads = exec.num_threads();
#pragma omp parallel num_threads(num_threads)
    {
      std::vector<Neighbor> scratch;
#pragma omp for schedule(dynamic, 256)
      for (index_t q = 0; q < n; ++q) {
        tree.knn(q, k, scratch);
        result[static_cast<std::size_t>(q)] =
            scratch.empty() ? 0.0 : std::sqrt(scratch.back().squared_distance);
      }
    }
  } else {
    std::vector<Neighbor> scratch;
    for (index_t q = 0; q < n; ++q) {
      tree.knn(q, k, scratch);
      result[static_cast<std::size_t>(q)] =
          scratch.empty() ? 0.0 : std::sqrt(scratch.back().squared_distance);
    }
  }
  return result;
}

std::vector<double> kth_neighbor_distances(exec::Space space, const PointSet& points,
                                           const KdTree& tree, int k) {
  return kth_neighbor_distances(exec::default_executor(space), points, tree, k);
}

}  // namespace pandora::spatial
