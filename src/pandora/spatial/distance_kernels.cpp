// The AVX2 half of spatial/distance.hpp — the ONLY translation unit compiled
// with -mavx2 (see CMakeLists), so nothing outside the runtime-dispatched
// kernel below can ever emit an AVX2 instruction into a code path reached on
// a non-AVX2 cpu.  This file is additionally compiled with -ffp-contract=off
// (also set globally) so the per-lane multiply/add sequence can never fuse
// into an FMA and drift from the scalar kernel's rounding.

#include "pandora/spatial/distance.hpp"

namespace pandora::spatial::distance::detail {

#if defined(PANDORA_SIMD_ENABLED) && defined(__AVX2__) && (defined(__GNUC__) || defined(__clang__))

namespace {

/// 4 doubles = one 256-bit AVX2 register, via portable vector extensions.
typedef double vdouble4 __attribute__((vector_size(32), aligned(8)));

constexpr index_t kLanes = 4;

}  // namespace

int simd_width_impl() { return __builtin_cpu_supports("avx2") ? kLanes : 1; }

// Vectorized ACROSS points: lane l accumulates point (j + l)'s sum in
// ascending dimension order — exactly the scalar op sequence per point, so
// every lane's result is bit-identical to batch_squared_distances_scalar.
// The `aligned(8)` vector type makes every load/store unaligned-safe: SoA
// blocks hand out 64-byte-aligned rows, but kd-tree leaf blocks start at
// arbitrary point offsets and the tail loop below peels whatever remains.
void batch_squared_distances_avx2(const double* query, const double* block, int dim,
                                  index_t count, index_t stride, double* out) {
  index_t j = 0;
  for (; j + kLanes <= count; j += kLanes) {
    vdouble4 acc = {0, 0, 0, 0};
    for (int d = 0; d < dim; ++d) {
      const double q = query[d];
      const vdouble4 qv = {q, q, q, q};
      const vdouble4 pv = *reinterpret_cast<const vdouble4*>(
          block + static_cast<std::size_t>(d) * static_cast<std::size_t>(stride) + j);
      const vdouble4 diff = qv - pv;
      acc += diff * diff;
    }
    *reinterpret_cast<vdouble4*>(out + j) = acc;
  }
  if (j < count)  // tail: the scalar loop, same per-point order
    batch_squared_distances_scalar(query, block + j, dim, count - j, stride, out + j);
}

#else  // scalar stand-ins: PANDORA_SIMD=OFF, or no AVX2-capable toolchain

int simd_width_impl() { return 1; }

void batch_squared_distances_avx2(const double* query, const double* block, int dim,
                                  index_t count, index_t stride, double* out) {
  batch_squared_distances_scalar(query, block, dim, count, stride, out);
}

#endif

}  // namespace pandora::spatial::distance::detail
