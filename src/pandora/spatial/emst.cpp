#include "pandora/spatial/emst.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "pandora/common/expect.hpp"
#include "pandora/exec/fingerprint.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/union_find.hpp"

namespace pandora::spatial {

namespace {

/// Shared Borůvka skeleton over the components of a (possibly pre-seeded)
/// union-find; `use_mreach` selects the metric (core_sq must be the squared
/// core distances then).  Starting from singletons this is the full EMST;
/// starting from the components of a partial tree it joins exactly those
/// components with minimum-weight edges (the dynamic subsystem's erase path).
graph::EdgeList boruvka_emst(const exec::Executor& exec, const PointSet& points,
                             const KdTree& tree, const std::vector<double>& core_sq,
                             bool use_mreach, graph::ConcurrentUnionFind& uf) {
  const index_t n = points.size();
  graph::EdgeList mst;
  if (n <= 1) return mst;

  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  // Sentinel for the atomic-min tie-break slots: must compare larger than
  // every real point id (kNone would win every min).
  constexpr index_t kUnset = std::numeric_limits<index_t>::max();
  std::vector<index_t> component(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> best_weight(static_cast<std::size_t>(n), kInf);
  std::vector<index_t> best_point(static_cast<std::size_t>(n), kUnset);
  std::vector<Neighbor> point_best(static_cast<std::size_t>(n));
  std::vector<index_t> roots;
  roots.reserve(static_cast<std::size_t>(n));
  for (index_t p = 0; p < n; ++p)
    if (uf.find(p) == p) roots.push_back(p);
  const auto joins_needed = static_cast<std::size_t>(roots.size()) - 1;
  mst.reserve(joins_needed);
  // Only a pre-seeded join can have a dominant component worth benching; a
  // full build starts from singletons, skips the per-round component-size
  // scan entirely, and so keeps its pre-existing behaviour (edge selection
  // included) bit for bit.
  const bool seeded = static_cast<index_t>(roots.size()) < n;

  // Query-local annotations: the (possibly cached, shared) tree stays const.
  KdTreeAnnotations notes;
  if (use_mreach) tree.annotate_min_core(exec, core_sq, notes);

  while (mst.size() < joins_needed) {
    exec::parallel_for(exec, n, [&](size_type p) {
      component[static_cast<std::size_t>(p)] = uf.find(static_cast<index_t>(p));
    });
    tree.annotate_components(exec, component, notes);

    // When one component of a seeded join dominates (one giant survivor
    // plus small splinters after a few erases), it may sit the round out:
    // every edge crossing a component's cut is incident to one of its own
    // points, so each *small* component still finds its true minimum
    // outgoing edge from its own members' queries, and those selections
    // alone satisfy the cut property.  This turns a round's cost from n
    // tree queries into (n - |giant|).  The result stays an exact MST;
    // under exact distance ties the chosen edge *set* may differ from an
    // all-components-propose round (both are minimum weight).
    index_t passive = kNone;
    if (seeded) {
      index_t largest = kNone;
      size_type largest_size = 0;
      auto count_lease = exec.workspace().take<size_type>(n, 0);
      const std::span<size_type> count = count_lease.span();
      for (index_t p = 0; p < n; ++p) {
        const index_t c = component[static_cast<std::size_t>(p)];
        if (++count[static_cast<std::size_t>(c)] > largest_size) {
          largest_size = count[static_cast<std::size_t>(c)];
          largest = c;
        }
      }
      if (2 * largest_size >= n) passive = largest;
    }

    // Phase 1: every (active) point finds its nearest foreign point;
    // per-component minimum weight via atomic-min on the order-preserving
    // distance bits.
    //
    // A point's candidate from an earlier round stays *exact* while its
    // partner is still foreign: components only merge, so the foreign set
    // only shrinks, and a shrinking set that still contains the old
    // lexicographic minimum keeps it.  Stale candidates (partner absorbed)
    // re-query; in practice only points near the round's merges do, which
    // turns the n-queries-per-round cost into roughly n total.
    exec::parallel_for(exec, n, [&](size_type pi) {
      const auto p = static_cast<index_t>(pi);
      const index_t c = component[static_cast<std::size_t>(p)];
      // The giant proposes NOTHING — a partial minimum (e.g. over only its
      // cached members) would not be minimal across its cut and could hook
      // a wrong edge.  Its slot stays at the +inf sentinel, so phase 2
      // cannot match a leftover cached candidate against it either.
      if (c == passive) return;
      Neighbor nb = point_best[static_cast<std::size_t>(p)];
      if (nb.index == kNone || component[static_cast<std::size_t>(nb.index)] == c) {
        nb = use_mreach ? tree.nearest_other_component_mreach(p, c, component, core_sq, notes)
                        : tree.nearest_other_component(p, c, component, notes);
        point_best[static_cast<std::size_t>(p)] = nb;
      }
      if (nb.index != kNone)
        exec::atomic_fetch_min(best_weight[static_cast<std::size_t>(c)],
                               exec::order_preserving_bits(nb.squared_distance));
    });
    // Phase 2: among weight ties, the smallest point id wins (exact
    // lexicographic (weight, point) minimum without a 128-bit CAS).
    exec::parallel_for(exec, n, [&](size_type pi) {
      const auto p = static_cast<index_t>(pi);
      const Neighbor nb = point_best[static_cast<std::size_t>(p)];
      if (nb.index == kNone) return;
      const index_t c = component[static_cast<std::size_t>(p)];
      if (best_weight[static_cast<std::size_t>(c)] ==
          exec::order_preserving_bits(nb.squared_distance))
        exec::atomic_fetch_min(best_point[static_cast<std::size_t>(c)], p);
    });

    // Phase 3: hook the winners.  The union-find suppresses the duplicate
    // when two components choose each other.
    const std::size_t before = mst.size();
    for (const index_t r : roots) {
      const index_t p = best_point[static_cast<std::size_t>(r)];
      if (p == kUnset) continue;
      const Neighbor nb = point_best[static_cast<std::size_t>(p)];
      if (uf.find(p) != uf.find(nb.index)) {
        uf.unite(p, nb.index);
        mst.push_back({p, nb.index, std::sqrt(nb.squared_distance)});
      }
    }
    PANDORA_EXPECT(mst.size() > before, "Borůvka made no progress (duplicate points?)");

    std::vector<index_t> next_roots;
    next_roots.reserve(roots.size() / 2 + 1);
    for (const index_t r : roots) {
      if (uf.find(r) == r) next_roots.push_back(r);
      best_weight[static_cast<std::size_t>(r)] = kInf;
      best_point[static_cast<std::size_t>(r)] = kUnset;
    }
    roots.swap(next_roots);
  }
  return mst;
}

}  // namespace

graph::EdgeList euclidean_mst(const exec::Executor& exec, const PointSet& points,
                              const KdTree& tree) {
  graph::ConcurrentUnionFind uf(points.size());
  return boruvka_emst(exec, points, tree, {}, false, uf);
}

graph::EdgeList join_components_emst(const exec::Executor& exec, const PointSet& points,
                                     const KdTree& tree, graph::ConcurrentUnionFind& uf) {
  PANDORA_EXPECT(uf.size() == points.size(), "one union-find slot per point required");
  return boruvka_emst(exec, points, tree, {}, false, uf);
}

graph::EdgeList mutual_reachability_mst(const exec::Executor& exec, const PointSet& points,
                                        const KdTree& tree,
                                        std::span<const double> core_distances) {
  PANDORA_EXPECT(static_cast<index_t>(core_distances.size()) == points.size(),
                 "one core distance per point required");
  std::vector<double> core_sq(core_distances.size());
  for (std::size_t i = 0; i < core_sq.size(); ++i)
    core_sq[i] = core_distances[i] * core_distances[i];
  graph::ConcurrentUnionFind uf(points.size());
  return boruvka_emst(exec, points, tree, core_sq, true, uf);
}

namespace {

/// An EMST artifact as stored in the Executor's ArtifactCache (cf.
/// CachedKdTree / CachedCoreDistances: the PointSet identity rules out a
/// content-identical but different object aliasing someone else's edges).
struct CachedEmst {
  graph::EdgeList mst;
  const PointSet* points = nullptr;
};

}  // namespace

std::shared_ptr<const graph::EdgeList> mutual_reachability_mst_cached(
    const exec::Executor& exec, const PointSet& points, const KdTree& tree,
    std::span<const double> core_distances, int min_pts,
    std::optional<std::uint64_t> points_fingerprint) {
  const auto compute = [&] {
    auto owned = std::make_shared<CachedEmst>();
    owned->mst = mutual_reachability_mst(exec, points, tree, core_distances);
    owned->points = &points;
    return owned;
  };
  if (!exec.artifact_caching()) {
    auto owned = compute();
    const graph::EdgeList* view = &owned->mst;
    return {std::move(owned), view};
  }

  // min_pts determines the core distances and with them the metric, so it is
  // folded into the key with the full mixer — two sweep values never alias
  // (see exec/fingerprint.hpp).
  const std::uint64_t base =
      points_fingerprint ? *points_fingerprint : point_set_fingerprint(exec, points);
  const std::uint64_t key = exec::combine_fingerprint(
      exec::tagged_fingerprint(exec::ArtifactTag::emst, base),
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(min_pts)));
  std::shared_ptr<CachedEmst> entry = exec.artifact_cache().find<CachedEmst>(key);
  if (entry == nullptr || entry->points != &points) {
    entry = compute();
    exec.artifact_cache().insert(key, entry, exec.cache_owner());
  }
  const graph::EdgeList* view = &entry->mst;
  return {std::move(entry), view};
}

}  // namespace pandora::spatial
