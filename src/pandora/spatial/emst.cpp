#include "pandora/spatial/emst.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "pandora/common/expect.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/union_find.hpp"

namespace pandora::spatial {

namespace {

/// Shared Borůvka skeleton; `use_mreach` selects the metric (core_sq must be
/// the squared core distances then).
graph::EdgeList boruvka_emst(const exec::Executor& exec, const PointSet& points,
                             const KdTree& tree, const std::vector<double>& core_sq,
                             bool use_mreach) {
  const index_t n = points.size();
  graph::EdgeList mst;
  if (n <= 1) return mst;
  mst.reserve(static_cast<std::size_t>(n) - 1);

  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  // Sentinel for the atomic-min tie-break slots: must compare larger than
  // every real point id (kNone would win every min).
  constexpr index_t kUnset = std::numeric_limits<index_t>::max();
  graph::ConcurrentUnionFind uf(n);
  std::vector<index_t> component(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> best_weight(static_cast<std::size_t>(n), kInf);
  std::vector<index_t> best_point(static_cast<std::size_t>(n), kUnset);
  std::vector<Neighbor> point_best(static_cast<std::size_t>(n));
  std::vector<index_t> roots(static_cast<std::size_t>(n));
  std::iota(roots.begin(), roots.end(), index_t{0});

  // Query-local annotations: the (possibly cached, shared) tree stays const.
  KdTreeAnnotations notes;
  if (use_mreach) tree.annotate_min_core(exec, core_sq, notes);

  while (static_cast<index_t>(mst.size()) < n - 1) {
    exec::parallel_for(exec, n, [&](size_type p) {
      component[static_cast<std::size_t>(p)] = uf.find(static_cast<index_t>(p));
    });
    tree.annotate_components(exec, component, notes);

    // Phase 1: every point finds its nearest foreign point; per-component
    // minimum weight via atomic-min on the order-preserving distance bits.
    exec::parallel_for(exec, n, [&](size_type pi) {
      const auto p = static_cast<index_t>(pi);
      const index_t c = component[static_cast<std::size_t>(p)];
      const Neighbor nb =
          use_mreach ? tree.nearest_other_component_mreach(p, c, component, core_sq, notes)
                     : tree.nearest_other_component(p, c, component, notes);
      point_best[static_cast<std::size_t>(p)] = nb;
      if (nb.index != kNone)
        exec::atomic_fetch_min(best_weight[static_cast<std::size_t>(c)],
                               exec::order_preserving_bits(nb.squared_distance));
    });
    // Phase 2: among weight ties, the smallest point id wins (exact
    // lexicographic (weight, point) minimum without a 128-bit CAS).
    exec::parallel_for(exec, n, [&](size_type pi) {
      const auto p = static_cast<index_t>(pi);
      const Neighbor nb = point_best[static_cast<std::size_t>(p)];
      if (nb.index == kNone) return;
      const index_t c = component[static_cast<std::size_t>(p)];
      if (best_weight[static_cast<std::size_t>(c)] ==
          exec::order_preserving_bits(nb.squared_distance))
        exec::atomic_fetch_min(best_point[static_cast<std::size_t>(c)], p);
    });

    // Phase 3: hook the winners.  The union-find suppresses the duplicate
    // when two components choose each other.
    const std::size_t before = mst.size();
    for (const index_t r : roots) {
      const index_t p = best_point[static_cast<std::size_t>(r)];
      if (p == kUnset) continue;
      const Neighbor nb = point_best[static_cast<std::size_t>(p)];
      if (uf.find(p) != uf.find(nb.index)) {
        uf.unite(p, nb.index);
        mst.push_back({p, nb.index, std::sqrt(nb.squared_distance)});
      }
    }
    PANDORA_EXPECT(mst.size() > before, "Borůvka made no progress (duplicate points?)");

    std::vector<index_t> next_roots;
    next_roots.reserve(roots.size() / 2 + 1);
    for (const index_t r : roots) {
      if (uf.find(r) == r) next_roots.push_back(r);
      best_weight[static_cast<std::size_t>(r)] = kInf;
      best_point[static_cast<std::size_t>(r)] = kUnset;
    }
    roots.swap(next_roots);
  }
  return mst;
}

}  // namespace

graph::EdgeList euclidean_mst(const exec::Executor& exec, const PointSet& points,
                              const KdTree& tree) {
  return boruvka_emst(exec, points, tree, {}, false);
}

graph::EdgeList euclidean_mst(exec::Space space, const PointSet& points, const KdTree& tree) {
  return euclidean_mst(exec::default_executor(space), points, tree);
}

graph::EdgeList mutual_reachability_mst(const exec::Executor& exec, const PointSet& points,
                                        const KdTree& tree,
                                        std::span<const double> core_distances) {
  PANDORA_EXPECT(static_cast<index_t>(core_distances.size()) == points.size(),
                 "one core distance per point required");
  std::vector<double> core_sq(core_distances.size());
  for (std::size_t i = 0; i < core_sq.size(); ++i)
    core_sq[i] = core_distances[i] * core_distances[i];
  return boruvka_emst(exec, points, tree, core_sq, true);
}

graph::EdgeList mutual_reachability_mst(exec::Space space, const PointSet& points,
                                        const KdTree& tree,
                                        std::span<const double> core_distances) {
  return mutual_reachability_mst(exec::default_executor(space), points, tree, core_distances);
}

}  // namespace pandora::spatial
