#pragma once

#include <span>

#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/dendrogram/contraction.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/exec/executor.hpp"

namespace pandora::dendrogram {

/// Multilevel dendrogram expansion (Sections 3.3.2-3.3.3).
///
/// For every edge e contracted at level k, scans levels m = k+1, k+2, ... for
/// the first one whose supervertex containing e has a dendrogram parent
/// heavier than e; that (edge, side) pair is e's chain.  Edges that exhaust
/// all levels — and all edges of the final chain-only tree — belong to the
/// root chain.  A single radix sort by (chain, index) then materialises every
/// chain: the first edge of a chain attaches to the chain's defining edge,
/// all others to their predecessor (the "sorting + stitching" step).
///
/// Writes `edge_parent[g]` for every global edge g present in `hierarchy`;
/// other entries are left untouched.  Phases recorded with the Executor's
/// profiler: "expansion" (level scans + stitching), "sort" (the radix sort).
void expand_multilevel(const exec::Executor& exec, const ContractionHierarchy& hierarchy,
                       std::span<index_t> edge_parent);

/// Single-level expansion (Section 3.3.1) — the non-work-optimal variant kept
/// as an ablation and as an independent implementation for cross-validation.
///
/// Contracts the MST once, computes the full dendrogram of the α-MST (via the
/// multilevel machinery), then inserts every non-α edge by walking the
/// α-dendrogram upwards from its supervertex's parent until an edge heavier
/// than it is found — O(n · h_α) in the worst case, which is exactly the
/// behaviour Figure-level ablations quantify.
///
/// Writes `edge_parent[g]` for every edge of `sorted`.
void expand_single_level(const exec::Executor& exec, const SortedEdges& sorted,
                         std::span<index_t> edge_parent);

}  // namespace pandora::dendrogram
