#include "pandora/dendrogram/contraction.hpp"

#include <utility>

#include "pandora/common/expect.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/scan.hpp"
#include "pandora/graph/union_find.hpp"

namespace pandora::dendrogram {

namespace {

/// Levels at least halve (every vertex is an endpoint of its max-incident
/// edge, which is non-α, so every contraction merges each vertex into a
/// >= 2-vertex supervertex).  40 levels therefore cover any 32-bit input.
constexpr index_t kMaxLevels = 40;

/// Scratch leased once per hierarchy (at base-level sizes; deeper levels use
/// prefixes), so repeated builds on one Executor allocate nothing.
struct ContractionScratch {
  ContractionScratch(exec::Workspace& workspace, index_t num_vertices, size_type num_edges)
      : max_incident(workspace.take_uninit<index_t>(num_vertices)),
        representative(workspace.take_uninit<index_t>(num_vertices)),
        new_id(workspace.take_uninit<index_t>(num_vertices)),
        position(workspace.take_uninit<index_t>(num_edges)),
        uf_parent(workspace.take_uninit<index_t>(num_vertices)) {}

  exec::Workspace::Lease<index_t> max_incident;
  exec::Workspace::Lease<index_t> representative;
  exec::Workspace::Lease<index_t> new_id;
  exec::Workspace::Lease<index_t> position;
  exec::Workspace::Lease<index_t> uf_parent;
};

/// Caller-provided destinations of one level's outputs.
struct LevelOutput {
  std::span<std::int64_t> sided_parent;                  ///< size num_vertices
  std::span<index_t> vertex_map;                         ///< size num_vertices
  std::span<index_t> alpha;                              ///< size num_edges
  std::span<index_t> next_u, next_v, next_gid;           ///< capacity >= num_alpha
};

struct LevelCounts {
  index_t num_alpha = 0;
  index_t next_num_vertices = 0;
};

/// The contraction kernel of one level, writing through `out`.  An empty
/// `gid` denotes the identity mapping (edge i has global index i).
LevelCounts contract_level_core(const exec::Executor& exec, std::span<const index_t> u,
                                std::span<const index_t> v, std::span<const index_t> gid,
                                index_t num_vertices, const LevelOutput& out,
                                ContractionScratch& scratch) {
  const size_type m = static_cast<size_type>(u.size());
  const size_type nv = num_vertices;
  const bool identity_gid = gid.empty();
  const auto gid_of = [&](size_type i) {
    return identity_gid ? static_cast<index_t>(i) : gid[static_cast<std::size_t>(i)];
  };
  LevelCounts counts;

  // maxIncident(vertex): the incident edge with the largest global index
  // (= the lightest incident edge).  Idempotent atomic-max scatter.
  const std::span<index_t> max_incident = scratch.max_incident.span().first(nv);
  exec::parallel_for(exec, nv, [&](size_type x) { max_incident[x] = kNone; });
  exec::parallel_for(exec, m, [&](size_type i) {
    const index_t g = gid_of(i);
    exec::atomic_fetch_max(max_incident[static_cast<std::size_t>(u[static_cast<std::size_t>(i)])], g);
    exec::atomic_fetch_max(max_incident[static_cast<std::size_t>(v[static_cast<std::size_t>(i)])], g);
  });

  // Fused pass: sided parents (Eq. 1), α classification (Eq. 2) and the
  // α count.  Every vertex's sided slot has exactly one writer (the winning
  // edge), so no initialisation fill is needed.
  counts.num_alpha = static_cast<index_t>(exec::parallel_sum(
      exec, m, size_type{0}, [&](size_type i) -> size_type {
        const index_t g = gid_of(i);
        const index_t a = u[static_cast<std::size_t>(i)];
        const index_t b = v[static_cast<std::size_t>(i)];
        const bool owns_a = max_incident[static_cast<std::size_t>(a)] == g;
        const bool owns_b = max_incident[static_cast<std::size_t>(b)] == g;
        if (owns_a) out.sided_parent[static_cast<std::size_t>(a)] =
            2 * static_cast<std::int64_t>(g);
        if (owns_b) out.sided_parent[static_cast<std::size_t>(b)] =
            2 * static_cast<std::int64_t>(g) + 1;
        const index_t is_alpha = (!owns_a && !owns_b) ? 1 : 0;
        out.alpha[static_cast<std::size_t>(i)] = is_alpha;
        return is_alpha;
      }));

  if (counts.num_alpha == 0) return counts;  // final, chain-only level

  // Contract every non-α edge: merge its endpoints into a supervertex.
  const std::span<index_t> uf_parent = scratch.uf_parent.span().first(nv);
  exec::parallel_for(exec, nv, [&](size_type x) { uf_parent[x] = static_cast<index_t>(x); });
  graph::ConcurrentUnionFindView uf(uf_parent);
  exec::parallel_for(exec, m, [&](size_type i) {
    if (!out.alpha[static_cast<std::size_t>(i)])
      uf.unite(u[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)]);
  });

  // Compact the component representatives into dense next-level vertex ids:
  // one find per vertex, reused for both the root flags and the relabelling.
  const std::span<index_t> representative = scratch.representative.span().first(nv);
  const std::span<index_t> new_id = scratch.new_id.span().first(nv);
  exec::parallel_for(exec, nv, [&](size_type x) {
    const index_t rep = uf.find(static_cast<index_t>(x));
    representative[static_cast<std::size_t>(x)] = rep;
    new_id[static_cast<std::size_t>(x)] = rep == x ? 1 : 0;
  });
  counts.next_num_vertices = exec::exclusive_scan<index_t>(
      exec, std::span<const index_t>(new_id), new_id);
  exec::parallel_for(exec, nv, [&](size_type x) {
    out.vertex_map[static_cast<std::size_t>(x)] =
        new_id[static_cast<std::size_t>(representative[static_cast<std::size_t>(x)])];
  });

  // Emit the contracted tree: α-edges with relabelled endpoints, in the same
  // (global-index) relative order for determinism.  The α bound
  // num_alpha <= (m-1)/2 holds for trees; reject anything that exceeds the
  // caller's buffers (multigraphs, forests) instead of scattering past them.
  PANDORA_EXPECT(static_cast<std::size_t>(counts.num_alpha) <= out.next_u.size(),
                 "input is not a tree: alpha-edge count exceeds the contraction bound");
  const std::span<index_t> position = scratch.position.span().first(m);
  exec::exclusive_scan<index_t>(exec, std::span<const index_t>(out.alpha), position);
  exec::parallel_for(exec, m, [&](size_type i) {
    if (!out.alpha[static_cast<std::size_t>(i)]) return;
    const auto p = static_cast<std::size_t>(position[static_cast<std::size_t>(i)]);
    out.next_u[p] = out.vertex_map[static_cast<std::size_t>(u[static_cast<std::size_t>(i)])];
    out.next_v[p] = out.vertex_map[static_cast<std::size_t>(v[static_cast<std::size_t>(i)])];
    out.next_gid[p] = gid_of(i);
  });
  return counts;
}

}  // namespace

namespace detail {

LevelResult contract_one_level(const exec::Executor& exec, std::span<const index_t> u,
                               std::span<const index_t> v, std::span<const index_t> gid,
                               index_t num_vertices) {
  exec::Workspace& workspace = exec.workspace();
  const size_type m = static_cast<size_type>(u.size());
  const size_type next_capacity = m / 2 + 1;  // num_alpha <= (m - 1) / 2

  LevelResult r;
  r.sided_store = workspace.take_uninit<std::int64_t>(num_vertices);
  r.map_store = workspace.take_uninit<index_t>(num_vertices);
  r.alpha_store = workspace.take_uninit<index_t>(m);
  r.next_store = workspace.take_uninit<index_t>(3 * next_capacity);

  ContractionScratch scratch(workspace, num_vertices, m);
  LevelOutput out;
  out.sided_parent = r.sided_store.span();
  out.vertex_map = r.map_store.span();
  out.alpha = r.alpha_store.span();
  out.next_u = r.next_store.span().first(next_capacity);
  out.next_v = r.next_store.span().subspan(static_cast<std::size_t>(next_capacity),
                                           static_cast<std::size_t>(next_capacity));
  out.next_gid = r.next_store.span().subspan(static_cast<std::size_t>(2 * next_capacity),
                                             static_cast<std::size_t>(next_capacity));

  const LevelCounts counts = contract_level_core(exec, u, v, gid, num_vertices, out, scratch);
  r.level.num_vertices = num_vertices;
  r.level.num_edges = static_cast<index_t>(m);
  r.level.num_alpha = counts.num_alpha;
  r.level.sided_parent = out.sided_parent;
  r.alpha = out.alpha;
  if (counts.num_alpha > 0) {
    const auto na = static_cast<std::size_t>(counts.num_alpha);
    r.level.vertex_map = out.vertex_map;
    r.next_u = out.next_u.first(na);
    r.next_v = out.next_v.first(na);
    r.next_gid = out.next_gid.first(na);
    r.next_num_vertices = counts.next_num_vertices;
  }
  return r;
}

}  // namespace detail

ContractionHierarchy build_hierarchy(const exec::Executor& exec, std::span<const index_t> u,
                                     std::span<const index_t> v, std::span<const index_t> gid,
                                     index_t num_vertices, index_t num_global_edges) {
  exec::Workspace& workspace = exec.workspace();
  const size_type m0 = static_cast<size_type>(u.size());
  PANDORA_EXPECT(gid.empty() || static_cast<size_type>(gid.size()) == m0,
                 "gid must be empty (identity) or cover every edge");

  ContractionHierarchy h;
  h.num_global_edges = num_global_edges;
  h.levels_store = workspace.take_uninit<ContractionLevel>(kMaxLevels);
  h.sided_store = workspace.take_uninit<std::int64_t>(2 * static_cast<size_type>(num_vertices));
  h.map_store = workspace.take_uninit<index_t>(2 * static_cast<size_type>(num_vertices));
  h.fate_store = workspace.take_uninit<index_t>(2 * static_cast<size_type>(num_global_edges));
  const std::span<index_t> contraction_level =
      h.fate_store.span().first(static_cast<std::size_t>(num_global_edges));
  const std::span<index_t> supervertex =
      h.fate_store.span().subspan(static_cast<std::size_t>(num_global_edges));
  exec::parallel_for(exec, 2 * static_cast<size_type>(num_global_edges),
                     [&](size_type i) { h.fate_store[static_cast<std::size_t>(i)] = kNone; });

  // Ping-pong buffers for the contracted (u, v, gid) triples; level k+1 has
  // at most (m_k - 1)/2 edges, so half the base size bounds every level.
  const size_type next_capacity = m0 / 2 + 1;
  exec::Workspace::Lease<index_t> buffer_a = workspace.take_uninit<index_t>(3 * next_capacity);
  exec::Workspace::Lease<index_t> buffer_b = workspace.take_uninit<index_t>(3 * next_capacity);
  exec::Workspace::Lease<index_t> alpha = workspace.take_uninit<index_t>(m0);
  ContractionScratch scratch(workspace, num_vertices, m0);

  std::span<const index_t> cur_u = u;
  std::span<const index_t> cur_v = v;
  std::span<const index_t> cur_gid = gid;  // empty = identity at the base level
  index_t cur_nv = num_vertices;
  index_t num_levels = 0;
  std::size_t vertex_offset = 0;  // into sided_store / map_store
  bool write_a = true;

  while (true) {
    const size_type m = static_cast<size_type>(cur_u.size());
    PANDORA_EXPECT(num_levels < kMaxLevels, "contraction exceeded its level bound");
    // Levels halve on trees, so the flat per-vertex storage is bounded by
    // 2*num_vertices; a non-halving input (a forest) would walk past it.
    PANDORA_EXPECT(vertex_offset + static_cast<std::size_t>(cur_nv) <=
                       h.sided_store.size(),
                   "input is not a spanning tree: contraction does not shrink");
    LevelOutput out;
    out.sided_parent =
        h.sided_store.span().subspan(vertex_offset, static_cast<std::size_t>(cur_nv));
    out.vertex_map = h.map_store.span().subspan(vertex_offset, static_cast<std::size_t>(cur_nv));
    out.alpha = alpha.span().first(static_cast<std::size_t>(m));
    const std::span<index_t> next = (write_a ? buffer_a : buffer_b).span();
    out.next_u = next.first(static_cast<std::size_t>(next_capacity));
    out.next_v = next.subspan(static_cast<std::size_t>(next_capacity),
                              static_cast<std::size_t>(next_capacity));
    out.next_gid = next.subspan(static_cast<std::size_t>(2 * next_capacity),
                                static_cast<std::size_t>(next_capacity));

    const LevelCounts counts =
        contract_level_core(exec, cur_u, cur_v, cur_gid, cur_nv, out, scratch);
    const index_t level_index = num_levels;
    const bool identity_gid = cur_gid.empty();
    const auto gid_of = [&](size_type i) {
      return identity_gid ? static_cast<index_t>(i) : cur_gid[static_cast<std::size_t>(i)];
    };

    ContractionLevel level;
    level.num_vertices = cur_nv;
    level.num_edges = static_cast<index_t>(m);
    level.num_alpha = counts.num_alpha;
    level.sided_parent = out.sided_parent;

    if (counts.num_alpha == 0) {
      // Final level: its edges form the root chain of the dendrogram.
      exec::parallel_for(exec, m, [&](size_type i) {
        contraction_level[static_cast<std::size_t>(gid_of(i))] = level_index;
      });
      h.levels_store[static_cast<std::size_t>(num_levels++)] = level;
      break;
    }

    level.vertex_map = out.vertex_map;
    exec::parallel_for(exec, m, [&](size_type i) {
      if (out.alpha[static_cast<std::size_t>(i)]) return;
      const index_t g = gid_of(i);
      contraction_level[static_cast<std::size_t>(g)] = level_index;
      supervertex[static_cast<std::size_t>(g)] =
          out.vertex_map[static_cast<std::size_t>(cur_u[static_cast<std::size_t>(i)])];
    });
    h.levels_store[static_cast<std::size_t>(num_levels++)] = level;

    const auto na = static_cast<std::size_t>(counts.num_alpha);
    cur_u = out.next_u.first(na);
    cur_v = out.next_v.first(na);
    cur_gid = out.next_gid.first(na);
    cur_nv = counts.next_num_vertices;
    vertex_offset += static_cast<std::size_t>(level.num_vertices);
    write_a = !write_a;
  }

  h.levels = std::span<const ContractionLevel>(h.levels_store.data(),
                                               static_cast<std::size_t>(num_levels));
  h.contraction_level = contraction_level;
  h.supervertex = supervertex;
  return h;
}

}  // namespace pandora::dendrogram
