#include "pandora/dendrogram/contraction.hpp"

#include <numeric>
#include <span>
#include <utility>

#include "pandora/exec/parallel.hpp"
#include "pandora/exec/scan.hpp"
#include "pandora/graph/union_find.hpp"

namespace pandora::dendrogram {

namespace detail {

LevelResult contract_one_level(const exec::Executor& exec, const std::vector<index_t>& u,
                               const std::vector<index_t>& v, const std::vector<index_t>& gid,
                               index_t num_vertices, ContractionWorkspace& workspace) {
  const size_type m = static_cast<size_type>(gid.size());
  const size_type nv = num_vertices;
  LevelResult r;
  r.level.num_vertices = num_vertices;
  r.level.num_edges = static_cast<index_t>(m);

  // maxIncident(vertex): the incident edge with the largest global index
  // (= the lightest incident edge).  Idempotent atomic-max scatter.
  std::vector<index_t>& max_incident = *workspace.max_incident;
  max_incident.assign(static_cast<std::size_t>(nv), kNone);
  exec::parallel_for(exec, m, [&](size_type i) {
    exec::atomic_fetch_max(max_incident[static_cast<std::size_t>(u[static_cast<std::size_t>(i)])],
                           gid[static_cast<std::size_t>(i)]);
    exec::atomic_fetch_max(max_incident[static_cast<std::size_t>(v[static_cast<std::size_t>(i)])],
                           gid[static_cast<std::size_t>(i)]);
  });

  // Fused pass: sided parents (Eq. 1), α classification (Eq. 2) and the
  // α count.  Every vertex's sided slot has exactly one writer (the winning
  // edge), so no initialisation fill is needed.
  r.level.sided_parent.resize(static_cast<std::size_t>(nv));
  r.alpha.resize(static_cast<std::size_t>(m));
  r.level.num_alpha = static_cast<index_t>(exec::parallel_sum(
      exec, m, size_type{0}, [&](size_type i) -> size_type {
        const index_t g = gid[static_cast<std::size_t>(i)];
        const index_t a = u[static_cast<std::size_t>(i)];
        const index_t b = v[static_cast<std::size_t>(i)];
        const bool owns_a = max_incident[static_cast<std::size_t>(a)] == g;
        const bool owns_b = max_incident[static_cast<std::size_t>(b)] == g;
        if (owns_a) r.level.sided_parent[static_cast<std::size_t>(a)] =
            2 * static_cast<std::int64_t>(g);
        if (owns_b) r.level.sided_parent[static_cast<std::size_t>(b)] =
            2 * static_cast<std::int64_t>(g) + 1;
        const index_t is_alpha = (!owns_a && !owns_b) ? 1 : 0;
        r.alpha[static_cast<std::size_t>(i)] = is_alpha;
        return is_alpha;
      }));

  if (r.level.num_alpha == 0) return r;  // final, chain-only level

  // Contract every non-α edge: merge its endpoints into a supervertex.
  graph::ConcurrentUnionFind uf(num_vertices);
  exec::parallel_for(exec, m, [&](size_type i) {
    if (!r.alpha[static_cast<std::size_t>(i)])
      uf.unite(u[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)]);
  });

  // Compact the component representatives into dense next-level vertex ids:
  // one find per vertex, reused for both the root flags and the relabelling.
  std::vector<index_t>& representative = *workspace.representative;
  std::vector<index_t>& new_id = *workspace.new_id;
  representative.resize(static_cast<std::size_t>(nv));
  new_id.resize(static_cast<std::size_t>(nv));
  exec::parallel_for(exec, nv, [&](size_type x) {
    const index_t rep = uf.find(static_cast<index_t>(x));
    representative[static_cast<std::size_t>(x)] = rep;
    new_id[static_cast<std::size_t>(x)] = rep == x ? 1 : 0;
  });
  r.next_num_vertices = exec::exclusive_scan<index_t>(exec, new_id, new_id);
  r.level.vertex_map.resize(static_cast<std::size_t>(nv));
  exec::parallel_for(exec, nv, [&](size_type x) {
    r.level.vertex_map[static_cast<std::size_t>(x)] =
        new_id[static_cast<std::size_t>(representative[static_cast<std::size_t>(x)])];
  });

  // Emit the contracted tree: α-edges with relabelled endpoints, in the same
  // (global-index) relative order for determinism.
  std::vector<index_t>& position = *workspace.position;
  position.resize(static_cast<std::size_t>(m));
  exec::exclusive_scan<index_t>(exec, std::span<const index_t>(r.alpha),
                                std::span<index_t>(position));
  const auto na = static_cast<std::size_t>(r.level.num_alpha);
  r.next_u.resize(na);
  r.next_v.resize(na);
  r.next_gid.resize(na);
  exec::parallel_for(exec, m, [&](size_type i) {
    if (!r.alpha[static_cast<std::size_t>(i)]) return;
    const auto p = static_cast<std::size_t>(position[static_cast<std::size_t>(i)]);
    r.next_u[p] = r.level.vertex_map[static_cast<std::size_t>(u[static_cast<std::size_t>(i)])];
    r.next_v[p] = r.level.vertex_map[static_cast<std::size_t>(v[static_cast<std::size_t>(i)])];
    r.next_gid[p] = gid[static_cast<std::size_t>(i)];
  });
  return r;
}

LevelResult contract_one_level(const exec::Executor& exec, const std::vector<index_t>& u,
                               const std::vector<index_t>& v, const std::vector<index_t>& gid,
                               index_t num_vertices) {
  ContractionWorkspace workspace(exec.workspace(), num_vertices,
                                 static_cast<index_t>(gid.size()));
  return contract_one_level(exec, u, v, gid, num_vertices, workspace);
}

LevelResult contract_one_level(exec::Space space, const std::vector<index_t>& u,
                               const std::vector<index_t>& v, const std::vector<index_t>& gid,
                               index_t num_vertices) {
  return contract_one_level(exec::default_executor(space), u, v, gid, num_vertices);
}

}  // namespace detail

ContractionHierarchy build_hierarchy(const exec::Executor& exec, std::vector<index_t> u,
                                     std::vector<index_t> v, std::vector<index_t> gid,
                                     index_t num_vertices, index_t num_global_edges) {
  ContractionHierarchy h;
  h.num_global_edges = num_global_edges;
  h.contraction_level.assign(static_cast<std::size_t>(num_global_edges), kNone);
  h.supervertex.assign(static_cast<std::size_t>(num_global_edges), kNone);

  detail::ContractionWorkspace workspace(exec.workspace(), num_vertices,
                                         static_cast<index_t>(gid.size()));
  while (true) {
    detail::LevelResult r =
        detail::contract_one_level(exec, u, v, gid, num_vertices, workspace);
    const index_t level_index = h.num_levels();
    const size_type m = static_cast<size_type>(gid.size());

    if (r.level.num_alpha == 0) {
      // Final level: its edges form the root chain of the dendrogram.
      exec::parallel_for(exec, m, [&](size_type i) {
        h.contraction_level[static_cast<std::size_t>(gid[static_cast<std::size_t>(i)])] =
            level_index;
      });
      h.levels.push_back(std::move(r.level));
      break;
    }

    exec::parallel_for(exec, m, [&](size_type i) {
      if (r.alpha[static_cast<std::size_t>(i)]) return;
      const index_t g = gid[static_cast<std::size_t>(i)];
      h.contraction_level[static_cast<std::size_t>(g)] = level_index;
      h.supervertex[static_cast<std::size_t>(g)] =
          r.level.vertex_map[static_cast<std::size_t>(u[static_cast<std::size_t>(i)])];
    });

    u = std::move(r.next_u);
    v = std::move(r.next_v);
    gid = std::move(r.next_gid);
    num_vertices = r.next_num_vertices;
    h.levels.push_back(std::move(r.level));
  }
  return h;
}

ContractionHierarchy build_hierarchy(exec::Space space, std::vector<index_t> u,
                                     std::vector<index_t> v, std::vector<index_t> gid,
                                     index_t num_vertices, index_t num_global_edges) {
  return build_hierarchy(exec::default_executor(space), std::move(u), std::move(v),
                         std::move(gid), num_vertices, num_global_edges);
}

}  // namespace pandora::dendrogram
