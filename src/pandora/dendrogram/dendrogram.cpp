#include "pandora/dendrogram/dendrogram.hpp"

#include <array>

namespace pandora::dendrogram {

// (Dendrogram is a plain aggregate; behaviour lives in analysis.cpp and the
// construction algorithms.  This translation unit anchors the type for ODR
// purposes and hosts nothing else by design.)

}  // namespace pandora::dendrogram
