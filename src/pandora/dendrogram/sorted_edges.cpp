#include "pandora/dendrogram/sorted_edges.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "pandora/exec/fingerprint.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/tree.hpp"

namespace pandora::dendrogram {

namespace {

using exec::mix_fingerprint;

/// Low 32 bits of edge id's descending weight key — the part the packed sort
/// discards; recomputed on demand by the collision fix-up.
std::uint32_t low_key_of(const graph::EdgeList& edges, std::uint64_t packed_entry) {
  const auto id = static_cast<std::size_t>(packed_entry & 0xffffffffu);
  return static_cast<std::uint32_t>(exec::descending_weight_key(edges[id].weight));
}

/// Repairs runs of equal 32-bit key prefixes whose weights differ below the
/// prefix: after the prefix sort such a run is in ascending id order, but the
/// canonical order continues through the remaining weight-key bits first.
/// Exact ties (identical weights) have identical low keys too, so their runs
/// are left untouched and keep the stable ascending-id tie-break.
///
/// Two passes keep the repair race-free: a read-only pass marks each
/// repair-run start with its end position, then a second pass sorts the
/// (disjoint) marked runs.  Total scan work is O(n) — each element belongs to
/// exactly one run, walked by the run's first entry — and repairs themselves
/// are rare and local.
///
/// Returns false without repairing when the marked runs cover most of the
/// array: weights so tightly clustered that the 32-bit prefix separates
/// almost nothing would turn the repair into one big serial comparison sort,
/// so the caller falls back to the parallel merge argsort instead.
[[nodiscard]] bool repair_prefix_collisions(const exec::Executor& exec,
                                            std::span<std::uint64_t> packed,
                                            const graph::EdgeList& edges) {
  const size_type n = static_cast<size_type>(packed.size());
  auto run_end_lease = exec.workspace().take_uninit<size_type>(n);
  const std::span<size_type> run_end = run_end_lease.span();

  // Pass 1 (reads packed, writes only run_end[p]): find runs needing repair.
  exec::parallel_for(exec, n, [&](size_type p) {
    run_end[static_cast<std::size_t>(p)] = 0;  // 0 = nothing to repair here
    const std::uint64_t prefix = packed[static_cast<std::size_t>(p)] >> 32;
    if (p > 0 && (packed[static_cast<std::size_t>(p - 1)] >> 32) == prefix) return;
    size_type end = p + 1;
    while (end < n && (packed[static_cast<std::size_t>(end)] >> 32) == prefix) ++end;
    if (end - p < 2) return;
    const std::uint32_t first = low_key_of(edges, packed[static_cast<std::size_t>(p)]);
    for (size_type q = p + 1; q < end; ++q) {
      if (low_key_of(edges, packed[static_cast<std::size_t>(q)]) != first) {
        run_end[static_cast<std::size_t>(p)] = end;
        return;
      }
    }
  });

  const size_type total_repair = exec::parallel_sum(
      exec, n, size_type{0}, [&](size_type p) {
        const size_type end = run_end[static_cast<std::size_t>(p)];
        return end == 0 ? size_type{0} : end - p;
      });
  if (2 * total_repair > n) return false;  // degenerate: prefixes separate nothing

  // Pass 2: sort each marked run; runs are disjoint, so writes never overlap
  // and every read stays within the writer's own run.
  exec::parallel_for(exec, n, [&](size_type p) {
    const size_type end = run_end[static_cast<std::size_t>(p)];
    if (end == 0) return;
    std::sort(packed.begin() + p, packed.begin() + end,
              [&](std::uint64_t a, std::uint64_t b) {
                const std::uint32_t la = low_key_of(edges, a);
                const std::uint32_t lb = low_key_of(edges, b);
                if (la != lb) return la < lb;
                return (a & 0xffffffffu) < (b & 0xffffffffu);
              });
  });
  return true;
}

/// The key-packed radix argsort: writes the descending-(weight, id)
/// permutation into `order`.  Returns false (leaving `order` unspecified)
/// when the input degenerates the prefix repair — the caller then uses the
/// comparison path.
[[nodiscard]] bool radix_argsort(const exec::Executor& exec, const graph::EdgeList& edges,
                                 std::span<index_t> order) {
  const size_type n = static_cast<size_type>(edges.size());
  auto packed_lease = exec.workspace().take_uninit<std::uint64_t>(n);
  const std::span<std::uint64_t> packed = packed_lease.span();
  exec::parallel_for(exec, n, [&](size_type i) {
    packed[static_cast<std::size_t>(i)] = exec::pack_key_and_id(
        exec::descending_weight_key(edges[static_cast<std::size_t>(i)].weight),
        static_cast<index_t>(i));
  });
  if (exec.parallelize(n)) {
    // Radix over the key bytes only; stability over the id bytes implements
    // the ascending-id tie-break (ids were packed in ascending order).
    exec::radix_sort_u64(exec, packed, /*first_byte=*/4, /*last_byte=*/8);
  } else {
    // A full-word sort is equivalent here: among equal key prefixes the low
    // word is the unique id, so ascending full words = ascending (prefix, id).
    std::sort(packed.begin(), packed.end());
  }
  if (!repair_prefix_collisions(exec, packed, edges)) return false;
  exec::parallel_for(exec, n, [&](size_type i) {
    order[static_cast<std::size_t>(i)] =
        static_cast<index_t>(packed[static_cast<std::size_t>(i)] & 0xffffffffu);
  });
  return true;
}

/// The comparison-based reference: a stable merge argsort under the explicit
/// descending-(weight, id) comparator.
void merge_argsort(const exec::Executor& exec, const graph::EdgeList& edges,
                   std::vector<index_t>& order) {
  const size_type n = static_cast<size_type>(edges.size());
  exec::parallel_for(exec, n,
                     [&](size_type i) { order[static_cast<std::size_t>(i)] =
                                            static_cast<index_t>(i); });
  exec::merge_sort(exec, order, [&edges](index_t a, index_t b) {
    const double wa = edges[static_cast<std::size_t>(a)].weight;
    const double wb = edges[static_cast<std::size_t>(b)].weight;
    if (wa != wb) return wa > wb;
    return a < b;
  });
}

/// A sorted-edges artifact plus its validation state, as stored in the
/// Executor's ArtifactCache.  The flag is atomic because cached artifacts may
/// be shared by concurrent batch queries (see the ArtifactCache locking
/// contract): validation is monotone (false -> true), so a racy double
/// validation is merely redundant work.
struct CachedSortedEdges {
  SortedEdges sorted;
  std::atomic<bool> validated{false};
};

}  // namespace

void sort_edges_into(const exec::Executor& exec, const graph::EdgeList& edges,
                     index_t num_vertices, SortedEdges& out) {
  const size_type n = static_cast<size_type>(edges.size());
  out.num_vertices = num_vertices;
  out.u.resize(static_cast<std::size_t>(n));
  out.v.resize(static_cast<std::size_t>(n));
  out.weight.resize(static_cast<std::size_t>(n));
  out.order.resize(static_cast<std::size_t>(n));

  if (exec.edge_sort_algorithm() == exec::EdgeSortAlgorithm::merge ||
      !radix_argsort(exec, edges, out.order)) {
    merge_argsort(exec, edges, out.order);
  }

  // Gather endpoints and weights once from the permutation (never sort
  // structs: the sort moved 8-byte words only).
  exec::parallel_for(exec, n, [&](size_type i) {
    const auto& e = edges[static_cast<std::size_t>(out.order[static_cast<std::size_t>(i)])];
    out.u[static_cast<std::size_t>(i)] = e.u;
    out.v[static_cast<std::size_t>(i)] = e.v;
    out.weight[static_cast<std::size_t>(i)] = e.weight;
  });
}

SortedEdges sort_edges(const exec::Executor& exec, const graph::EdgeList& edges,
                       index_t num_vertices, bool validate_input) {
  if (validate_input) graph::validate_tree(edges, num_vertices);
  SortedEdges sorted;
  sort_edges_into(exec, edges, num_vertices, sorted);
  return sorted;
}

std::uint64_t mst_fingerprint(const exec::Executor& exec, const graph::EdgeList& edges,
                              index_t num_vertices) {
  const size_type n = static_cast<size_type>(edges.size());
  // Each edge hashes with its position, so the sum is order-sensitive while
  // remaining a deterministic parallel reduction.
  const std::uint64_t body = exec::parallel_sum(
      exec, n, std::uint64_t{0}, [&](size_type i) {
        const auto& e = edges[static_cast<std::size_t>(i)];
        const std::uint64_t endpoints =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u)) << 32) |
            static_cast<std::uint32_t>(e.v);
        const std::uint64_t salted =
            std::bit_cast<std::uint64_t>(e.weight) +
            0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
        return mix_fingerprint(endpoints ^ mix_fingerprint(salted));
      });
  return mix_fingerprint(
      body ^ mix_fingerprint(static_cast<std::uint64_t>(n)) ^
      mix_fingerprint(~static_cast<std::uint64_t>(static_cast<std::uint32_t>(num_vertices))));
}

std::shared_ptr<const SortedEdges> sorted_edges_cached(const exec::Executor& exec,
                                                       const graph::EdgeList& edges,
                                                       index_t num_vertices,
                                                       bool validate_input) {
  if (!exec.artifact_caching()) {
    if (validate_input) graph::validate_tree(edges, num_vertices);
    auto owned = std::make_shared<CachedSortedEdges>();
    owned->validated = validate_input;
    sort_edges_into(exec, edges, num_vertices, owned->sorted);
    const SortedEdges* view = &owned->sorted;
    return {std::move(owned), view};
  }

  const std::uint64_t fingerprint = mst_fingerprint(exec, edges, num_vertices);
  std::shared_ptr<CachedSortedEdges> entry =
      exec.artifact_cache().find<CachedSortedEdges>(fingerprint);
  if (entry == nullptr) {
    if (validate_input) graph::validate_tree(edges, num_vertices);
    entry = std::make_shared<CachedSortedEdges>();
    entry->validated = validate_input;
    sort_edges_into(exec, edges, num_vertices, entry->sorted);
    exec.artifact_cache().insert(fingerprint, entry);
  } else if (validate_input && !entry->validated) {
    graph::validate_tree(edges, num_vertices);
    entry->validated = true;
  }
  const SortedEdges* view = &entry->sorted;
  return {std::move(entry), view};
}

}  // namespace pandora::dendrogram
