#include "pandora/dendrogram/sorted_edges.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "pandora/common/expect.hpp"
#include "pandora/exec/fingerprint.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/tree.hpp"

namespace pandora::dendrogram {

namespace {

using exec::mix_fingerprint;

/// Low 32 bits of edge id's descending weight key — the part the packed sort
/// discards; recomputed on demand by the collision fix-up.
std::uint32_t low_key_of(const graph::EdgeList& edges, std::uint64_t packed_entry) {
  const auto id = static_cast<std::size_t>(packed_entry & 0xffffffffu);
  return static_cast<std::uint32_t>(exec::descending_weight_key(edges[id].weight));
}

/// Repairs runs of equal 32-bit key prefixes whose weights differ below the
/// prefix: after the prefix sort such a run is in ascending id order, but the
/// canonical order continues through the remaining weight-key bits first.
/// Exact ties (identical weights) have identical low keys too, so their runs
/// are left untouched and keep the stable ascending-id tie-break.
///
/// Two passes keep the repair race-free: a read-only pass marks each
/// repair-run start with its end position, then a second pass sorts the
/// (disjoint) marked runs.  Total scan work is O(n) — each element belongs to
/// exactly one run, walked by the run's first entry — and repairs themselves
/// are rare and local.
///
/// Returns false without repairing when the marked runs cover most of the
/// array: weights so tightly clustered that the 32-bit prefix separates
/// almost nothing would turn the repair into one big serial comparison sort,
/// so the caller falls back to the parallel merge argsort instead.
[[nodiscard]] bool repair_prefix_collisions(const exec::Executor& exec,
                                            std::span<std::uint64_t> packed,
                                            const graph::EdgeList& edges) {
  const size_type n = static_cast<size_type>(packed.size());
  auto run_end_lease = exec.workspace().take_uninit<size_type>(n);
  const std::span<size_type> run_end = run_end_lease.span();

  // Pass 1 (reads packed, writes only run_end[p]): find runs needing repair.
  exec::parallel_for(exec, n, [&](size_type p) {
    run_end[static_cast<std::size_t>(p)] = 0;  // 0 = nothing to repair here
    const std::uint64_t prefix = packed[static_cast<std::size_t>(p)] >> 32;
    if (p > 0 && (packed[static_cast<std::size_t>(p - 1)] >> 32) == prefix) return;
    size_type end = p + 1;
    while (end < n && (packed[static_cast<std::size_t>(end)] >> 32) == prefix) ++end;
    if (end - p < 2) return;
    const std::uint32_t first = low_key_of(edges, packed[static_cast<std::size_t>(p)]);
    for (size_type q = p + 1; q < end; ++q) {
      if (low_key_of(edges, packed[static_cast<std::size_t>(q)]) != first) {
        run_end[static_cast<std::size_t>(p)] = end;
        return;
      }
    }
  });

  const size_type total_repair = exec::parallel_sum(
      exec, n, size_type{0}, [&](size_type p) {
        const size_type end = run_end[static_cast<std::size_t>(p)];
        return end == 0 ? size_type{0} : end - p;
      });
  if (2 * total_repair > n) return false;  // degenerate: prefixes separate nothing

  // Pass 2: sort each marked run; runs are disjoint, so writes never overlap
  // and every read stays within the writer's own run.
  exec::parallel_for(exec, n, [&](size_type p) {
    const size_type end = run_end[static_cast<std::size_t>(p)];
    if (end == 0) return;
    std::sort(packed.begin() + p, packed.begin() + end,
              [&](std::uint64_t a, std::uint64_t b) {
                const std::uint32_t la = low_key_of(edges, a);
                const std::uint32_t lb = low_key_of(edges, b);
                if (la != lb) return la < lb;
                return (a & 0xffffffffu) < (b & 0xffffffffu);
              });
  });
  return true;
}

/// The key-packed radix argsort: writes the descending-(weight, id)
/// permutation into `order`.  Returns false (leaving `order` unspecified)
/// when the input degenerates the prefix repair — the caller then uses the
/// comparison path.
[[nodiscard]] bool radix_argsort(const exec::Executor& exec, const graph::EdgeList& edges,
                                 std::span<index_t> order) {
  const size_type n = static_cast<size_type>(edges.size());
  auto packed_lease = exec.workspace().take_uninit<std::uint64_t>(n);
  const std::span<std::uint64_t> packed = packed_lease.span();
  exec::parallel_for(exec, n, [&](size_type i) {
    packed[static_cast<std::size_t>(i)] = exec::pack_key_and_id(
        exec::descending_weight_key(edges[static_cast<std::size_t>(i)].weight),
        static_cast<index_t>(i));
  });
  if (exec.parallelize(n)) {
    // Radix over the key bytes only; stability over the id bytes implements
    // the ascending-id tie-break (ids were packed in ascending order).
    exec::radix_sort_u64(exec, packed, /*first_byte=*/4, /*last_byte=*/8);
  } else {
    // A full-word sort is equivalent here: among equal key prefixes the low
    // word is the unique id, so ascending full words = ascending (prefix, id).
    std::sort(packed.begin(), packed.end());
  }
  if (!repair_prefix_collisions(exec, packed, edges)) return false;
  exec::parallel_for(exec, n, [&](size_type i) {
    order[static_cast<std::size_t>(i)] =
        static_cast<index_t>(packed[static_cast<std::size_t>(i)] & 0xffffffffu);
  });
  return true;
}

/// The comparison-based reference: a stable merge argsort under the explicit
/// descending-(weight, id) comparator.
void merge_argsort(const exec::Executor& exec, const graph::EdgeList& edges,
                   std::vector<index_t>& order) {
  const size_type n = static_cast<size_type>(edges.size());
  exec::parallel_for(exec, n,
                     [&](size_type i) { order[static_cast<std::size_t>(i)] =
                                            static_cast<index_t>(i); });
  exec::merge_sort(exec, order, [&edges](index_t a, index_t b) {
    const double wa = edges[static_cast<std::size_t>(a)].weight;
    const double wb = edges[static_cast<std::size_t>(b)].weight;
    if (wa != wb) return wa > wb;
    return a < b;
  });
}

/// A sorted-edges artifact plus its validation state, as stored in the
/// Executor's ArtifactCache.  The flag is atomic because cached artifacts may
/// be shared by concurrent batch queries (see the ArtifactCache locking
/// contract): validation is monotone (false -> true), so a racy double
/// validation is merely redundant work.
struct CachedSortedEdges {
  SortedEdges sorted;
  std::atomic<bool> validated{false};
};

}  // namespace

void sort_edges_into(const exec::Executor& exec, const graph::EdgeList& edges,
                     index_t num_vertices, SortedEdges& out) {
  const size_type n = static_cast<size_type>(edges.size());
  out.num_vertices = num_vertices;
  out.u.resize(static_cast<std::size_t>(n));
  out.v.resize(static_cast<std::size_t>(n));
  out.weight.resize(static_cast<std::size_t>(n));
  out.order.resize(static_cast<std::size_t>(n));

  if (exec.edge_sort_algorithm() == exec::EdgeSortAlgorithm::merge ||
      !radix_argsort(exec, edges, out.order)) {
    merge_argsort(exec, edges, out.order);
  }

  // Gather endpoints and weights once from the permutation (never sort
  // structs: the sort moved 8-byte words only).
  exec::parallel_for(exec, n, [&](size_type i) {
    const auto& e = edges[static_cast<std::size_t>(out.order[static_cast<std::size_t>(i)])];
    out.u[static_cast<std::size_t>(i)] = e.u;
    out.v[static_cast<std::size_t>(i)] = e.v;
    out.weight[static_cast<std::size_t>(i)] = e.weight;
  });
}

SortedEdges sort_edges(const exec::Executor& exec, const graph::EdgeList& edges,
                       index_t num_vertices, bool validate_input) {
  if (validate_input) graph::validate_tree(edges, num_vertices);
  SortedEdges sorted;
  sort_edges_into(exec, edges, num_vertices, sorted);
  return sorted;
}

void merge_sorted_edges_delta(const exec::Executor& exec, const SortedEdges& base,
                              std::span<const char> keep, const graph::EdgeList& added,
                              std::span<const index_t> vertex_remap, index_t num_vertices,
                              SortedEdges& out) {
  PANDORA_EXPECT(&out != &base, "merge_sorted_edges_delta output must not alias its input");
  PANDORA_EXPECT(static_cast<index_t>(keep.size()) == base.num_edges(),
                 "one keep flag per original edge required");
  const size_type e_base = static_cast<size_type>(base.num_edges());
  const size_type e_added = static_cast<size_type>(added.size());

  // New dense index of every surviving original edge: its rank among the
  // survivors in original order (ties between survivors keep their relative
  // sorted order because the renumbering is monotone).
  auto rank_lease = exec.workspace().take_uninit<index_t>(e_base);
  const std::span<index_t> rank = rank_lease.span();
  index_t num_kept = 0;
  for (size_type i = 0; i < e_base; ++i)
    rank[static_cast<std::size_t>(i)] = keep[static_cast<std::size_t>(i)] != 0 ? num_kept++ : kNone;

  // The added run, sorted descending-(weight, position): positions continue
  // after the survivors, so on exact ties a survivor always precedes an
  // added edge and the merge below can break ties by run.
  auto added_order_lease = exec.workspace().take_uninit<index_t>(e_added);
  const std::span<index_t> added_order = added_order_lease.span();
  for (size_type j = 0; j < e_added; ++j)
    added_order[static_cast<std::size_t>(j)] = static_cast<index_t>(j);
  std::sort(added_order.begin(), added_order.end(), [&](index_t a, index_t b) {
    const double wa = added[static_cast<std::size_t>(a)].weight;
    const double wb = added[static_cast<std::size_t>(b)].weight;
    if (wa != wb) return wa > wb;
    return a < b;
  });

  const size_type e_out = static_cast<size_type>(num_kept) + e_added;
  out.num_vertices = num_vertices;
  out.u.resize(static_cast<std::size_t>(e_out));
  out.v.resize(static_cast<std::size_t>(e_out));
  out.weight.resize(static_cast<std::size_t>(e_out));
  out.order.resize(static_cast<std::size_t>(e_out));

  const auto remap = [&](index_t vertex) {
    return vertex_remap.empty() ? vertex : vertex_remap[static_cast<std::size_t>(vertex)];
  };

  // One linear merge of the two descending runs.  `i` walks base's sorted
  // positions (skipping dropped edges), `j` walks the sorted added run; on a
  // weight tie the surviving base edge wins (smaller new index).
  size_type i = 0, j = 0, o = 0;
  const auto next_survivor = [&] {
    while (i < e_base && keep[static_cast<std::size_t>(
                             base.order[static_cast<std::size_t>(i)])] == 0)
      ++i;
    return i < e_base;
  };
  while (true) {
    const bool has_base = next_survivor();
    const bool has_added = j < e_added;
    if (!has_base && !has_added) break;
    bool take_base;
    if (has_base && has_added) {
      const double wb = base.weight[static_cast<std::size_t>(i)];
      const double wa =
          added[static_cast<std::size_t>(added_order[static_cast<std::size_t>(j)])].weight;
      take_base = wb >= wa;
    } else {
      take_base = has_base;
    }
    const auto slot = static_cast<std::size_t>(o++);
    if (take_base) {
      const auto pos = static_cast<std::size_t>(i++);
      out.u[slot] = remap(base.u[pos]);
      out.v[slot] = remap(base.v[pos]);
      out.weight[slot] = base.weight[pos];
      out.order[slot] = rank[static_cast<std::size_t>(base.order[pos])];
    } else {
      const auto a = static_cast<std::size_t>(added_order[static_cast<std::size_t>(j++)]);
      const graph::WeightedEdge& edge = added[a];
      out.u[slot] = edge.u;
      out.v[slot] = edge.v;
      out.weight[slot] = edge.weight;
      out.order[slot] = num_kept + static_cast<index_t>(a);
    }
  }
}

std::uint64_t mst_fingerprint(const exec::Executor& exec, const graph::EdgeList& edges,
                              index_t num_vertices) {
  const size_type n = static_cast<size_type>(edges.size());
  // Each edge hashes with its position, so the sum is order-sensitive while
  // remaining a deterministic parallel reduction.
  const std::uint64_t body = exec::parallel_sum(
      exec, n, std::uint64_t{0}, [&](size_type i) {
        const auto& e = edges[static_cast<std::size_t>(i)];
        const std::uint64_t endpoints =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u)) << 32) |
            static_cast<std::uint32_t>(e.v);
        const std::uint64_t salted =
            std::bit_cast<std::uint64_t>(e.weight) +
            0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
        return mix_fingerprint(endpoints ^ mix_fingerprint(salted));
      });
  return mix_fingerprint(
      body ^ mix_fingerprint(static_cast<std::uint64_t>(n)) ^
      mix_fingerprint(~static_cast<std::uint64_t>(static_cast<std::uint32_t>(num_vertices))));
}

std::shared_ptr<const SortedEdges> sorted_edges_cached(const exec::Executor& exec,
                                                       const graph::EdgeList& edges,
                                                       index_t num_vertices,
                                                       bool validate_input) {
  if (!exec.artifact_caching()) {
    if (validate_input) graph::validate_tree(edges, num_vertices);
    auto owned = std::make_shared<CachedSortedEdges>();
    owned->validated = validate_input;
    sort_edges_into(exec, edges, num_vertices, owned->sorted);
    const SortedEdges* view = &owned->sorted;
    return {std::move(owned), view};
  }

  const std::uint64_t fingerprint = mst_fingerprint(exec, edges, num_vertices);
  std::shared_ptr<CachedSortedEdges> entry =
      exec.artifact_cache().find<CachedSortedEdges>(fingerprint);
  if (entry == nullptr) {
    if (validate_input) graph::validate_tree(edges, num_vertices);
    entry = std::make_shared<CachedSortedEdges>();
    entry->validated = validate_input;
    sort_edges_into(exec, edges, num_vertices, entry->sorted);
    exec.artifact_cache().insert(fingerprint, entry, exec.cache_owner());
  } else if (validate_input && !entry->validated) {
    graph::validate_tree(edges, num_vertices);
    entry->validated = true;
  }
  const SortedEdges* view = &entry->sorted;
  return {std::move(entry), view};
}

}  // namespace pandora::dendrogram
