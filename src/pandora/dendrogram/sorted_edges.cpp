#include "pandora/dendrogram/sorted_edges.hpp"

#include <numeric>

#include "pandora/exec/parallel.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/tree.hpp"

namespace pandora::dendrogram {

SortedEdges sort_edges(const exec::Executor& exec, const graph::EdgeList& edges,
                       index_t num_vertices, bool validate_input) {
  if (validate_input) graph::validate_tree(edges, num_vertices);

  const size_type n = static_cast<size_type>(edges.size());
  std::vector<index_t> order(edges.size());
  std::iota(order.begin(), order.end(), index_t{0});
  // Descending by weight via a stable radix argsort on inverted weight bits;
  // stability keeps equal weights in ascending original index — the
  // canonical tie-break of Section 3.1.1.  The key buffer is leased scratch.
  auto keys_lease = exec.workspace().take_uninit<std::uint64_t>(n);
  std::vector<std::uint64_t>& keys = *keys_lease;
  exec::parallel_for(exec, n, [&](size_type i) {
    keys[static_cast<std::size_t>(i)] =
        ~exec::order_preserving_bits(edges[static_cast<std::size_t>(i)].weight);
  });
  exec::radix_sort_kv(exec, keys, order);

  SortedEdges sorted;
  sorted.num_vertices = num_vertices;
  sorted.u.resize(edges.size());
  sorted.v.resize(edges.size());
  sorted.weight.resize(edges.size());
  sorted.order = std::move(order);
  exec::parallel_for(exec, n, [&](size_type i) {
    const auto& e = edges[static_cast<std::size_t>(sorted.order[static_cast<std::size_t>(i)])];
    sorted.u[static_cast<std::size_t>(i)] = e.u;
    sorted.v[static_cast<std::size_t>(i)] = e.v;
    sorted.weight[static_cast<std::size_t>(i)] = e.weight;
  });
  return sorted;
}

SortedEdges sort_edges(exec::Space space, const graph::EdgeList& edges, index_t num_vertices,
                       bool validate_input) {
  return sort_edges(exec::default_executor(space), edges, num_vertices, validate_input);
}

}  // namespace pandora::dendrogram
