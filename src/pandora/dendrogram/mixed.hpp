#pragma once

#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::dendrogram {

/// Mixed top-down / bottom-up dendrogram construction after Wang et al. [46]
/// (Section 2.3.3).
///
/// The `top_fraction` heaviest edges are withheld (the "top-down" cut),
/// splitting the MST into subtrees.  Each subtree's dendrogram is built
/// bottom-up independently — in parallel, since the subtrees are vertex-
/// disjoint — and the withheld edges are then stitched on top by continuing
/// the same bottom-up pass.  The output is node-for-node identical to
/// Algorithm 2 (and therefore to PANDORA).
///
/// This reproduces the competing parallel algorithm's structure and its
/// weakness: on skewed dendrograms one subtree holds almost all edges, so the
/// parallel phase degenerates to the sequential baseline (the load-imbalance
/// argument of Section 2.3.3).
///
/// Phases recorded with the Executor's profiler: "split", "subtrees",
/// "stitch" (and "sort" for the EdgeList overload).
[[nodiscard]] Dendrogram mixed_dendrogram(const exec::Executor& exec,
                                          const SortedEdges& sorted,
                                          double top_fraction = 0.1);

/// Convenience overload that sorts internally.
[[nodiscard]] Dendrogram mixed_dendrogram(const exec::Executor& exec,
                                          const graph::EdgeList& mst, index_t num_vertices,
                                          double top_fraction = 0.1);

// The deprecated bare-`Space` shims were removed after their deprecation
// cycle: pass a `const exec::Executor&` (and a PhaseTimesProfiler for the
// old `PhaseTimes*` plumbing).

}  // namespace pandora::dendrogram
