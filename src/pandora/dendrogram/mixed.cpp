#include "pandora/dendrogram/mixed.hpp"

#include <algorithm>
#include <vector>

#include "pandora/common/expect.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/graph/union_find.hpp"

namespace pandora::dendrogram {

namespace {

/// Runs the Algorithm-2 merge step for one edge against shared state.  The
/// per-component phase may call this concurrently for *vertex-disjoint*
/// components: every touched slot (union-find entries, rep_edge roots,
/// parent slots) belongs to exactly one component.
void merge_edge(const SortedEdges& sorted, index_t i, graph::UnionFind& uf,
                std::vector<index_t>& rep_edge, Dendrogram& dendrogram) {
  const index_t eu = sorted.u[static_cast<std::size_t>(i)];
  const index_t ev = sorted.v[static_cast<std::size_t>(i)];
  for (const index_t x : {eu, ev}) {
    const index_t r = uf.find(x);
    if (rep_edge[static_cast<std::size_t>(r)] != kNone) {
      dendrogram.parent[static_cast<std::size_t>(rep_edge[static_cast<std::size_t>(r)])] = i;
    } else {
      dendrogram.parent[static_cast<std::size_t>(dendrogram.vertex_node(x))] = i;
    }
  }
  uf.unite(eu, ev);
  rep_edge[static_cast<std::size_t>(uf.find(eu))] = i;
}

}  // namespace

Dendrogram mixed_dendrogram(const exec::Executor& exec, const SortedEdges& sorted,
                            double top_fraction) {
  PANDORA_EXPECT(top_fraction >= 0.0 && top_fraction <= 1.0,
                 "top_fraction must be a fraction");
  const index_t n = sorted.num_edges();
  const index_t nv = sorted.num_vertices;

  Dendrogram dendrogram;
  dendrogram.num_edges = n;
  dendrogram.num_vertices = nv;
  dendrogram.weight = sorted.weight;
  dendrogram.edge_order = sorted.order;
  dendrogram.parent.assign(static_cast<std::size_t>(n) + static_cast<std::size_t>(nv), kNone);
  if (n == 0) return dendrogram;

  // Withhold the top_fraction heaviest edges (ranks [0, cut)).
  const auto cut = std::min<index_t>(
      n, std::max<index_t>(1, static_cast<index_t>(top_fraction * static_cast<double>(n))));

  Timer timer;
  // Subtree discovery: components of the light edges [cut, n).
  graph::ConcurrentUnionFind components(nv);
  exec::parallel_for(exec, static_cast<size_type>(n) - cut, [&](size_type k) {
    const auto i = static_cast<index_t>(cut + k);
    components.unite(sorted.u[static_cast<std::size_t>(i)],
                     sorted.v[static_cast<std::size_t>(i)]);
  });

  // Bucket the light edges by component.  Edges are appended in descending
  // rank order (ascending weight reversed), so each bucket ends up sorted the
  // way the bottom-up pass consumes it (back() = lightest first).
  auto component_of_lease = exec.workspace().take<index_t>(n, kNone);
  const std::span<index_t> component_of = component_of_lease.span();
  exec::parallel_for(exec, static_cast<size_type>(n) - cut, [&](size_type k) {
    const auto i = static_cast<index_t>(cut + k);
    component_of[static_cast<std::size_t>(i)] =
        components.find(sorted.u[static_cast<std::size_t>(i)]);
  });
  std::vector<std::vector<index_t>> buckets(static_cast<std::size_t>(nv));
  for (index_t i = n - 1; i >= cut; --i)
    buckets[static_cast<std::size_t>(component_of[static_cast<std::size_t>(i)])].push_back(i);
  std::vector<index_t> roots;
  for (index_t v = 0; v < nv; ++v)
    if (!buckets[static_cast<std::size_t>(v)].empty()) roots.push_back(v);
  exec.record_phase("split", timer.seconds());

  // Phase 1: bottom-up per subtree, parallel over subtrees.  Shared state is
  // safe because subtrees are vertex-disjoint (see merge_edge).
  timer.reset();
  graph::UnionFind uf(nv);
  std::vector<index_t> rep_edge(static_cast<std::size_t>(nv), kNone);
  if (exec.num_threads() > 1) {
    // One chunk per subtree, dynamically balanced across the backend's
    // workers (bucket sizes are highly skewed).
    auto subtree = [&](int b) {
      const auto& bucket =
          buckets[static_cast<std::size_t>(roots[static_cast<std::size_t>(b)])];
      for (const index_t i : bucket) merge_edge(sorted, i, uf, rep_edge, dendrogram);
    };
    exec.run_chunks(static_cast<int>(roots.size()), exec.num_threads(), subtree);
  } else {
    for (const index_t root : roots)
      for (const index_t i : buckets[static_cast<std::size_t>(root)])
        merge_edge(sorted, i, uf, rep_edge, dendrogram);
  }
  exec.record_phase("subtrees", timer.seconds());

  // Phase 2: stitch the withheld top edges, lightest first — the same
  // bottom-up recurrence continued over the whole tree.
  timer.reset();
  for (index_t i = cut - 1; i >= 0; --i) merge_edge(sorted, i, uf, rep_edge, dendrogram);
  exec.record_phase("stitch", timer.seconds());
  return dendrogram;
}

Dendrogram mixed_dendrogram(const exec::Executor& exec, const graph::EdgeList& mst,
                            index_t num_vertices, double top_fraction) {
  Timer timer;
  const std::shared_ptr<const SortedEdges> sorted =
      sorted_edges_cached(exec, mst, num_vertices);
  exec.record_phase("sort", timer.seconds());
  return mixed_dendrogram(exec, *sorted, top_fraction);
}

}  // namespace pandora::dendrogram
