#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::dendrogram {

/// The MST in the canonical form every dendrogram algorithm in this library
/// consumes: edges sorted by weight in descending order (Section 3.1.1), with
/// ties broken by the original edge index.  The consistent tie order is what
/// makes the dendrogram unique and lets independent algorithms (Pandora,
/// union-find, top-down) be compared node-for-node.
struct SortedEdges {
  index_t num_vertices = 0;
  std::vector<index_t> u;        ///< endpoint of sorted edge i
  std::vector<index_t> v;        ///< other endpoint of sorted edge i
  std::vector<double> weight;    ///< non-increasing
  std::vector<index_t> order;    ///< sorted index -> original edge index

  [[nodiscard]] index_t num_edges() const { return static_cast<index_t>(u.size()); }
};

/// Sorts `edges` descending by (weight, original index).  When
/// `validate_input` is set, rejects inputs that are not spanning trees with
/// finite non-negative weights.
///
/// The algorithm is selected by the Executor (`EdgeSortAlgorithm`): the
/// default radix path packs the high 32 bits of the order-preserving
/// (sign-flipped, inverted) weight key with the edge id into one 64-bit word,
/// radix-sorts only the key bytes through `radix_sort_u64` — so weights and
/// endpoints are gathered exactly once from the resulting permutation instead
/// of sorting structs — and repairs the rare runs whose weights differ only
/// below the 32-bit prefix; the merge path is the comparison-based reference.
/// Both produce bit-identical output.
[[nodiscard]] SortedEdges sort_edges(const exec::Executor& exec, const graph::EdgeList& edges,
                                     index_t num_vertices, bool validate_input = false);

/// As sort_edges, but reusing `out`'s storage: a second identical call on a
/// warm Executor performs no heap allocation.  Does not validate.
void sort_edges_into(const exec::Executor& exec, const graph::EdgeList& edges,
                     index_t num_vertices, SortedEdges& out);

/// Order-sensitive 64-bit fingerprint of an MST (endpoints, weights, edge
/// order, vertex count) — the key of the cross-call SortedEdges cache.
[[nodiscard]] std::uint64_t mst_fingerprint(const exec::Executor& exec,
                                            const graph::EdgeList& edges,
                                            index_t num_vertices);

/// The cross-call SortedEdges cache: returns the canonical sorted form of
/// `edges`, reusing the copy stored in the Executor's ArtifactCache when the
/// MST fingerprint matches — so repeated queries against one MST (mpts
/// sweeps, algorithm comparisons, repeated pipeline runs) sort once and
/// replay.  A cache hit costs one fingerprint pass and allocates nothing.
/// With `Executor::set_artifact_caching(false)` every call sorts afresh.
[[nodiscard]] std::shared_ptr<const SortedEdges> sorted_edges_cached(
    const exec::Executor& exec, const graph::EdgeList& edges, index_t num_vertices,
    bool validate_input = false);

}  // namespace pandora::dendrogram
