#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::dendrogram {

/// The MST in the canonical form every dendrogram algorithm in this library
/// consumes: edges sorted by weight in descending order (Section 3.1.1), with
/// ties broken by the original edge index.  The consistent tie order is what
/// makes the dendrogram unique and lets independent algorithms (Pandora,
/// union-find, top-down) be compared node-for-node.
struct SortedEdges {
  index_t num_vertices = 0;
  std::vector<index_t> u;        ///< endpoint of sorted edge i
  std::vector<index_t> v;        ///< other endpoint of sorted edge i
  std::vector<double> weight;    ///< non-increasing
  std::vector<index_t> order;    ///< sorted index -> original edge index

  [[nodiscard]] index_t num_edges() const { return static_cast<index_t>(u.size()); }
};

/// Sorts `edges` descending by (weight, original index).  When
/// `validate_input` is set, rejects inputs that are not spanning trees with
/// finite non-negative weights.
///
/// The algorithm is selected by the Executor (`EdgeSortAlgorithm`): the
/// default radix path packs the high 32 bits of the order-preserving
/// (sign-flipped, inverted) weight key with the edge id into one 64-bit word,
/// radix-sorts only the key bytes through `radix_sort_u64` — so weights and
/// endpoints are gathered exactly once from the resulting permutation instead
/// of sorting structs — and repairs the rare runs whose weights differ only
/// below the 32-bit prefix; the merge path is the comparison-based reference.
/// Both produce bit-identical output.
[[nodiscard]] SortedEdges sort_edges(const exec::Executor& exec, const graph::EdgeList& edges,
                                     index_t num_vertices, bool validate_input = false);

/// As sort_edges, but reusing `out`'s storage: a second identical call on a
/// warm Executor performs no heap allocation.  Does not validate.
void sort_edges_into(const exec::Executor& exec, const graph::EdgeList& edges,
                     index_t num_vertices, SortedEdges& out);

/// Derives the canonical SortedEdges of an *updated* edge list from the
/// sorted run of its predecessor, without re-sorting the bulk: survivors of
/// `base` keep their relative order (weights unchanged), so one linear merge
/// of the surviving run with the small sorted `added` run reproduces the
/// canonical descending-(weight, index) order.  This is the dynamic
/// subsystem's dendrogram-replay preparation — O(E + A log A) instead of the
/// full O(E log E) sort.
///
/// The updated edge list is defined as: the edges of `base`'s original list
/// whose original index i has `keep[i] != 0`, in their original relative
/// order (renumbered densely from 0), followed by the edges of `added`
/// (original indices continuing after the survivors).  `keep.size()` must be
/// `base.num_edges()`.  A non-empty `vertex_remap` relabels every surviving
/// endpoint (erase compaction); `added` endpoints are already in the new
/// vertex space.  `out` must not alias `base`.
///
/// The result is bit-identical to `sort_edges` over the materialised updated
/// edge list: survivors precede added edges on exact weight ties (their new
/// indices are smaller), and the tie order within each run is preserved.
void merge_sorted_edges_delta(const exec::Executor& exec, const SortedEdges& base,
                              std::span<const char> keep, const graph::EdgeList& added,
                              std::span<const index_t> vertex_remap, index_t num_vertices,
                              SortedEdges& out);

/// Order-sensitive 64-bit fingerprint of an MST (endpoints, weights, edge
/// order, vertex count) — the key of the cross-call SortedEdges cache.
[[nodiscard]] std::uint64_t mst_fingerprint(const exec::Executor& exec,
                                            const graph::EdgeList& edges,
                                            index_t num_vertices);

/// The cross-call SortedEdges cache: returns the canonical sorted form of
/// `edges`, reusing the copy stored in the Executor's ArtifactCache when the
/// MST fingerprint matches — so repeated queries against one MST (mpts
/// sweeps, algorithm comparisons, repeated pipeline runs) sort once and
/// replay.  A cache hit costs one fingerprint pass and allocates nothing.
/// With `Executor::set_artifact_caching(false)` every call sorts afresh.
[[nodiscard]] std::shared_ptr<const SortedEdges> sorted_edges_cached(
    const exec::Executor& exec, const graph::EdgeList& edges, index_t num_vertices,
    bool validate_input = false);

}  // namespace pandora::dendrogram
