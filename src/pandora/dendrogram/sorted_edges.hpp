#pragma once

#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::dendrogram {

/// The MST in the canonical form every dendrogram algorithm in this library
/// consumes: edges sorted by weight in descending order (Section 3.1.1), with
/// ties broken by the original edge index.  The consistent tie order is what
/// makes the dendrogram unique and lets independent algorithms (Pandora,
/// union-find, top-down) be compared node-for-node.
struct SortedEdges {
  index_t num_vertices = 0;
  std::vector<index_t> u;        ///< endpoint of sorted edge i
  std::vector<index_t> v;        ///< other endpoint of sorted edge i
  std::vector<double> weight;    ///< non-increasing
  std::vector<index_t> order;    ///< sorted index -> original edge index

  [[nodiscard]] index_t num_edges() const { return static_cast<index_t>(u.size()); }
};

/// Sorts `edges` descending by (weight, original index).  When
/// `validate_input` is set, rejects inputs that are not spanning trees with
/// finite non-negative weights.
[[nodiscard]] SortedEdges sort_edges(const exec::Executor& exec, const graph::EdgeList& edges,
                                     index_t num_vertices, bool validate_input = false);

/// Deprecated shim over the per-thread default executor.
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] SortedEdges sort_edges(exec::Space space, const graph::EdgeList& edges,
                                     index_t num_vertices, bool validate_input = false);

}  // namespace pandora::dendrogram
