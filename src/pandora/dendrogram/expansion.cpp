#include "pandora/dendrogram/expansion.hpp"

#include <cstdint>
#include <vector>

#include "pandora/exec/parallel.hpp"
#include "pandora/exec/scan.hpp"
#include "pandora/exec/sort.hpp"

namespace pandora::dendrogram {

namespace {

/// Packs a chain key (>= -2) and an edge index into one sortable u64.
/// Root-chain entries (key -2) sort first, so the heaviest root-chain edge —
/// the global root — lands at position 0.
std::uint64_t pack(std::int64_t chain_key, index_t edge) {
  return (static_cast<std::uint64_t>(chain_key + 2) << 32) | static_cast<std::uint32_t>(edge);
}

constexpr std::int64_t kRootChain = -2;

/// Turns the (chain, index)-sorted entries into parent pointers:
/// chain boundaries attach to the chain's defining edge (or nothing, for the
/// root chain); interior entries attach to their predecessor.
void stitch_chains(const exec::Executor& exec, std::span<const std::uint64_t> packed,
                   std::span<index_t> edge_parent) {
  const size_type count = static_cast<size_type>(packed.size());
  exec::parallel_for(exec, count, [&](size_type p) {
    const std::uint64_t entry = packed[static_cast<std::size_t>(p)];
    const auto edge = static_cast<index_t>(entry & 0xffffffffu);
    const std::uint64_t key_hi = entry >> 32;
    const bool chain_first =
        p == 0 || (packed[static_cast<std::size_t>(p - 1)] >> 32) != key_hi;
    if (chain_first) {
      const std::int64_t chain_key = static_cast<std::int64_t>(key_hi) - 2;
      edge_parent[static_cast<std::size_t>(edge)] =
          chain_key == kRootChain ? kNone : static_cast<index_t>(chain_key >> 1);
    } else {
      edge_parent[static_cast<std::size_t>(edge)] =
          static_cast<index_t>(packed[static_cast<std::size_t>(p - 1)] & 0xffffffffu);
    }
  });
}

}  // namespace

void expand_multilevel(const exec::Executor& exec, const ContractionHierarchy& hierarchy,
                       std::span<index_t> edge_parent) {
  const size_type n_global = hierarchy.num_global_edges;
  const index_t num_levels = hierarchy.num_levels();
  exec::Workspace& workspace = exec.workspace();

  Timer timer;
  // Chain assignment: one entry per edge present in the hierarchy.
  // (When expanding a sub-hierarchy — the single-level path — only some
  // global indices are present; absent ones have contraction_level == kNone.)
  auto present_lease = workspace.take_uninit<index_t>(n_global);
  const std::span<index_t> present = present_lease.span();
  exec::parallel_for(exec, n_global, [&](size_type g) {
    present[static_cast<std::size_t>(g)] =
        hierarchy.contraction_level[static_cast<std::size_t>(g)] != kNone ? 1 : 0;
  });
  auto slot_lease = workspace.take_uninit<index_t>(n_global);
  const std::span<index_t> slot = slot_lease.span();
  const index_t num_present =
      exec::exclusive_scan<index_t>(exec, std::span<const index_t>(present), slot);

  auto packed_lease = workspace.take_uninit<std::uint64_t>(num_present);
  const std::span<std::uint64_t> packed = packed_lease.span();
  exec::parallel_for(exec, n_global, [&](size_type gi) {
    if (!present[static_cast<std::size_t>(gi)]) return;
    const auto g = static_cast<index_t>(gi);
    const index_t k = hierarchy.contraction_level[static_cast<std::size_t>(g)];
    const index_t sv = hierarchy.supervertex[static_cast<std::size_t>(g)];

    std::int64_t chain_key = kRootChain;
    if (sv != kNone) {
      // Scan levels upward for the first supervertex whose dendrogram parent
      // is heavier (smaller global index) than g — Section 3.3.2.
      index_t m = k + 1;
      index_t vertex = sv;
      for (;;) {
        const ContractionLevel& level = hierarchy.levels[static_cast<std::size_t>(m)];
        const std::int64_t sided = level.sided_parent[static_cast<std::size_t>(vertex)];
        if (static_cast<index_t>(sided >> 1) < g) {
          chain_key = sided;
          break;
        }
        if (m + 1 >= num_levels) break;  // exhausted: root chain
        vertex = level.vertex_map[static_cast<std::size_t>(vertex)];
        ++m;
      }
    }
    packed[static_cast<std::size_t>(slot[static_cast<std::size_t>(gi)])] = pack(chain_key, g);
  });
  exec.record_phase("expansion", timer.seconds());

  timer.reset();
  exec::radix_sort_u64(exec, packed);
  exec.record_phase("sort", timer.seconds());

  timer.reset();
  stitch_chains(exec, packed, edge_parent);
  exec.record_phase("expansion", timer.seconds());
}

void expand_single_level(const exec::Executor& exec, const SortedEdges& sorted,
                         std::span<index_t> edge_parent) {
  const index_t n = sorted.num_edges();
  exec::Workspace& workspace = exec.workspace();

  Timer timer;
  // Empty gid: the base level's edges carry their identity global indices.
  detail::LevelResult base =
      detail::contract_one_level(exec, sorted.u, sorted.v, {}, sorted.num_vertices);
  exec.record_phase("contraction", timer.seconds());

  if (base.level.num_alpha == 0) {
    // Chain-only tree: the whole dendrogram is the root chain.
    timer.reset();
    auto packed_lease = workspace.take_uninit<std::uint64_t>(n);
    const std::span<std::uint64_t> packed = packed_lease.span();
    exec::parallel_for(exec, n, [&](size_type g) {
      packed[static_cast<std::size_t>(g)] = pack(kRootChain, static_cast<index_t>(g));
    });
    exec::radix_sort_u64(exec, packed);
    stitch_chains(exec, packed, edge_parent);
    exec.record_phase("expansion", timer.seconds());
    return;
  }

  // Full dendrogram of the α-MST via the multilevel machinery (the paper
  // computes it "recursively applying the same edge contraction strategy").
  timer.reset();
  ContractionHierarchy alpha_hierarchy =
      build_hierarchy(exec, base.next_u, base.next_v, base.next_gid,
                      base.next_num_vertices, n);
  exec.record_phase("contraction", timer.seconds());
  auto alpha_parent_lease = workspace.take<index_t>(n, kNone);
  const std::span<index_t> alpha_parent = alpha_parent_lease.span();
  expand_multilevel(exec, alpha_hierarchy, alpha_parent);

  // Walk-up insertion of every non-α edge (Section 3.3.1, Figure 10).
  // The "slot" an edge lands in is the dendrogram node directly *below* its
  // final position: either an α-edge, or the α-vertex it was contracted into
  // when the walk stops at the very first step.  Encoding: edges as
  // themselves, α-vertex V as n + V.
  timer.reset();
  const std::span<const std::int64_t> sided1 = alpha_hierarchy.levels[0].sided_parent;
  const size_type n64 = n;
  auto packed_lease = workspace.take_uninit<std::uint64_t>(n - base.level.num_alpha);
  const std::span<std::uint64_t> packed = packed_lease.span();
  {
    auto non_alpha_lease = workspace.take<index_t>(n, 0);
    const std::span<index_t> non_alpha = non_alpha_lease.span();
    exec::parallel_for(exec, n64, [&](size_type i) {
      non_alpha[static_cast<std::size_t>(i)] = base.alpha[static_cast<std::size_t>(i)] ? 0 : 1;
    });
    auto pos_lease = workspace.take_uninit<index_t>(n);
    const std::span<index_t> pos = pos_lease.span();
    exec::exclusive_scan<index_t>(exec, std::span<const index_t>(non_alpha), pos);

    exec::parallel_for(exec, n64, [&](size_type i) {
      if (base.alpha[static_cast<std::size_t>(i)]) return;
      const auto g = static_cast<index_t>(i);
      const index_t supervertex =
          base.level.vertex_map[static_cast<std::size_t>(sorted.u[static_cast<std::size_t>(i)])];
      index_t below = n + supervertex;  // slot: start at the α-vertex node
      index_t cur =
          static_cast<index_t>(sided1[static_cast<std::size_t>(supervertex)] >> 1);
      while (cur != kNone && cur > g) {
        below = cur;
        cur = alpha_parent[static_cast<std::size_t>(cur)];
      }
      packed[static_cast<std::size_t>(pos[static_cast<std::size_t>(i)])] =
          (static_cast<std::uint64_t>(below) << 32) | static_cast<std::uint32_t>(g);
    });
  }
  exec::radix_sort_u64(exec, packed);

  // Stitch the inserted chains and re-hang the α-edges below them.
  // Reads go to the immutable α-dendrogram (`alpha_parent`), writes to the
  // output, so the slot rewrites cannot race with the boundary reads.
  const size_type count = static_cast<size_type>(packed.size());
  exec::parallel_for(exec, count, [&](size_type p) {
    const auto edge = static_cast<index_t>(packed[static_cast<std::size_t>(p)] & 0xffffffffu);
    const auto below =
        static_cast<index_t>(packed[static_cast<std::size_t>(p)] >> 32);
    const bool first =
        p == 0 || (packed[static_cast<std::size_t>(p - 1)] >> 32) !=
                      (packed[static_cast<std::size_t>(p)] >> 32);
    const bool last =
        p + 1 == count || (packed[static_cast<std::size_t>(p + 1)] >> 32) !=
                              (packed[static_cast<std::size_t>(p)] >> 32);
    if (first) {
      // The node above the group: the α-vertex's sided parent for vertex
      // slots, the α-edge's old dendrogram parent for edge slots.
      edge_parent[static_cast<std::size_t>(edge)] =
          below >= n ? static_cast<index_t>(sided1[static_cast<std::size_t>(below - n)] >> 1)
                     : alpha_parent[static_cast<std::size_t>(below)];
    } else {
      edge_parent[static_cast<std::size_t>(edge)] =
          static_cast<index_t>(packed[static_cast<std::size_t>(p - 1)] & 0xffffffffu);
    }
    if (last && below < n) {
      // The α-edge now hangs below the lightest inserted edge of its group.
      edge_parent[static_cast<std::size_t>(below)] = edge;
    }
  });

  // α-edges whose slot was never rewritten keep their α-dendrogram parent.
  auto rewritten_lease = workspace.take<index_t>(n, 0);
  const std::span<index_t> rewritten = rewritten_lease.span();
  exec::parallel_for(exec, count, [&](size_type p) {
    const auto below = static_cast<index_t>(packed[static_cast<std::size_t>(p)] >> 32);
    if (below < n) rewritten[static_cast<std::size_t>(below)] = 1;
  });
  exec::parallel_for(exec, n64, [&](size_type i) {
    if (base.alpha[static_cast<std::size_t>(i)] && !rewritten[static_cast<std::size_t>(i)])
      edge_parent[static_cast<std::size_t>(i)] = alpha_parent[static_cast<std::size_t>(i)];
  });
  exec.record_phase("expansion", timer.seconds());
}

}  // namespace pandora::dendrogram
