#pragma once

#include <cstdint>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"

namespace pandora::dendrogram {

/// One level of the recursive tree contraction (Section 3.2).
///
/// A level is a tree whose vertices are supervertices of the previous level
/// and whose edges are the previous level's α-edges, still identified by
/// their *global* sorted index (0 = heaviest).  For every vertex the level
/// stores its "sided parent": the dendrogram parent of the vertex node by
/// Eq. (1) — the incident edge with the largest global index — encoded as
/// `2*edge + side` where side says which endpoint of that edge the vertex is.
/// The side bit distinguishes the two chains hanging below an edge node,
/// e.g. the 13L / 13R chains of Figure 9.
struct ContractionLevel {
  index_t num_vertices = 0;
  index_t num_edges = 0;
  index_t num_alpha = 0;

  /// Per vertex: 2*maxIncident + side.  Always set while the level has edges.
  std::vector<std::int64_t> sided_parent;

  /// Per vertex: containing supervertex at the next level.  Empty at the
  /// final (chain-only) level, which is never contracted.
  std::vector<index_t> vertex_map;
};

/// The full recursive contraction: MST -> α-MST -> β-MST -> ... until a level
/// has no α-edges (at most ceil(log2(n+1)) levels, Section 4.2).
///
/// `contraction_level[g]` / `supervertex[g]` give, for global edge g, the
/// level at which g was contracted away and the supervertex (vertex id of
/// level contraction_level+1) that absorbed it.  Edges of the final level are
/// marked with `supervertex == kNone`; they form the root chain.
struct ContractionHierarchy {
  std::vector<ContractionLevel> levels;
  std::vector<index_t> contraction_level;
  std::vector<index_t> supervertex;
  index_t num_global_edges = 0;

  [[nodiscard]] index_t num_levels() const { return static_cast<index_t>(levels.size()); }
};

namespace detail {

/// Scratch buffers reused across contraction levels (allocation-free steady
/// state; the first level sizes them, deeper levels shrink).  Constructed
/// from an Executor's Workspace the buffers are leased *at the base-level
/// sizes* (`num_vertices` vertex slots, `num_edges` edge slots — deeper
/// levels only shrink), so they are also reused across calls and the
/// workspace's hit/miss statistics reflect the real footprint;
/// default-constructed they are private vectors.
struct ContractionWorkspace {
  ContractionWorkspace() = default;
  ContractionWorkspace(exec::Workspace& workspace, index_t num_vertices, index_t num_edges)
      : max_incident(workspace.take_uninit<index_t>(num_vertices)),
        representative(workspace.take_uninit<index_t>(num_vertices)),
        new_id(workspace.take_uninit<index_t>(num_vertices)),
        position(workspace.take_uninit<index_t>(num_edges)) {}

  exec::Workspace::Lease<index_t> max_incident;
  exec::Workspace::Lease<index_t> representative;
  exec::Workspace::Lease<index_t> new_id;
  exec::Workspace::Lease<index_t> position;
};

/// Classifies the edges of one level tree and contracts its non-α edges.
/// Inputs: endpoints `u`/`v` (level-vertex ids) and global indices `gid` of
/// the level's edges over `num_vertices` vertices.  On return, `level` is
/// fully populated; if α-edges exist, `next_*` hold the contracted tree and
/// `level.vertex_map` the vertex relabelling; the fate of each input edge is
/// written through `alpha` (flag per edge).
struct LevelResult {
  ContractionLevel level;
  std::vector<index_t> alpha;  ///< 0/1 per input edge
  std::vector<index_t> next_u, next_v, next_gid;
  index_t next_num_vertices = 0;
};

[[nodiscard]] LevelResult contract_one_level(const exec::Executor& exec,
                                             const std::vector<index_t>& u,
                                             const std::vector<index_t>& v,
                                             const std::vector<index_t>& gid,
                                             index_t num_vertices,
                                             ContractionWorkspace& workspace);

/// Convenience overload with a private workspace (tests, one-shot callers).
[[nodiscard]] LevelResult contract_one_level(const exec::Executor& exec,
                                             const std::vector<index_t>& u,
                                             const std::vector<index_t>& v,
                                             const std::vector<index_t>& gid,
                                             index_t num_vertices);

/// Deprecated shim over the per-thread default executor.
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] LevelResult contract_one_level(exec::Space space, const std::vector<index_t>& u,
                                             const std::vector<index_t>& v,
                                             const std::vector<index_t>& gid,
                                             index_t num_vertices);

}  // namespace detail

/// Builds the complete contraction hierarchy of the tree given by parallel
/// arrays (`u[i]`, `v[i]`) with global edge indices `gid[i]` over
/// `num_vertices` vertices.  `num_global_edges` sizes the per-global-edge
/// fate arrays (pass the total edge count of the original MST).
[[nodiscard]] ContractionHierarchy build_hierarchy(const exec::Executor& exec,
                                                   std::vector<index_t> u,
                                                   std::vector<index_t> v,
                                                   std::vector<index_t> gid,
                                                   index_t num_vertices,
                                                   index_t num_global_edges);

/// Deprecated shim over the per-thread default executor.
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] ContractionHierarchy build_hierarchy(exec::Space space, std::vector<index_t> u,
                                                   std::vector<index_t> v,
                                                   std::vector<index_t> gid,
                                                   index_t num_vertices,
                                                   index_t num_global_edges);

}  // namespace pandora::dendrogram
