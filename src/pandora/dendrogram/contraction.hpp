#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"

namespace pandora::dendrogram {

/// One level of the recursive tree contraction (Section 3.2).
///
/// A level is a tree whose vertices are supervertices of the previous level
/// and whose edges are the previous level's α-edges, still identified by
/// their *global* sorted index (0 = heaviest).  For every vertex the level
/// stores its "sided parent": the dendrogram parent of the vertex node by
/// Eq. (1) — the incident edge with the largest global index — encoded as
/// `2*edge + side` where side says which endpoint of that edge the vertex is.
/// The side bit distinguishes the two chains hanging below an edge node,
/// e.g. the 13L / 13R chains of Figure 9.
///
/// Levels are trivially copyable *views*: their per-vertex arrays are spans
/// into flat storage leased from the building Executor's Workspace (see
/// ContractionHierarchy), so repeated hierarchies on one Executor allocate
/// nothing after warm-up.
struct ContractionLevel {
  index_t num_vertices = 0;
  index_t num_edges = 0;
  index_t num_alpha = 0;

  /// Per vertex: 2*maxIncident + side.  Always set while the level has edges.
  std::span<const std::int64_t> sided_parent;

  /// Per vertex: containing supervertex at the next level.  Empty at the
  /// final (chain-only) level, which is never contracted.
  std::span<const index_t> vertex_map;
};

/// The full recursive contraction: MST -> α-MST -> β-MST -> ... until a level
/// has no α-edges (at most ceil(log2(n+1)) levels, Section 4.2).
///
/// `contraction_level[g]` / `supervertex[g]` give, for global edge g, the
/// level at which g was contracted away and the supervertex (vertex id of
/// level contraction_level+1) that absorbed it.  Edges of the final level are
/// marked with `supervertex == kNone`; they form the root chain.
///
/// All storage is leased from the building Executor's Workspace arena (the
/// per-level vertex arrays concatenate into two flat blocks of at most
/// 2*num_vertices entries each, since levels at least halve).  The hierarchy
/// is move-only and must not outlive the Executor it was built on.
struct ContractionHierarchy {
  std::span<const ContractionLevel> levels;
  std::span<const index_t> contraction_level;
  std::span<const index_t> supervertex;
  index_t num_global_edges = 0;

  [[nodiscard]] index_t num_levels() const { return static_cast<index_t>(levels.size()); }

  /// Backing storage for the spans above (leased; do not touch directly).
  exec::Workspace::Lease<ContractionLevel> levels_store;
  exec::Workspace::Lease<std::int64_t> sided_store;
  exec::Workspace::Lease<index_t> map_store;
  exec::Workspace::Lease<index_t> fate_store;
};

namespace detail {

/// Classifies the edges of one level tree and contracts its non-α edges.
/// Inputs: endpoints `u`/`v` (level-vertex ids) and global indices `gid` of
/// the level's edges over `num_vertices` vertices; an empty `gid` means the
/// identity mapping (edge i has global index i), which is the base level of
/// the canonical sorted MST.  On return, `level` is fully populated; if
/// α-edges exist, `next_*` hold the contracted tree and `level.vertex_map`
/// the vertex relabelling; the fate of each input edge is readable from
/// `alpha` (flag per edge).  The result owns its storage as Workspace leases
/// and must not outlive the Executor.
struct LevelResult {
  ContractionLevel level;
  std::span<const index_t> alpha;  ///< 0/1 per input edge
  std::span<const index_t> next_u, next_v, next_gid;
  index_t next_num_vertices = 0;

  /// Backing storage for the spans above (leased; do not touch directly).
  exec::Workspace::Lease<std::int64_t> sided_store;
  exec::Workspace::Lease<index_t> map_store;
  exec::Workspace::Lease<index_t> alpha_store;
  exec::Workspace::Lease<index_t> next_store;
};

[[nodiscard]] LevelResult contract_one_level(const exec::Executor& exec,
                                             std::span<const index_t> u,
                                             std::span<const index_t> v,
                                             std::span<const index_t> gid,
                                             index_t num_vertices);

}  // namespace detail

/// Builds the complete contraction hierarchy of the tree given by parallel
/// arrays (`u[i]`, `v[i]`) with global edge indices `gid[i]` over
/// `num_vertices` vertices; an empty `gid` means the identity mapping (the
/// common case — the canonical sorted MST — which then needs no materialised
/// iota at all).  `num_global_edges` sizes the per-global-edge fate arrays
/// (pass the total edge count of the original MST).
[[nodiscard]] ContractionHierarchy build_hierarchy(const exec::Executor& exec,
                                                   std::span<const index_t> u,
                                                   std::span<const index_t> v,
                                                   std::span<const index_t> gid,
                                                   index_t num_vertices,
                                                   index_t num_global_edges);

}  // namespace pandora::dendrogram
