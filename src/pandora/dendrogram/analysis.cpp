#include "pandora/dendrogram/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "pandora/common/expect.hpp"

namespace pandora::dendrogram {

namespace {

/// Number of edge-node children of every edge node.
std::vector<index_t> edge_child_counts(const Dendrogram& d) {
  std::vector<index_t> counts(static_cast<std::size_t>(d.num_edges), 0);
  for (index_t e = 1; e < d.num_edges; ++e)
    ++counts[static_cast<std::size_t>(d.parent[static_cast<std::size_t>(e)])];
  return counts;
}

}  // namespace

NodeCounts classify_edges(const Dendrogram& d) {
  NodeCounts counts;
  const std::vector<index_t> edge_kids = edge_child_counts(d);
  for (index_t e = 0; e < d.num_edges; ++e) {
    switch (edge_kids[static_cast<std::size_t>(e)]) {
      case 0: ++counts.leaf_edges; break;
      case 1: ++counts.chain_edges; break;
      default: ++counts.alpha_edges; break;
    }
  }
  return counts;
}

std::vector<index_t> edge_depths(const Dendrogram& d) {
  std::vector<index_t> depth(static_cast<std::size_t>(d.num_edges), 0);
  for (index_t e = 0; e < d.num_edges; ++e) {
    const index_t p = d.parent[static_cast<std::size_t>(e)];
    depth[static_cast<std::size_t>(e)] = p == kNone ? 1 : depth[static_cast<std::size_t>(p)] + 1;
  }
  return depth;
}

index_t height(const Dendrogram& d) {
  if (d.num_edges == 0) return 0;
  const std::vector<index_t> depth = edge_depths(d);
  return *std::max_element(depth.begin(), depth.end());
}

double skewness(const Dendrogram& d) {
  if (d.num_edges <= 1) return 1.0;
  return static_cast<double>(height(d)) / std::log2(static_cast<double>(d.num_edges));
}

std::vector<std::array<index_t, 2>> edge_children(const Dendrogram& d) {
  std::vector<std::array<index_t, 2>> children(
      static_cast<std::size_t>(d.num_edges), std::array<index_t, 2>{kNone, kNone});
  auto add = [&](index_t parent, index_t child_node) {
    auto& slots = children[static_cast<std::size_t>(parent)];
    if (slots[0] == kNone) {
      slots[0] = child_node;
    } else {
      slots[1] = child_node;
    }
  };
  // Ascending node order fills slots deterministically: edge children first
  // (they have smaller node ids), then vertex children.
  for (index_t node = 1; node < d.num_nodes(); ++node) {
    const index_t p = d.parent[static_cast<std::size_t>(node)];
    if (p != kNone) add(p, node);
  }
  return children;
}

std::vector<index_t> cut_labels(const Dendrogram& d, double threshold) {
  const index_t n = d.num_edges;
  // Edges [first_kept, n) have weight <= threshold and merge their clusters;
  // heavier edges are "cut".  weight is non-increasing, so binary search.
  const auto it = std::partition_point(d.weight.begin(), d.weight.end(),
                                       [&](double w) { return w > threshold; });
  const auto first_kept = static_cast<index_t>(it - d.weight.begin());

  // cluster_root[e]: the topmost ancestor of edge e that is itself kept.
  std::vector<index_t> cluster_root(static_cast<std::size_t>(n), kNone);
  for (index_t e = first_kept; e < n; ++e) {
    const index_t p = d.parent[static_cast<std::size_t>(e)];
    cluster_root[static_cast<std::size_t>(e)] =
        (p == kNone || p < first_kept) ? e : cluster_root[static_cast<std::size_t>(p)];
  }

  std::vector<index_t> labels(static_cast<std::size_t>(d.num_vertices), kNone);
  std::vector<index_t> dense(static_cast<std::size_t>(n) + 1, kNone);
  index_t next_label = 0;
  for (index_t v = 0; v < d.num_vertices; ++v) {
    const index_t pe = d.parent[static_cast<std::size_t>(d.vertex_node(v))];
    if (pe == kNone || pe < first_kept) {
      labels[static_cast<std::size_t>(v)] = next_label++;  // singleton cluster
      continue;
    }
    const index_t root = cluster_root[static_cast<std::size_t>(pe)];
    if (dense[static_cast<std::size_t>(root)] == kNone)
      dense[static_cast<std::size_t>(root)] = next_label++;
    labels[static_cast<std::size_t>(v)] = dense[static_cast<std::size_t>(root)];
  }
  return labels;
}

std::vector<index_t> subtree_point_counts(const Dendrogram& d) {
  std::vector<index_t> counts(static_cast<std::size_t>(d.num_edges), 0);
  if (d.num_edges == 0) return counts;
  for (index_t v = 0; v < d.num_vertices; ++v)
    ++counts[static_cast<std::size_t>(d.parent[static_cast<std::size_t>(d.vertex_node(v))])];
  // Parents are heavier (smaller index): a light-to-heavy sweep accumulates.
  for (index_t e = d.num_edges - 1; e >= 1; --e)
    counts[static_cast<std::size_t>(d.parent[static_cast<std::size_t>(e)])] +=
        counts[static_cast<std::size_t>(e)];
  return counts;
}

std::vector<LinkageRow> linkage_matrix(const Dendrogram& d) {
  const index_t n = d.num_edges;
  std::vector<LinkageRow> rows(static_cast<std::size_t>(n));
  if (n == 0) return rows;
  const std::vector<index_t> counts = subtree_point_counts(d);
  const auto children = edge_children(d);
  // SciPy cluster ids: [0, n_points) are the original points; the cluster
  // created by row r gets id n_points + r.  Edge e (rank; 0 = heaviest) is
  // the (n-1-e)-th merge, so its cluster id is n_points + (n - 1 - e).
  auto cluster_id = [&](index_t node) {
    if (d.is_vertex_node(node)) return node - d.num_edges;            // a point
    return d.num_vertices + (n - 1 - node);                           // a merge
  };
  for (index_t e = 0; e < n; ++e) {
    const index_t row = n - 1 - e;
    LinkageRow& out = rows[static_cast<std::size_t>(row)];
    index_t a = cluster_id(children[static_cast<std::size_t>(e)][0]);
    index_t b = cluster_id(children[static_cast<std::size_t>(e)][1]);
    if (a > b) std::swap(a, b);
    out.cluster_a = a;
    out.cluster_b = b;
    out.distance = d.weight[static_cast<std::size_t>(e)];
    out.size = counts[static_cast<std::size_t>(e)];
  }
  return rows;
}

void validate_dendrogram(const Dendrogram& d) {
  PANDORA_EXPECT(static_cast<index_t>(d.parent.size()) == d.num_nodes(),
                 "parent array size mismatch");
  PANDORA_EXPECT(static_cast<index_t>(d.weight.size()) == d.num_edges,
                 "weight array size mismatch");
  if (d.num_edges == 0) return;

  PANDORA_EXPECT(d.parent[0] == kNone, "the heaviest edge must be the root");
  for (index_t e = 1; e < d.num_edges; ++e) {
    const index_t p = d.parent[static_cast<std::size_t>(e)];
    PANDORA_EXPECT(p != kNone, "only the heaviest edge may be the root");
    PANDORA_EXPECT(p >= 0 && p < e, "an edge's parent must be a heavier edge");
  }
  for (index_t v = 0; v < d.num_vertices; ++v) {
    const index_t p = d.parent[static_cast<std::size_t>(d.vertex_node(v))];
    PANDORA_EXPECT(p >= 0 && p < d.num_edges, "vertex parent out of range");
  }
  for (index_t e = 0; e + 1 < d.num_edges; ++e)
    PANDORA_EXPECT(d.weight[static_cast<std::size_t>(e)] >=
                       d.weight[static_cast<std::size_t>(e) + 1],
                   "weights must be sorted descending");

  // Exactly two children per edge node (binary dendrogram, Section 2.2).
  std::vector<index_t> total_children(static_cast<std::size_t>(d.num_edges), 0);
  for (index_t node = 0; node < d.num_nodes(); ++node) {
    const index_t p = d.parent[static_cast<std::size_t>(node)];
    if (p != kNone) ++total_children[static_cast<std::size_t>(p)];
  }
  for (index_t e = 0; e < d.num_edges; ++e)
    PANDORA_EXPECT(total_children[static_cast<std::size_t>(e)] == 2,
                   "every edge node must have exactly two children");
}

}  // namespace pandora::dendrogram
