#include "pandora/dendrogram/union_find_dendrogram.hpp"

#include "pandora/graph/union_find.hpp"

namespace pandora::dendrogram {

Dendrogram union_find_dendrogram(const exec::Executor& exec, const SortedEdges& sorted) {
  const index_t n = sorted.num_edges();
  const index_t nv = sorted.num_vertices;

  Dendrogram dendrogram;
  dendrogram.num_edges = n;
  dendrogram.num_vertices = nv;
  dendrogram.weight = sorted.weight;
  dendrogram.edge_order = sorted.order;
  dendrogram.parent.assign(static_cast<std::size_t>(n) + static_cast<std::size_t>(nv), kNone);

  Timer timer;
  graph::UnionFind uf(nv);
  // rep_edge[root]: the most recent (lightest-processed-so-far) edge that
  // merged the component rooted at `root`; it is the component's current
  // representative node in the partially built dendrogram.
  std::vector<index_t> rep_edge(static_cast<std::size_t>(nv), kNone);

  for (index_t i = n - 1; i >= 0; --i) {
    const index_t eu = sorted.u[static_cast<std::size_t>(i)];
    const index_t ev = sorted.v[static_cast<std::size_t>(i)];
    for (index_t x : {eu, ev}) {
      const index_t r = uf.find(x);
      if (rep_edge[static_cast<std::size_t>(r)] != kNone) {
        dendrogram.parent[static_cast<std::size_t>(rep_edge[static_cast<std::size_t>(r)])] = i;
      } else {
        // First edge ever to touch x's (singleton) component: by Eq. (1)
        // this edge is maxIncident(x), the dendrogram parent of the vertex.
        dendrogram.parent[static_cast<std::size_t>(dendrogram.vertex_node(x))] = i;
      }
    }
    uf.unite(eu, ev);
    rep_edge[static_cast<std::size_t>(uf.find(eu))] = i;
  }
  exec.record_phase("dendrogram", timer.seconds());
  return dendrogram;
}

Dendrogram union_find_dendrogram(const exec::Executor& exec, const graph::EdgeList& mst,
                                 index_t num_vertices, bool validate_input) {
  Timer timer;
  const std::shared_ptr<const SortedEdges> sorted =
      sorted_edges_cached(exec, mst, num_vertices, validate_input);
  exec.record_phase("sort", timer.seconds());
  return union_find_dendrogram(exec, *sorted);
}

}  // namespace pandora::dendrogram
