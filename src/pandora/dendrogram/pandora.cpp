#include "pandora/dendrogram/pandora.hpp"

#include <numeric>

#include "pandora/dendrogram/contraction.hpp"
#include "pandora/dendrogram/expansion.hpp"
#include "pandora/exec/parallel.hpp"

namespace pandora::dendrogram {

Dendrogram pandora_dendrogram(const exec::Executor& exec, const SortedEdges& sorted,
                              const PandoraOptions& options) {
  const index_t n = sorted.num_edges();
  const index_t nv = sorted.num_vertices;

  Dendrogram dendrogram;
  dendrogram.num_edges = n;
  dendrogram.num_vertices = nv;
  dendrogram.weight = sorted.weight;
  dendrogram.edge_order = sorted.order;
  dendrogram.parent.assign(static_cast<std::size_t>(n) + static_cast<std::size_t>(nv), kNone);
  if (n == 0) return dendrogram;  // single data point: the vertex is the root

  std::span<index_t> edge_parent(dendrogram.parent.data(), static_cast<std::size_t>(n));

  if (options.expansion == ExpansionPolicy::single_level) {
    expand_single_level(exec, sorted, edge_parent);
    // Vertex parents by Eq. (1): recompute maxIncident of the original tree.
    // (The single-level path does not retain its base level, so one extra
    // linear pass; negligible next to the walk itself.)
    auto max_incident_lease = exec.workspace().take<index_t>(nv, kNone);
    std::vector<index_t>& max_incident = *max_incident_lease;
    exec::parallel_for(exec, n, [&](size_type i) {
      exec::atomic_fetch_max(
          max_incident[static_cast<std::size_t>(sorted.u[static_cast<std::size_t>(i)])],
          static_cast<index_t>(i));
      exec::atomic_fetch_max(
          max_incident[static_cast<std::size_t>(sorted.v[static_cast<std::size_t>(i)])],
          static_cast<index_t>(i));
    });
    exec::parallel_for(exec, nv, [&](size_type x) {
      dendrogram.parent[static_cast<std::size_t>(n + x)] =
          max_incident[static_cast<std::size_t>(x)];
    });
    return dendrogram;
  }

  Timer timer;
  std::vector<index_t> gid(static_cast<std::size_t>(n));
  std::iota(gid.begin(), gid.end(), index_t{0});
  ContractionHierarchy hierarchy = build_hierarchy(exec, sorted.u, sorted.v, std::move(gid),
                                                   nv, n);
  exec.record_phase("contraction", timer.seconds());

  expand_multilevel(exec, hierarchy, edge_parent);

  // Vertex parents by Eq. (1), straight from the base level's sided parents.
  const std::vector<std::int64_t>& sided0 = hierarchy.levels[0].sided_parent;
  exec::parallel_for(exec, nv, [&](size_type x) {
    dendrogram.parent[static_cast<std::size_t>(n + x)] =
        static_cast<index_t>(sided0[static_cast<std::size_t>(x)] >> 1);
  });
  return dendrogram;
}

Dendrogram pandora_dendrogram(const exec::Executor& exec, const graph::EdgeList& mst,
                              index_t num_vertices, const PandoraOptions& options) {
  Timer timer;
  SortedEdges sorted = sort_edges(exec, mst, num_vertices, options.validate_input);
  exec.record_phase("sort", timer.seconds());
  return pandora_dendrogram(exec, sorted, options);
}

Dendrogram pandora_dendrogram(const SortedEdges& sorted, const PandoraOptions& options,
                              PhaseTimes* times) {
  const exec::Executor& executor = exec::default_executor(options.space);
  exec::ScopedPhaseTimes scope(executor, times);
  return pandora_dendrogram(executor, sorted, options);
}

Dendrogram pandora_dendrogram(const graph::EdgeList& mst, index_t num_vertices,
                              const PandoraOptions& options, PhaseTimes* times) {
  const exec::Executor& executor = exec::default_executor(options.space);
  exec::ScopedPhaseTimes scope(executor, times);
  return pandora_dendrogram(executor, mst, num_vertices, options);
}

}  // namespace pandora::dendrogram
