#include "pandora/dendrogram/pandora.hpp"

#include <numeric>

#include "pandora/dendrogram/contraction.hpp"
#include "pandora/dendrogram/expansion.hpp"
#include "pandora/exec/parallel.hpp"

namespace pandora::dendrogram {

Dendrogram pandora_dendrogram(const SortedEdges& sorted, const PandoraOptions& options,
                              PhaseTimes* times) {
  const index_t n = sorted.num_edges();
  const index_t nv = sorted.num_vertices;
  const exec::Space space = options.space;

  Dendrogram dendrogram;
  dendrogram.num_edges = n;
  dendrogram.num_vertices = nv;
  dendrogram.weight = sorted.weight;
  dendrogram.edge_order = sorted.order;
  dendrogram.parent.assign(static_cast<std::size_t>(n) + static_cast<std::size_t>(nv), kNone);
  if (n == 0) return dendrogram;  // single data point: the vertex is the root

  std::span<index_t> edge_parent(dendrogram.parent.data(), static_cast<std::size_t>(n));

  if (options.expansion == ExpansionPolicy::single_level) {
    expand_single_level(space, sorted, edge_parent, times);
    // Vertex parents by Eq. (1): recompute maxIncident of the original tree.
    // (The single-level path does not retain its base level, so one extra
    // linear pass; negligible next to the walk itself.)
    std::vector<index_t> max_incident(static_cast<std::size_t>(nv), kNone);
    exec::parallel_for(space, n, [&](size_type i) {
      exec::atomic_fetch_max(
          max_incident[static_cast<std::size_t>(sorted.u[static_cast<std::size_t>(i)])],
          static_cast<index_t>(i));
      exec::atomic_fetch_max(
          max_incident[static_cast<std::size_t>(sorted.v[static_cast<std::size_t>(i)])],
          static_cast<index_t>(i));
    });
    exec::parallel_for(space, nv, [&](size_type x) {
      dendrogram.parent[static_cast<std::size_t>(n + x)] =
          max_incident[static_cast<std::size_t>(x)];
    });
    return dendrogram;
  }

  Timer timer;
  std::vector<index_t> gid(static_cast<std::size_t>(n));
  std::iota(gid.begin(), gid.end(), index_t{0});
  ContractionHierarchy hierarchy = build_hierarchy(space, sorted.u, sorted.v, std::move(gid),
                                                   nv, n);
  if (times) times->add("contraction", timer.seconds());

  expand_multilevel(space, hierarchy, edge_parent, times);

  // Vertex parents by Eq. (1), straight from the base level's sided parents.
  const std::vector<std::int64_t>& sided0 = hierarchy.levels[0].sided_parent;
  exec::parallel_for(space, nv, [&](size_type x) {
    dendrogram.parent[static_cast<std::size_t>(n + x)] =
        static_cast<index_t>(sided0[static_cast<std::size_t>(x)] >> 1);
  });
  return dendrogram;
}

Dendrogram pandora_dendrogram(const graph::EdgeList& mst, index_t num_vertices,
                              const PandoraOptions& options, PhaseTimes* times) {
  Timer timer;
  SortedEdges sorted = sort_edges(options.space, mst, num_vertices, options.validate_input);
  if (times) times->add("sort", timer.seconds());
  return pandora_dendrogram(sorted, options, times);
}

}  // namespace pandora::dendrogram
