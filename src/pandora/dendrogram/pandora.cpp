#include "pandora/dendrogram/pandora.hpp"

#include <atomic>

#include "pandora/dendrogram/contraction.hpp"
#include "pandora/dendrogram/expansion.hpp"
#include "pandora/exec/fingerprint.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/graph/tree.hpp"

namespace pandora::dendrogram {

void pandora_dendrogram_into(const exec::Executor& exec, const SortedEdges& sorted,
                             const PandoraOptions& options, Dendrogram& out) {
  const index_t n = sorted.num_edges();
  const index_t nv = sorted.num_vertices;

  out.num_edges = n;
  out.num_vertices = nv;
  out.weight = sorted.weight;        // copy-assign: reuses capacity
  out.edge_order = sorted.order;
  out.parent.assign(static_cast<std::size_t>(n) + static_cast<std::size_t>(nv), kNone);
  if (n == 0) return;  // single data point: the vertex is the root

  std::span<index_t> edge_parent(out.parent.data(), static_cast<std::size_t>(n));

  if (options.expansion == ExpansionPolicy::single_level) {
    expand_single_level(exec, sorted, edge_parent);
    // Vertex parents by Eq. (1): recompute maxIncident of the original tree.
    // (The single-level path does not retain its base level, so one extra
    // linear pass; negligible next to the walk itself.)
    auto max_incident_lease = exec.workspace().take<index_t>(nv, kNone);
    const std::span<index_t> max_incident = max_incident_lease.span();
    exec::parallel_for(exec, n, [&](size_type i) {
      exec::atomic_fetch_max(
          max_incident[static_cast<std::size_t>(sorted.u[static_cast<std::size_t>(i)])],
          static_cast<index_t>(i));
      exec::atomic_fetch_max(
          max_incident[static_cast<std::size_t>(sorted.v[static_cast<std::size_t>(i)])],
          static_cast<index_t>(i));
    });
    exec::parallel_for(exec, nv, [&](size_type x) {
      out.parent[static_cast<std::size_t>(n + x)] =
          max_incident[static_cast<std::size_t>(x)];
    });
    return;
  }

  Timer timer;
  // The base level's global indices are the identity, so no gid iota is ever
  // materialised (the contraction reads the loop index directly).
  ContractionHierarchy hierarchy = build_hierarchy(exec, sorted.u, sorted.v, {}, nv, n);
  exec.record_phase("contraction", timer.seconds());

  expand_multilevel(exec, hierarchy, edge_parent);

  // Vertex parents by Eq. (1), straight from the base level's sided parents.
  const std::span<const std::int64_t> sided0 = hierarchy.levels[0].sided_parent;
  exec::parallel_for(exec, nv, [&](size_type x) {
    out.parent[static_cast<std::size_t>(n + x)] =
        static_cast<index_t>(sided0[static_cast<std::size_t>(x)] >> 1);
  });
}

void pandora_dendrogram_into(const exec::Executor& exec, const graph::EdgeList& mst,
                             index_t num_vertices, const PandoraOptions& options,
                             Dendrogram& out) {
  Timer timer;
  const std::shared_ptr<const SortedEdges> sorted =
      sorted_edges_cached(exec, mst, num_vertices, options.validate_input);
  exec.record_phase("sort", timer.seconds());
  pandora_dendrogram_into(exec, *sorted, options, out);
}

Dendrogram pandora_dendrogram(const exec::Executor& exec, const SortedEdges& sorted,
                              const PandoraOptions& options) {
  Dendrogram dendrogram;
  pandora_dendrogram_into(exec, sorted, options, dendrogram);
  return dendrogram;
}

Dendrogram pandora_dendrogram(const exec::Executor& exec, const graph::EdgeList& mst,
                              index_t num_vertices, const PandoraOptions& options) {
  Dendrogram dendrogram;
  pandora_dendrogram_into(exec, mst, num_vertices, options, dendrogram);
  return dendrogram;
}

namespace {

/// A dendrogram artifact as stored in the Executor's ArtifactCache.  The
/// validation flag is atomic for the same reason as CachedSortedEdges:
/// concurrent batch queries may share the entry, and validation is monotone.
struct CachedDendrogram {
  Dendrogram dendrogram;
  std::atomic<bool> validated{false};
};

}  // namespace

std::shared_ptr<const Dendrogram> pandora_dendrogram_cached(const exec::Executor& exec,
                                                            const graph::EdgeList& mst,
                                                            index_t num_vertices,
                                                            const PandoraOptions& options) {
  if (!exec.artifact_caching()) {
    auto owned = std::make_shared<Dendrogram>();
    pandora_dendrogram_into(exec, mst, num_vertices, options, *owned);
    return owned;
  }

  const std::uint64_t key = exec::combine_fingerprint(
      exec::tagged_fingerprint(exec::ArtifactTag::dendrogram,
                               mst_fingerprint(exec, mst, num_vertices)),
      static_cast<std::uint64_t>(options.expansion));
  std::shared_ptr<CachedDendrogram> entry = exec.artifact_cache().find<CachedDendrogram>(key);
  if (entry == nullptr) {
    entry = std::make_shared<CachedDendrogram>();
    entry->validated = options.validate_input;
    pandora_dendrogram_into(exec, mst, num_vertices, options, entry->dendrogram);
    exec.artifact_cache().insert(key, entry, exec.cache_owner());
  } else if (options.validate_input && !entry->validated) {
    graph::validate_tree(mst, num_vertices);
    entry->validated = true;
  }
  const Dendrogram* view = &entry->dendrogram;
  return {std::move(entry), view};
}

}  // namespace pandora::dendrogram
