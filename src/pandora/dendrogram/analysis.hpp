#pragma once

#include <array>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"

namespace pandora::dendrogram {

/// Edge-node classification counts (Section 3.1.2 / Figure 7).
struct NodeCounts {
  index_t leaf_edges = 0;   ///< two vertex children
  index_t chain_edges = 0;  ///< one vertex child, one edge child
  index_t alpha_edges = 0;  ///< two edge children
};

/// Classifies every edge node by how many of its children are edge nodes.
[[nodiscard]] NodeCounts classify_edges(const Dendrogram& dendrogram);

/// Depth of every edge node (root = 1); depth[e] <= e + 1 by the ancestors-
/// are-heavier invariant, so a single ascending pass computes all depths.
[[nodiscard]] std::vector<index_t> edge_depths(const Dendrogram& dendrogram);

/// Height of the dendrogram: the longest chain of edge nodes from the root.
[[nodiscard]] index_t height(const Dendrogram& dendrogram);

/// Skewness (Section 3.1.3, Table 2 "Imb"): height / log2(n).
/// A perfectly balanced dendrogram has skewness ~1.
[[nodiscard]] double skewness(const Dendrogram& dendrogram);

/// The two children of every edge node, vertex nodes included (node-id
/// encoding of Dendrogram).  Every edge has exactly two; slots are filled in
/// ascending child order for determinism.
[[nodiscard]] std::vector<std::array<index_t, 2>> edge_children(const Dendrogram& dendrogram);

/// Single-linkage flat clustering: labels points by the connected components
/// obtained after removing every edge with weight > `threshold`.  Labels are
/// dense in [0, num_clusters); singleton points get their own label.
[[nodiscard]] std::vector<index_t> cut_labels(const Dendrogram& dendrogram, double threshold);

/// Number of data points (vertex nodes) in the subtree under every edge node.
[[nodiscard]] std::vector<index_t> subtree_point_counts(const Dendrogram& dendrogram);

/// One merge step of the SciPy-style linkage matrix.
struct LinkageRow {
  index_t cluster_a = kNone;  ///< ids: [0, n_points) = points, then merges
  index_t cluster_b = kNone;
  double distance = 0.0;
  index_t size = 0;           ///< points in the merged cluster
};

/// Converts the dendrogram into the (n_points - 1)-row linkage matrix used by
/// scipy.cluster.hierarchy / sklearn AgglomerativeClustering: row r merges
/// clusters `cluster_a` and `cluster_b` at `distance` into cluster
/// n_points + r; rows are ordered by non-decreasing distance (edges processed
/// lightest first).  This is the interoperability surface for downstream
/// tooling (plotting, flat cuts, cophenetic analysis).
[[nodiscard]] std::vector<LinkageRow> linkage_matrix(const Dendrogram& dendrogram);

/// Structural validation of a dendrogram: exactly one root (the heaviest
/// edge), parents always heavier than children, every edge node with exactly
/// two children, weights non-increasing.  Throws std::invalid_argument on the
/// first violated invariant.
void validate_dendrogram(const Dendrogram& dendrogram);

}  // namespace pandora::dendrogram
