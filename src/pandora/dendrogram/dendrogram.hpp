#pragma once

#include <vector>

#include "pandora/common/types.hpp"

namespace pandora::dendrogram {

/// A single-linkage dendrogram (Section 3.1.2).
///
/// The dendrogram is a rooted binary tree over two kinds of nodes:
///  * edge nodes  — one per MST edge, representing clusters; and
///  * vertex nodes — one per MST vertex (data point), the leaves.
///
/// Edges are identified by their rank in the descending-weight order
/// (0 = heaviest = the dendrogram root); `edge_order` maps that rank back to
/// the caller's original edge index.  The structure is fully described by the
/// parent function P: `parent[e]` for edge node e, `parent[num_edges + v]`
/// for vertex node v; the root's parent is kNone.
///
/// Invariant (exploited throughout the library): the parent of an edge is
/// always a heavier edge, i.e. `parent[e] < e` — ancestors precede their
/// descendants in sorted order.
struct Dendrogram {
  index_t num_edges = 0;
  index_t num_vertices = 0;

  /// Parent edge of every node; size num_edges + num_vertices.
  std::vector<index_t> parent;

  /// weight[e] of sorted edge e; non-increasing.
  std::vector<double> weight;

  /// edge_order[e] = index of sorted edge e in the caller's edge list.
  std::vector<index_t> edge_order;

  [[nodiscard]] index_t num_nodes() const { return num_edges + num_vertices; }

  /// Node id of edge e (identity; for symmetry with vertex_node).
  [[nodiscard]] index_t edge_node(index_t e) const { return e; }

  /// Node id of vertex v.
  [[nodiscard]] index_t vertex_node(index_t v) const { return num_edges + v; }

  /// True if the node id denotes a vertex (leaf) node.
  [[nodiscard]] bool is_vertex_node(index_t node) const { return node >= num_edges; }

  /// The root edge node (kNone for a single-vertex dendrogram).
  [[nodiscard]] index_t root() const { return num_edges > 0 ? 0 : kNone; }
};

}  // namespace pandora::dendrogram
