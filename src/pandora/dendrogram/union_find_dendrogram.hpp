#pragma once

#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::dendrogram {

/// Bottom-up dendrogram construction with a union-find structure
/// (Algorithm 2 of the paper) — the "UnionFind-MT" baseline [46].
///
/// Edges are processed from lightest to heaviest; each edge becomes the
/// parent of the representative nodes of its endpoints' clusters.  The sort
/// is parallel (under the executor) but the merge loop is inherently
/// sequential — parents can come from arbitrarily distant parts of the tree,
/// which is precisely the parallelisation obstacle PANDORA removes
/// (Section 2.3.2).
///
/// Phases recorded with the Executor's profiler: "sort" (EdgeList overload),
/// "dendrogram".
[[nodiscard]] Dendrogram union_find_dendrogram(const exec::Executor& exec,
                                               const SortedEdges& sorted);

/// Convenience overload that sorts internally.
[[nodiscard]] Dendrogram union_find_dendrogram(const exec::Executor& exec,
                                               const graph::EdgeList& mst,
                                               index_t num_vertices,
                                               bool validate_input = false);

}  // namespace pandora::dendrogram
