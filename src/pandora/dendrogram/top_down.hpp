#pragma once

#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::dendrogram {

/// Top-down divide-and-conquer dendrogram construction (Algorithm 1).
///
/// Removes the heaviest edge of each component recursively; the removed edge
/// becomes the parent of the two resulting sub-dendrograms.  O(n·h) work with
/// h the dendrogram height — quadratic on the skewed dendrograms this paper
/// targets — so this implementation exists as a third independent oracle for
/// the property tests and for the background discussion, not for performance.
[[nodiscard]] Dendrogram top_down_dendrogram(const SortedEdges& sorted);

/// Convenience overload that sorts internally (serially; this is a test oracle).
[[nodiscard]] Dendrogram top_down_dendrogram(const graph::EdgeList& mst, index_t num_vertices);

/// Executor overload for API uniformity: the executor performs the edge sort;
/// the divide-and-conquer walk itself is sequential (it is a test oracle).
[[nodiscard]] Dendrogram top_down_dendrogram(const exec::Executor& exec,
                                             const graph::EdgeList& mst, index_t num_vertices);

}  // namespace pandora::dendrogram
