#pragma once

#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"

namespace pandora::dendrogram {

/// O(log h) Lowest-Common-Dendrogram-Ancestor queries via binary lifting,
/// plus the cophenetic distance they induce.
///
/// Theorem 1 identifies Lcda(e_i, e_j) with the heaviest edge on the MST
/// path between the edges; for data points this makes the dendrogram an
/// oracle for the *cophenetic* (single-linkage merge) distance:
/// cophenetic(u, v) = weight of the first cluster containing both u and v.
/// Precomputation is O(n log h); queries never touch the MST again.
class DendrogramLca {
 public:
  explicit DendrogramLca(const Dendrogram& dendrogram);

  /// The LCDA of two edge nodes (each edge is its own ancestor).
  [[nodiscard]] index_t lca_edges(index_t edge_a, index_t edge_b) const;

  /// The first (lightest) cluster edge containing both data points.
  [[nodiscard]] index_t merge_edge(index_t vertex_a, index_t vertex_b) const;

  /// Single-linkage merge height of two data points; 0 for u == v.
  [[nodiscard]] double cophenetic_distance(index_t vertex_a, index_t vertex_b) const;

  /// Depth of an edge node (root = 0 here).
  [[nodiscard]] index_t depth(index_t edge) const {
    return depth_[static_cast<std::size_t>(edge)];
  }

 private:
  const Dendrogram* dendrogram_;
  index_t levels_ = 0;                      ///< lifting table height
  std::vector<index_t> depth_;              ///< per edge node
  std::vector<std::vector<index_t>> up_;    ///< up_[k][e] = 2^k-th ancestor
};

}  // namespace pandora::dendrogram
