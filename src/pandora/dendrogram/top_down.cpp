#include "pandora/dendrogram/top_down.hpp"

#include <algorithm>
#include <vector>

#include "pandora/graph/tree.hpp"

namespace pandora::dendrogram {

namespace {

struct Component {
  std::vector<index_t> edges;  ///< sorted-edge ids, arbitrary order
  index_t parent = kNone;      ///< dendrogram parent of this component's root
  index_t anchor = kNone;      ///< a vertex inside the component
};

}  // namespace

Dendrogram top_down_dendrogram(const SortedEdges& sorted) {
  const index_t n = sorted.num_edges();
  const index_t nv = sorted.num_vertices;

  Dendrogram dendrogram;
  dendrogram.num_edges = n;
  dendrogram.num_vertices = nv;
  dendrogram.weight = sorted.weight;
  dendrogram.edge_order = sorted.order;
  dendrogram.parent.assign(static_cast<std::size_t>(n) + static_cast<std::size_t>(nv), kNone);
  if (n == 0) return dendrogram;

  // Global adjacency over the sorted edges; component membership is tracked
  // with an epoch stamp so splitting costs O(component size).
  graph::EdgeList edges(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    edges[static_cast<std::size_t>(i)] = {sorted.u[static_cast<std::size_t>(i)],
                                          sorted.v[static_cast<std::size_t>(i)],
                                          sorted.weight[static_cast<std::size_t>(i)]};
  const graph::Adjacency adj = graph::build_adjacency(edges, nv);

  std::vector<index_t> edge_epoch(static_cast<std::size_t>(n), 0);
  index_t epoch = 0;

  std::vector<Component> work;
  {
    Component whole;
    whole.edges.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) whole.edges[static_cast<std::size_t>(i)] = i;
    whole.anchor = sorted.u[0];
    work.push_back(std::move(whole));
  }

  std::vector<index_t> stack;
  while (!work.empty()) {
    Component comp = std::move(work.back());
    work.pop_back();

    // The heaviest edge (smallest sorted index) roots this sub-dendrogram.
    const index_t heaviest =
        *std::min_element(comp.edges.begin(), comp.edges.end());
    dendrogram.parent[static_cast<std::size_t>(heaviest)] = comp.parent;

    // Stamp the component's remaining edges, then flood from each endpoint of
    // the removed edge to split them into the two sides.
    ++epoch;
    for (index_t e : comp.edges)
      if (e != heaviest) edge_epoch[static_cast<std::size_t>(e)] = epoch;

    for (int side = 0; side < 2; ++side) {
      const index_t start = side == 0 ? sorted.u[static_cast<std::size_t>(heaviest)]
                                      : sorted.v[static_cast<std::size_t>(heaviest)];
      Component child;
      child.parent = heaviest;
      child.anchor = start;
      stack.clear();
      stack.push_back(start);
      while (!stack.empty()) {
        const index_t x = stack.back();
        stack.pop_back();
        for (const auto& half : adj.incident(x)) {
          if (edge_epoch[static_cast<std::size_t>(half.edge)] != epoch) continue;
          edge_epoch[static_cast<std::size_t>(half.edge)] = epoch - 1;  // claim
          child.edges.push_back(half.edge);
          stack.push_back(half.neighbor);
        }
      }
      if (child.edges.empty()) {
        // The side collapsed to the lone endpoint: a vertex leaf whose
        // dendrogram parent is the removed edge (Eq. 1).
        dendrogram.parent[static_cast<std::size_t>(dendrogram.vertex_node(start))] = heaviest;
      } else {
        work.push_back(std::move(child));
      }
    }
  }
  return dendrogram;
}

Dendrogram top_down_dendrogram(const graph::EdgeList& mst, index_t num_vertices) {
  return top_down_dendrogram(
      sort_edges(exec::default_executor(exec::serial_backend()), mst, num_vertices));
}

Dendrogram top_down_dendrogram(const exec::Executor& exec, const graph::EdgeList& mst,
                               index_t num_vertices) {
  return top_down_dendrogram(sort_edges(exec, mst, num_vertices));
}

}  // namespace pandora::dendrogram
