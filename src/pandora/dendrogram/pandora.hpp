#pragma once

#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"

namespace pandora::dendrogram {

/// Which expansion stage to run (Section 3.3).
enum class ExpansionPolicy {
  multilevel,    ///< Section 3.3.2: O(n log n), the paper's algorithm
  single_level,  ///< Section 3.3.1: O(n h) walk-up; ablation / cross-check
};

/// Options for pandora_dendrogram.  (The retired `space` field is gone: the
/// Executor's backend decides where kernels run.)
struct PandoraOptions {
  ExpansionPolicy expansion = ExpansionPolicy::multilevel;
  /// Reject inputs that are not spanning trees with finite weights.
  bool validate_input = false;
};

/// PANDORA: parallel dendrogram construction by recursive tree contraction
/// (Algorithm 3).  Work-optimal (O(n log n), Section 4) and expressed
/// entirely in parallel loops, scans and sorts.
///
/// The MST overloads run the initial sort through the cross-call SortedEdges
/// cache (see sorted_edges_cached), so repeated queries against one MST sort
/// once; the `_into` variants additionally reuse the output Dendrogram's
/// storage — a second identical call on a warm Executor performs no heap
/// allocation at all.
///
/// Phases recorded with the Executor's profiler: "sort" (initial edge sort +
/// chain radix sort), "contraction" (multilevel tree contraction),
/// "expansion" (chain assignment + stitching).
[[nodiscard]] Dendrogram pandora_dendrogram(const exec::Executor& exec,
                                            const graph::EdgeList& mst, index_t num_vertices,
                                            const PandoraOptions& options = {});

/// As above, starting from pre-sorted edges (skips the "sort" phase's initial
/// sort; useful when the caller shares one sort across algorithms).
[[nodiscard]] Dendrogram pandora_dendrogram(const exec::Executor& exec,
                                            const SortedEdges& sorted,
                                            const PandoraOptions& options = {});

/// Output-reusing variants: `out` is overwritten in place, reusing its
/// vectors' capacity.
void pandora_dendrogram_into(const exec::Executor& exec, const graph::EdgeList& mst,
                             index_t num_vertices, const PandoraOptions& options,
                             Dendrogram& out);

void pandora_dendrogram_into(const exec::Executor& exec, const SortedEdges& sorted,
                             const PandoraOptions& options, Dendrogram& out);

/// The cross-call dendrogram cache: the PANDORA dendrogram of `mst`, replayed
/// from the Executor's ArtifactCache when the MST fingerprint and expansion
/// policy match.  This is the artifact a `min_cluster_size` sweep replays:
/// the contraction-hierarchy construction and expansion run once, and every
/// sweep value only re-condenses the tree (min_cluster_size does not enter
/// the key because it does not enter the dendrogram).  A mutated MST or a
/// different expansion policy derives a different key and misses.  With
/// `Executor::set_artifact_caching(false)` every call rebuilds.
[[nodiscard]] std::shared_ptr<const Dendrogram> pandora_dendrogram_cached(
    const exec::Executor& exec, const graph::EdgeList& mst, index_t num_vertices,
    const PandoraOptions& options = {});

// The deprecated bare-`Space` shims (`pandora_dendrogram(mst, n, options,
// times)`) were removed after their deprecation cycle: pass a
// `const exec::Executor&` and, for the old `PhaseTimes*` plumbing, attach a
// `PhaseTimesProfiler` (see exec::ScopedPhaseTimes).

}  // namespace pandora::dendrogram
