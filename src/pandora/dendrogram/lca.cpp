#include "pandora/dendrogram/lca.hpp"

#include <algorithm>

#include "pandora/common/expect.hpp"

namespace pandora::dendrogram {

DendrogramLca::DendrogramLca(const Dendrogram& dendrogram) : dendrogram_(&dendrogram) {
  const index_t n = dendrogram.num_edges;
  depth_.assign(static_cast<std::size_t>(n), 0);
  index_t max_depth = 0;
  for (index_t e = 1; e < n; ++e) {
    depth_[static_cast<std::size_t>(e)] =
        depth_[static_cast<std::size_t>(dendrogram.parent[static_cast<std::size_t>(e)])] + 1;
    max_depth = std::max(max_depth, depth_[static_cast<std::size_t>(e)]);
  }
  levels_ = 1;
  while ((index_t{1} << levels_) <= max_depth) ++levels_;

  up_.assign(static_cast<std::size_t>(levels_), std::vector<index_t>(static_cast<std::size_t>(n)));
  if (n == 0) return;
  for (index_t e = 0; e < n; ++e)
    up_[0][static_cast<std::size_t>(e)] =
        dendrogram.parent[static_cast<std::size_t>(e)] == kNone
            ? e  // the root lifts to itself
            : dendrogram.parent[static_cast<std::size_t>(e)];
  for (index_t k = 1; k < levels_; ++k)
    for (index_t e = 0; e < n; ++e)
      up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(e)] =
          up_[static_cast<std::size_t>(k - 1)]
             [static_cast<std::size_t>(up_[static_cast<std::size_t>(k - 1)]
                                          [static_cast<std::size_t>(e)])];
}

index_t DendrogramLca::lca_edges(index_t a, index_t b) const {
  // Lift the deeper node to the shallower's depth, then lift both together.
  if (depth_[static_cast<std::size_t>(a)] < depth_[static_cast<std::size_t>(b)]) std::swap(a, b);
  index_t delta = depth_[static_cast<std::size_t>(a)] - depth_[static_cast<std::size_t>(b)];
  for (index_t k = 0; delta != 0; ++k, delta >>= 1)
    if (delta & 1) a = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(a)];
  if (a == b) return a;
  for (index_t k = levels_ - 1; k >= 0; --k) {
    const index_t ua = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(a)];
    const index_t ub = up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(b)];
    if (ua != ub) {
      a = ua;
      b = ub;
    }
  }
  return up_[0][static_cast<std::size_t>(a)];
}

index_t DendrogramLca::merge_edge(index_t vertex_a, index_t vertex_b) const {
  PANDORA_EXPECT(vertex_a != vertex_b, "merge_edge needs two distinct points");
  const Dendrogram& d = *dendrogram_;
  const index_t ea = d.parent[static_cast<std::size_t>(d.vertex_node(vertex_a))];
  const index_t eb = d.parent[static_cast<std::size_t>(d.vertex_node(vertex_b))];
  return lca_edges(ea, eb);
}

double DendrogramLca::cophenetic_distance(index_t vertex_a, index_t vertex_b) const {
  if (vertex_a == vertex_b) return 0.0;
  return dendrogram_->weight[static_cast<std::size_t>(merge_edge(vertex_a, vertex_b))];
}

}  // namespace pandora::dendrogram
