#include "pandora/pipeline.hpp"

#include "pandora/common/timer.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/spatial/emst.hpp"

namespace pandora {

dendrogram::SortedEdges Pipeline::sort_edges(const graph::EdgeList& mst,
                                             index_t num_vertices) const {
  return cancellable(
      [&] { return dendrogram::sort_edges(*executor_, mst, num_vertices, validate_input_); });
}

dendrogram::Dendrogram Pipeline::build_dendrogram(const graph::EdgeList& mst,
                                                  index_t num_vertices) const {
  return cancellable([&] {
    if (options_.dendrogram_algorithm == hdbscan::DendrogramAlgorithm::union_find)
      return dendrogram::union_find_dendrogram(*executor_, mst, num_vertices, validate_input_);
    return dendrogram::pandora_dendrogram(*executor_, mst, num_vertices, pandora_options());
  });
}

void Pipeline::build_dendrogram_into(const graph::EdgeList& mst, index_t num_vertices,
                                     dendrogram::Dendrogram& out) const {
  cancellable([&] {
    if (options_.dendrogram_algorithm == hdbscan::DendrogramAlgorithm::union_find) {
      out = dendrogram::union_find_dendrogram(*executor_, mst, num_vertices, validate_input_);
      return;
    }
    dendrogram::pandora_dendrogram_into(*executor_, mst, num_vertices, pandora_options(), out);
  });
}

dendrogram::Dendrogram Pipeline::build_dendrogram(const dendrogram::SortedEdges& sorted) const {
  return cancellable([&] {
    if (options_.dendrogram_algorithm == hdbscan::DendrogramAlgorithm::union_find)
      return dendrogram::union_find_dendrogram(*executor_, sorted);
    return dendrogram::pandora_dendrogram(*executor_, sorted, pandora_options());
  });
}

std::vector<double> Pipeline::core_distances(const spatial::PointSet& points,
                                             const spatial::KdTree& tree) const {
  return cancellable(
      [&] { return hdbscan::core_distances(*executor_, points, tree, options_.min_pts); });
}

graph::EdgeList Pipeline::build_mst(const spatial::PointSet& points,
                                    const spatial::KdTree& tree) const {
  return cancellable([&] {
    if (options_.min_pts <= 1) return spatial::euclidean_mst(*executor_, points, tree);
    const std::vector<double> core =
        hdbscan::core_distances(*executor_, points, tree, options_.min_pts);
    return spatial::mutual_reachability_mst(*executor_, points, tree, core);
  });
}

hdbscan::HdbscanResult Pipeline::run_hdbscan(const spatial::PointSet& points) const {
  if (validate_input_) spatial::validate_points(points, "run_hdbscan");
  return cancellable([&] { return hdbscan::hdbscan(*executor_, points, options_); });
}

hdbscan::MinClusterSizeSweep Pipeline::sweep_min_cluster_size(
    const spatial::PointSet& points, std::span<const index_t> min_cluster_sizes) const {
  if (validate_input_) spatial::validate_points(points, "sweep_min_cluster_size");
  return cancellable([&] {
    return hdbscan::hdbscan_sweep_min_cluster_size(*executor_, points, min_cluster_sizes,
                                                   options_);
  });
}

std::vector<hdbscan::HdbscanResult> Pipeline::sweep_min_pts(
    const spatial::PointSet& points, std::span<const int> min_pts_values) const {
  if (validate_input_) spatial::validate_points(points, "sweep_min_pts");
  return cancellable(
      [&] { return hdbscan::hdbscan_sweep_min_pts(*executor_, points, min_pts_values, options_); });
}

}  // namespace pandora
