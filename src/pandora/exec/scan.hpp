#pragma once

#include <span>
#include <type_traits>

#include "pandora/common/types.hpp"
#include "pandora/exec/backend.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/parallel.hpp"

/// Prefix sums.  Tree contraction is "equivalent to a prefix sum on an array
/// with 2n entries" (Section 4.2); the compaction/relabelling steps of the
/// contraction and the chain bucketing of the expansion are built on these.
///
/// The parallel path is the classic three-step chunked scan — per-chunk sums,
/// a serial prefix over the chunk partials on the calling thread, per-chunk
/// rescan with the chunk's offset — expressed as two `Backend::run_chunks`
/// launches, so every backend produces identical outputs.
namespace pandora::exec {

/// out[i] = sum of in[0..i-1]; returns the grand total.
/// `in` and `out` may alias element-for-element.
template <class T>
T exclusive_scan(const Executor& exec, std::span<const T> in, std::span<T> out) {
  const size_type n = static_cast<size_type>(in.size());
  exec.check_cancellation();
  if (!exec.parallelize(n)) {
    T running{};
    for (size_type i = 0; i < n; ++i) {
      T v = in[i];
      out[i] = running;
      running += v;
    }
    return running;
  }

  const int num_chunks = exec.num_threads();
  // Leased per-chunk partials keep repeated scans allocation-free (scan
  // element types are arithmetic throughout the library).
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                "exclusive_scan leases its partials from the byte arena");
  auto partial_lease = exec.workspace().template take<T>(num_chunks + 1, T{});
  T* const partial = partial_lease.data();

  auto sum_chunk = [&](int c) {
    const size_type lo = n * c / num_chunks;
    const size_type hi = n * (c + 1) / num_chunks;
    T local{};
    for (size_type i = lo; i < hi; ++i) local += in[i];
    partial[c + 1] = local;
  };
  exec.run_chunks(num_chunks, num_chunks, sum_chunk);

  for (int c = 1; c <= num_chunks; ++c) partial[c] += partial[c - 1];

  auto scan_chunk = [&](int c) {
    const size_type lo = n * c / num_chunks;
    const size_type hi = n * (c + 1) / num_chunks;
    T running = partial[c];
    for (size_type i = lo; i < hi; ++i) {
      T v = in[i];
      out[i] = running;
      running += v;
    }
  };
  exec.run_chunks(num_chunks, num_chunks, scan_chunk);
  return partial[num_chunks];
}

/// out[i] = sum of in[0..i]; returns the grand total.
template <class T>
T inclusive_scan(const Executor& exec, std::span<const T> in, std::span<T> out) {
  const size_type n = static_cast<size_type>(in.size());
  T total = exclusive_scan<T>(exec, in, out);
  // Convert exclusive to inclusive in place: shift by the element itself.
  // (exclusive_scan already consumed in[i] before writing out[i], so when the
  // buffers alias we recompute from neighbours instead.)
  if (n == 0) return total;
  if (in.data() == out.data()) {
    // out currently holds the exclusive scan; walk backwards adding nothing is
    // impossible without the originals, so recompute serially from the
    // exclusive values: inclusive[i] = exclusive[i+1] (and total for the last).
    for (size_type i = 0; i + 1 < n; ++i) out[i] = out[i + 1];
    out[n - 1] = total;
    return total;
  }
  parallel_for(exec, n, [&](size_type i) { out[i] += in[i]; });
  return total;
}

}  // namespace pandora::exec
