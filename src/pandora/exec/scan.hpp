#pragma once

#include <omp.h>

#include <span>
#include <type_traits>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/space.hpp"

/// Prefix sums.  Tree contraction is "equivalent to a prefix sum on an array
/// with 2n entries" (Section 4.2); the compaction/relabelling steps of the
/// contraction and the chain bucketing of the expansion are built on these.
namespace pandora::exec {

/// out[i] = sum of in[0..i-1]; returns the grand total.
/// `in` and `out` may alias element-for-element.
template <class T>
T exclusive_scan(const Executor& exec, std::span<const T> in, std::span<T> out) {
  const size_type n = static_cast<size_type>(in.size());
  if (!exec.parallelize(n)) {
    T running{};
    for (size_type i = 0; i < n; ++i) {
      T v = in[i];
      out[i] = running;
      running += v;
    }
    return running;
  }

  const int max_team = exec.num_threads();
  // Leased per-thread partials keep repeated scans allocation-free (scan
  // element types are arithmetic throughout the library).
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                "exclusive_scan leases its partials from the byte arena");
  auto partial_lease = exec.workspace().template take<T>(max_team + 1, T{});
  T* const partial = partial_lease.data();
  int team = 1;
#pragma omp parallel num_threads(max_team)
  {
    // Chunk by the team size OpenMP actually granted, so every index is
    // covered even if fewer than `max_team` threads materialise.
    const int num_threads = omp_get_num_threads();
    const int t = omp_get_thread_num();
    const size_type lo = n * t / num_threads;
    const size_type hi = n * (t + 1) / num_threads;
    T local{};
    for (size_type i = lo; i < hi; ++i) local += in[i];
    partial[static_cast<std::size_t>(t) + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      team = num_threads;
      for (int k = 1; k <= num_threads; ++k) partial[k] += partial[k - 1];
    }
    T running = partial[t];
    for (size_type i = lo; i < hi; ++i) {
      T v = in[i];
      out[i] = running;
      running += v;
    }
  }
  return partial[team];
}

template <class T>
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
T exclusive_scan(Space space, std::span<const T> in, std::span<T> out) {
  return exclusive_scan<T>(default_executor(space), in, out);
}

/// out[i] = sum of in[0..i]; returns the grand total.
template <class T>
T inclusive_scan(const Executor& exec, std::span<const T> in, std::span<T> out) {
  const size_type n = static_cast<size_type>(in.size());
  T total = exclusive_scan<T>(exec, in, out);
  // Convert exclusive to inclusive in place: shift by the element itself.
  // (exclusive_scan already consumed in[i] before writing out[i], so when the
  // buffers alias we recompute from neighbours instead.)
  if (n == 0) return total;
  if (in.data() == out.data()) {
    // out currently holds the exclusive scan; walk backwards adding nothing is
    // impossible without the originals, so recompute serially from the
    // exclusive values: inclusive[i] = exclusive[i+1] (and total for the last).
    for (size_type i = 0; i + 1 < n; ++i) out[i] = out[i + 1];
    out[n - 1] = total;
    return total;
  }
  parallel_for(exec, n, [&](size_type i) { out[i] += in[i]; });
  return total;
}

template <class T>
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
T inclusive_scan(Space space, std::span<const T> in, std::span<T> out) {
  return inclusive_scan<T>(default_executor(space), in, out);
}

}  // namespace pandora::exec
