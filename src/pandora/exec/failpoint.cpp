#include "pandora/exec/failpoint.hpp"

#include <cstdlib>
#include <mutex>
#include <new>
#include <unordered_map>

#include "pandora/obs/metrics.hpp"

namespace pandora::exec::failpoint {

namespace detail {
std::atomic<int> armed_sites{0};
}  // namespace detail

namespace {

struct SiteState {
  Config config;
  std::uint64_t hits = 0;       ///< passes since (re-)arming
  std::uint64_t triggered = 0;  ///< throws since (re-)arming
  bool armed = false;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives static dtors
  return *instance;
}

/// One-time env arming: runs on the first pass through any armed-count
/// check... except the fast path never calls us when the count is zero, so
/// the env parse must happen at static-init time instead.
struct EnvArmer {
  EnvArmer() {
    const char* spec = std::getenv("PANDORA_FAILPOINTS");
    if (spec != nullptr && spec[0] != '\0') arm_from_spec(spec);
  }
};
const EnvArmer env_armer{};

[[noreturn]] void trigger(const std::string& site, Kind kind) {
  static obs::Counter& triggered_metric =
      obs::registry().counter("pandora_failpoints_triggered_total");
  triggered_metric.inc();
  if (kind == Kind::bad_alloc) throw std::bad_alloc();
  throw InjectedFault("failpoint '" + site + "' triggered");
}

}  // namespace

namespace detail {

void evaluate(const char* site) {
  Registry& reg = registry();
  Kind kind{};
  bool due = false;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end() || !it->second.armed) return;
    SiteState& state = it->second;
    ++state.hits;
    if (state.hits <= state.config.skip) return;
    if (state.config.limit != 0 && state.triggered >= state.config.limit) return;
    ++state.triggered;
    if (state.config.limit != 0 && state.triggered >= state.config.limit) {
      state.armed = false;
      armed_sites.fetch_sub(1, std::memory_order_relaxed);
    }
    kind = state.config.kind;
    due = true;
  }
  if (due) trigger(site, kind);
}

}  // namespace detail

void arm(std::string_view site, Config config) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  SiteState& state = reg.sites[std::string(site)];
  if (!state.armed) detail::armed_sites.fetch_add(1, std::memory_order_relaxed);
  state = SiteState{config, 0, 0, true};
}

void disarm(std::string_view site) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.sites.find(std::string(site));
  if (it == reg.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  detail::armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [name, state] : reg.sites) {
    if (state.armed) detail::armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
  reg.sites.clear();
}

std::uint64_t hits(std::string_view site) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.sites.find(std::string(site));
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::uint64_t triggered(std::string_view site) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.sites.find(std::string(site));
  return it == reg.sites.end() ? 0 : it->second.triggered;
}

void arm_from_spec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string_view entry =
        spec.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;

    Config config;
    std::string_view counters;
    const std::size_t eq = entry.find('=');
    if (eq != std::string_view::npos) {
      counters = entry.substr(eq + 1);
      entry = entry.substr(0, eq);
    }
    const std::size_t at = entry.find('@');
    std::string_view site = entry;
    if (at != std::string_view::npos) {
      const std::string_view kind = entry.substr(at + 1);
      site = entry.substr(0, at);
      if (kind == "badalloc") {
        config.kind = Kind::bad_alloc;
      } else if (kind == "error") {
        config.kind = Kind::error;
      } else {
        throw std::invalid_argument("PANDORA_FAILPOINTS: unknown kind '" + std::string(kind) +
                                    "' (expected error|badalloc)");
      }
    }
    if (!counters.empty()) {
      const auto parse_u64 = [](std::string_view text) -> std::uint64_t {
        if (text.empty()) throw std::invalid_argument("PANDORA_FAILPOINTS: empty number");
        std::uint64_t value = 0;
        for (const char c : text) {
          if (c < '0' || c > '9')
            throw std::invalid_argument("PANDORA_FAILPOINTS: bad number '" + std::string(text) +
                                        "'");
          value = value * 10 + static_cast<std::uint64_t>(c - '0');
        }
        return value;
      };
      const std::size_t colon = counters.find(':');
      config.skip = parse_u64(counters.substr(0, colon));
      if (colon != std::string_view::npos) config.limit = parse_u64(counters.substr(colon + 1));
    }
    if (site.empty()) throw std::invalid_argument("PANDORA_FAILPOINTS: empty site name");
    arm(site, config);
  }
}

}  // namespace pandora::exec::failpoint
