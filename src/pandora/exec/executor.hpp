#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <string_view>
#include <type_traits>
#include <typeinfo>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pandora/common/expect.hpp"
#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/exec/backend.hpp"
#include "pandora/exec/cancellation.hpp"
#include "pandora/exec/failpoint.hpp"
#include "pandora/exec/memory.hpp"
#include "pandora/obs/metrics.hpp"
#include "pandora/obs/trace.hpp"

/// The execution context of the library: `Executor`.
///
/// The paper's implementation expresses every kernel against Kokkos execution
/// space *instances* — objects carrying the backend choice, resources and
/// reusable scratch memory.  This reproduction mirrors that design: an
/// `Executor` owns (a) the execution `Backend` (serial / OpenMP / pinned
/// pool, extensible to a device backend — see backend.hpp), (b) a thread
/// budget, (c) a reusable `Workspace` arena — allocating through the
/// backend's `MemoryResource` — that amortises scratch-buffer allocations
/// across repeated dendrogram / HDBSCAN* calls on same-sized inputs, (d) an
/// optional `Profiler` hook that subsumes the old `PhaseTimes*`
/// out-parameters, (e) the edge-sort algorithm selection (key-packed radix
/// by default, comparison merge as the fallback), and (f) an `ArtifactCache`
/// that lets upper layers reuse derived artifacts (e.g. the canonical
/// SortedEdges of an MST) across calls.  Every kernel takes a
/// `const Executor&`.  (The old two-value `Space` enum and its bare-`Space`
/// shims are fully retired; see the README migration table.)
namespace pandora::exec {

/// Below this trip count per-kernel dispatch overhead dominates; kernels run
/// serially.  (The Executor needs it to answer `parallelize(n)`.)
inline constexpr size_type kParallelForGrain = 2048;

namespace detail {

/// Pre-registered process-wide handles for the exec-layer metrics (see
/// pandora/obs/metrics.hpp).  The function-local static pins registration to
/// first use; after that a call is the init-guard check plus one relaxed
/// atomic RMW — cheap enough for the launch/lease hot paths, and
/// allocation-free, which the warm-query zero-heap gates rely on.
inline obs::Counter& run_chunks_metric() {
  static obs::Counter& metric = obs::registry().counter("pandora_exec_run_chunks_total");
  return metric;
}
inline obs::Counter& thread_grants_metric() {
  static obs::Counter& metric = obs::registry().counter("pandora_exec_thread_grants_total");
  return metric;
}
inline obs::Counter& thread_grants_clamped_metric() {
  static obs::Counter& metric =
      obs::registry().counter("pandora_exec_thread_grants_clamped_total");
  return metric;
}
inline obs::Counter& workspace_bytes_metric() {
  static obs::Counter& metric = obs::registry().counter("pandora_workspace_leased_bytes_total");
  return metric;
}
inline obs::Counter& workspace_miss_metric() {
  static obs::Counter& metric = obs::registry().counter("pandora_workspace_arena_misses_total");
  return metric;
}
inline obs::Counter& cache_hits_metric() {
  static obs::Counter& metric = obs::registry().counter("pandora_cache_hits_total");
  return metric;
}
inline obs::Counter& cache_misses_metric() {
  static obs::Counter& metric = obs::registry().counter("pandora_cache_misses_total");
  return metric;
}
inline obs::Counter& cache_evictions_metric() {
  static obs::Counter& metric = obs::registry().counter("pandora_cache_evictions_total");
  return metric;
}
/// Live pinned entries summed over *all* ArtifactCache instances (each cache
/// still reports its own exact count via `stats()`).
inline obs::Gauge& cache_pinned_metric() {
  static obs::Gauge& metric = obs::registry().gauge("pandora_cache_pinned_slots");
  return metric;
}

}  // namespace detail

/// A size-class-aware byte arena handing out typed spans.
///
/// Kernels lease scratch with `take` / `take_uninit`; a lease is a typed view
/// over a recycled 64-byte-aligned block whose size is rounded up to the next
/// power of two (its *size class*).  When the lease goes out of scope the
/// block returns to its class's free list, so a second call with same-sized
/// inputs performs no heap allocation — and because blocks are raw bytes, one
/// block serves `index_t` scratch on this call and `double` scratch on the
/// next, which keeps retained memory low on mixed workloads (unlike the old
/// per-element-type pools).  Free lists are LIFO: identical call sequences
/// acquire identical blocks, preserving bit-for-bit determinism of anything
/// that (incorrectly) depended on buffer addresses.
///
/// Element types must be trivially copyable and trivially destructible (the
/// arena never runs constructors or destructors); `take_uninit` hands out the
/// block's previous bytes, `take` fills with a value.
///
/// Blocks come from a `MemoryResource` (the owning backend's, host memory by
/// default), so a device backend substitutes device buffers without touching
/// the lease/size-class logic here.
///
/// Not thread-safe: one Workspace belongs to one Executor and kernels on an
/// Executor run one at a time (parallelism happens *inside* kernels).
class Workspace {
 public:
  /// Allocation statistics, exposed so tests and the repeated-query benches
  /// can assert/report the steady-state "no new allocations" property.
  struct Stats {
    std::size_t takes = 0;   ///< leases served
    std::size_t hits = 0;    ///< served from a recycled free block
    std::size_t misses = 0;  ///< required a fresh heap allocation
  };

  /// RAII lease of a typed span over an arena block.  Default-constructed
  /// leases are empty.  A lease must not outlive its Workspace.
  template <class T>
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0)),
          home_(std::exchange(other.home_, nullptr)),
          size_class_(other.size_class_) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
        home_ = std::exchange(other.home_, nullptr);
        size_class_ = other.size_class_;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] T* data() noexcept { return data_; }
    [[nodiscard]] const T* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
    [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }
    [[nodiscard]] T* begin() noexcept { return data_; }
    [[nodiscard]] T* end() noexcept { return data_ + size_; }
    [[nodiscard]] const T* begin() const noexcept { return data_; }
    [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
    [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
    [[nodiscard]] std::span<const T> span() const noexcept { return {data_, size_}; }
    operator std::span<T>() noexcept { return {data_, size_}; }              // NOLINT
    operator std::span<const T>() const noexcept { return {data_, size_}; }  // NOLINT

   private:
    friend class Workspace;
    Lease(T* data, std::size_t size, Workspace* home, int size_class)
        : data_(data), size_(size), home_(home), size_class_(size_class) {}
    void release() {
      if (home_ != nullptr) {
        home_->release_block(data_, size_class_);
        home_ = nullptr;
      }
      data_ = nullptr;
      size_ = 0;
    }

    T* data_ = nullptr;
    std::size_t size_ = 0;
    Workspace* home_ = nullptr;
    int size_class_ = 0;
  };

  /// `memory == nullptr` selects the process-wide host resource.  The
  /// resource must outlive the Workspace and every lease taken from it.
  explicit Workspace(MemoryResource* memory = nullptr)
      : memory_(memory != nullptr ? memory : &host_memory_resource()) {}
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  ~Workspace() { clear(); }

  [[nodiscard]] MemoryResource& memory_resource() const noexcept { return *memory_; }

  /// Lease a span over `n` elements with unspecified contents (the recycled
  /// block's previous bytes).  For scratch that is fully overwritten before
  /// being read.
  template <class T>
  [[nodiscard]] Lease<T> take_uninit(size_type n) {
    static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                  "the Workspace arena hands out raw byte blocks");
    ++stats_.takes;
    if (n <= 0) {
      ++stats_.hits;  // the empty lease costs nothing
      return Lease<T>();
    }
    int size_class = 0;
    void* block = acquire_block(static_cast<std::size_t>(n) * sizeof(T), size_class);
    return Lease<T>(static_cast<T*>(block), static_cast<std::size_t>(n), this, size_class);
  }

  /// Lease a span of `n` elements, every element set to `fill`.
  template <class T>
  [[nodiscard]] Lease<T> take(size_type n, const T& fill = T{}) {
    Lease<T> lease = take_uninit<T>(n);
    for (T& slot : lease) slot = fill;
    return lease;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Bytes currently held on the free lists (retained, reusable memory).
  [[nodiscard]] std::size_t retained_bytes() const noexcept {
    std::size_t total = 0;
    for (std::size_t c = 0; c < kNumClasses; ++c)
      total += free_[c].size() << (c + kMinClassLog2);
    return total;
  }

  /// Free every cached block — the arena returns to its empty state.  Leases
  /// still outstanding are unaffected and return their blocks afterwards.
  void clear() {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      for (void* block : free_[c]) deallocate_block(block, static_cast<int>(c));
      free_[c].clear();
      free_[c].shrink_to_fit();
    }
  }

 private:
  /// Classes are powers of two from 64 bytes (class 0) upward; class c holds
  /// blocks of exactly 1 << (c + kMinClassLog2) bytes.
  static constexpr std::size_t kMinClassLog2 = 6;
  static constexpr std::size_t kNumClasses = 42;
  static constexpr std::size_t kBlockAlignment = 64;

  [[nodiscard]] static int class_of(std::size_t bytes) {
    const int width = std::bit_width(bytes - 1);  // bytes >= 1
    return width <= static_cast<int>(kMinClassLog2)
               ? 0
               : width - static_cast<int>(kMinClassLog2);
  }

  [[nodiscard]] void* acquire_block(std::size_t bytes, int& size_class) {
    detail::workspace_bytes_metric().inc(bytes);
    const int wanted = class_of(bytes);
    // Exact class first, then the smallest larger class with a free block
    // (a shrinking workload reuses its big blocks instead of allocating).
    for (int c = wanted; c < static_cast<int>(kNumClasses); ++c) {
      auto& list = free_[static_cast<std::size_t>(c)];
      if (!list.empty()) {
        void* block = list.back();
        list.pop_back();
        ++stats_.hits;
        size_class = c;
        return block;
      }
    }
    ++stats_.misses;
    detail::workspace_miss_metric().inc();
    size_class = wanted;
    return memory_->allocate(
        std::size_t{1} << (static_cast<std::size_t>(wanted) + kMinClassLog2),
        kBlockAlignment);
  }

  void release_block(void* block, int size_class) {
    if (block != nullptr) free_[static_cast<std::size_t>(size_class)].push_back(block);
  }

  void deallocate_block(void* block, int size_class) const noexcept {
    memory_->deallocate(block,
                        std::size_t{1} << (static_cast<std::size_t>(size_class) + kMinClassLog2),
                        kBlockAlignment);
  }

  MemoryResource* memory_ = &host_memory_resource();
  std::array<std::vector<void*>, kNumClasses> free_;
  Stats stats_;
};

/// A small fingerprint-keyed cache of derived artifacts, attached to the
/// Executor so upper layers (dendrogram, hdbscan, spatial) can reuse
/// expensive intermediate results — the canonical descending-weight
/// SortedEdges of an MST, the kd-tree and per-mpts core distances of a point
/// set, the PANDORA dendrogram replayed across `min_cluster_size` sweeps —
/// across calls without a layering inversion.  Entries are type-erased
/// shared_ptrs matched on (fingerprint, type); eviction is
/// least-recently-used over a fixed number of slots.
///
/// Locking contract: every operation (find / insert / clear / stats) takes
/// the cache's internal mutex, so the cache may be shared by concurrent
/// queries — the batch serving layer points all of its slot executors at one
/// parent cache.  The contract the mutex enforces:
///  * `find` returns an owning shared_ptr, so a hit stays alive even if the
///    entry is concurrently evicted; callers never hold references into the
///    cache itself.
///  * cached values are immutable after insert — readers share them without
///    further synchronisation.  (The single exception, the SortedEdges
///    validation flag, is an atomic.)
///  * two threads missing on the same fingerprint may both compute and both
///    insert; the last insert wins and the loser's value simply dies with
///    its shared_ptr.  Correctness never depends on single-insertion.
/// The uncontended lock costs nanoseconds next to the artifacts being cached
/// (sorts, tree builds), so the single-query path is unaffected.
///
/// Two serving-tier refinements ride on top of plain LRU:
///  * **pin groups** — `pin(g)` exempts every entry inserted with
///    `Owner::pin_group == g` from eviction until the last `unpin(g)`;
///    `purge_group(g)` reclaims them.  The snapshot tier pins one group per
///    live snapshot so a reader's artifacts survive concurrent inserts.
///  * **tenant quotas** — `set_tenant_quota(q)` caps the slots any tenant
///    (`Owner::tenant != 0`) occupies; a tenant at its cap displaces its own
///    LRU entry, never another tenant's hot artifact.
class ArtifactCache {
 public:
  /// Observability counters, readable without taking the cache lock (the
  /// counters are relaxed atomics; a snapshot of them is not required to be
  /// mutually consistent — they feed dashboards and benches, not logic).
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;     ///< occupied entries displaced by a different key
    std::size_t pinned_slots = 0;  ///< entries currently belonging to pinned groups
  };

  /// Provenance attached to an insert: which pin group the entry belongs to
  /// (0 = none; see `pin`) and which tenant is accountable for its slot
  /// (0 = none; see `set_tenant_quota`).  Kernels read it off the Executor
  /// (`Executor::cache_owner()`), so upper layers tag artifacts without
  /// threading parameters through every kernel signature.
  struct Owner {
    std::uint64_t pin_group = 0;
    std::uint64_t tenant = 0;
  };

  static constexpr std::size_t kDefaultSlots = 16;

  explicit ArtifactCache(std::size_t slots = kDefaultSlots)
      : entries_(slots > 0 ? slots : std::size_t{1}),
        nominal_slots_(slots > 0 ? slots : std::size_t{1}) {}
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// The cached artifact for `fingerprint`, or nullptr.  A hit performs no
  /// heap allocation (the shared_ptr copy only bumps a refcount).
  template <class T>
  [[nodiscard]] std::shared_ptr<T> find(std::uint64_t fingerprint) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Entry& entry : entries_) {
      if (entry.value != nullptr && entry.fingerprint == fingerprint &&
          *entry.type == typeid(T)) {
        entry.stamp = ++clock_;
        hits_.fetch_add(1, std::memory_order_relaxed);
        detail::cache_hits_metric().inc();
        return std::static_pointer_cast<T>(entry.value);
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    detail::cache_misses_metric().inc();
    return nullptr;
  }

  /// Stores `value` under `fingerprint`.  An existing (fingerprint, type)
  /// entry is replaced in place — callers that detect a stale value (e.g.
  /// the spatial caches' points-identity check) rely on their re-insert
  /// superseding it rather than shadowing it behind a duplicate.  Otherwise
  /// the victim is chosen in order:
  ///  * a tenant over its quota displaces its own least-recently-used
  ///    (unpinned) entry — never another tenant's;
  ///  * an empty slot;
  ///  * the least-recently-used entry outside every pinned group;
  ///  * when every slot belongs to a pinned group, the cache *grows* by one
  ///    overflow slot instead of evicting: a live snapshot's artifacts are
  ///    never dropped mid-read (`purge_group` reclaims the overflow when the
  ///    snapshot retires).
  template <class T>
  void insert(std::uint64_t fingerprint, std::shared_ptr<T> value, Owner owner = {}) {
    std::shared_ptr<void> doomed;  // evicted value released outside the lock
    const std::lock_guard<std::mutex> lock(mutex_);
    Entry* match = nullptr;
    Entry* empty = nullptr;
    Entry* lru = nullptr;         // least recent entry outside pinned groups
    Entry* tenant_lru = nullptr;  // least recent unpinned entry of owner.tenant
    std::size_t tenant_count = 0;
    for (Entry& entry : entries_) {
      if (entry.value == nullptr) {
        if (empty == nullptr) empty = &entry;
        continue;
      }
      if (entry.fingerprint == fingerprint && *entry.type == typeid(T)) {
        match = &entry;
        break;
      }
      if (owner.tenant != 0 && entry.tenant == owner.tenant) ++tenant_count;
      if (pinned(entry)) continue;
      if (lru == nullptr || entry.stamp < lru->stamp) lru = &entry;
      if (owner.tenant != 0 && entry.tenant == owner.tenant &&
          (tenant_lru == nullptr || entry.stamp < tenant_lru->stamp)) {
        tenant_lru = &entry;
      }
    }
    Entry* slot = match;
    if (slot == nullptr) {
      const std::size_t quota = tenant_quota_.load(std::memory_order_relaxed);
      if (owner.tenant != 0 && quota > 0 && tenant_count >= quota && tenant_lru != nullptr) {
        slot = tenant_lru;  // quota displacement: the tenant pays with its own entry
      } else if (empty != nullptr) {
        slot = empty;
      } else if (lru != nullptr) {
        slot = lru;
      } else {
        // Every slot is occupied and pinned: soft overflow (see above).
        entries_.emplace_back();
        slot = &entries_.back();
      }
    }
    if (slot->value != nullptr) {
      if (slot != match) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
        detail::cache_evictions_metric().inc();
      }
      if (pinned(*slot)) {
        pinned_count_.fetch_sub(1, std::memory_order_relaxed);
        detail::cache_pinned_metric().add(-1);
      }
    }
    doomed = std::move(slot->value);
    slot->fingerprint = fingerprint;
    slot->type = &typeid(T);
    slot->value = std::move(value);
    slot->stamp = ++clock_;
    slot->pin_group = owner.pin_group;
    slot->tenant = owner.tenant;
    if (pinned(*slot)) {
      pinned_count_.fetch_add(1, std::memory_order_relaxed);
      detail::cache_pinned_metric().add(1);
    }
  }

  /// Declares `group` pinned (refcounted): entries inserted with
  /// `Owner::pin_group == group` are exempt from LRU eviction until the last
  /// `unpin(group)`.  The snapshot tier pins one group per live snapshot
  /// (keyed by its epoch fingerprint), so a reader mid-query can never lose
  /// an artifact to a colder query's insert.  Group 0 is reserved (never
  /// pinned).
  void pin(std::uint64_t group) {
    if (group == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (++pins_[group] == 1) {
      for (const Entry& entry : entries_) {
        if (entry.value != nullptr && entry.pin_group == group) {
          pinned_count_.fetch_add(1, std::memory_order_relaxed);
          detail::cache_pinned_metric().add(1);
        }
      }
    }
  }

  /// Drops one pin on `group`; at zero the group's entries become ordinary
  /// LRU citizens again (they are not removed — see `purge_group`).
  void unpin(std::uint64_t group) {
    if (group == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pins_.find(group);
    if (it == pins_.end()) return;
    if (--it->second == 0) {
      pins_.erase(it);
      for (const Entry& entry : entries_) {
        if (entry.value != nullptr && entry.pin_group == group) {
          pinned_count_.fetch_sub(1, std::memory_order_relaxed);
          detail::cache_pinned_metric().add(-1);
        }
      }
    }
  }

  /// Removes every entry of `group` (pinned or not) and releases any
  /// overflow slots past the nominal capacity that emptied.  The snapshot
  /// tier calls this when a retired snapshot's last reader drains: its
  /// epoch-keyed artifacts are unreachable (epoch fingerprints never repeat)
  /// and would otherwise squat in the LRU until aged out.
  void purge_group(std::uint64_t group) {
    std::vector<std::shared_ptr<void>> doomed;  // released outside the lock
    const std::lock_guard<std::mutex> lock(mutex_);
    const bool was_pinned = pins_.find(group) != pins_.end();
    for (Entry& entry : entries_) {
      if (entry.value == nullptr || entry.pin_group != group) continue;
      doomed.push_back(std::move(entry.value));
      entry = Entry{};
      if (was_pinned) {
        pinned_count_.fetch_sub(1, std::memory_order_relaxed);
        detail::cache_pinned_metric().add(-1);
      }
    }
    while (entries_.size() > nominal_slots_ && entries_.back().value == nullptr)
      entries_.pop_back();
  }

  /// Caps how many slots any single tenant (`Owner::tenant != 0`) may occupy:
  /// once at the cap, a tenant's insert displaces its own least-recently-used
  /// entry instead of anyone else's.  0 (the default) disables the quota.
  /// Untagged inserts (tenant 0) are never capped.
  void set_tenant_quota(std::size_t slots) noexcept {
    tenant_quota_.store(slots, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t tenant_quota() const noexcept {
    return tenant_quota_.load(std::memory_order_relaxed);
  }

  void clear() {
    std::vector<Entry> doomed;  // destructors run outside the lock
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      doomed = std::move(entries_);
      entries_.assign(nominal_slots_, Entry{});
      const std::size_t pinned = pinned_count_.exchange(0, std::memory_order_relaxed);
      detail::cache_pinned_metric().add(-static_cast<std::int64_t>(pinned));
    }
  }

  [[nodiscard]] std::size_t num_slots() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  [[nodiscard]] Stats stats() const noexcept {
    Stats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.pinned_slots = pinned_count_.load(std::memory_order_relaxed);
    return out;
  }
  void reset_stats() noexcept {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    // pinned_slots is a gauge, not a counter: it tracks live state.
  }

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    const std::type_info* type = nullptr;
    std::shared_ptr<void> value;
    std::uint64_t stamp = 0;
    std::uint64_t pin_group = 0;
    std::uint64_t tenant = 0;
  };

  /// Call under mutex_.
  [[nodiscard]] bool pinned(const Entry& entry) const {
    return entry.pin_group != 0 && pins_.find(entry.pin_group) != pins_.end();
  }

  mutable std::mutex mutex_;
  mutable std::vector<Entry> entries_;
  std::size_t nominal_slots_ = kDefaultSlots;
  mutable std::uint64_t clock_ = 0;
  mutable std::unordered_map<std::uint64_t, std::size_t> pins_;  ///< group -> refcount
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> evictions_{0};
  mutable std::atomic<std::size_t> pinned_count_{0};
  std::atomic<std::size_t> tenant_quota_{0};
};

/// Receives per-phase timings from the library's drivers ("sort",
/// "contraction", "expansion", "mst", ...).  Attach one to an Executor to
/// observe a pipeline; this subsumes the old `PhaseTimes*` out-parameters.
class Profiler {
 public:
  virtual ~Profiler() = default;
  virtual void on_phase(std::string_view phase, double seconds) = 0;
};

/// A Profiler accumulating into a PhaseTimes (owned or external), optionally
/// chaining to another profiler so nested scopes all observe the phases.
///
/// Single-thread contract: PhaseTimes is a plain std::map, so `on_phase`
/// must never run concurrently with itself — attach one PhaseTimesProfiler
/// to one executor at a time and never share it across batch-slot executors
/// running in parallel (each slot gets its own, or none).  Sequential use
/// from different threads (e.g. a batch that runs jobs one after another on
/// worker threads) is fine.  Violations are detected with a busy flag and
/// fail loudly (std::invalid_argument) instead of racing the map.
class PhaseTimesProfiler final : public Profiler {
 public:
  PhaseTimesProfiler() = default;
  explicit PhaseTimesProfiler(PhaseTimes* sink, Profiler* next = nullptr)
      : sink_(sink), next_(next) {}

  void on_phase(std::string_view phase, double seconds) override {
    PANDORA_EXPECT(!busy_.exchange(true, std::memory_order_acquire),
                   "PhaseTimesProfiler::on_phase called from two threads at once; "
                   "PhaseTimes is unsynchronized — give each concurrent executor "
                   "its own profiler");
    struct Unbusy {
      std::atomic<bool>& flag;
      ~Unbusy() { flag.store(false, std::memory_order_release); }
    } unbusy{busy_};
    times().add(std::string(phase), seconds);
    if (next_ != nullptr) next_->on_phase(phase, seconds);
  }

  [[nodiscard]] PhaseTimes& times() noexcept { return sink_ != nullptr ? *sink_ : own_; }
  [[nodiscard]] const PhaseTimes& times() const noexcept {
    return sink_ != nullptr ? *sink_ : own_;
  }

 private:
  PhaseTimes own_;
  PhaseTimes* sink_ = nullptr;
  Profiler* next_ = nullptr;
  std::atomic<bool> busy_{false};  ///< concurrent-misuse detector (see above)
};

/// Which algorithm runs the initial descending-(weight, id) edge sort of
/// Section 3.1.1.  The key-packed radix path is the default (and is asserted
/// bit-identical to the comparison sort by the equivalence tests); the merge
/// path survives as the comparison-based reference and fallback.
enum class EdgeSortAlgorithm {
  radix,  ///< order-preserving key32 + packed edge id through radix_sort_u64
  merge,  ///< stable comparison merge sort (reference / fallback)
};

/// The reusable execution context every kernel takes by const reference.
///
/// Cheap to construct, but meant to be constructed once and reused: the
/// workspace arena and artifact cache only pay off across repeated calls.
/// The workspace, profiler, cache and algorithm selections are logically part
/// of the execution *context*, not the kernel inputs, so they are mutable
/// behind the const interface (exactly like Kokkos execution-space instances,
/// whose scratch arenas are mutable too).
///
/// Not thread-safe: do not run two kernels on the same Executor concurrently
/// (parallelism happens inside kernels, governed by `num_threads`).
class Executor {
 public:
  /// An executor on `backend` (nullptr selects `default_backend()`) with an
  /// optional explicit thread budget (0 = the backend's default).  The
  /// Workspace arena allocates through the backend's MemoryResource.
  explicit Executor(std::shared_ptr<const Backend> backend, int num_threads = 0)
      : backend_(backend != nullptr ? std::move(backend) : default_backend()),
        requested_threads_(num_threads),
        workspace_(&backend_->memory_resource()) {}

  /// An executor on the default backend (openmp, or whatever PANDORA_BACKEND
  /// names) with its default thread budget.
  Executor() : Executor(std::shared_ptr<const Backend>{}, 0) {}

  /// An executor on the default backend with an explicit thread budget.
  explicit Executor(int num_threads) : Executor(std::shared_ptr<const Backend>{}, num_threads) {}

  /// The execution backend every kernel on this executor dispatches through.
  [[nodiscard]] const Backend& backend() const noexcept { return *backend_; }
  [[nodiscard]] const std::shared_ptr<const Backend>& backend_ptr() const noexcept {
    return backend_;
  }

  /// Human-readable backend name for benchmark tables.
  [[nodiscard]] const char* name() const { return backend_->name(); }

  /// The thread budget the backend granted this executor: the requested
  /// count (clamped by fixed-capacity backends) or the backend's default.
  /// Answered by the backend itself, never by global runtime state, so a
  /// nested executor (e.g. a batch serving slot) reports truthfully.
  [[nodiscard]] int num_threads() const {
    const int granted = backend_->grant_threads(requested_threads_);
    detail::thread_grants_metric().inc();
    if (requested_threads_ > 0 && granted < requested_threads_)
      detail::thread_grants_clamped_metric().inc();
    return granted;
  }

  /// The thread count the constructor requested (0 = backend default) —
  /// what a sub-executor should inherit as its own ceiling.
  [[nodiscard]] int requested_threads() const noexcept { return requested_threads_; }

  /// True when a kernel over `n` items should take its parallel path.
  [[nodiscard]] bool parallelize(size_type n) const {
    return n >= kParallelForGrain && num_threads() > 1;
  }

  /// The scratch-buffer arena (see Workspace).
  [[nodiscard]] Workspace& workspace() const noexcept { return workspace_; }

  /// The cross-call artifact cache (see ArtifactCache): the executor's own
  /// cache, or the shared cache installed by `use_shared_artifact_cache`.
  [[nodiscard]] ArtifactCache& artifact_cache() const noexcept {
    return shared_cache_ != nullptr ? *shared_cache_ : artifact_cache_;
  }

  /// Points this executor at an external ArtifactCache (non-owning; nullptr
  /// restores the own cache).  The batch serving layer installs the parent
  /// executor's cache on every slot executor, so concurrent queries share one
  /// artifact pool — safe because the ArtifactCache locks internally (see its
  /// locking contract).  The cache must outlive the executor's use of it.
  void use_shared_artifact_cache(ArtifactCache* cache) const noexcept {
    shared_cache_ = cache;
  }

  /// The currently installed shared cache (nullptr when the executor uses
  /// its own) — what a scope guard saves before re-pointing the executor at
  /// another cache, so nesting restores correctly.
  [[nodiscard]] ArtifactCache* shared_artifact_cache() const noexcept { return shared_cache_; }

  /// The provenance tag cache-filling kernels attach to their inserts (see
  /// ArtifactCache::Owner).  Defaults to untagged; the snapshot tier sets the
  /// pin group for the duration of a pinned read, the batch serving layer
  /// sets the tenant for the duration of a job.  Mutable behind const like
  /// the profiler: it is execution *context*, not kernel input.
  [[nodiscard]] ArtifactCache::Owner cache_owner() const noexcept { return cache_owner_; }
  void set_cache_owner(ArtifactCache::Owner owner) const noexcept { cache_owner_ = owner; }

  /// Whether cross-call artifact reuse (e.g. the SortedEdges cache keyed on
  /// the MST fingerprint) is enabled.  On by default; turn off to force every
  /// call to recompute — benchmarks comparing construction algorithms do.
  [[nodiscard]] bool artifact_caching() const noexcept { return artifact_caching_; }
  void set_artifact_caching(bool enabled) const noexcept { artifact_caching_ = enabled; }

  /// The edge-sort algorithm selection consulted by `sort_edges`.
  [[nodiscard]] EdgeSortAlgorithm edge_sort_algorithm() const noexcept { return edge_sort_; }
  void set_edge_sort_algorithm(EdgeSortAlgorithm algorithm) const noexcept {
    edge_sort_ = algorithm;
  }

  /// The installed cancellation token (nullptr = not cancellable).
  /// Non-owning; the token must outlive its installation.  Installed via
  /// `ScopedCancellation` by the Pipeline / batch layers; mutable behind
  /// const like the profiler — it is execution context, not kernel input.
  [[nodiscard]] const CancellationToken* cancellation_token() const noexcept {
    return cancellation_;
  }
  void set_cancellation_token(const CancellationToken* token) const noexcept {
    cancellation_ = token;
  }

  /// Throws pandora::Cancelled when the installed token has fired.  Kernels
  /// with long serial sections call this at their natural grain; everything
  /// dispatched through `run_chunks` below is covered automatically.
  void check_cancellation() const {
    if (cancellation_ != nullptr && cancellation_->cancelled()) throw_cancelled(*cancellation_);
  }

  /// Dispatches a bulk launch through the backend, honouring the installed
  /// cancellation token at chunk boundaries: once the token fires, remaining
  /// chunks are skipped (bodies must not throw — Backend contract) and the
  /// calling thread throws pandora::Cancelled after the launch returns, so
  /// cancellation latency is bounded by one chunk regardless of backend.
  /// With no token installed this is a direct backend dispatch (one branch).
  /// Kernels call this — never `backend().run_chunks` directly.
  void run_chunks(int num_chunks, int max_workers, ChunkBody body) const {
    PANDORA_FAILPOINT("exec.run_chunks");
    detail::run_chunks_metric().inc();
    // Manual span guard (ScopedSpan is declared below Executor): records the
    // launch even when a fired cancellation token unwinds it.
    struct SpanGuard {
      obs::TraceRecorder* recorder;
      std::uint64_t start_ns;
      ~SpanGuard() {
        if (recorder != nullptr) recorder->record("run_chunks", start_ns, recorder->now_ns());
      }
    } span{trace_, trace_ != nullptr ? trace_->now_ns() : 0};
    const CancellationToken* token = cancellation_;
    if (token == nullptr) {
      backend_->run_chunks(num_chunks, max_workers, body);
      return;
    }
    if (token->cancelled()) throw_cancelled(*token);
    auto guarded = [&](int chunk) {
      if (!token->cancelled()) body(chunk);
    };
    backend_->run_chunks(num_chunks, max_workers, guarded);
    if (token->cancelled()) throw_cancelled(*token);
  }

  /// The attached profiler, or nullptr.  Non-owning.
  [[nodiscard]] Profiler* profiler() const noexcept { return profiler_; }
  void set_profiler(Profiler* profiler) const noexcept { profiler_ = profiler; }

  /// The attached trace recorder, or nullptr (tracing off).  Non-owning;
  /// installed via `ScopedTrace`, mutable behind const like the profiler.
  /// When set, `phase` and `run_chunks` record spans into it.
  [[nodiscard]] obs::TraceRecorder* trace_recorder() const noexcept { return trace_; }
  void set_trace_recorder(obs::TraceRecorder* recorder) const noexcept { trace_ = recorder; }

  /// Record a phase duration with the attached profiler (no-op when none).
  void record_phase(std::string_view phase, double seconds) const {
    if (profiler_ != nullptr) profiler_->on_phase(phase, seconds);
  }

  /// Run `f()` and record its duration under `phase`: with the attached
  /// profiler as a phase time, with the attached trace recorder as a span.
  /// With neither attached this is one branch around `f()`.
  template <class F>
  void phase(std::string_view phase_name, F&& f) const {
    if (profiler_ == nullptr && trace_ == nullptr) {
      f();
      return;
    }
    obs::TraceRecorder* const recorder = trace_;
    const std::uint64_t span_start = recorder != nullptr ? recorder->now_ns() : 0;
    Timer timer;
    f();
    const double seconds = timer.seconds();
    if (recorder != nullptr) recorder->record(phase_name, span_start, recorder->now_ns());
    if (profiler_ != nullptr) profiler_->on_phase(phase_name, seconds);
  }

 private:
  std::shared_ptr<const Backend> backend_;
  int requested_threads_;
  mutable Workspace workspace_;
  mutable ArtifactCache artifact_cache_;
  mutable ArtifactCache* shared_cache_ = nullptr;
  mutable ArtifactCache::Owner cache_owner_{};
  mutable Profiler* profiler_ = nullptr;
  mutable obs::TraceRecorder* trace_ = nullptr;
  mutable EdgeSortAlgorithm edge_sort_ = EdgeSortAlgorithm::radix;
  mutable bool artifact_caching_ = true;
  mutable const CancellationToken* cancellation_ = nullptr;
};

/// The per-thread default executor on `default_backend()`.  Callers without
/// a long-lived executor of their own share its workspace, so they too
/// amortise allocations across calls; per-thread storage keeps it safe under
/// concurrent callers.
[[nodiscard]] const Executor& default_executor();

/// The per-thread default executor on a specific backend (one per (thread,
/// backend instance); the backend must outlive its use, which the shared
/// singletons of backend.hpp always do).
[[nodiscard]] const Executor& default_executor(const std::shared_ptr<const Backend>& backend);

/// Scope guard bridging the old `PhaseTimes*` out-params to the profiler
/// hook: installs a PhaseTimesProfiler writing to `times` (chained to any
/// profiler already attached) for the guard's lifetime.  With a null `times`
/// the guard does nothing.
/// Scope guard installing a cache-owner tag on an executor for the duration
/// of a scope (a pinned snapshot read, a tenant's batch job), restoring the
/// previous tag on exit so nested scopes compose.
class ScopedCacheOwner {
 public:
  ScopedCacheOwner(const Executor& executor, ArtifactCache::Owner owner)
      : executor_(executor), saved_(executor.cache_owner()) {
    executor_.set_cache_owner(owner);
  }
  ScopedCacheOwner(const ScopedCacheOwner&) = delete;
  ScopedCacheOwner& operator=(const ScopedCacheOwner&) = delete;
  ~ScopedCacheOwner() { executor_.set_cache_owner(saved_); }

 private:
  const Executor& executor_;
  ArtifactCache::Owner saved_;
};

/// Scope guard installing a cancellation token on an executor (a deadline'd
/// pipeline run, a batch job), restoring the previous token on exit so
/// nested scopes compose.  A null `token` leaves the executor's current
/// token in place (the guard is then a no-op), so callers can pass "maybe a
/// token" without branching.
class ScopedCancellation {
 public:
  ScopedCancellation(const Executor& executor, const CancellationToken* token)
      : executor_(executor), saved_(executor.cancellation_token()), active_(token != nullptr) {
    if (active_) executor_.set_cancellation_token(token);
  }
  ScopedCancellation(const ScopedCancellation&) = delete;
  ScopedCancellation& operator=(const ScopedCancellation&) = delete;
  ~ScopedCancellation() {
    if (active_) executor_.set_cancellation_token(saved_);
  }

 private:
  const Executor& executor_;
  const CancellationToken* saved_;
  bool active_;
};

/// Scope guard enabling trace-span recording on an executor for its
/// lifetime, restoring the previously installed recorder on exit so nested
/// scopes compose.  The recorder is non-owning and must outlive the guard.
/// A null recorder leaves the executor's current recorder in place.
class ScopedTrace {
 public:
  ScopedTrace(const Executor& executor, obs::TraceRecorder* recorder)
      : executor_(executor), saved_(executor.trace_recorder()), active_(recorder != nullptr) {
    if (active_) executor_.set_trace_recorder(recorder);
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace() {
    if (active_) executor_.set_trace_recorder(saved_);
  }

 private:
  const Executor& executor_;
  obs::TraceRecorder* saved_;
  bool active_;
};

/// RAII span over an executor's installed trace recorder: the guard's
/// lifetime becomes one "X" event named `name` (which must outlive the guard
/// — string literals do).  With tracing off the guard costs two loads.
/// Upper layers use it for query-level spans around whole pipeline calls;
/// phases and run_chunks launches inside nest automatically.
class ScopedSpan {
 public:
  ScopedSpan(const Executor& executor, std::string_view name) noexcept
      : recorder_(executor.trace_recorder()),
        name_(name),
        start_ns_(recorder_ != nullptr ? recorder_->now_ns() : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->record(name_, start_ns_, recorder_->now_ns());
  }

 private:
  obs::TraceRecorder* recorder_;
  std::string_view name_;
  std::uint64_t start_ns_;
};

class ScopedPhaseTimes {
 public:
  ScopedPhaseTimes(const Executor& executor, PhaseTimes* times)
      : executor_(executor), saved_(executor.profiler()), adapter_(times, executor.profiler()) {
    if (times != nullptr) executor_.set_profiler(&adapter_);
  }
  ScopedPhaseTimes(const ScopedPhaseTimes&) = delete;
  ScopedPhaseTimes& operator=(const ScopedPhaseTimes&) = delete;
  ~ScopedPhaseTimes() { executor_.set_profiler(saved_); }

 private:
  const Executor& executor_;
  Profiler* saved_;
  PhaseTimesProfiler adapter_;
};

}  // namespace pandora::exec
