#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/exec/space.hpp"

/// The execution context of the library: `Executor`.
///
/// The paper's implementation expresses every kernel against Kokkos execution
/// space *instances* — objects carrying the backend choice, resources and
/// reusable scratch memory.  This reproduction mirrors that design: an
/// `Executor` owns (a) the space selection (serial / OpenMP, extensible to a
/// future GPU backend), (b) a thread budget, (c) a reusable `Workspace` arena
/// that amortises scratch-buffer allocations across repeated dendrogram /
/// HDBSCAN* calls on same-sized inputs, and (d) an optional `Profiler` hook
/// that subsumes the old `PhaseTimes*` out-parameters.  Every kernel takes a
/// `const Executor&`; the old bare-`Space` signatures survive as deprecated
/// shims that forward to a per-thread default executor.
namespace pandora::exec {

/// Deprecation marker for the old `Space`-enum API.  Define
/// PANDORA_NO_DEPRECATION_WARNINGS to silence (e.g. for a gradual migration).
#if defined(PANDORA_NO_DEPRECATION_WARNINGS)
#define PANDORA_DEPRECATED(msg)
#else
#define PANDORA_DEPRECATED(msg) [[deprecated(msg)]]
#endif

/// Below this trip count the OpenMP fork/join overhead dominates; kernels run
/// serially.  (Previously lived in parallel.hpp; the Executor needs it to
/// answer `parallelize(n)`.)
inline constexpr size_type kParallelForGrain = 2048;

/// A pool of recycled heap buffers, one free list per element type.
///
/// Kernels lease scratch vectors with `take` / `take_uninit`; when the lease
/// goes out of scope the vector returns to the pool with its capacity intact,
/// so a second call with same-sized inputs performs no heap allocation.  The
/// free lists are LIFO: identical call sequences acquire identical buffers,
/// preserving bit-for-bit determinism of anything that (incorrectly) depended
/// on buffer addresses.
///
/// Not thread-safe: one Workspace belongs to one Executor and kernels on an
/// Executor run one at a time (parallelism happens *inside* kernels).
class Workspace {
  struct PoolBase {
    virtual ~PoolBase() = default;
    virtual void drop_free_buffers() = 0;
  };
  template <class T>
  struct Pool final : PoolBase {
    std::vector<std::vector<T>> free;
    void drop_free_buffers() override {
      free.clear();
      free.shrink_to_fit();
    }
  };

 public:
  /// Allocation statistics, exposed so tests and the repeated-query benches
  /// can assert/report the steady-state "no new allocations" property.
  struct Stats {
    std::size_t takes = 0;   ///< leases served
    std::size_t hits = 0;    ///< served from a buffer whose capacity sufficed
    std::size_t misses = 0;  ///< required a fresh heap allocation (or growth)
  };

  /// RAII lease of a scratch vector.  Default-constructed leases own a plain
  /// vector and return it to no pool (used by workspace-less fallbacks).
  /// A lease must not outlive its Workspace.
  template <class T>
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : v_(std::move(other.v_)), home_(std::exchange(other.home_, nullptr)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        v_ = std::move(other.v_);
        home_ = std::exchange(other.home_, nullptr);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] std::vector<T>& operator*() noexcept { return v_; }
    [[nodiscard]] const std::vector<T>& operator*() const noexcept { return v_; }
    [[nodiscard]] std::vector<T>* operator->() noexcept { return &v_; }
    [[nodiscard]] const std::vector<T>* operator->() const noexcept { return &v_; }
    [[nodiscard]] std::vector<T>& get() noexcept { return v_; }

   private:
    friend class Workspace;
    Lease(std::vector<T>&& v, Pool<T>* home) : v_(std::move(v)), home_(home) {}
    void release() {
      if (home_ != nullptr) {
        home_->free.push_back(std::move(v_));
        home_ = nullptr;
      }
    }

    std::vector<T> v_;
    Pool<T>* home_ = nullptr;
  };

  /// Lease a vector of `n` elements, every element set to `fill` (the
  /// behaviour of constructing `std::vector<T>(n, fill)`).
  template <class T>
  [[nodiscard]] Lease<T> take(size_type n, const T& fill = T{}) {
    Lease<T> lease = take_uninit<T>(n);
    lease->assign(static_cast<std::size_t>(n), fill);
    return lease;
  }

  /// Lease a vector resized to `n` elements with unspecified contents (the
  /// recycled buffer's previous values, or value-initialised on first use).
  /// For scratch that is fully overwritten before being read.
  template <class T>
  [[nodiscard]] Lease<T> take_uninit(size_type n) {
    auto& pool = pool_of<T>();
    std::vector<T> v;
    if (!pool.free.empty()) {
      v = std::move(pool.free.back());
      pool.free.pop_back();
    }
    ++stats_.takes;
    if (v.capacity() >= static_cast<std::size_t>(n)) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
    v.resize(static_cast<std::size_t>(n));
    return Lease<T>(std::move(v), &pool);
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Drop every cached (free) buffer — the arena returns to its empty
  /// state.  The pools themselves survive, so leases still outstanding keep
  /// valid home pointers and simply return their buffers afterwards.
  void clear() {
    for (auto& [_, pool] : pools_) pool->drop_free_buffers();
  }

 private:
  template <class T>
  Pool<T>& pool_of() {
    auto& slot = pools_[std::type_index(typeid(T))];
    if (slot == nullptr) slot = std::make_unique<Pool<T>>();
    return static_cast<Pool<T>&>(*slot);
  }

  std::unordered_map<std::type_index, std::unique_ptr<PoolBase>> pools_;
  Stats stats_;
};

/// Receives per-phase timings from the library's drivers ("sort",
/// "contraction", "expansion", "mst", ...).  Attach one to an Executor to
/// observe a pipeline; this subsumes the old `PhaseTimes*` out-parameters.
class Profiler {
 public:
  virtual ~Profiler() = default;
  virtual void on_phase(std::string_view phase, double seconds) = 0;
};

/// A Profiler accumulating into a PhaseTimes (owned or external), optionally
/// chaining to another profiler so nested scopes all observe the phases.
class PhaseTimesProfiler final : public Profiler {
 public:
  PhaseTimesProfiler() = default;
  explicit PhaseTimesProfiler(PhaseTimes* sink, Profiler* next = nullptr)
      : sink_(sink), next_(next) {}

  void on_phase(std::string_view phase, double seconds) override {
    times().add(std::string(phase), seconds);
    if (next_ != nullptr) next_->on_phase(phase, seconds);
  }

  [[nodiscard]] PhaseTimes& times() noexcept { return sink_ != nullptr ? *sink_ : own_; }
  [[nodiscard]] const PhaseTimes& times() const noexcept {
    return sink_ != nullptr ? *sink_ : own_;
  }

 private:
  PhaseTimes own_;
  PhaseTimes* sink_ = nullptr;
  Profiler* next_ = nullptr;
};

/// The reusable execution context every kernel takes by const reference.
///
/// Cheap to construct, but meant to be constructed once and reused: the
/// workspace arena only pays off across repeated calls.  The workspace and
/// profiler are logically part of the execution *context*, not the kernel
/// inputs, so they are mutable behind the const interface (exactly like
/// Kokkos execution-space instances, whose scratch arenas are mutable too).
///
/// Not thread-safe: do not run two kernels on the same Executor concurrently
/// (parallelism happens inside kernels, governed by `num_threads`).
class Executor {
 public:
  explicit Executor(Space space = Space::parallel, int num_threads = 0)
      : space_(space), requested_threads_(num_threads) {}

  [[nodiscard]] Space space() const noexcept { return space_; }

  /// Human-readable name for benchmark tables.
  [[nodiscard]] const char* name() const { return space_name(space_); }

  /// The thread budget: 1 for the serial space; for the parallel space the
  /// constructor-requested count, or the OpenMP default when 0 was requested.
  [[nodiscard]] int num_threads() const;

  /// True when a kernel over `n` items should take its parallel path.
  [[nodiscard]] bool parallelize(size_type n) const {
    return space_ == Space::parallel && n >= kParallelForGrain && num_threads() > 1;
  }

  /// The scratch-buffer arena (see Workspace).
  [[nodiscard]] Workspace& workspace() const noexcept { return workspace_; }

  /// The attached profiler, or nullptr.  Non-owning.
  [[nodiscard]] Profiler* profiler() const noexcept { return profiler_; }
  void set_profiler(Profiler* profiler) const noexcept { profiler_ = profiler; }

  /// Record a phase duration with the attached profiler (no-op when none).
  void record_phase(std::string_view phase, double seconds) const {
    if (profiler_ != nullptr) profiler_->on_phase(phase, seconds);
  }

  /// Run `f()` and record its duration under `phase`.
  template <class F>
  void phase(std::string_view phase_name, F&& f) const {
    if (profiler_ == nullptr) {
      f();
      return;
    }
    Timer timer;
    f();
    profiler_->on_phase(phase_name, timer.seconds());
  }

 private:
  Space space_;
  int requested_threads_;
  mutable Workspace workspace_;
  mutable Profiler* profiler_ = nullptr;
};

/// The per-thread default executor of a space — the context behind the
/// deprecated `Space`-enum shims.  Old-style callers share its workspace, so
/// they too amortise allocations across calls; per-thread storage keeps the
/// shims safe under concurrent callers.
[[nodiscard]] const Executor& default_executor(Space space);

/// Scope guard bridging the old `PhaseTimes*` out-params to the profiler
/// hook: installs a PhaseTimesProfiler writing to `times` (chained to any
/// profiler already attached) for the guard's lifetime.  With a null `times`
/// the guard does nothing.
class ScopedPhaseTimes {
 public:
  ScopedPhaseTimes(const Executor& executor, PhaseTimes* times)
      : executor_(executor), saved_(executor.profiler()), adapter_(times, executor.profiler()) {
    if (times != nullptr) executor_.set_profiler(&adapter_);
  }
  ScopedPhaseTimes(const ScopedPhaseTimes&) = delete;
  ScopedPhaseTimes& operator=(const ScopedPhaseTimes&) = delete;
  ~ScopedPhaseTimes() { executor_.set_profiler(saved_); }

 private:
  const Executor& executor_;
  Profiler* saved_;
  PhaseTimesProfiler adapter_;
};

}  // namespace pandora::exec
