#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/memory.hpp"

/// The pluggable execution layer: `Backend`.
///
/// The paper's implementation gets CPU/GPU portability by expressing every
/// kernel against Kokkos execution-space instances.  This library's
/// equivalent is the `Backend` interface: every data-parallel primitive the
/// subsystems consume — `parallel_for`, the deterministic left-to-right
/// `parallel_reduce`, `exclusive_scan`, the byte-range `radix_sort_u64`, the
/// parallel merge sort — is expressed as a sequence of *chunk launches*
/// (`run_chunks`) interleaved with cheap serial combine steps on the calling
/// thread, plus one monomorphic virtual (`radix_sort_u64`) a device backend
/// can override with a native sort.  A backend additionally owns the
/// `MemoryResource` its executors' `Workspace` arenas allocate through, so a
/// device backend substitutes device buffers without touching the arena's
/// lease/size-class logic.
///
/// Three backends ship:
///  * `serial_backend()` — one thread, the sequential reference;
///  * `openmp_backend()` — OpenMP teams, the former `Space::parallel`;
///  * `pinned_pool_backend()` — a persistent, optionally core-pinned worker
///    pool (see pinned_pool.hpp) that dispatches kernels without per-kernel
///    OpenMP fork/join.
///
/// Determinism contract: `run_chunks` may execute chunks in any order on any
/// worker, so callers make each chunk's effect a pure function of its chunk
/// index (disjoint output ranges, per-chunk partials combined left-to-right
/// on the calling thread afterwards).  Under that discipline every backend
/// produces bit-identical results — the conformance suite asserts it.
namespace pandora::exec {

class Workspace;

/// Non-owning type-erased reference to a chunk body (a callable taking the
/// chunk index).  Cheap to copy; the referenced callable must outlive the
/// `run_chunks` call, which is guaranteed because `run_chunks` returns only
/// after every chunk completed.
class ChunkBody {
 public:
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, ChunkBody> && std::is_invocable_v<F&, int>)
  ChunkBody(F& body)  // NOLINT: implicit by design, mirrors function_ref
      : ctx_(const_cast<void*>(static_cast<const void*>(&body))),
        fn_(+[](void* ctx, int chunk) { (*static_cast<F*>(ctx))(chunk); }) {}

  void operator()(int chunk) const { fn_(ctx_, chunk); }

 private:
  void* ctx_;
  void (*fn_)(void*, int);
};

/// The execution mechanism behind every kernel.  Implementations are
/// immutable after construction and shared across executors (`Executor`
/// holds a `shared_ptr<const Backend>`); any internal machinery (worker
/// pools) is `mutable` and internally synchronised.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Short human-readable identifier ("serial", "openmp", "pinned") used in
  /// benchmark tables and the BENCH_*.json backend column.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Workers this backend can run concurrently (>= 1, counting the caller).
  [[nodiscard]] virtual int concurrency() const noexcept = 0;

  /// The thread budget granted to an executor that requested `requested`
  /// threads (`requested == 0` means "backend default").  This is what lets
  /// nested executors report truthfully: the answer comes from the backend's
  /// own capacity, never from global runtime state.  The default grants
  /// explicit requests verbatim (the OpenMP runtime oversubscribes happily);
  /// fixed-size backends (the pinned pool) clamp to their capacity.
  [[nodiscard]] virtual int grant_threads(int requested) const noexcept {
    return requested > 0 ? requested : concurrency();
  }

  /// Executes `body(c)` for every c in [0, num_chunks), possibly
  /// concurrently on up to `max_workers` workers (the caller counts as one),
  /// and returns only when every chunk has completed.  All memory effects of
  /// the chunk bodies happen-before the return.  Chunk bodies must not throw
  /// and must not call back into `run_chunks` on the same backend from a
  /// worker thread (backends run nested calls inline on the calling worker).
  virtual void run_chunks(int num_chunks, int max_workers, ChunkBody body) const = 0;

  /// Stable LSD radix sort of 64-bit keys over the byte range
  /// [first_byte, last_byte), ascending — the byte-range restriction is what
  /// turns it into the key-value sort of the edge-sort hot path (see
  /// sort.hpp).  The default implementation runs chunked histogram/scatter
  /// passes through `run_chunks` with all scratch leased from `workspace`;
  /// a device backend overrides it with a native sort (e.g. cub's).
  virtual void radix_sort_u64(Workspace& workspace, int max_workers,
                              std::span<std::uint64_t> keys, int first_byte,
                              int last_byte) const;

  /// The memory resource executors on this backend allocate Workspace arena
  /// blocks through.  Host memory by default.
  [[nodiscard]] virtual MemoryResource& memory_resource() const noexcept {
    return host_memory_resource();
  }
};

/// The sequential reference backend: one thread, chunks run in order.
[[nodiscard]] const std::shared_ptr<const Backend>& serial_backend();

/// The OpenMP team backend (the former `Space::parallel`).
[[nodiscard]] const std::shared_ptr<const Backend>& openmp_backend();

/// The process-wide shared pinned-pool backend (lazily constructed with the
/// hardware's worker count; see pinned_pool.hpp / make_pinned_pool_backend
/// for custom sizes and core pinning).
[[nodiscard]] const std::shared_ptr<const Backend>& pinned_pool_backend();

/// The backend `Executor` uses when none is given.  OpenMP unless the
/// environment variable PANDORA_BACKEND names another registered backend
/// ("serial", "openmp", "pinned") — which is how CI runs the whole test
/// suite with PinnedPoolBackend as the default.
[[nodiscard]] const std::shared_ptr<const Backend>& default_backend();

/// Every registered backend (serial, openmp, pinned), for conformance
/// sweeps: `for (const auto& backend : registered_backends()) ...`.
[[nodiscard]] std::vector<std::shared_ptr<const Backend>> registered_backends();

}  // namespace pandora::exec
