#pragma once

namespace pandora::exec {

/// Execution space selector, the stand-in for Kokkos execution spaces.
///
/// The paper's implementation compiles one Kokkos source for serial CPU,
/// multithreaded CPU and GPU backends.  This reproduction expresses every
/// kernel through the same small set of parallel constructs (parallel loops,
/// reductions, prefix sums, sorts) and dispatches them at runtime to either a
/// plain sequential loop (`serial`) or an OpenMP team (`parallel`).  Keeping
/// the selector at runtime lets a single benchmark binary measure both spaces
/// on identical code, which is how the CPU-vs-accelerator comparisons of the
/// evaluation section are reproduced on this machine.
enum class Space {
  serial,    ///< one thread; the sequential reference
  parallel,  ///< all available cores via OpenMP; the accelerator stand-in
};

/// Human-readable space name for benchmark tables.
const char* space_name(Space space);

/// Number of worker threads the parallel space will use.
int max_threads();

}  // namespace pandora::exec
