#include "pandora/exec/space.hpp"

#include <omp.h>

namespace pandora::exec {

const char* space_name(Space space) {
  return space == Space::serial ? "serial" : "parallel";
}

int max_threads() { return omp_get_max_threads(); }

}  // namespace pandora::exec
