#include "pandora/exec/executor.hpp"

#include <memory>
#include <utility>
#include <vector>

namespace pandora::exec {

const Executor& default_executor() { return default_executor(default_backend()); }

const Executor& default_executor(const std::shared_ptr<const Backend>& backend) {
  // One default executor per (thread, backend instance).  A handful of
  // backends exist per process, so a linear scan beats a map; unique_ptr
  // keeps the executors address-stable as the vector grows.
  thread_local std::vector<std::pair<const Backend*, std::unique_ptr<Executor>>> executors;
  for (const auto& [key, executor] : executors) {
    if (key == backend.get()) return *executor;
  }
  executors.emplace_back(backend.get(), std::make_unique<Executor>(backend));
  return *executors.back().second;
}

}  // namespace pandora::exec
