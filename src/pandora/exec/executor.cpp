#include "pandora/exec/executor.hpp"

#include <omp.h>

#include <algorithm>

namespace pandora::exec {

int Executor::num_threads() const {
  if (space_ == Space::serial) return 1;
  // An explicit budget is honoured verbatim (the OpenMP runtime may still
  // grant fewer; every kernel chunks by the granted team size).  With no
  // budget the OpenMP default applies.
  if (requested_threads_ > 0) return requested_threads_;
  return omp_get_max_threads();
}

const Executor& default_executor(Space space) {
  thread_local Executor serial_executor(Space::serial);
  thread_local Executor parallel_executor(Space::parallel);
  return space == Space::serial ? serial_executor : parallel_executor;
}

}  // namespace pandora::exec
