#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

/// Cooperative cancellation and deadlines for the execution layer.
///
/// A `CancellationToken` is an atomic flag plus an optional steady-clock
/// deadline.  The Executor carries a (non-owning) pointer to at most one
/// token; `Executor::run_chunks` consults it at chunk boundaries and the
/// serial fallbacks of parallel_for / parallel_reduce consult it every
/// `kParallelForGrain` iterations, so any dendrogram / HDBSCAN* / EMST
/// computation cancels with ~one-chunk latency regardless of backend.
///
/// Cancellation surfaces as `pandora::Cancelled` — a distinct exception type
/// so callers (and `serve::BatchExecutor`'s structured `JobResult`) can tell
/// "the server gave up on this query" apart from "the query failed".
///
/// Chunk bodies must never throw (Backend contract: a throw on a pool worker
/// would terminate the process), so cancellation never throws *inside* a
/// chunk: the wrapper skips remaining chunks' work and the calling thread
/// throws after the launch returns.
namespace pandora {

/// Thrown by the execution layer when the installed CancellationToken fires
/// (explicit `cancel()` or deadline passed).  Derives from std::runtime_error
/// so legacy catch-all error handling keeps working, but is distinct from
/// std::invalid_argument (caller bugs) and plain runtime errors (failures).
class Cancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace pandora

namespace pandora::exec {

/// A cooperative cancellation signal: an atomic flag, an optional
/// steady-clock deadline, and up to two parent tokens (a batch-level budget
/// and an external caller token, say) whose cancellation propagates to this
/// one.  `cancel()` may be called from any thread; `cancelled()` is safe to
/// poll concurrently and costs one relaxed load when no deadline is set.
///
/// Tokens are non-copyable (they are identity objects — kernels hold
/// pointers to them) and must outlive every executor they are installed on.
class CancellationToken {
 public:
  using clock = std::chrono::steady_clock;

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// A token that auto-cancels once `budget` elapses from now.
  [[nodiscard]] static CancellationToken after(std::chrono::nanoseconds budget) {
    CancellationToken token;
    token.set_deadline(clock::now() + budget);
    return token;
  }

  /// Requests cancellation.  Idempotent; callable from any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// Arms (or moves) the deadline.  Not thread-safe against concurrent
  /// `cancelled()` polls — set the deadline before installing the token.
  void set_deadline(clock::time_point deadline) noexcept {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Chains a parent whose cancellation implies this token's (up to two;
  /// additional parents are ignored).  nullptr is a no-op.  Set parents
  /// before installing the token.
  void add_parent(const CancellationToken* parent) noexcept {
    if (parent == nullptr) return;
    if (parents_[0] == nullptr) {
      parents_[0] = parent;
    } else if (parents_[1] == nullptr && parents_[0] != parent) {
      parents_[1] = parent;
    }
  }

  /// True once `cancel()` was called, a parent fired, or the deadline
  /// passed.  The deadline check reads the clock, so prefer chunk-boundary
  /// polling cadence over per-element polling.
  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (parents_[0] != nullptr && parents_[0]->cancelled()) return true;
    if (parents_[1] != nullptr && parents_[1]->cancelled()) return true;
    return has_deadline_ && clock::now() >= deadline_;
  }

  /// True when this token fired because of its own (or a parent's) deadline
  /// rather than an explicit cancel() — lets error messages say "deadline
  /// exceeded" instead of the generic "cancelled".
  [[nodiscard]] bool deadline_exceeded() const noexcept {
    if (has_deadline_ && clock::now() >= deadline_) return true;
    if (parents_[0] != nullptr && parents_[0]->deadline_exceeded()) return true;
    return parents_[1] != nullptr && parents_[1]->deadline_exceeded();
  }

 private:
  // Movable only for the `after` factory (before the token is shared).
  CancellationToken(CancellationToken&& other) noexcept
      : deadline_(other.deadline_), has_deadline_(other.has_deadline_) {
    cancelled_.store(other.cancelled_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    parents_[0] = other.parents_[0];
    parents_[1] = other.parents_[1];
  }

  std::atomic<bool> cancelled_{false};
  clock::time_point deadline_{};
  bool has_deadline_ = false;
  const CancellationToken* parents_[2] = {nullptr, nullptr};
};

/// Throws pandora::Cancelled describing why `token` fired.
[[noreturn]] inline void throw_cancelled(const CancellationToken& token) {
  throw Cancelled(token.deadline_exceeded() ? "pandora: deadline exceeded"
                                            : "pandora: computation cancelled");
}

}  // namespace pandora::exec
