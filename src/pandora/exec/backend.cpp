#include "pandora/exec/backend.hpp"

#include <omp.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pandora/exec/executor.hpp"
#include "pandora/exec/pinned_pool.hpp"

namespace pandora::exec {

MemoryResource& host_memory_resource() {
  static HostMemoryResource resource;
  return resource;
}

namespace {

/// One thread; chunks run in order on the caller.  The sequential reference
/// every other backend must match bit-for-bit.
class SerialBackend final : public Backend {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "serial"; }
  [[nodiscard]] int concurrency() const noexcept override { return 1; }
  /// The serial backend is serial by definition: requests for more threads
  /// are not honoured (the former `Space::serial` semantics).
  [[nodiscard]] int grant_threads(int /*requested*/) const noexcept override { return 1; }
  void run_chunks(int num_chunks, int /*max_workers*/, ChunkBody body) const override {
    for (int c = 0; c < num_chunks; ++c) body(c);
  }
};

/// OpenMP teams — the former `Space::parallel`.  Each launch is one parallel
/// region; the runtime's own (possibly spinning) thread pool carries it.
class OpenMPBackend final : public Backend {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "openmp"; }
  [[nodiscard]] int concurrency() const noexcept override { return omp_get_max_threads(); }
  void run_chunks(int num_chunks, int max_workers, ChunkBody body) const override {
    const int team = std::min(num_chunks, std::max(1, max_workers));
    if (team <= 1) {
      for (int c = 0; c < num_chunks; ++c) body(c);
      return;
    }
    // dynamic,1: chunk counts often exceed the team (load-balanced kernels
    // pass many small chunks); equal-sized chunk-per-thread launches are
    // unaffected.  Results never depend on the chunk->thread assignment
    // (see the Backend determinism contract).
#pragma omp parallel for schedule(dynamic, 1) num_threads(team)
    for (int c = 0; c < num_chunks; ++c) body(c);
  }
};

using Histogram = std::array<size_type, 256>;

}  // namespace

void Backend::radix_sort_u64(Workspace& workspace, int max_workers,
                             std::span<std::uint64_t> keys, int first_byte,
                             int last_byte) const {
  const auto n = static_cast<size_type>(keys.size());
  if (n < 2 || first_byte >= last_byte) return;
  const int num_chunks = std::max(1, max_workers);

  // Which byte positions vary across the keys (constant passes are skipped,
  // so keys bounded by 2^k cost ceil(k/8) scatter passes).  Chunked OR/AND
  // with a serial combine on the caller.
  auto or_and = workspace.take_uninit<std::uint64_t>(2 * num_chunks);
  {
    const std::uint64_t* const data = keys.data();
    auto body = [&](int c) {
      const size_type lo = n * c / num_chunks;
      const size_type hi = n * (c + 1) / num_chunks;
      std::uint64_t all_or = 0, all_and = ~std::uint64_t{0};
      for (size_type i = lo; i < hi; ++i) {
        all_or |= data[i];
        all_and &= data[i];
      }
      or_and[static_cast<std::size_t>(2 * c)] = all_or;
      or_and[static_cast<std::size_t>(2 * c) + 1] = all_and;
    };
    run_chunks(num_chunks, max_workers, body);
  }
  std::uint64_t all_or = 0, all_and = ~std::uint64_t{0};
  for (int c = 0; c < num_chunks; ++c) {
    all_or |= or_and[static_cast<std::size_t>(2 * c)];
    all_and &= or_and[static_cast<std::size_t>(2 * c) + 1];
  }
  const std::uint64_t varying = all_or & ~all_and;

  auto buffer = workspace.take_uninit<std::uint64_t>(n);
  // hist[c][b]: count (then write cursor) of byte-value b in chunk c.
  auto hist = workspace.take_uninit<Histogram>(num_chunks);
  std::uint64_t* src = keys.data();
  std::uint64_t* dst = buffer.data();

  for (int pass = first_byte; pass < last_byte; ++pass) {
    const int shift = pass * 8;
    if (((varying >> shift) & 0xff) == 0) continue;

    auto count = [&](int c) {
      const size_type lo = n * c / num_chunks;
      const size_type hi = n * (c + 1) / num_chunks;
      Histogram& h = hist[static_cast<std::size_t>(c)];
      h.fill(0);
      for (size_type i = lo; i < hi; ++i) ++h[(src[i] >> shift) & 0xff];
    };
    run_chunks(num_chunks, max_workers, count);

    // Column-major exclusive scan on the caller: for byte b, chunk c, the
    // write base is (all counts of smaller bytes) + (counts of b in earlier
    // chunks).  Chunks cover ascending index ranges, so the scatter below
    // preserves the relative order of equal bytes (stability).
    size_type running = 0;
    for (int b = 0; b < 256; ++b) {
      for (int c = 0; c < num_chunks; ++c) {
        size_type count_cb = hist[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
        hist[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)] = running;
        running += count_cb;
      }
    }

    auto scatter = [&](int c) {
      const size_type lo = n * c / num_chunks;
      const size_type hi = n * (c + 1) / num_chunks;
      Histogram& h = hist[static_cast<std::size_t>(c)];
      for (size_type i = lo; i < hi; ++i) dst[h[(src[i] >> shift) & 0xff]++] = src[i];
    };
    run_chunks(num_chunks, max_workers, scatter);
    std::swap(src, dst);
  }
  if (src != keys.data())
    std::memcpy(keys.data(), src, sizeof(std::uint64_t) * static_cast<std::size_t>(n));
}

const std::shared_ptr<const Backend>& serial_backend() {
  static const std::shared_ptr<const Backend> backend = std::make_shared<SerialBackend>();
  return backend;
}

const std::shared_ptr<const Backend>& openmp_backend() {
  static const std::shared_ptr<const Backend> backend = std::make_shared<OpenMPBackend>();
  return backend;
}

const std::shared_ptr<const Backend>& pinned_pool_backend() {
  static const std::shared_ptr<const Backend> backend = make_pinned_pool_backend();
  return backend;
}

const std::shared_ptr<const Backend>& default_backend() {
  static const std::shared_ptr<const Backend>* chosen = [] {
    const char* env = std::getenv("PANDORA_BACKEND");
    const std::string name = env != nullptr ? env : "";
    if (name.empty() || name == "openmp") return &openmp_backend();
    if (name == "serial") return &serial_backend();
    if (name == "pinned") return &pinned_pool_backend();
    // Fail fast: an explicit-but-unknown override silently falling back to
    // OpenMP would green-light CI entries that exist to test another
    // backend.
    std::fprintf(stderr,
                 "pandora: unknown PANDORA_BACKEND '%s' (expected serial, "
                 "openmp, or pinned)\n",
                 name.c_str());
    std::exit(64);
  }();
  return *chosen;
}

std::vector<std::shared_ptr<const Backend>> registered_backends() {
  return {serial_backend(), openmp_backend(), pinned_pool_backend()};
}

}  // namespace pandora::exec
