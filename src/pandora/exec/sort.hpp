#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/backend.hpp"
#include "pandora/exec/executor.hpp"

/// Parallel sorting.
///
/// Two algorithms are provided, both stable:
///  * `merge_sort` — comparison-based; the reference/fallback for the initial
///    descending-weight edge sort of Section 3.1.1 (selected per Executor via
///    `EdgeSortAlgorithm::merge`).
///  * `radix_sort_u64` — an LSD radix sort over packed 64-bit keys, optionally
///    restricted to a byte range.  It carries the whole hot path: the (chain,
///    index) sort of the expansion stage (Section 3.3.3) and — through the
///    order-preserving key transforms below — the initial descending-weight
///    edge sort, where the sort key occupies the high 32 bits and the original
///    edge id rides in the low 32 bits so that radixing only the key bytes
///    leaves the ids as the stable tie-break.  This mirrors the paper's
///    observation that GPU dendrogram time is dominated by sorts and that
///    radix-style sorts are the best-scaling primitive (Figure 12).
///    The parallel path dispatches to `Backend::radix_sort_u64`, whose
///    default implementation runs chunked histogram/scatter passes through
///    `run_chunks`; a device backend overrides it with a native sort.
///
/// All scratch (ping-pong buffers, per-chunk histograms) is leased from the
/// Executor's Workspace, so repeated sorts on same-sized inputs allocate
/// nothing after the first call.
namespace pandora::exec {

namespace detail {

/// Sort `v` into `num_chunks` sorted runs, then merge pairwise in rounds.
template <class T, class Comp>
void parallel_merge_sort(const Executor& exec, std::vector<T>& v, Comp comp) {
  const size_type n = static_cast<size_type>(v.size());
  const int num_threads = exec.num_threads();
  // Round chunk count down to a power of two for a clean pairwise merge tree.
  int chunks = 1;
  while (chunks * 2 <= num_threads) chunks *= 2;
  if (chunks < 2 || n < kParallelForGrain) {
    std::stable_sort(v.begin(), v.end(), comp);
    return;
  }

  std::vector<size_type> bounds(static_cast<std::size_t>(chunks) + 1);
  for (int c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;

  auto sort_chunk = [&](int c) {
    std::stable_sort(v.begin() + bounds[c], v.begin() + bounds[c + 1], comp);
  };
  exec.run_chunks(chunks, num_threads, sort_chunk);

  auto buffer = exec.workspace().template take_uninit<T>(n);
  T* src = v.data();
  T* dst = buffer.data();
  for (int width = 1; width < chunks; width *= 2) {
    const int merges = chunks / (2 * width);
    auto merge_pair = [&](int m) {
      const int c = m * 2 * width;
      const size_type lo = bounds[c];
      const size_type mid = bounds[std::min(c + width, chunks)];
      const size_type hi = bounds[std::min(c + 2 * width, chunks)];
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
    };
    exec.run_chunks(merges, num_threads, merge_pair);
    std::swap(src, dst);
  }
  if (src != v.data()) std::memcpy(v.data(), src, sizeof(T) * static_cast<std::size_t>(n));
}

}  // namespace detail

/// Stable comparison sort of `v` under `comp`.
template <class T, class Comp>
void merge_sort(const Executor& exec, std::vector<T>& v, Comp comp) {
  if (exec.num_threads() > 1) {
    detail::parallel_merge_sort(exec, v, comp);
  } else {
    std::stable_sort(v.begin(), v.end(), comp);
  }
}

/// Stable LSD radix sort of 64-bit keys, ascending, over the byte range
/// [first_byte, last_byte) (byte 0 is least significant).  Restricting the
/// range turns the sort into a key-value sort whose key and value share one
/// word: sorting only bytes [4, 8) of `(key32 << 32) | value32` words orders
/// by key32 while stability preserves the pre-sort order of equal keys —
/// which is ascending value32 when the caller packed values in that order.
inline void radix_sort_u64(const Executor& exec, std::span<std::uint64_t> keys,
                           int first_byte = 0, int last_byte = 8) {
  const size_type n = static_cast<size_type>(keys.size());
  if (n < 2) return;
  if (!exec.parallelize(n)) {
    if (first_byte == 0 && last_byte >= 8) {
      std::sort(keys.begin(), keys.end());
    } else {
      // Mask to the bytes [first_byte, last_byte) so the serial path orders
      // exactly like the pass-restricted radix path.
      const std::uint64_t hi =
          last_byte >= 8 ? ~std::uint64_t{0} : (std::uint64_t{1} << (8 * last_byte)) - 1;
      const std::uint64_t mask = hi & (~std::uint64_t{0} << (8 * first_byte));
      std::stable_sort(keys.begin(), keys.end(), [mask](std::uint64_t a, std::uint64_t b) {
        return (a & mask) < (b & mask);
      });
    }
    return;
  }
  // The backend's native sort is one uncancellable kernel from the caller's
  // point of view (its internal run_chunks launches bypass the Executor), so
  // bracket it with explicit checks.
  exec.check_cancellation();
  exec.backend().radix_sort_u64(exec.workspace(), exec.num_threads(), keys, first_byte,
                                last_byte);
  exec.check_cancellation();
}

// --- order-preserving key transforms ---------------------------------------
//
// The IEEE-754 "sign-flip trick": reinterpret the float's bits as an unsigned
// integer, then flip the sign bit for non-negative values and ALL bits for
// negative values.  The result compares (as an unsigned integer) exactly like
// the float compares, for every finite value including denormals and for
// ±infinity.  ±0.0 must be canonicalised first (they compare equal as floats
// but have different bit patterns).  NaNs have no total order and are
// excluded by input validation.

/// Order-preserving u32 key of a float (ascending).
[[nodiscard]] inline std::uint32_t order_preserving_key32(float value) {
  if (value == 0.0f) value = 0.0f;  // -0.0f -> +0.0f
  const auto bits = std::bit_cast<std::uint32_t>(value);
  return bits ^ ((bits >> 31) != 0 ? ~std::uint32_t{0} : std::uint32_t{1} << 31);
}

/// Order-preserving u64 key of a double (ascending).
[[nodiscard]] inline std::uint64_t order_preserving_key64(double value) {
  if (value == 0.0) value = 0.0;  // -0.0 -> +0.0
  const auto bits = std::bit_cast<std::uint64_t>(value);
  return bits ^ ((bits >> 63) != 0 ? ~std::uint64_t{0} : std::uint64_t{1} << 63);
}

/// Order-preserving u64 key of a double for DESCENDING sorts (larger weight
/// -> smaller key), the order of the Section 3.1.1 edge sort.
[[nodiscard]] inline std::uint64_t descending_weight_key(double weight) {
  return ~order_preserving_key64(weight);
}

/// Packs the high 32 bits of a descending weight key with an edge id:
/// radix-sorting the packed words on bytes [4, 8) orders by the key prefix
/// while stability keeps equal prefixes in ascending id order — the canonical
/// tie-break.  (Ties in the prefix with *differing* low key bits are repaired
/// by a run fix-up pass; see sort_edges.)
[[nodiscard]] inline std::uint64_t pack_key_and_id(std::uint64_t descending_key,
                                                   index_t id) {
  return (descending_key & (~std::uint64_t{0} << 32)) |
         static_cast<std::uint32_t>(id);
}

/// Maps a non-negative double to a u64 preserving order (IEEE-754 bit trick;
/// valid because distances/weights in this library are >= 0).  Prefer
/// order_preserving_key64, which also handles negative values.
[[nodiscard]] inline std::uint64_t order_preserving_bits(double non_negative) {
  return std::bit_cast<std::uint64_t>(non_negative);
}

}  // namespace pandora::exec
