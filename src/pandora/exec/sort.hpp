#pragma once

#include <omp.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"

/// Parallel sorting.
///
/// Two algorithms are provided, both stable:
///  * `merge_sort` — comparison-based; used for the initial descending-weight
///    edge sort of Section 3.1.1, where the comparator carries the tie-break
///    on the original edge id that makes the dendrogram unique.
///  * `radix_sort_u64` — an LSD radix sort over packed 64-bit keys; used for
///    the (chain, index) sort of the expansion stage (Section 3.3.3), where
///    the key space is dense and radix beats comparison sorting.  This mirrors
///    the paper's observation that GPU dendrogram time is dominated by sorts
///    and that radix-style sorts are the best-scaling primitive (Figure 12).
///
/// All scratch (ping-pong buffers, per-thread histograms) is leased from the
/// Executor's Workspace, so repeated sorts on same-sized inputs allocate
/// nothing after the first call.
namespace pandora::exec {

/// Per-thread radix histogram: count (then write cursor) per byte value.
using RadixHistogram = std::array<size_type, 256>;

namespace detail {

/// Sort `v` into `num_chunks` sorted runs, then merge pairwise in rounds.
template <class T, class Comp>
void parallel_merge_sort(const Executor& exec, std::vector<T>& v, Comp comp) {
  const size_type n = static_cast<size_type>(v.size());
  const int num_threads = exec.num_threads();
  // Round chunk count down to a power of two for a clean pairwise merge tree.
  int chunks = 1;
  while (chunks * 2 <= num_threads) chunks *= 2;
  if (chunks < 2 || n < kParallelForGrain) {
    std::stable_sort(v.begin(), v.end(), comp);
    return;
  }

  std::vector<size_type> bounds(static_cast<std::size_t>(chunks) + 1);
  for (int c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;

#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads)
  for (int c = 0; c < chunks; ++c)
    std::stable_sort(v.begin() + bounds[c], v.begin() + bounds[c + 1], comp);

  auto buffer = exec.workspace().template take_uninit<T>(n);
  T* src = v.data();
  T* dst = buffer->data();
  for (int width = 1; width < chunks; width *= 2) {
#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads)
    for (int c = 0; c < chunks; c += 2 * width) {
      const size_type lo = bounds[c];
      const size_type mid = bounds[std::min(c + width, chunks)];
      const size_type hi = bounds[std::min(c + 2 * width, chunks)];
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
    }
    std::swap(src, dst);
  }
  if (src != v.data()) std::memcpy(v.data(), src, sizeof(T) * static_cast<std::size_t>(n));
}

/// Which byte positions vary across `keys` (constant passes are skipped, so
/// sorting keys bounded by 2^k costs ceil(k/8) scatter passes).
inline std::uint64_t varying_bytes(const Executor& exec, const std::uint64_t* keys,
                                   size_type n) {
  std::uint64_t all_or = 0, all_and = ~std::uint64_t{0};
  const int num_threads = exec.num_threads();
#pragma omp parallel for schedule(static) num_threads(num_threads) \
    reduction(|: all_or) reduction(&: all_and)
  for (size_type i = 0; i < n; ++i) {
    all_or |= keys[i];
    all_and &= keys[i];
  }
  return all_or & ~all_and;
}

}  // namespace detail

/// Stable comparison sort of `v` under `comp`.
template <class T, class Comp>
void merge_sort(const Executor& exec, std::vector<T>& v, Comp comp) {
  if (exec.space() == Space::parallel) {
    detail::parallel_merge_sort(exec, v, comp);
  } else {
    std::stable_sort(v.begin(), v.end(), comp);
  }
}

template <class T, class Comp>
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
void merge_sort(Space space, std::vector<T>& v, Comp comp) {
  merge_sort(default_executor(space), v, static_cast<Comp&&>(comp));
}

/// Stable LSD radix sort of 64-bit keys, ascending.
inline void radix_sort_u64(const Executor& exec, std::vector<std::uint64_t>& keys) {
  const size_type n = static_cast<size_type>(keys.size());
  if (n < 2) return;
  if (!exec.parallelize(n)) {
    std::sort(keys.begin(), keys.end());
    return;
  }

  const std::uint64_t varying = detail::varying_bytes(exec, keys.data(), n);
  const int num_threads = exec.num_threads();
  auto buffer = exec.workspace().take_uninit<std::uint64_t>(n);
  std::uint64_t* src = keys.data();
  std::uint64_t* dst = buffer->data();
  // hist[t][b]: count of byte-value b in thread t's chunk.
  auto hist_lease = exec.workspace().take_uninit<RadixHistogram>(num_threads);
  std::vector<RadixHistogram>& hist = *hist_lease;

  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * 8;
    if (((varying >> shift) & 0xff) == 0) continue;

#pragma omp parallel num_threads(num_threads)
    {
      // Chunk by the team size OpenMP actually granted, so every index is
      // covered even if fewer than `num_threads` threads materialise.
      const int nt = omp_get_num_threads();
      const int t = omp_get_thread_num();
      const size_type lo = n * t / nt;
      const size_type hi = n * (t + 1) / nt;
      auto& h = hist[static_cast<std::size_t>(t)];
      h.fill(0);
      for (size_type i = lo; i < hi; ++i) ++h[(src[i] >> shift) & 0xff];
#pragma omp barrier
#pragma omp single
      {
        // Column-major exclusive scan: for byte b, thread t, the write base is
        // (all counts of smaller bytes) + (counts of b in earlier threads).
        size_type running = 0;
        for (int b = 0; b < 256; ++b) {
          for (int tt = 0; tt < nt; ++tt) {
            size_type c = hist[static_cast<std::size_t>(tt)][static_cast<std::size_t>(b)];
            hist[static_cast<std::size_t>(tt)][static_cast<std::size_t>(b)] = running;
            running += c;
          }
        }
      }
      // `h` now holds this thread's write cursors; scatter preserves the
      // relative order of equal bytes (stability).
      for (size_type i = lo; i < hi; ++i) dst[h[(src[i] >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != keys.data())
    std::memcpy(keys.data(), src, sizeof(std::uint64_t) * static_cast<std::size_t>(n));
}

PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
inline void radix_sort_u64(Space space, std::vector<std::uint64_t>& keys) {
  radix_sort_u64(default_executor(space), keys);
}

/// Stable LSD radix sort of (key, value) pairs by key, ascending.  Used for
/// the initial descending-weight edge argsort (keys are inverted weight bits,
/// values the edge ids); stability implements the ascending-id tie-break.
inline void radix_sort_kv(const Executor& exec, std::vector<std::uint64_t>& keys,
                          std::vector<index_t>& values) {
  const size_type n = static_cast<size_type>(keys.size());
  if (n < 2) return;
  if (!exec.parallelize(n)) {
    auto pairs_lease = exec.workspace().take_uninit<std::pair<std::uint64_t, index_t>>(n);
    auto& pairs = *pairs_lease;
    for (size_type i = 0; i < n; ++i)
      pairs[static_cast<std::size_t>(i)] = {keys[static_cast<std::size_t>(i)],
                                            values[static_cast<std::size_t>(i)]};
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_type i = 0; i < n; ++i) {
      keys[static_cast<std::size_t>(i)] = pairs[static_cast<std::size_t>(i)].first;
      values[static_cast<std::size_t>(i)] = pairs[static_cast<std::size_t>(i)].second;
    }
    return;
  }

  const std::uint64_t varying = detail::varying_bytes(exec, keys.data(), n);
  const int num_threads = exec.num_threads();
  auto key_buffer = exec.workspace().take_uninit<std::uint64_t>(n);
  auto value_buffer = exec.workspace().take_uninit<index_t>(n);
  std::uint64_t* ksrc = keys.data();
  std::uint64_t* kdst = key_buffer->data();
  index_t* vsrc = values.data();
  index_t* vdst = value_buffer->data();
  auto hist_lease = exec.workspace().take_uninit<RadixHistogram>(num_threads);
  std::vector<RadixHistogram>& hist = *hist_lease;

  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * 8;
    if (((varying >> shift) & 0xff) == 0) continue;
#pragma omp parallel num_threads(num_threads)
    {
      // Chunk by the granted team size, as in radix_sort_u64 above.
      const int nt = omp_get_num_threads();
      const int t = omp_get_thread_num();
      const size_type lo = n * t / nt;
      const size_type hi = n * (t + 1) / nt;
      auto& h = hist[static_cast<std::size_t>(t)];
      h.fill(0);
      for (size_type i = lo; i < hi; ++i) ++h[(ksrc[i] >> shift) & 0xff];
#pragma omp barrier
#pragma omp single
      {
        size_type running = 0;
        for (int b = 0; b < 256; ++b) {
          for (int tt = 0; tt < nt; ++tt) {
            size_type c = hist[static_cast<std::size_t>(tt)][static_cast<std::size_t>(b)];
            hist[static_cast<std::size_t>(tt)][static_cast<std::size_t>(b)] = running;
            running += c;
          }
        }
      }
      for (size_type i = lo; i < hi; ++i) {
        const size_type dst = h[(ksrc[i] >> shift) & 0xff]++;
        kdst[dst] = ksrc[i];
        vdst[dst] = vsrc[i];
      }
    }
    std::swap(ksrc, kdst);
    std::swap(vsrc, vdst);
  }
  if (ksrc != keys.data()) {
    std::memcpy(keys.data(), ksrc, sizeof(std::uint64_t) * static_cast<std::size_t>(n));
    std::memcpy(values.data(), vsrc, sizeof(index_t) * static_cast<std::size_t>(n));
  }
}

PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
inline void radix_sort_kv(Space space, std::vector<std::uint64_t>& keys,
                          std::vector<index_t>& values) {
  radix_sort_kv(default_executor(space), keys, values);
}

/// Maps a non-negative double to a u64 preserving order (IEEE-754 bit trick;
/// valid because distances/weights in this library are >= 0).
inline std::uint64_t order_preserving_bits(double non_negative) {
  return std::bit_cast<std::uint64_t>(non_negative);
}

}  // namespace pandora::exec
