#pragma once

#include <omp.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"

/// Parallel sorting.
///
/// Two algorithms are provided, both stable:
///  * `merge_sort` — comparison-based; the reference/fallback for the initial
///    descending-weight edge sort of Section 3.1.1 (selected per Executor via
///    `EdgeSortAlgorithm::merge`).
///  * `radix_sort_u64` — an LSD radix sort over packed 64-bit keys, optionally
///    restricted to a byte range.  It carries the whole hot path: the (chain,
///    index) sort of the expansion stage (Section 3.3.3) and — through the
///    order-preserving key transforms below — the initial descending-weight
///    edge sort, where the sort key occupies the high 32 bits and the original
///    edge id rides in the low 32 bits so that radixing only the key bytes
///    leaves the ids as the stable tie-break.  This mirrors the paper's
///    observation that GPU dendrogram time is dominated by sorts and that
///    radix-style sorts are the best-scaling primitive (Figure 12).
///
/// All scratch (ping-pong buffers, per-thread histograms) is leased from the
/// Executor's Workspace, so repeated sorts on same-sized inputs allocate
/// nothing after the first call.
namespace pandora::exec {

/// Per-thread radix histogram: count (then write cursor) per byte value.
using RadixHistogram = std::array<size_type, 256>;

namespace detail {

/// Sort `v` into `num_chunks` sorted runs, then merge pairwise in rounds.
template <class T, class Comp>
void parallel_merge_sort(const Executor& exec, std::vector<T>& v, Comp comp) {
  const size_type n = static_cast<size_type>(v.size());
  const int num_threads = exec.num_threads();
  // Round chunk count down to a power of two for a clean pairwise merge tree.
  int chunks = 1;
  while (chunks * 2 <= num_threads) chunks *= 2;
  if (chunks < 2 || n < kParallelForGrain) {
    std::stable_sort(v.begin(), v.end(), comp);
    return;
  }

  std::vector<size_type> bounds(static_cast<std::size_t>(chunks) + 1);
  for (int c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;

#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads)
  for (int c = 0; c < chunks; ++c)
    std::stable_sort(v.begin() + bounds[c], v.begin() + bounds[c + 1], comp);

  auto buffer = exec.workspace().template take_uninit<T>(n);
  T* src = v.data();
  T* dst = buffer.data();
  for (int width = 1; width < chunks; width *= 2) {
#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads)
    for (int c = 0; c < chunks; c += 2 * width) {
      const size_type lo = bounds[c];
      const size_type mid = bounds[std::min(c + width, chunks)];
      const size_type hi = bounds[std::min(c + 2 * width, chunks)];
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
    }
    std::swap(src, dst);
  }
  if (src != v.data()) std::memcpy(v.data(), src, sizeof(T) * static_cast<std::size_t>(n));
}

/// Which byte positions vary across `keys` (constant passes are skipped, so
/// sorting keys bounded by 2^k costs ceil(k/8) scatter passes).
inline std::uint64_t varying_bytes(const Executor& exec, const std::uint64_t* keys,
                                   size_type n) {
  std::uint64_t all_or = 0, all_and = ~std::uint64_t{0};
  const int num_threads = exec.num_threads();
#pragma omp parallel for schedule(static) num_threads(num_threads) \
    reduction(|: all_or) reduction(&: all_and)
  for (size_type i = 0; i < n; ++i) {
    all_or |= keys[i];
    all_and &= keys[i];
  }
  return all_or & ~all_and;
}

}  // namespace detail

/// Stable comparison sort of `v` under `comp`.
template <class T, class Comp>
void merge_sort(const Executor& exec, std::vector<T>& v, Comp comp) {
  if (exec.space() == Space::parallel) {
    detail::parallel_merge_sort(exec, v, comp);
  } else {
    std::stable_sort(v.begin(), v.end(), comp);
  }
}

template <class T, class Comp>
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
void merge_sort(Space space, std::vector<T>& v, Comp comp) {
  merge_sort(default_executor(space), v, static_cast<Comp&&>(comp));
}

/// Stable LSD radix sort of 64-bit keys, ascending, over the byte range
/// [first_byte, last_byte) (byte 0 is least significant).  Restricting the
/// range turns the sort into a key-value sort whose key and value share one
/// word: sorting only bytes [4, 8) of `(key32 << 32) | value32` words orders
/// by key32 while stability preserves the pre-sort order of equal keys —
/// which is ascending value32 when the caller packed values in that order.
inline void radix_sort_u64(const Executor& exec, std::span<std::uint64_t> keys,
                           int first_byte = 0, int last_byte = 8) {
  const size_type n = static_cast<size_type>(keys.size());
  if (n < 2) return;
  if (!exec.parallelize(n)) {
    if (first_byte == 0 && last_byte >= 8) {
      std::sort(keys.begin(), keys.end());
    } else {
      // Mask to the bytes [first_byte, last_byte) so the serial path orders
      // exactly like the pass-restricted radix path.
      const std::uint64_t hi =
          last_byte >= 8 ? ~std::uint64_t{0} : (std::uint64_t{1} << (8 * last_byte)) - 1;
      const std::uint64_t mask = hi & (~std::uint64_t{0} << (8 * first_byte));
      std::stable_sort(keys.begin(), keys.end(), [mask](std::uint64_t a, std::uint64_t b) {
        return (a & mask) < (b & mask);
      });
    }
    return;
  }

  const std::uint64_t varying = detail::varying_bytes(exec, keys.data(), n);
  const int num_threads = exec.num_threads();
  auto buffer = exec.workspace().take_uninit<std::uint64_t>(n);
  std::uint64_t* src = keys.data();
  std::uint64_t* dst = buffer.data();
  // hist[t][b]: count of byte-value b in thread t's chunk.
  auto hist = exec.workspace().take_uninit<RadixHistogram>(num_threads);

  for (int pass = first_byte; pass < last_byte; ++pass) {
    const int shift = pass * 8;
    if (((varying >> shift) & 0xff) == 0) continue;

#pragma omp parallel num_threads(num_threads)
    {
      // Chunk by the team size OpenMP actually granted, so every index is
      // covered even if fewer than `num_threads` threads materialise.
      const int nt = omp_get_num_threads();
      const int t = omp_get_thread_num();
      const size_type lo = n * t / nt;
      const size_type hi = n * (t + 1) / nt;
      auto& h = hist[static_cast<std::size_t>(t)];
      h.fill(0);
      for (size_type i = lo; i < hi; ++i) ++h[(src[i] >> shift) & 0xff];
#pragma omp barrier
#pragma omp single
      {
        // Column-major exclusive scan: for byte b, thread t, the write base is
        // (all counts of smaller bytes) + (counts of b in earlier threads).
        size_type running = 0;
        for (int b = 0; b < 256; ++b) {
          for (int tt = 0; tt < nt; ++tt) {
            size_type c = hist[static_cast<std::size_t>(tt)][static_cast<std::size_t>(b)];
            hist[static_cast<std::size_t>(tt)][static_cast<std::size_t>(b)] = running;
            running += c;
          }
        }
      }
      // `h` now holds this thread's write cursors; scatter preserves the
      // relative order of equal bytes (stability).
      for (size_type i = lo; i < hi; ++i) dst[h[(src[i] >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != keys.data())
    std::memcpy(keys.data(), src, sizeof(std::uint64_t) * static_cast<std::size_t>(n));
}

PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
inline void radix_sort_u64(Space space, std::span<std::uint64_t> keys) {
  radix_sort_u64(default_executor(space), keys);
}

// --- order-preserving key transforms ---------------------------------------
//
// The IEEE-754 "sign-flip trick": reinterpret the float's bits as an unsigned
// integer, then flip the sign bit for non-negative values and ALL bits for
// negative values.  The result compares (as an unsigned integer) exactly like
// the float compares, for every finite value including denormals and for
// ±infinity.  ±0.0 must be canonicalised first (they compare equal as floats
// but have different bit patterns).  NaNs have no total order and are
// excluded by input validation.

/// Order-preserving u32 key of a float (ascending).
[[nodiscard]] inline std::uint32_t order_preserving_key32(float value) {
  if (value == 0.0f) value = 0.0f;  // -0.0f -> +0.0f
  const auto bits = std::bit_cast<std::uint32_t>(value);
  return bits ^ ((bits >> 31) != 0 ? ~std::uint32_t{0} : std::uint32_t{1} << 31);
}

/// Order-preserving u64 key of a double (ascending).
[[nodiscard]] inline std::uint64_t order_preserving_key64(double value) {
  if (value == 0.0) value = 0.0;  // -0.0 -> +0.0
  const auto bits = std::bit_cast<std::uint64_t>(value);
  return bits ^ ((bits >> 63) != 0 ? ~std::uint64_t{0} : std::uint64_t{1} << 63);
}

/// Order-preserving u64 key of a double for DESCENDING sorts (larger weight
/// -> smaller key), the order of the Section 3.1.1 edge sort.
[[nodiscard]] inline std::uint64_t descending_weight_key(double weight) {
  return ~order_preserving_key64(weight);
}

/// Packs the high 32 bits of a descending weight key with an edge id:
/// radix-sorting the packed words on bytes [4, 8) orders by the key prefix
/// while stability keeps equal prefixes in ascending id order — the canonical
/// tie-break.  (Ties in the prefix with *differing* low key bits are repaired
/// by a run fix-up pass; see sort_edges.)
[[nodiscard]] inline std::uint64_t pack_key_and_id(std::uint64_t descending_key,
                                                   index_t id) {
  return (descending_key & (~std::uint64_t{0} << 32)) |
         static_cast<std::uint32_t>(id);
}

/// Maps a non-negative double to a u64 preserving order (IEEE-754 bit trick;
/// valid because distances/weights in this library are >= 0).  Prefer
/// order_preserving_key64, which also handles negative values.
[[nodiscard]] inline std::uint64_t order_preserving_bits(double non_negative) {
  return std::bit_cast<std::uint64_t>(non_negative);
}

}  // namespace pandora::exec
