#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

/// Failpoints: named fault-injection sites for chaos testing.
///
/// A failpoint is a named site on a failure-relevant seam — the arena's
/// MemoryResource::allocate, the Executor's run_chunks launch, dyn::'s
/// mid-repair windows, the snapshot tier's materialise/publish steps.  A
/// disarmed site costs exactly one relaxed atomic load and a predictable
/// branch (the process-wide armed-site count is zero), so the sites stay
/// compiled into release builds and the perf gates.  Arming a site — either
/// programmatically (`arm`) or via the PANDORA_FAILPOINTS environment
/// variable — makes the Nth pass through it throw: `InjectedFault` (a
/// std::runtime_error) or std::bad_alloc, per the site's configuration.
///
/// Env grammar (parsed once at process start, and again on demand via
/// `arm_from_spec` for tests): comma-separated entries
///
///     site[@kind][=skip[:limit]]
///
/// where `kind` is `error` (default) or `badalloc`, `skip` is how many
/// passes succeed before the first trigger (default 0) and `limit` caps the
/// trigger count before the site auto-disarms (default 1; 0 = unlimited).
/// Example: PANDORA_FAILPOINTS="dyn.insert.repair,exec.memory.allocate@badalloc=2:1"
///
/// Failpoints are deliberately *not* placed inside chunk bodies: bodies run
/// on backend workers and must never throw (Backend contract).  The seam
/// for "a chunk body failed" is the launch site on the calling thread.
namespace pandora::exec::failpoint {

/// Thrown by a triggered failpoint of kind `error`.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What a triggered site throws.
enum class Kind : std::uint8_t {
  error,      ///< InjectedFault("failpoint '<site>' triggered")
  bad_alloc,  ///< std::bad_alloc (allocation-failure injection)
};

struct Config {
  Kind kind = Kind::error;
  std::uint64_t skip = 0;   ///< passes that succeed before the first trigger
  std::uint64_t limit = 1;  ///< triggers before auto-disarm (0 = unlimited)
};

namespace detail {
/// Process-wide count of armed sites: the fast path's only read.
extern std::atomic<int> armed_sites;
/// Slow path: registry lookup, hit accounting, throw when due.
void evaluate(const char* site);
}  // namespace detail

/// The per-site check.  Call through PANDORA_FAILPOINT(site).
inline void check(const char* site) {
  if (detail::armed_sites.load(std::memory_order_relaxed) != 0) detail::evaluate(site);
}

/// Arms `site` (re-arming replaces the config and resets counters).
void arm(std::string_view site, Config config = {});

/// Disarms `site` (keeps its hit/trigger counters readable).  No-op when the
/// site is not armed.
void disarm(std::string_view site);

/// Disarms every site and forgets all counters.
void disarm_all();

/// Passes through `site` since it was (last) armed, triggering or not.
[[nodiscard]] std::uint64_t hits(std::string_view site);

/// Times `site` actually threw since it was (last) armed.
[[nodiscard]] std::uint64_t triggered(std::string_view site);

/// Parses one comma-separated spec in the PANDORA_FAILPOINTS grammar and
/// arms the named sites.  Throws std::invalid_argument on a malformed spec.
void arm_from_spec(std::string_view spec);

}  // namespace pandora::exec::failpoint

/// The site marker placed on failure seams; `site` must be a string literal
/// (stable site names are part of the testing surface — see README).
#define PANDORA_FAILPOINT(site) ::pandora::exec::failpoint::check(site)
