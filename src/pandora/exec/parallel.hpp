#pragma once

#include <atomic>
#include <type_traits>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/space.hpp"

/// Data-parallel primitives: parallel_for and parallel_reduce, plus the
/// relaxed atomic read-modify-write helpers GPU kernels rely on.
///
/// Every kernel in the library is written against these (never against raw
/// OpenMP pragmas) so that the serial and parallel spaces execute the exact
/// same code, mirroring the performance-portability claim of Section 5.
namespace pandora::exec {

/// Below this trip count the OpenMP fork/join overhead dominates; run serially.
inline constexpr size_type kParallelForGrain = 2048;

/// Apply `f(i)` for every i in [0, n).
template <class F>
void parallel_for(Space space, size_type n, F&& f) {
  if (space == Space::parallel && n >= kParallelForGrain) {
#pragma omp parallel for schedule(static)
    for (size_type i = 0; i < n; ++i) f(i);
  } else {
    for (size_type i = 0; i < n; ++i) f(i);
  }
}

/// Reduce `transform(i)` over i in [0, n) with the associative, commutative
/// `combine`, starting from `identity`.
template <class T, class Transform, class Combine>
[[nodiscard]] T parallel_reduce(Space space, size_type n, T identity, Transform&& transform,
                                Combine&& combine) {
  if (space == Space::parallel && n >= kParallelForGrain) {
    T result = identity;
#pragma omp parallel
    {
      T local = identity;
#pragma omp for schedule(static) nowait
      for (size_type i = 0; i < n; ++i) local = combine(local, transform(i));
#pragma omp critical(pandora_reduce)
      result = combine(result, local);
    }
    return result;
  }
  T result = identity;
  for (size_type i = 0; i < n; ++i) result = combine(result, transform(i));
  return result;
}

/// Sum of `transform(i)` over [0, n).
template <class T, class Transform>
[[nodiscard]] T parallel_sum(Space space, size_type n, T identity, Transform&& transform) {
  return parallel_reduce(space, n, identity, transform, [](T a, T b) { return a + b; });
}

/// Relaxed atomic max on an integral slot; returns nothing (used for
/// idempotent "max of all writers wins" scatter patterns such as the
/// maxIncident computation of Section 3.1).
template <class T>
void atomic_fetch_max(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  T current = ref.load(std::memory_order_relaxed);
  while (current < value &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Relaxed atomic min on an integral slot.
template <class T>
void atomic_fetch_min(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  T current = ref.load(std::memory_order_relaxed);
  while (current > value &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Relaxed atomic add; returns the previous value.
template <class T>
T atomic_fetch_add(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  return ref.fetch_add(value, std::memory_order_relaxed);
}

}  // namespace pandora::exec
