#pragma once

#include <atomic>
#include <type_traits>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/backend.hpp"
#include "pandora/exec/executor.hpp"

/// Data-parallel primitives: parallel_for and parallel_reduce, plus the
/// relaxed atomic read-modify-write helpers GPU kernels rely on.
///
/// Every kernel in the library is written against these (never against raw
/// threading pragmas) so that every registered backend — serial, OpenMP,
/// pinned pool, a future device backend — executes the exact same code,
/// mirroring the performance-portability claim of Section 5.  Each primitive
/// decomposes its index range into `Executor::num_threads()` deterministic
/// chunks and dispatches them through `Backend::run_chunks`; per-chunk
/// partials are combined left-to-right on the calling thread, so results are
/// bit-identical across backends and across runs (the conformance suite
/// asserts both).
namespace pandora::exec {

/// Apply `f(i)` for every i in [0, n).
template <class F>
void parallel_for(const Executor& exec, size_type n, F&& f) {
  if (exec.parallelize(n)) {
    const int num_chunks = exec.num_threads();
    auto body = [&](int c) {
      const size_type lo = n * c / num_chunks;
      const size_type hi = n * (c + 1) / num_chunks;
      for (size_type i = lo; i < hi; ++i) f(i);
    };
    exec.run_chunks(num_chunks, num_chunks, body);
  } else if (const CancellationToken* token = exec.cancellation_token(); token != nullptr) {
    // Serial fallback (small n, or a 1-thread backend over any n): poll the
    // token every kParallelForGrain iterations so cancellation latency stays
    // ~one grain even where run_chunks is never reached.
    for (size_type i = 0; i < n; ++i) {
      if ((i & (kParallelForGrain - 1)) == 0 && token->cancelled()) throw_cancelled(*token);
      f(i);
    }
  } else {
    for (size_type i = 0; i < n; ++i) f(i);
  }
}

/// Reduce `transform(i)` over i in [0, n) with the associative `combine`,
/// starting from `identity`.
///
/// Each chunk folds a contiguous index range into a private accumulator; the
/// per-chunk partials are then combined *sequentially in chunk order* on the
/// calling thread.  Because chunk c covers indices strictly before chunk
/// c+1, the overall combine order is left-to-right over [0, n), so `combine`
/// only has to be associative — it need NOT be commutative — and the result
/// does not depend on which backend worker ran which chunk.
template <class T, class Transform, class Combine>
[[nodiscard]] T parallel_reduce(const Executor& exec, size_type n, T identity,
                                Transform&& transform, Combine&& combine) {
  if (exec.parallelize(n)) {
    const int num_chunks = exec.num_threads();
    const auto reduce_into = [&](T* partial) {
      auto body = [&](int c) {
        const size_type lo = n * c / num_chunks;
        const size_type hi = n * (c + 1) / num_chunks;
        T local = identity;
        for (size_type i = lo; i < hi; ++i) local = combine(local, transform(i));
        partial[static_cast<std::size_t>(c)] = std::move(local);
      };
      exec.run_chunks(num_chunks, num_chunks, body);
      T result = identity;
      for (int c = 0; c < num_chunks; ++c)
        result = combine(std::move(result), std::move(partial[static_cast<std::size_t>(c)]));
      return result;
    };
    // Per-chunk partials live in leased scratch when T fits the byte arena
    // (the common case: integral/fingerprint reductions on the hot path stay
    // allocation-free after warm-up); other types fall back to a vector.
    if constexpr (std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>) {
      auto partial = exec.workspace().template take<T>(num_chunks, identity);
      return reduce_into(partial.data());
    } else {
      std::vector<T> partial(static_cast<std::size_t>(num_chunks), identity);
      return reduce_into(partial.data());
    }
  }
  if (const CancellationToken* token = exec.cancellation_token(); token != nullptr) {
    T result = identity;
    for (size_type i = 0; i < n; ++i) {
      if ((i & (kParallelForGrain - 1)) == 0 && token->cancelled()) throw_cancelled(*token);
      result = combine(result, transform(i));
    }
    return result;
  }
  T result = identity;
  for (size_type i = 0; i < n; ++i) result = combine(result, transform(i));
  return result;
}

/// Sum of `transform(i)` over [0, n).
template <class T, class Transform>
[[nodiscard]] T parallel_sum(const Executor& exec, size_type n, T identity,
                             Transform&& transform) {
  return parallel_reduce(exec, n, std::move(identity), static_cast<Transform&&>(transform),
                         [](T a, T b) { return a + b; });
}

/// Relaxed atomic max on an integral slot; returns nothing (used for
/// idempotent "max of all writers wins" scatter patterns such as the
/// maxIncident computation of Section 3.1).
template <class T>
void atomic_fetch_max(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  T current = ref.load(std::memory_order_relaxed);
  while (current < value &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Relaxed atomic min on an integral slot.
template <class T>
void atomic_fetch_min(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  T current = ref.load(std::memory_order_relaxed);
  while (current > value &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Relaxed atomic add; returns the previous value.
template <class T>
T atomic_fetch_add(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  return ref.fetch_add(value, std::memory_order_relaxed);
}

}  // namespace pandora::exec
