#pragma once

#include <omp.h>

#include <atomic>
#include <type_traits>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"

/// Data-parallel primitives: parallel_for and parallel_reduce, plus the
/// relaxed atomic read-modify-write helpers GPU kernels rely on.
///
/// Every kernel in the library is written against these (never against raw
/// OpenMP pragmas) so that the serial and parallel spaces execute the exact
/// same code, mirroring the performance-portability claim of Section 5.
/// All primitives take the `Executor` execution context; the bare-`Space`
/// overloads are deprecated shims over the per-thread default executors.
namespace pandora::exec {

/// Apply `f(i)` for every i in [0, n).
template <class F>
void parallel_for(const Executor& exec, size_type n, F&& f) {
  if (exec.parallelize(n)) {
    const int num_threads = exec.num_threads();
#pragma omp parallel for schedule(static) num_threads(num_threads)
    for (size_type i = 0; i < n; ++i) f(i);
  } else {
    for (size_type i = 0; i < n; ++i) f(i);
  }
}

template <class F>
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
void parallel_for(Space space, size_type n, F&& f) {
  parallel_for(default_executor(space), n, static_cast<F&&>(f));
}

/// Reduce `transform(i)` over i in [0, n) with the associative `combine`,
/// starting from `identity`.
///
/// Each thread folds a contiguous index chunk into a private accumulator;
/// the per-thread partials are then combined *sequentially in thread-id
/// order* after the parallel region.  Because chunk t covers indices strictly
/// before chunk t+1, the overall combine order is left-to-right over [0, n),
/// so `combine` only has to be associative — it need NOT be commutative.
/// (The previous implementation merged partials inside an OpenMP `critical`
/// section in whatever order threads arrived: that both serialised the
/// combines behind a lock and produced a nondeterministic combine order,
/// which is wrong for non-commutative operators and for floating-point
/// reproducibility.)
template <class T, class Transform, class Combine>
[[nodiscard]] T parallel_reduce(const Executor& exec, size_type n, T identity,
                                Transform&& transform, Combine&& combine) {
  if (exec.parallelize(n)) {
    const int num_threads = exec.num_threads();
    // Per-thread partials live in leased scratch when T fits the byte arena
    // (the common case: integral/fingerprint reductions on the hot path stay
    // allocation-free after warm-up); other types fall back to a vector.
    const auto reduce_into = [&](T* partial) {
      int team = 1;
#pragma omp parallel num_threads(num_threads)
      {
        // Chunk by the team size OpenMP actually granted, so every index is
        // covered even if fewer than `num_threads` threads materialise.
        const int nt = omp_get_num_threads();
        const int t = omp_get_thread_num();
#pragma omp single
        team = nt;
        const size_type lo = n * t / nt;
        const size_type hi = n * (t + 1) / nt;
        T local = identity;
        for (size_type i = lo; i < hi; ++i) local = combine(local, transform(i));
        partial[static_cast<std::size_t>(t)] = std::move(local);
      }
      T result = identity;
      for (int t = 0; t < team; ++t)
        result = combine(std::move(result), std::move(partial[static_cast<std::size_t>(t)]));
      return result;
    };
    if constexpr (std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>) {
      auto partial = exec.workspace().template take<T>(num_threads, identity);
      return reduce_into(partial.data());
    } else {
      std::vector<T> partial(static_cast<std::size_t>(num_threads), identity);
      return reduce_into(partial.data());
    }
  }
  T result = identity;
  for (size_type i = 0; i < n; ++i) result = combine(result, transform(i));
  return result;
}

template <class T, class Transform, class Combine>
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] T parallel_reduce(Space space, size_type n, T identity, Transform&& transform,
                                Combine&& combine) {
  return parallel_reduce(default_executor(space), n, std::move(identity),
                         static_cast<Transform&&>(transform), static_cast<Combine&&>(combine));
}

/// Sum of `transform(i)` over [0, n).
template <class T, class Transform>
[[nodiscard]] T parallel_sum(const Executor& exec, size_type n, T identity,
                             Transform&& transform) {
  return parallel_reduce(exec, n, std::move(identity), static_cast<Transform&&>(transform),
                         [](T a, T b) { return a + b; });
}

template <class T, class Transform>
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] T parallel_sum(Space space, size_type n, T identity, Transform&& transform) {
  return parallel_sum(default_executor(space), n, std::move(identity),
                      static_cast<Transform&&>(transform));
}

/// Relaxed atomic max on an integral slot; returns nothing (used for
/// idempotent "max of all writers wins" scatter patterns such as the
/// maxIncident computation of Section 3.1).
template <class T>
void atomic_fetch_max(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  T current = ref.load(std::memory_order_relaxed);
  while (current < value &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Relaxed atomic min on an integral slot.
template <class T>
void atomic_fetch_min(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  T current = ref.load(std::memory_order_relaxed);
  while (current > value &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Relaxed atomic add; returns the previous value.
template <class T>
T atomic_fetch_add(T& slot, T value) {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T> ref(slot);
  return ref.fetch_add(value, std::memory_order_relaxed);
}

}  // namespace pandora::exec
