#include "pandora/exec/pinned_pool.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pandora::exec {

namespace {

/// The pool this thread is a worker of (nullptr on non-pool threads).  Lets
/// run_chunks detect a nested launch from ANY worker of the same pool — not
/// just the original caller — and run it inline instead of deadlocking on
/// the run mutex the caller holds.
thread_local const PinnedPoolBackend* t_worker_of = nullptr;

int default_pool_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void pin_current_thread(int core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  // Best-effort: a cpuset-restricted container may refuse; the pool works
  // unpinned exactly the same, just without the locality guarantee.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

PinnedPoolBackend::PinnedPoolBackend(PinnedPoolOptions options) : options_(options) {
  if (options_.num_threads <= 0) options_.num_threads = default_pool_threads();
  const int pool_workers = std::max(0, options_.num_threads - 1);
  workers_.reserve(static_cast<std::size_t>(pool_workers));
  for (int i = 0; i < pool_workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

PinnedPoolBackend::~PinnedPoolBackend() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void PinnedPoolBackend::worker_main(int worker_index) {
  t_worker_of = this;
  if (options_.pin_threads) {
    const int cores = default_pool_threads();
    pin_current_thread((worker_index + 1) % cores);
  }
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Spin on the epoch before parking: back-to-back kernels re-engage hot
    // workers without a futex round trip.  The epoch atomic is only the
    // wake-up signal — job fields are read under the mutex below.
    if (!stop_ && epoch_.load(std::memory_order_relaxed) == seen) {
      lock.unlock();
      for (int i = 0; i < options_.spin_iterations; ++i) {
        if (epoch_.load(std::memory_order_relaxed) != seen) break;
      }
      lock.lock();
      work_cv_.wait(lock, [&] {
        return stop_ || epoch_.load(std::memory_order_relaxed) != seen;
      });
    }
    if (stop_) return;
    seen = epoch_.load(std::memory_order_relaxed);
    if (joined_workers_ >= wanted_workers_) continue;  // job fully staffed
    ++joined_workers_;
    const ChunkBody body = job_body_;
    const int num_chunks = job_num_chunks_;
    lock.unlock();
    while (true) {
      const int chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      body(chunk);
    }
    lock.lock();
    if (++done_workers_ == wanted_workers_) done_cv_.notify_one();
  }
}

void PinnedPoolBackend::run_chunks(int num_chunks, int max_workers, ChunkBody body) const {
  if (num_chunks <= 0) return;
  // Nested launch from inside a chunk body (or no pool workers at all):
  // run inline on the calling worker.
  const std::thread::id self = std::this_thread::get_id();
  const int pool_workers =
      std::min({static_cast<int>(workers_.size()), std::max(0, max_workers - 1), num_chunks});
  if (pool_workers == 0 || t_worker_of == this ||
      run_owner_.load(std::memory_order_relaxed) == self) {
    for (int c = 0; c < num_chunks; ++c) body(c);
    return;
  }

  // Concurrent callers (two executors sharing one pool) serialise here.
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  run_owner_.store(self, std::memory_order_relaxed);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_body_ = body;
    job_num_chunks_ = num_chunks;
    wanted_workers_ = pool_workers;
    joined_workers_ = 0;
    done_workers_ = 0;
    next_chunk_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  work_cv_.notify_all();

  // The caller is a worker too.
  while (true) {
    const int chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks) break;
    body(chunk);
  }

  // Wait until every *wanted* worker has joined and finished — a worker
  // that has not yet woken must still pass through the (already exhausted)
  // cursor and report done, so no straggler can ever touch a later job's
  // cursor.  All chunk effects happen-before this mutex acquisition.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return done_workers_ == wanted_workers_; });
  }
  run_owner_.store(std::thread::id{}, std::memory_order_relaxed);
}

std::shared_ptr<const Backend> make_pinned_pool_backend(PinnedPoolOptions options) {
  return std::make_shared<PinnedPoolBackend>(options);
}

}  // namespace pandora::exec
