#pragma once

#include <cstddef>
#include <new>

#include "pandora/exec/failpoint.hpp"

/// Memory resources: where execution backends get their bytes.
///
/// The `Workspace` byte arena allocates its 64-byte-aligned blocks through a
/// `MemoryResource` owned by the executing `Backend`, so a device backend can
/// substitute device buffers (cudaMalloc/hipMalloc arenas, pinned host
/// staging, ...) without touching the arena's lease/size-class logic — the
/// same separation RAFT/Kokkos draw between execution and memory spaces.
namespace pandora::exec {

/// Allocates and frees raw blocks for a Workspace arena.  Implementations
/// must return blocks aligned to at least `alignment`; `deallocate` receives
/// the exact (bytes, alignment) of the matching `allocate`.
///
/// Thread-safety contract: `allocate`/`deallocate` may be called from any
/// thread (multiple executors can share one backend), so implementations must
/// be thread-safe — the default host resource simply forwards to the global
/// operator new/delete.
class MemoryResource {
 public:
  virtual ~MemoryResource() = default;
  [[nodiscard]] virtual void* allocate(std::size_t bytes, std::size_t alignment) = 0;
  virtual void deallocate(void* block, std::size_t bytes, std::size_t alignment) noexcept = 0;
};

/// The default resource: global operator new/delete with extended alignment.
/// (Tests that count heap allocations observe arena misses through this —
/// the steady-state zero-allocation guarantee is asserted per backend.)
class HostMemoryResource final : public MemoryResource {
 public:
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t alignment) override {
    PANDORA_FAILPOINT("exec.memory.allocate");
    return ::operator new(bytes, std::align_val_t{alignment});
  }
  void deallocate(void* block, std::size_t bytes, std::size_t alignment) noexcept override {
    (void)bytes;
    ::operator delete(block, std::align_val_t{alignment});
  }
};

/// The process-wide host resource every CPU backend shares.
[[nodiscard]] MemoryResource& host_memory_resource();

}  // namespace pandora::exec
