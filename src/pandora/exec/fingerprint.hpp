#pragma once

#include <cstdint>

/// Fingerprint arithmetic shared by every artifact-cache key in the library.
///
/// Cacheable artifacts (SortedEdges, kd-trees, core distances, dendrograms)
/// are keyed on a 64-bit fingerprint of their *inputs*: a content hash of the
/// bulk data combined with every parameter that changes the artifact.  Two
/// sweeps differing in any parameter (`min_pts`, `leaf_size`, the expansion
/// policy, ...) must never alias, so parameters are folded in with the full
/// SplitMix64 finaliser rather than a cheap xor — a single-bit parameter
/// change reshuffles the whole key.  Each artifact kind additionally salts
/// with its own `ArtifactTag`, so e.g. a kd-tree and the core distances of
/// the same point set can never collide even before the type check the
/// ArtifactCache performs.
namespace pandora::exec {

/// SplitMix64 finaliser: a cheap, well-distributed 64-bit mixer.
[[nodiscard]] constexpr std::uint64_t mix_fingerprint(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Folds `value` (a parameter or another fingerprint) into `seed`.
/// Non-commutative on purpose: combine(a, b) != combine(b, a), so parameter
/// order is part of the key.
[[nodiscard]] constexpr std::uint64_t combine_fingerprint(std::uint64_t seed,
                                                          std::uint64_t value) {
  return mix_fingerprint(seed + 0x9e3779b97f4a7c15ULL + mix_fingerprint(value));
}

/// Per-artifact-kind salts (arbitrary distinct odd constants).
enum class ArtifactTag : std::uint64_t {
  sorted_edges = 0x5045a1c3d5e7f911ULL,
  kdtree = 0x6b7d9fa1c3e5071bULL,
  core_distance = 0x7c8fab1d3f516273ULL,
  dendrogram = 0x8da1bd2f41536475ULL,
  emst = 0x9eb3cf4153657587ULL,
};

[[nodiscard]] constexpr std::uint64_t tagged_fingerprint(ArtifactTag tag,
                                                         std::uint64_t fingerprint) {
  return combine_fingerprint(static_cast<std::uint64_t>(tag), fingerprint);
}

/// Epoch-aware fingerprint for artifacts derived from a *mutable* source —
/// the `dyn::` subsystem's point set, which changes identity-in-place on
/// every update batch.  Content hashing would cost a pass over the data per
/// lookup and, worse, could alias across epochs if an update happened to
/// restore earlier contents while object-identity checks still pointed at
/// the same PointSet.  Instead the key is (instance, epoch): `instance` is a
/// process-unique id of the mutable container and `epoch` a counter bumped
/// on every mutation.  Epochs never repeat and never decrease, so the key of
/// a stale artifact can never be derived again — stale cache entries age out
/// of the LRU without ever being served.
[[nodiscard]] constexpr std::uint64_t epoch_fingerprint(std::uint64_t instance,
                                                        std::uint64_t epoch) {
  return combine_fingerprint(mix_fingerprint(instance ^ 0xd1b54a32d192ed03ULL), epoch);
}

}  // namespace pandora::exec
