#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pandora/exec/backend.hpp"

namespace pandora::exec {

struct PinnedPoolOptions {
  /// Worker threads *including* the calling thread (so `num_threads` total
  /// workers execute chunks, `num_threads - 1` of them pool-owned).
  /// 0 = hardware concurrency.
  int num_threads = 0;
  /// Pin pool worker i to core (i + 1) % hardware_concurrency (the caller
  /// keeps core 0's default affinity).  Linux only; a no-op elsewhere.
  bool pin_threads = false;
  /// Iterations a worker spins on the job epoch before parking on the
  /// condition variable.  Back-to-back kernels (a dendrogram build is dozens
  /// of launches) dispatch without a syscall while workers are still hot.
  int spin_iterations = 1 << 14;
};

/// A persistent worker-pool backend: threads are created once, parked
/// between kernels (bounded spin, then condition variable), and re-used for
/// every `run_chunks` — eliminating the per-kernel fork/join that dominates
/// small launches.  Chunks are claimed from a shared atomic cursor, so
/// uneven chunk costs balance dynamically; determinism is unaffected because
/// callers make each chunk a pure function of its index (see Backend).
///
/// Concurrency: `run_chunks` from different threads serialises on an
/// internal run mutex (two executors may share one pool); a nested call from
/// inside a chunk body runs inline on that worker.
class PinnedPoolBackend final : public Backend {
 public:
  explicit PinnedPoolBackend(PinnedPoolOptions options = {});
  ~PinnedPoolBackend() override;
  PinnedPoolBackend(const PinnedPoolBackend&) = delete;
  PinnedPoolBackend& operator=(const PinnedPoolBackend&) = delete;

  [[nodiscard]] const char* name() const noexcept override { return "pinned"; }
  [[nodiscard]] int concurrency() const noexcept override {
    return static_cast<int>(workers_.size()) + 1;
  }
  /// A fixed-size pool cannot honour more threads than it owns: the grant is
  /// clamped, so nested executors report a truthful budget.
  [[nodiscard]] int grant_threads(int requested) const noexcept override {
    const int capacity = concurrency();
    return requested > 0 ? (requested < capacity ? requested : capacity) : capacity;
  }
  void run_chunks(int num_chunks, int max_workers, ChunkBody body) const override;

  [[nodiscard]] bool threads_pinned() const noexcept { return options_.pin_threads; }

 private:
  void worker_main(int worker_index);

  PinnedPoolOptions options_;

  // Job state.  Publication protocol: the caller writes the job fields and
  // bumps `epoch_` under `mutex_`, then notifies; a worker joins a job only
  // while holding `mutex_` (wake -> observe new epoch -> take a participant
  // slot), reads the job fields into locals, and claims chunks lock-free
  // from `next_chunk_`.  Completion: each participant bumps `done_` under
  // `mutex_` when the cursor is exhausted; the caller waits until every
  // *wanted* participant finished, so no straggler can touch a later job's
  // cursor.  `epoch_` is additionally an atomic so the spin phase can poll
  // it without the lock (the mutex release/acquire still orders the job
  // fields).
  mutable std::mutex mutex_;
  mutable std::condition_variable work_cv_;
  mutable std::condition_variable done_cv_;
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable ChunkBody job_body_{empty_body_};
  mutable int job_num_chunks_ = 0;
  mutable int wanted_workers_ = 0;   ///< pool workers this job needs
  mutable int joined_workers_ = 0;   ///< pool workers that took a slot
  mutable int done_workers_ = 0;     ///< pool workers finished with the job
  mutable std::atomic<int> next_chunk_{0};
  bool stop_ = false;  ///< guarded by mutex_

  /// Serialises whole-kernel launches from concurrent callers; `run_owner_`
  /// detects nesting from a chunk body (run inline instead of deadlocking).
  mutable std::mutex run_mutex_;
  mutable std::atomic<std::thread::id> run_owner_{};

  std::vector<std::thread> workers_;

  static void empty_chunk(int) {}
  inline static void (*empty_body_)(int) = &empty_chunk;
};

/// A dedicated pool (own threads), e.g. for an executor that must not share
/// workers with the process-wide `pinned_pool_backend()` singleton.
[[nodiscard]] std::shared_ptr<const Backend> make_pinned_pool_backend(
    PinnedPoolOptions options = {});

}  // namespace pandora::exec
