#include "pandora/data/point_generators.hpp"

#include <algorithm>
#include <cmath>

#include "pandora/common/expect.hpp"

namespace pandora::data {

namespace {

/// Uniform direction-ish offset inside the unit ball (rejection-free:
/// Gaussian direction scaled by a radius with the right density).
void ball_offset(Rng& rng, int dim, double radius, double* out) {
  double norm2 = 0;
  for (int d = 0; d < dim; ++d) {
    out[d] = rng.normal();
    norm2 += out[d] * out[d];
  }
  const double norm = std::sqrt(std::max(norm2, 1e-300));
  const double r = radius * std::pow(rng.next_double(), 1.0 / dim);
  for (int d = 0; d < dim; ++d) out[d] *= r / norm;
}

}  // namespace

spatial::PointSet uniform_points(index_t n, int dim, std::uint64_t seed) {
  spatial::PointSet points(dim, n);
  Rng rng(seed);
  for (double& c : points.coords()) c = rng.next_double();
  return points;
}

spatial::PointSet normal_points(index_t n, int dim, std::uint64_t seed) {
  spatial::PointSet points(dim, n);
  Rng rng(seed);
  for (double& c : points.coords()) c = rng.normal();
  return points;
}

spatial::PointSet gaussian_blobs(index_t n, int dim, int clusters, double spread,
                                 double noise_fraction, std::uint64_t seed) {
  PANDORA_EXPECT(clusters > 0, "need at least one cluster");
  spatial::PointSet points(dim, n);
  Rng rng(seed);
  std::vector<double> centers(static_cast<std::size_t>(clusters) * static_cast<std::size_t>(dim));
  for (double& c : centers) c = rng.next_double();
  for (index_t i = 0; i < n; ++i) {
    if (rng.next_double() < noise_fraction) {
      for (int d = 0; d < dim; ++d) points.at(i, d) = rng.next_double();
      continue;
    }
    const auto c = static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(clusters)));
    for (int d = 0; d < dim; ++d)
      points.at(i, d) = centers[c * static_cast<std::size_t>(dim) + static_cast<std::size_t>(d)] +
                        spread * rng.normal();
  }
  return points;
}

spatial::PointSet soneira_peebles(index_t n, int dim, int eta, double lambda, int depth,
                                  std::uint64_t seed) {
  PANDORA_EXPECT(eta >= 2 && lambda > 1.0 && depth >= 1, "invalid Soneira-Peebles parameters");
  spatial::PointSet points(dim, n);
  Rng rng(seed);

  struct Frame {
    std::vector<double> center;
    double scale;
    int level;
    index_t first, count;
  };
  std::vector<Frame> stack;
  stack.push_back({std::vector<double>(static_cast<std::size_t>(dim), 0.5), 0.5, 0, 0, n});

  std::vector<double> offset(static_cast<std::size_t>(dim));
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.count <= 0) continue;
    if (f.level == depth || f.count == 1) {
      // Leaf cluster: scatter the remaining budget inside the current sphere.
      for (index_t i = 0; i < f.count; ++i) {
        ball_offset(rng, dim, f.scale, offset.data());
        for (int d = 0; d < dim; ++d)
          points.at(f.first + i, d) =
              f.center[static_cast<std::size_t>(d)] + offset[static_cast<std::size_t>(d)];
      }
      continue;
    }
    // Place eta subcluster centers inside the sphere, then split the point
    // budget uniformly at random over them (multinomial via random draws).
    std::vector<index_t> budget(static_cast<std::size_t>(eta), 0);
    for (index_t i = 0; i < f.count; ++i)
      ++budget[static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(eta)))];
    for (int c = 0; c < eta; ++c) {
      if (budget[static_cast<std::size_t>(c)] == 0) continue;
      ball_offset(rng, dim, f.scale, offset.data());
      Frame child;
      child.center.resize(static_cast<std::size_t>(dim));
      for (int d = 0; d < dim; ++d)
        child.center[static_cast<std::size_t>(d)] =
            f.center[static_cast<std::size_t>(d)] + offset[static_cast<std::size_t>(d)];
      child.scale = f.scale / lambda;
      child.level = f.level + 1;
      child.count = budget[static_cast<std::size_t>(c)];
      child.first = f.first;
      f.first += child.count;
      stack.push_back(std::move(child));
    }
  }
  return points;
}

spatial::PointSet trajectory_points(index_t n, int tracks, double noise, std::uint64_t seed) {
  PANDORA_EXPECT(tracks > 0, "need at least one track");
  spatial::PointSet points(2, n);
  Rng rng(seed);
  // Tracks are random-turn polylines; each point picks a track, a segment and
  // a position along it, plus Gaussian cross-track noise.
  constexpr int kWaypoints = 16;
  std::vector<double> wx(static_cast<std::size_t>(tracks) * kWaypoints);
  std::vector<double> wy(static_cast<std::size_t>(tracks) * kWaypoints);
  for (int t = 0; t < tracks; ++t) {
    double x = rng.next_double(), y = rng.next_double();
    double heading = rng.uniform(0, 6.283185307179586);
    for (int w = 0; w < kWaypoints; ++w) {
      wx[static_cast<std::size_t>(t) * kWaypoints + static_cast<std::size_t>(w)] = x;
      wy[static_cast<std::size_t>(t) * kWaypoints + static_cast<std::size_t>(w)] = y;
      heading += rng.normal(0, 0.35);
      const double step = 0.02 + 0.02 * rng.next_double();
      x += step * std::cos(heading);
      y += step * std::sin(heading);
    }
  }
  for (index_t i = 0; i < n; ++i) {
    const auto t = static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(tracks)));
    const auto w = static_cast<std::size_t>(rng.next_below(kWaypoints - 1));
    const double s = rng.next_double();
    const std::size_t base = t * kWaypoints + w;
    points.at(i, 0) = wx[base] + s * (wx[base + 1] - wx[base]) + noise * rng.normal();
    points.at(i, 1) = wy[base] + s * (wy[base + 1] - wy[base]) + noise * rng.normal();
  }
  return points;
}

spatial::PointSet grid_road_points(index_t n, int cells, double jitter, std::uint64_t seed) {
  PANDORA_EXPECT(cells > 0, "need at least one grid cell");
  spatial::PointSet points(2, n);
  Rng rng(seed);
  const double cell = 1.0 / cells;
  for (index_t i = 0; i < n; ++i) {
    const bool horizontal = (rng.next_u64() & 1) != 0;
    const double line = cell * static_cast<double>(
                                   rng.next_below(static_cast<std::uint64_t>(cells) + 1));
    const double along = rng.next_double();
    const double across = line + jitter * rng.normal();
    points.at(i, 0) = horizontal ? along : across;
    points.at(i, 1) = horizontal ? across : along;
  }
  return points;
}

spatial::PointSet power_law_blobs(index_t n, int dim, int clusters, double alpha,
                                  std::uint64_t seed) {
  PANDORA_EXPECT(clusters > 0, "need at least one cluster");
  spatial::PointSet points(dim, n);
  Rng rng(seed);
  // Cluster weights ~ (rank+1)^-alpha; scales vary over a decade, which is
  // what produces the mid-range skewness of the VisualVar datasets.
  std::vector<double> cumulative(static_cast<std::size_t>(clusters));
  double total = 0;
  for (int c = 0; c < clusters; ++c) {
    total += std::pow(static_cast<double>(c + 1), -alpha);
    cumulative[static_cast<std::size_t>(c)] = total;
  }
  std::vector<double> centers(static_cast<std::size_t>(clusters) * static_cast<std::size_t>(dim));
  std::vector<double> scales(static_cast<std::size_t>(clusters));
  for (double& c : centers) c = rng.next_double();
  for (double& s : scales) s = 0.002 * std::pow(10.0, rng.next_double());
  for (index_t i = 0; i < n; ++i) {
    const double pick = rng.next_double() * total;
    const auto c = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), pick) - cumulative.begin());
    for (int d = 0; d < dim; ++d)
      points.at(i, d) = centers[c * static_cast<std::size_t>(dim) + static_cast<std::size_t>(d)] +
                        scales[c] * rng.normal();
  }
  return points;
}

spatial::PointSet similar_blobs(index_t n, int dim, int clusters, std::uint64_t seed) {
  return gaussian_blobs(n, dim, clusters, 0.02, 0.0, seed);
}

spatial::PointSet mixed_features(index_t n, int dim, std::uint64_t seed) {
  spatial::PointSet points(dim, n);
  Rng rng(seed);
  constexpr int kModes = 12;
  std::vector<double> modes(static_cast<std::size_t>(kModes) * static_cast<std::size_t>(dim));
  for (double& m : modes) m = rng.next_double();
  for (index_t i = 0; i < n; ++i) {
    const auto mode = static_cast<std::size_t>(rng.next_below(kModes));
    for (int d = 0; d < dim; ++d) {
      if (d % 2 == 0) {
        // Mixture coordinate: clustered around one of the modes.
        points.at(i, d) =
            modes[mode * static_cast<std::size_t>(dim) + static_cast<std::size_t>(d)] +
            0.03 * rng.normal();
      } else {
        // Heavy-tailed coordinate, as in consumption/intensity channels.
        points.at(i, d) = std::exp(0.5 * rng.normal()) - 1.0;
      }
    }
  }
  return points;
}

const std::vector<DatasetSpec>& table2_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {"NgsimProxy", "Ngsimlocation3 (GPS locations)", 2, 600000},
      {"RoadNetProxy", "RoadNetwork3 (road network)", 2, 400000},
      {"Pamap2Proxy", "Pamap2 (activity monitoring)", 4, 380000},
      {"FarmProxy", "Farm (VZ-features)", 5, 360000},
      {"HouseholdProxy", "Household (power usage)", 7, 200000},
      {"HaccProxy", "Hacc37M (cosmology)", 3, 1000000},
      {"VisualVar2D", "VisualVar10M2D (GAN)", 2, 500000},
      {"VisualVar3D", "VisualVar10M3D (GAN)", 3, 500000},
      {"VisualSim5D", "VisualSim10M5D (GAN)", 5, 500000},
      {"Normal2D", "Normal100M2D (random normal)", 2, 1000000},
      {"Normal3D", "Normal100M3D (random normal)", 3, 500000},
      {"Uniform2D", "Uniform100M2D (random uniform)", 2, 1000000},
      {"Uniform3D", "Uniform100M3D (random uniform)", 3, 500000},
  };
  return specs;
}

spatial::PointSet make_dataset(const std::string& name, index_t n, std::uint64_t seed) {
  const DatasetSpec* spec = nullptr;
  for (const auto& s : table2_datasets())
    if (s.name == name) spec = &s;
  PANDORA_EXPECT(spec != nullptr, "unknown dataset name: " + name);
  if (n <= 0) n = spec->default_n;

  if (name == "NgsimProxy") return trajectory_points(n, 48, 0.0008, seed);
  if (name == "RoadNetProxy") return grid_road_points(n, 24, 0.001, seed);
  if (name == "Pamap2Proxy") return mixed_features(n, 4, seed);
  if (name == "FarmProxy") return mixed_features(n, 5, seed);
  if (name == "HouseholdProxy") return mixed_features(n, 7, seed);
  if (name == "HaccProxy") return soneira_peebles(n, 3, 4, 1.6, 12, seed);
  if (name == "VisualVar2D") return power_law_blobs(n, 2, 100, 1.2, seed);
  if (name == "VisualVar3D") return power_law_blobs(n, 3, 100, 1.2, seed);
  if (name == "VisualSim5D") return similar_blobs(n, 5, 64, seed);
  if (name == "Normal2D") return normal_points(n, 2, seed);
  if (name == "Normal3D") return normal_points(n, 3, seed);
  if (name == "Uniform2D") return uniform_points(n, 2, seed);
  if (name == "Uniform3D") return uniform_points(n, 3, seed);
  PANDORA_EXPECT(false, "unreachable");
  return {};
}

}  // namespace pandora::data
