#pragma once

#include "pandora/common/rng.hpp"
#include "pandora/common/types.hpp"
#include "pandora/graph/edge.hpp"

/// Synthetic MST topologies for tests and micro-benchmarks.
///
/// Dendrogram shape is driven by the tree topology and the weight ordering:
/// a star with ascending weights produces the maximally skewed single-chain
/// dendrogram of Theorem 4, a balanced binary topology the ideal log-height
/// one.  These generators cover the spectrum so the property suite can sweep
/// skewness from 1 to n/log n.
namespace pandora::data {

/// Star: vertex 0 is the hub; edge i connects 0 -- i+1.  The dendrogram is a
/// single chain (the sorting lower-bound construction of Theorem 4).
[[nodiscard]] graph::EdgeList star_tree(index_t num_vertices);

/// Path 0 -- 1 -- 2 -- ... -- n-1.
[[nodiscard]] graph::EdgeList path_tree(index_t num_vertices);

/// Caterpillar: a spine of ~n/2 vertices, each with one leg.
[[nodiscard]] graph::EdgeList caterpillar_tree(index_t num_vertices);

/// Broom: a path for the first half, a star at its end for the second half.
[[nodiscard]] graph::EdgeList broom_tree(index_t num_vertices);

/// Complete binary tree topology (vertex i's children are 2i+1, 2i+2).
[[nodiscard]] graph::EdgeList balanced_tree(index_t num_vertices);

/// Random recursive tree: vertex i attaches to a uniformly random earlier
/// vertex.  Typical height O(log n), irregular branching.
[[nodiscard]] graph::EdgeList random_attachment_tree(index_t num_vertices, Rng& rng);

/// Preferential-attachment tree: vertex i attaches to an endpoint of a random
/// earlier edge, yielding high-degree hubs (skewed dendrograms).
[[nodiscard]] graph::EdgeList preferential_attachment_tree(index_t num_vertices, Rng& rng);

/// Assigns i.i.d. Uniform(0,1) weights.  With `distinct_values > 0`, weights
/// are quantised to that many values to exercise tie handling.
void assign_random_weights(graph::EdgeList& edges, Rng& rng, int distinct_values = 0);

/// Assigns strictly increasing weights in edge order (w_i = i + 1), making
/// the edge rank deterministic regardless of topology.
void assign_increasing_weights(graph::EdgeList& edges);

}  // namespace pandora::data
