#pragma once

#include <string>
#include <vector>

#include "pandora/common/rng.hpp"
#include "pandora/common/types.hpp"
#include "pandora/spatial/point_set.hpp"

/// Synthetic point-cloud generators standing in for the paper's datasets
/// (Table 2).  Real traces (HACC cosmology snapshots, NGSIM GPS, PAMAP2,
/// UCI Household, VisualVar GAN data) are not redistributable, so each is
/// replaced by a deterministic generator matched in dimensionality and in
/// the *distribution shape* that drives dendrogram skewness; see DESIGN.md
/// for the substitution rationale.
namespace pandora::data {

/// i.i.d. Uniform(0, 1)^dim.
[[nodiscard]] spatial::PointSet uniform_points(index_t n, int dim, std::uint64_t seed);

/// i.i.d. standard normal per coordinate.
[[nodiscard]] spatial::PointSet normal_points(index_t n, int dim, std::uint64_t seed);

/// `clusters` isotropic Gaussian blobs with centers uniform in [0,1]^dim and
/// common standard deviation `spread`; a `noise_fraction` of points is
/// replaced by uniform background noise.
[[nodiscard]] spatial::PointSet gaussian_blobs(index_t n, int dim, int clusters, double spread,
                                               double noise_fraction, std::uint64_t seed);

/// Soneira-Peebles hierarchical model: the classic generator of galaxy-like
/// fractal clustering (the HACC stand-in).  Each recursion level places `eta`
/// subcluster centers inside a sphere shrunk by `lambda`; `depth` levels.
[[nodiscard]] spatial::PointSet soneira_peebles(index_t n, int dim, int eta, double lambda,
                                                int depth, std::uint64_t seed);

/// Noisy polylines in 2-D: `tracks` random vehicle-like trajectories with
/// points jittered around them (the NGSIM GPS stand-in).
[[nodiscard]] spatial::PointSet trajectory_points(index_t n, int tracks, double noise,
                                                  std::uint64_t seed);

/// Points on a jittered 2-D street grid (the RoadNetwork stand-in).
[[nodiscard]] spatial::PointSet grid_road_points(index_t n, int cells, double jitter,
                                                 std::uint64_t seed);

/// Gaussian mixture with power-law cluster sizes and per-cluster scales drawn
/// over a decade (the VisualVar GAN-variability stand-in).
[[nodiscard]] spatial::PointSet power_law_blobs(index_t n, int dim, int clusters, double alpha,
                                                std::uint64_t seed);

/// Equal-size, equal-scale blobs (the VisualSim stand-in; low skewness).
[[nodiscard]] spatial::PointSet similar_blobs(index_t n, int dim, int clusters,
                                              std::uint64_t seed);

/// Sensor-like feature vectors: half the coordinates follow a K-mode Gaussian
/// mixture, half are log-normal heavy tails (the PAMAP2/Farm/Household
/// stand-in for 4-7 dimensional measurement data).
[[nodiscard]] spatial::PointSet mixed_features(index_t n, int dim, std::uint64_t seed);

/// One named dataset family per Table 2 row.
struct DatasetSpec {
  std::string name;        ///< short name used by benches ("HaccProxy", ...)
  std::string paper_name;  ///< the Table 2 dataset it substitutes
  int dim = 0;
  index_t default_n = 0;   ///< laptop-scale default size
};

/// The Table 2 roster, in the paper's order.
[[nodiscard]] const std::vector<DatasetSpec>& table2_datasets();

/// Instantiates a Table 2 stand-in by name with `n` points (0 = default_n).
[[nodiscard]] spatial::PointSet make_dataset(const std::string& name, index_t n,
                                             std::uint64_t seed);

}  // namespace pandora::data
