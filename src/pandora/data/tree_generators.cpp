#include "pandora/data/tree_generators.hpp"

namespace pandora::data {

namespace {

graph::EdgeList with_capacity(index_t num_vertices) {
  graph::EdgeList edges;
  if (num_vertices > 1) edges.reserve(static_cast<std::size_t>(num_vertices) - 1);
  return edges;
}

}  // namespace

graph::EdgeList star_tree(index_t num_vertices) {
  graph::EdgeList edges = with_capacity(num_vertices);
  for (index_t i = 1; i < num_vertices; ++i) edges.push_back({0, i, 0.0});
  return edges;
}

graph::EdgeList path_tree(index_t num_vertices) {
  graph::EdgeList edges = with_capacity(num_vertices);
  for (index_t i = 1; i < num_vertices; ++i) edges.push_back({static_cast<index_t>(i - 1), i, 0.0});
  return edges;
}

graph::EdgeList caterpillar_tree(index_t num_vertices) {
  graph::EdgeList edges = with_capacity(num_vertices);
  const index_t spine = num_vertices / 2;
  for (index_t i = 1; i < spine; ++i) edges.push_back({static_cast<index_t>(i - 1), i, 0.0});
  for (index_t i = spine; i < num_vertices; ++i) {
    const index_t attach = spine > 0 ? static_cast<index_t>((i - spine) % spine) : 0;
    edges.push_back({attach, i, 0.0});
  }
  return edges;
}

graph::EdgeList broom_tree(index_t num_vertices) {
  graph::EdgeList edges = with_capacity(num_vertices);
  const index_t handle = num_vertices / 2;
  for (index_t i = 1; i < handle; ++i) edges.push_back({static_cast<index_t>(i - 1), i, 0.0});
  const index_t hub = handle > 0 ? static_cast<index_t>(handle - 1) : 0;
  for (index_t i = handle; i < num_vertices; ++i) edges.push_back({hub, i, 0.0});
  return edges;
}

graph::EdgeList balanced_tree(index_t num_vertices) {
  graph::EdgeList edges = with_capacity(num_vertices);
  for (index_t i = 1; i < num_vertices; ++i)
    edges.push_back({static_cast<index_t>((i - 1) / 2), i, 0.0});
  return edges;
}

graph::EdgeList random_attachment_tree(index_t num_vertices, Rng& rng) {
  graph::EdgeList edges = with_capacity(num_vertices);
  for (index_t i = 1; i < num_vertices; ++i)
    edges.push_back({static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(i))), i, 0.0});
  return edges;
}

graph::EdgeList preferential_attachment_tree(index_t num_vertices, Rng& rng) {
  graph::EdgeList edges = with_capacity(num_vertices);
  if (num_vertices > 1) edges.push_back({0, 1, 0.0});
  for (index_t i = 2; i < num_vertices; ++i) {
    // Picking a uniform endpoint of a uniform existing edge weights vertices
    // by their degree.
    const auto& e = edges[static_cast<std::size_t>(rng.next_below(edges.size()))];
    const index_t attach = rng.next_u64() & 1 ? e.u : e.v;
    edges.push_back({attach, i, 0.0});
  }
  return edges;
}

void assign_random_weights(graph::EdgeList& edges, Rng& rng, int distinct_values) {
  for (auto& e : edges) {
    if (distinct_values > 0) {
      e.weight = static_cast<double>(rng.next_below(static_cast<std::uint64_t>(distinct_values)));
    } else {
      e.weight = rng.next_double();
    }
  }
}

void assign_increasing_weights(graph::EdgeList& edges) {
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i].weight = static_cast<double>(i + 1);
}

}  // namespace pandora::data
