#pragma once

#include <chrono>

#include "pandora/common/expect.hpp"
#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/dyn/dynamic_clustering.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/serve/batch_executor.hpp"
#include "pandora/snapshot/published_clustering.hpp"
#include "pandora/snapshot/snapshot.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora {

/// The fluent front door of the library: one builder configuring the whole
/// clustering pipeline against an Executor, replacing ad-hoc
/// `PandoraOptions` / `HdbscanOptions` field-poking at call sites:
///
///   exec::Executor executor;                       // reused across queries
///   auto dendrogram = Pipeline::on(executor)
///                         .with_min_pts(4)
///                         .build_dendrogram(mst, num_vertices);
///   auto clusters   = Pipeline::on(executor)
///                         .with_min_pts(4)
///                         .with_min_cluster_size(25)
///                         .run_hdbscan(points);
///
/// The builder holds a reference to the executor (it must outlive any
/// terminal call) and plain option values; it is cheap to copy and every
/// `with_*` returns *this for chaining.  Terminal operations delegate to the
/// Executor-based free functions, so repeated calls on one executor reuse
/// its workspace arena and report phases to its profiler.
class Pipeline {
 public:
  [[nodiscard]] static Pipeline on(const exec::Executor& executor) { return Pipeline(executor); }

  /// Backend front door: a pipeline over the per-thread default executor of
  /// `backend` — `Pipeline::on(exec::pinned_pool_backend())` runs the whole
  /// pipeline on the pinned worker pool without managing an Executor by
  /// hand.  The shared default executor keeps its warm workspace arena and
  /// artifact cache across pipelines on the same backend.
  [[nodiscard]] static Pipeline on(const std::shared_ptr<const exec::Backend>& backend) {
    return Pipeline(exec::default_executor(backend));
  }

  /// Snapshot front door: a pipeline whose terminal operations run against a
  /// pinned `snapshot::Snapshot` instead of caller-supplied points — the
  /// reader-side idiom of the serving tier:
  ///
  ///   snapshot::SnapshotPtr snap = published.acquire();
  ///   auto clusters = Pipeline::on_snapshot(reader_exec, *snap)
  ///                       .with_min_pts(4)
  ///                       .with_min_cluster_size(25)
  ///                       .run_hdbscan();              // no points argument
  ///
  /// Both the executor and the snapshot must outlive the terminal call (hold
  /// the SnapshotPtr across it).  Point-set terminals (`run_hdbscan(points)`
  /// etc.) remain available and ignore the snapshot.
  [[nodiscard]] static Pipeline on_snapshot(const exec::Executor& executor,
                                            const snapshot::Snapshot& snap) {
    Pipeline pipeline(executor);
    pipeline.snapshot_ = &snap;
    return pipeline;
  }

  // --- configuration -------------------------------------------------------

  /// HDBSCAN* minPts (core-distance neighbour count).  Default 2.
  Pipeline& with_min_pts(int min_pts) {
    options_.min_pts = min_pts;
    return *this;
  }

  /// Condensed-tree shedding threshold.  Default 5.
  Pipeline& with_min_cluster_size(index_t min_cluster_size) {
    options_.min_cluster_size = min_cluster_size;
    return *this;
  }

  /// Which dendrogram algorithm the pipeline runs (PANDORA by default).
  Pipeline& with_dendrogram_algorithm(hdbscan::DendrogramAlgorithm algorithm) {
    options_.dendrogram_algorithm = algorithm;
    return *this;
  }

  /// PANDORA expansion policy (multilevel by default).
  Pipeline& with_expansion(dendrogram::ExpansionPolicy policy) {
    expansion_ = policy;
    return *this;
  }

  /// Which algorithm runs the Section 3.1.1 edge sort (key-packed radix by
  /// default; merge is the comparison-based reference).  Applies to the
  /// executor, so it persists across pipelines sharing it.
  Pipeline& with_edge_sort(exec::EdgeSortAlgorithm algorithm) {
    executor_->set_edge_sort_algorithm(algorithm);
    return *this;
  }

  /// Toggle the cross-call SortedEdges cache (on by default).  Applies to the
  /// executor, so it persists across pipelines sharing it.
  Pipeline& with_sorted_edges_cache(bool enabled) {
    executor_->set_artifact_caching(enabled);
    return *this;
  }

  /// Validate inputs at the front door: dendrogram inputs must be spanning
  /// trees with finite weights, point sets must carry only finite (no
  /// NaN/Inf) coordinates.  Violations throw std::invalid_argument.
  Pipeline& with_validation(bool validate = true) {
    validate_input_ = validate;
    return *this;
  }

  /// Wall-clock budget for each terminal operation, measured from the start
  /// of the call (0 = unlimited, the default).  An expired budget surfaces as
  /// `pandora::Cancelled` ("deadline exceeded") with ~one-chunk latency —
  /// the kernels poll a deadline'd CancellationToken at run_chunks chunk
  /// boundaries on every backend.  Composes with `with_cancellation`.
  Pipeline& with_deadline(std::chrono::nanoseconds budget) {
    deadline_ = budget;
    return *this;
  }

  /// Observe a caller-owned cancellation token during terminal operations:
  /// once it fires, the running computation unwinds with
  /// `pandora::Cancelled`.  The token must outlive the terminal calls;
  /// nullptr (the default) disables external cancellation at zero cost.
  Pipeline& with_cancellation(const exec::CancellationToken* token) {
    cancellation_ = token;
    return *this;
  }

  Pipeline& allow_single_cluster(bool allow = true) {
    options_.allow_single_cluster = allow;
    return *this;
  }

  Pipeline& with_cluster_selection(hdbscan::ClusterSelectionMethod method) {
    options_.cluster_selection_method = method;
    return *this;
  }

  Pipeline& with_selection_epsilon(double epsilon) {
    options_.cluster_selection_epsilon = epsilon;
    return *this;
  }

  // --- terminal operations --------------------------------------------------

  /// Canonical descending-(weight, id) edge sort (Section 3.1.1).
  [[nodiscard]] dendrogram::SortedEdges sort_edges(const graph::EdgeList& mst,
                                                   index_t num_vertices) const;

  /// Dendrogram of an MST via the configured algorithm.
  [[nodiscard]] dendrogram::Dendrogram build_dendrogram(const graph::EdgeList& mst,
                                                        index_t num_vertices) const;

  /// Dendrogram from pre-sorted edges (shares one sort across algorithms).
  [[nodiscard]] dendrogram::Dendrogram build_dendrogram(
      const dendrogram::SortedEdges& sorted) const;

  /// Output-reusing dendrogram build: with the PANDORA algorithm, a second
  /// identical call on a warm Executor (sorted-edges cache hit, arena-leased
  /// scratch, capacity-reusing outputs) performs no heap allocation.
  void build_dendrogram_into(const graph::EdgeList& mst, index_t num_vertices,
                             dendrogram::Dendrogram& out) const;

  /// Per-point core distances at the configured minPts.
  [[nodiscard]] std::vector<double> core_distances(const spatial::PointSet& points,
                                                   const spatial::KdTree& tree) const;

  /// Euclidean MST (minPts == 1) or mutual-reachability MST (minPts > 1).
  [[nodiscard]] graph::EdgeList build_mst(const spatial::PointSet& points,
                                          const spatial::KdTree& tree) const;

  /// The full HDBSCAN* pipeline.
  [[nodiscard]] hdbscan::HdbscanResult run_hdbscan(const spatial::PointSet& points) const;

  // --- snapshot terminals (require on_snapshot) ------------------------------

  /// HDBSCAN* against the pinned snapshot (see Snapshot::hdbscan).
  [[nodiscard]] hdbscan::HdbscanResult run_hdbscan() const {
    PANDORA_EXPECT(snapshot_ != nullptr, "run_hdbscan() without points requires on_snapshot");
    return cancellable([&] { return snapshot_->hdbscan(*executor_, options_); });
  }

  /// `min_cluster_size` sweep against the pinned snapshot.
  [[nodiscard]] hdbscan::MinClusterSizeSweep sweep_min_cluster_size(
      std::span<const index_t> min_cluster_sizes) const {
    PANDORA_EXPECT(snapshot_ != nullptr,
                   "sweep_min_cluster_size() without points requires on_snapshot");
    return cancellable(
        [&] { return snapshot_->sweep_min_cluster_size(*executor_, min_cluster_sizes, options_); });
  }

  /// mpts sweep against the pinned snapshot.
  [[nodiscard]] std::vector<hdbscan::HdbscanResult> sweep_min_pts(
      std::span<const int> min_pts_values) const {
    PANDORA_EXPECT(snapshot_ != nullptr,
                   "sweep_min_pts() without points requires on_snapshot");
    return cancellable(
        [&] { return snapshot_->sweep_min_pts(*executor_, min_pts_values, options_); });
  }

  // --- batched serving & parameter sweeps -----------------------------------

  /// The batched serving front door: a `serve::BatchExecutor` over this
  /// pipeline's executor.  N independent queries run concurrently against
  /// one thread budget — small queries packed one-per-thread on serial slot
  /// executors, large queries keeping intra-query parallelism — and all
  /// slots share the executor's ArtifactCache:
  ///
  ///   auto batch = Pipeline::on(executor).batch();
  ///   std::vector<dendrogram::Dendrogram> dendrograms =
  ///       batch.build_dendrograms(queries);   // N queries, one machine
  ///
  /// Keep the BatchExecutor alive across batches: its slot arenas stay warm,
  /// so steady-state batches perform no arena allocation per slot.
  [[nodiscard]] serve::BatchExecutor batch(serve::BatchOptions options = {}) const {
    return serve::BatchExecutor(*executor_, options);
  }

  /// A `min_cluster_size` sweep over one point set: the pipeline runs once
  /// up to the dendrogram (configured minPts applies), then each value only
  /// re-condenses and re-extracts.  See hdbscan_sweep_min_cluster_size.
  [[nodiscard]] hdbscan::MinClusterSizeSweep sweep_min_cluster_size(
      const spatial::PointSet& points, std::span<const index_t> min_cluster_sizes) const;

  /// An mpts sweep over one point set, sharing the kd-tree across values
  /// through the ArtifactCache.  See hdbscan_sweep_min_pts.
  [[nodiscard]] std::vector<hdbscan::HdbscanResult> sweep_min_pts(
      const spatial::PointSet& points, std::span<const int> min_pts_values) const;

  // --- streaming / mutable corpora -------------------------------------------

  /// The incremental front door: a `dyn::DynamicClustering` bound to this
  /// pipeline's executor.  The returned object owns a mutable point set,
  /// keeps its exact EMST maintained under `insert` / `erase`, and replays
  /// the dendrogram from the merged edge delta after every update:
  ///
  ///   auto stream = Pipeline::on(executor).dynamic();
  ///   stream.insert(initial_points);
  ///   stream.insert(new_point);                       // incremental repair
  ///   const auto& dendrogram = stream.dendrogram();   // already current
  ///
  /// The zero-argument form carries the pipeline's expansion policy over;
  /// passing explicit DynamicOptions takes them verbatim (including their
  /// own expansion).  HDBSCAN* options apply when calling
  /// `stream.hdbscan()` (pass them there — the stream outlives this
  /// builder).
  [[nodiscard]] dyn::DynamicClustering dynamic() const {
    dyn::DynamicOptions options;
    options.expansion = expansion_;
    return dyn::DynamicClustering(*executor_, options);
  }
  [[nodiscard]] dyn::DynamicClustering dynamic(dyn::DynamicOptions options) const {
    return dyn::DynamicClustering(*executor_, options);
  }

  /// The serving front door: a `snapshot::PublishedClustering` whose writer
  /// side is bound to this pipeline's executor.  Writers mutate and publish;
  /// readers `acquire()` pinned snapshots from their own threads and query
  /// them through `Pipeline::on_snapshot` (writers never block readers —
  /// see published_clustering.hpp).  The zero-argument form carries the
  /// pipeline's expansion policy over.
  [[nodiscard]] snapshot::PublishedClustering published() const {
    snapshot::PublishedOptions options;
    options.dynamic.expansion = expansion_;
    return snapshot::PublishedClustering(*executor_, options);
  }
  [[nodiscard]] snapshot::PublishedClustering published(snapshot::PublishedOptions options) const {
    return snapshot::PublishedClustering(*executor_, options);
  }

  [[nodiscard]] const exec::Executor& executor() const { return *executor_; }

 private:
  explicit Pipeline(const exec::Executor& executor) : executor_(&executor) {}

  [[nodiscard]] dendrogram::PandoraOptions pandora_options() const {
    dendrogram::PandoraOptions options;
    options.expansion = expansion_;
    options.validate_input = validate_input_;
    return options;
  }

  /// Runs one terminal operation under the configured cancellation scope: a
  /// fresh deadline token (parented on the external token, so either firing
  /// cancels) when a budget is set, the bare external token otherwise.  With
  /// neither configured the scope guard is a no-op and the kernels take their
  /// null-token fast path.
  template <class F>
  auto cancellable(F&& f) const -> decltype(f()) {
    exec::CancellationToken deadline_token;
    const exec::CancellationToken* token = cancellation_;
    if (deadline_.count() > 0) {
      deadline_token.set_deadline(exec::CancellationToken::clock::now() + deadline_);
      deadline_token.add_parent(cancellation_);
      token = &deadline_token;
    }
    const exec::ScopedCancellation scope(*executor_, token);
    return f();
  }

  const exec::Executor* executor_;
  const snapshot::Snapshot* snapshot_ = nullptr;
  hdbscan::HdbscanOptions options_;
  dendrogram::ExpansionPolicy expansion_ = dendrogram::ExpansionPolicy::multilevel;
  bool validate_input_ = false;
  std::chrono::nanoseconds deadline_{0};
  const exec::CancellationToken* cancellation_ = nullptr;
};

}  // namespace pandora
