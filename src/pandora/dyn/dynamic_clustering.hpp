#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pandora/common/expect.hpp"
#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/sorted_edges.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/fingerprint.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/hdbscan/hdbscan.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

/// Incremental clustering over a *mutable* point set.
///
/// Every other entry point of this library assumes a frozen point set: one
/// changed point forces a full kd-tree -> kNN -> Borůvka -> sort -> PANDORA
/// rebuild.  `dyn::DynamicClustering` instead owns the points and keeps the
/// exact Euclidean MST incrementally correct under `insert` and `erase`
/// (following the decomposition of fully-dynamic single-linkage into
/// maintainable MST + replayable dendrogram primitives — De Man et al. 2025,
/// cuSLINK), then re-derives the dendrogram by merging the edge delta into
/// the maintained sorted run and replaying PANDORA.  A steady-state update
/// costs a few Borůvka rounds over mostly-pre-merged components plus one
/// linear merge — far below the from-scratch pipeline (see the README cost
/// model).
namespace pandora::dyn {

struct DynamicOptions {
  /// Leaf size of the maintained kd index.
  int leaf_size = 32;

  /// Inserted points are appended to an unindexed tail and brute-forced by
  /// queries until the tail exceeds this fraction of the point count, when
  /// the kd index is rebuilt (amortised O(log n) per insert).  Erases always
  /// rebuild (compaction moves the indexed coordinates).
  double index_rebuild_fraction = 0.125;

  /// PANDORA expansion policy for the dendrogram replays.
  dendrogram::ExpansionPolicy expansion = dendrogram::ExpansionPolicy::multilevel;
};

/// Cumulative counters, exposed so tests and benches can assert the update
/// path actually took the incremental route (and how hard it worked).
struct UpdateStats {
  std::uint64_t points_inserted = 0;
  std::uint64_t points_erased = 0;
  std::uint64_t update_batches = 0;   ///< insert/erase calls that mutated state
  std::uint64_t edges_added = 0;      ///< EMST edges created by updates
  std::uint64_t edges_removed = 0;    ///< EMST edges displaced or dropped
  std::uint64_t boruvka_rounds = 0;   ///< insert-repair rounds across all updates
  std::uint64_t index_rebuilds = 0;   ///< kd-index rebuilds (tail overflow / erase)
};

/// One epoch of a stream, captured as an immutable unit: deep copies of the
/// live points and every maintained derived structure, all consistent with
/// one `epoch()` / `points_fingerprint()` pair.  This is what the snapshot
/// tier freezes and publishes — the copies share nothing with the stream, so
/// the writer may keep mutating while readers hold the bundle.
struct ArtifactBundle {
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;  ///< epoch_fingerprint at capture time
  std::shared_ptr<const spatial::PointSet> points;
  std::shared_ptr<const std::vector<index_t>> ids;  ///< slot -> stable id
  std::shared_ptr<const graph::EdgeList> emst;
  std::shared_ptr<const dendrogram::SortedEdges> sorted_edges;
  std::shared_ptr<const dendrogram::Dendrogram> dendrogram;
  dendrogram::ExpansionPolicy expansion = dendrogram::ExpansionPolicy::multilevel;
};

/// A mutable point set with stable ids, an incrementally maintained exact
/// Euclidean MST, and a dendrogram replayed from it after every update.
///
///   exec::Executor executor;
///   dyn::DynamicClustering stream(executor);
///   stream.insert(initial_points);               // bulk load
///   const index_t id = stream.insert(coords);    // point-at-a-time
///   stream.erase(std::array{id});
///   const auto& dendrogram = stream.dendrogram(); // current, slot-indexed
///   auto clusters = stream.hdbscan({.min_pts = 4});
///
/// **Updates.**  `insert` appends points and repairs the tree with a
/// cycle-property pass: a kd-tree kNN probe around every new point yields a
/// safety threshold (no maintained edge at or below the new points' 2nd-
/// nearest-neighbour distance can be displaced), the edges above it plus the
/// new points' implicit star edges then go through Borůvka rounds over
/// workspace-leased scratch — equivalently, the heaviest edge on every cycle
/// the candidate edges create is dropped.  `erase` removes points, splinters
/// the tree into the surviving components (every surviving edge provably
/// stays in the new MST) and re-joins them through the component-restricted
/// Borůvka entry of `spatial::emst`.  Both paths are *exact*: after any
/// update the maintained tree is a true EMST of the live points.
///
/// **Dendrogram replay.**  Updates renumber the surviving edges, merge the
/// small sorted delta into the maintained `SortedEdges` run
/// (`merge_sorted_edges_delta` — linear, no re-sort) and replay PANDORA, so
/// `dendrogram()` is always current.
///
/// **Slots vs ids.**  Live points occupy dense *slots* [0, size()); erase
/// compacts slots, so dendrogram leaves and EMST endpoints are slot indices.
/// The stable id returned by `insert` survives compaction; translate with
/// `slot_of` / `id_at`.
///
/// **Epochs and caches.**  Every mutation bumps `epoch()`.  Derived
/// artifacts computed through the Executor's ArtifactCache (the kd-tree,
/// core distances, mutual-reachability EMST and dendrogram behind
/// `hdbscan()`) are keyed on `points_fingerprint()` =
/// `exec::epoch_fingerprint(instance, epoch)` — a key that is never derived
/// twice, so a stale artifact can never be served; old entries age out of
/// the LRU.  Repeated `hdbscan()` calls within one epoch replay from the
/// cache.
///
/// Not thread-safe (one Executor, one writer); the serving integration runs
/// updates exclusively between query waves (`serve::BatchExecutor::run_waves`).
class DynamicClustering {
 public:
  explicit DynamicClustering(const exec::Executor& exec, DynamicOptions options = {});
  DynamicClustering(DynamicClustering&&) = default;
  DynamicClustering& operator=(DynamicClustering&&) = default;

  /// Inserts a batch of points; returns their stable ids (batch order).
  /// The first insert fixes the dimensionality.
  std::vector<index_t> insert(const spatial::PointSet& batch);

  /// Inserts one point (`coords.size()` = dimension); returns its stable id.
  index_t insert(std::span<const double> coords);

  /// Erases points by stable id.  Erasing an unknown or already-erased id
  /// throws; the ids may be given in any order (duplicates throw too).
  void erase(std::span<const index_t> ids);

  [[nodiscard]] index_t size() const { return points_->size(); }
  [[nodiscard]] int dim() const { return points_->dim(); }

  /// Monotone mutation counter (0 before the first update).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// False while (or after) a structural update failed mid-repair: the
  /// derived structures no longer describe `points()` and every accessor /
  /// update entry point fails fast.  Recover via `restore()` — typically
  /// driven by `snapshot::PublishedClustering::recover()`, which rolls the
  /// stream back to the last published bundle.
  [[nodiscard]] bool healthy() const { return healthy_; }

  /// The epoch-aware cache key standing in for a content hash of the points
  /// (see exec::epoch_fingerprint).
  [[nodiscard]] std::uint64_t points_fingerprint() const {
    return exec::epoch_fingerprint(instance_, epoch_);
  }

  /// Live points, dense slot order.
  [[nodiscard]] const spatial::PointSet& points() const { return *points_; }

  /// The maintained exact Euclidean MST (slot endpoints, maintained order).
  /// Like every derived-structure accessor, throws if an earlier update
  /// failed mid-repair (the structures would no longer describe `points()`).
  [[nodiscard]] const graph::EdgeList& emst() const {
    PANDORA_EXPECT(healthy_, "stream poisoned by an earlier failed update");
    return edges_;
  }

  /// The maintained canonical sorted run of `emst()`.
  [[nodiscard]] const dendrogram::SortedEdges& sorted_edges() const {
    PANDORA_EXPECT(healthy_, "stream poisoned by an earlier failed update");
    return sorted_;
  }

  /// The current single-linkage dendrogram (replayed on every update;
  /// leaves are slots).
  [[nodiscard]] const dendrogram::Dendrogram& dendrogram() const {
    PANDORA_EXPECT(healthy_, "stream poisoned by an earlier failed update");
    return dendrogram_;
  }

  /// Current slot of a stable id (kNone once erased), and the inverse.
  [[nodiscard]] index_t slot_of(index_t id) const {
    return id >= 0 && static_cast<std::size_t>(id) < slot_of_id_.size()
               ? slot_of_id_[static_cast<std::size_t>(id)]
               : kNone;
  }
  [[nodiscard]] index_t id_at(index_t slot) const {
    return id_of_slot_[static_cast<std::size_t>(slot)];
  }

  /// HDBSCAN* over the current points, with every cacheable artifact keyed
  /// on the epoch fingerprint: repeated calls within an epoch replay the
  /// kd-tree, core distances and mutual-reachability EMST from the
  /// Executor's ArtifactCache; any update re-keys them all.
  /// (`options.min_pts` > 1 changes the metric, so this path cannot reuse
  /// the maintained Euclidean tree — it exists for correctness + caching,
  /// not incrementality.)
  [[nodiscard]] hdbscan::HdbscanResult hdbscan(const hdbscan::HdbscanOptions& options = {}) const;

  /// Freezes the current epoch as an immutable `ArtifactBundle` (deep
  /// copies: points, EMST, sorted run, dendrogram — one consistent unit).
  /// O(n·d + E) copy cost; this is the "materialize the successor snapshot
  /// off to the side" step of `snapshot::PublishedClustering::publish`, so
  /// it runs on the writer thread without touching anything a reader holds.
  /// Like the structure accessors, throws if the stream is poisoned.
  [[nodiscard]] ArtifactBundle capture_artifacts() const;

  /// Resets the stream to the state frozen in `bundle` (deep copies back:
  /// points, stable-id map, EMST, sorted run, dendrogram), clears the poison
  /// flag and *advances* the epoch — burned epoch numbers are never reused,
  /// so cached artifacts keyed on a failed epoch's fingerprint can never be
  /// served after recovery.  Accepts any bundle captured from this stream or
  /// a compatible one; this is the writer-recovery primitive behind
  /// `snapshot::PublishedClustering::recover()`.
  void restore(const ArtifactBundle& bundle);

  [[nodiscard]] const UpdateStats& stats() const { return stats_; }

  [[nodiscard]] const DynamicOptions& options() const { return options_; }

  [[nodiscard]] const exec::Executor& executor() const { return *exec_; }

 private:
  /// Full (re)build of tree + EMST + sorted run; used for the first batch.
  void rebuild_from_scratch();

  /// Exact incremental EMST repair for the batch appended at slots
  /// [n_before, n_before + m); fills `keep` (per maintained edge) and
  /// `added`.
  void repair_after_insert(index_t n_before, index_t m, std::vector<char>& keep,
                           graph::EdgeList& added);

  /// Applies an edge delta: renumbers survivors, merges the sorted run,
  /// replays the dendrogram, bumps the epoch.
  void finish_update(std::span<const char> keep, const graph::EdgeList& added,
                     std::span<const index_t> vertex_remap, index_t num_vertices);

  void rebuild_index();
  void replay_dendrogram();

  const exec::Executor* exec_;
  DynamicOptions options_;
  /// unique_ptr keeps the PointSet address-stable under moves of *this (the
  /// kd index holds a reference to it).
  std::unique_ptr<spatial::PointSet> points_;
  std::vector<index_t> id_of_slot_;   ///< slot -> stable id
  std::vector<index_t> slot_of_id_;   ///< stable id -> slot (kNone = erased)
  index_t next_id_ = 0;

  graph::EdgeList edges_;             ///< maintained EMST, maintained order
  graph::EdgeList edges_scratch_;
  dendrogram::SortedEdges sorted_;
  dendrogram::SortedEdges sorted_scratch_;
  dendrogram::Dendrogram dendrogram_;

  std::unique_ptr<spatial::KdTree> tree_;  ///< over slots [0, indexed_)
  index_t indexed_ = 0;
  spatial::KdTreeAnnotations notes_;       ///< reused across Borůvka rounds

  std::uint64_t instance_;
  std::uint64_t epoch_ = 0;
  /// False while a structural update is in flight; an exception thrown
  /// mid-repair leaves it false, and every subsequent entry point fails
  /// fast instead of computing on a half-updated tree.
  bool healthy_ = true;
  UpdateStats stats_;
};

}  // namespace pandora::dyn
